file(REMOVE_RECURSE
  "CMakeFiles/micro_commguard.dir/micro_commguard.cc.o"
  "CMakeFiles/micro_commguard.dir/micro_commguard.cc.o.d"
  "micro_commguard"
  "micro_commguard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_commguard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
