# Empty compiler generated dependencies file for micro_commguard.
# This may be replaced when dependencies are built.
