file(REMOVE_RECURSE
  "CMakeFiles/ablation_queue_capacity.dir/ablation_queue_capacity.cc.o"
  "CMakeFiles/ablation_queue_capacity.dir/ablation_queue_capacity.cc.o.d"
  "ablation_queue_capacity"
  "ablation_queue_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_queue_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
