# Empty dependencies file for ablation_queue_capacity.
# This may be replaced when dependencies are built.
