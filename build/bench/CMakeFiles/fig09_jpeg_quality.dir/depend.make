# Empty dependencies file for fig09_jpeg_quality.
# This may be replaced when dependencies are built.
