file(REMOVE_RECURSE
  "CMakeFiles/fig09_jpeg_quality.dir/fig09_jpeg_quality.cc.o"
  "CMakeFiles/fig09_jpeg_quality.dir/fig09_jpeg_quality.cc.o.d"
  "fig09_jpeg_quality"
  "fig09_jpeg_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_jpeg_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
