file(REMOVE_RECURSE
  "CMakeFiles/fig10_jpeg_mp3_quality.dir/fig10_jpeg_mp3_quality.cc.o"
  "CMakeFiles/fig10_jpeg_mp3_quality.dir/fig10_jpeg_mp3_quality.cc.o.d"
  "fig10_jpeg_mp3_quality"
  "fig10_jpeg_mp3_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_jpeg_mp3_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
