# Empty compiler generated dependencies file for fig10_jpeg_mp3_quality.
# This may be replaced when dependencies are built.
