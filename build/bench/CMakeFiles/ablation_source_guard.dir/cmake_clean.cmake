file(REMOVE_RECURSE
  "CMakeFiles/ablation_source_guard.dir/ablation_source_guard.cc.o"
  "CMakeFiles/ablation_source_guard.dir/ablation_source_guard.cc.o.d"
  "ablation_source_guard"
  "ablation_source_guard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_source_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
