# Empty compiler generated dependencies file for ablation_source_guard.
# This may be replaced when dependencies are built.
