# Empty compiler generated dependencies file for ablation_output_alignment.
# This may be replaced when dependencies are built.
