file(REMOVE_RECURSE
  "CMakeFiles/ablation_output_alignment.dir/ablation_output_alignment.cc.o"
  "CMakeFiles/ablation_output_alignment.dir/ablation_output_alignment.cc.o.d"
  "ablation_output_alignment"
  "ablation_output_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_output_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
