file(REMOVE_RECURSE
  "CMakeFiles/fig08_data_loss.dir/fig08_data_loss.cc.o"
  "CMakeFiles/fig08_data_loss.dir/fig08_data_loss.cc.o.d"
  "fig08_data_loss"
  "fig08_data_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_data_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
