# Empty compiler generated dependencies file for fig08_data_loss.
# This may be replaced when dependencies are built.
