# Empty dependencies file for fig03_protection_configs.
# This may be replaced when dependencies are built.
