file(REMOVE_RECURSE
  "CMakeFiles/fig03_protection_configs.dir/fig03_protection_configs.cc.o"
  "CMakeFiles/fig03_protection_configs.dir/fig03_protection_configs.cc.o.d"
  "fig03_protection_configs"
  "fig03_protection_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_protection_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
