# Empty dependencies file for fig12_memory_overhead.
# This may be replaced when dependencies are built.
