file(REMOVE_RECURSE
  "CMakeFiles/fig12_memory_overhead.dir/fig12_memory_overhead.cc.o"
  "CMakeFiles/fig12_memory_overhead.dir/fig12_memory_overhead.cc.o.d"
  "fig12_memory_overhead"
  "fig12_memory_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_memory_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
