# Empty dependencies file for fig14_suboperations.
# This may be replaced when dependencies are built.
