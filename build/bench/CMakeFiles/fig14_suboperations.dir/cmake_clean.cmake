file(REMOVE_RECURSE
  "CMakeFiles/fig14_suboperations.dir/fig14_suboperations.cc.o"
  "CMakeFiles/fig14_suboperations.dir/fig14_suboperations.cc.o.d"
  "fig14_suboperations"
  "fig14_suboperations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_suboperations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
