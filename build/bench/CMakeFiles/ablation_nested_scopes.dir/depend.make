# Empty dependencies file for ablation_nested_scopes.
# This may be replaced when dependencies are built.
