file(REMOVE_RECURSE
  "CMakeFiles/ablation_nested_scopes.dir/ablation_nested_scopes.cc.o"
  "CMakeFiles/ablation_nested_scopes.dir/ablation_nested_scopes.cc.o.d"
  "ablation_nested_scopes"
  "ablation_nested_scopes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nested_scopes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
