file(REMOVE_RECURSE
  "CMakeFiles/ablation_injection_policy.dir/ablation_injection_policy.cc.o"
  "CMakeFiles/ablation_injection_policy.dir/ablation_injection_policy.cc.o.d"
  "ablation_injection_policy"
  "ablation_injection_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_injection_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
