# Empty dependencies file for fig07_pad_discard.
# This may be replaced when dependencies are built.
