file(REMOVE_RECURSE
  "CMakeFiles/fig07_pad_discard.dir/fig07_pad_discard.cc.o"
  "CMakeFiles/fig07_pad_discard.dir/fig07_pad_discard.cc.o.d"
  "fig07_pad_discard"
  "fig07_pad_discard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_pad_discard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
