file(REMOVE_RECURSE
  "CMakeFiles/ablation_reliability_model.dir/ablation_reliability_model.cc.o"
  "CMakeFiles/ablation_reliability_model.dir/ablation_reliability_model.cc.o.d"
  "ablation_reliability_model"
  "ablation_reliability_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reliability_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
