# Empty dependencies file for ablation_reliability_model.
# This may be replaced when dependencies are built.
