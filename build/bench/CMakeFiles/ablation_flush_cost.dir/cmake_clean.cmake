file(REMOVE_RECURSE
  "CMakeFiles/ablation_flush_cost.dir/ablation_flush_cost.cc.o"
  "CMakeFiles/ablation_flush_cost.dir/ablation_flush_cost.cc.o.d"
  "ablation_flush_cost"
  "ablation_flush_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_flush_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
