# Empty dependencies file for ablation_flush_cost.
# This may be replaced when dependencies are built.
