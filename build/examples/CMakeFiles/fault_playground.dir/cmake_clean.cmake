file(REMOVE_RECURSE
  "CMakeFiles/fault_playground.dir/fault_playground.cpp.o"
  "CMakeFiles/fault_playground.dir/fault_playground.cpp.o.d"
  "fault_playground"
  "fault_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
