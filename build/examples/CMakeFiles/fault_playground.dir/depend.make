# Empty dependencies file for fault_playground.
# This may be replaced when dependencies are built.
