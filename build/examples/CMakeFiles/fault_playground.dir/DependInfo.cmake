
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/fault_playground.cpp" "examples/CMakeFiles/fault_playground.dir/fault_playground.cpp.o" "gcc" "examples/CMakeFiles/fault_playground.dir/fault_playground.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/cg_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/cg_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/cg_media.dir/DependInfo.cmake"
  "/root/repo/build/src/streamit/CMakeFiles/cg_streamit.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/cg_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/cg_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/commguard/CMakeFiles/cg_commguard.dir/DependInfo.cmake"
  "/root/repo/build/src/queue/CMakeFiles/cg_queue.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
