file(REMOVE_RECURSE
  "CMakeFiles/cnc_pipeline.dir/cnc_pipeline.cpp.o"
  "CMakeFiles/cnc_pipeline.dir/cnc_pipeline.cpp.o.d"
  "cnc_pipeline"
  "cnc_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnc_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
