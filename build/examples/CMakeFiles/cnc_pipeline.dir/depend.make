# Empty dependencies file for cnc_pipeline.
# This may be replaced when dependencies are built.
