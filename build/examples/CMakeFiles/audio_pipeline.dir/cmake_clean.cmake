file(REMOVE_RECURSE
  "CMakeFiles/audio_pipeline.dir/audio_pipeline.cpp.o"
  "CMakeFiles/audio_pipeline.dir/audio_pipeline.cpp.o.d"
  "audio_pipeline"
  "audio_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audio_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
