# Empty dependencies file for jpeg_tour.
# This may be replaced when dependencies are built.
