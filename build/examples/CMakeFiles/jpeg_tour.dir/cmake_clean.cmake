file(REMOVE_RECURSE
  "CMakeFiles/jpeg_tour.dir/jpeg_tour.cpp.o"
  "CMakeFiles/jpeg_tour.dir/jpeg_tour.cpp.o.d"
  "jpeg_tour"
  "jpeg_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jpeg_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
