# Empty dependencies file for custom_filter.
# This may be replaced when dependencies are built.
