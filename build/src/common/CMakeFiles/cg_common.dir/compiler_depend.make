# Empty compiler generated dependencies file for cg_common.
# This may be replaced when dependencies are built.
