file(REMOVE_RECURSE
  "CMakeFiles/cg_common.dir/ecc.cc.o"
  "CMakeFiles/cg_common.dir/ecc.cc.o.d"
  "CMakeFiles/cg_common.dir/logging.cc.o"
  "CMakeFiles/cg_common.dir/logging.cc.o.d"
  "CMakeFiles/cg_common.dir/rng.cc.o"
  "CMakeFiles/cg_common.dir/rng.cc.o.d"
  "CMakeFiles/cg_common.dir/stats.cc.o"
  "CMakeFiles/cg_common.dir/stats.cc.o.d"
  "libcg_common.a"
  "libcg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
