# Empty compiler generated dependencies file for cg_machine.
# This may be replaced when dependencies are built.
