
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/backends.cc" "src/machine/CMakeFiles/cg_machine.dir/backends.cc.o" "gcc" "src/machine/CMakeFiles/cg_machine.dir/backends.cc.o.d"
  "/root/repo/src/machine/core.cc" "src/machine/CMakeFiles/cg_machine.dir/core.cc.o" "gcc" "src/machine/CMakeFiles/cg_machine.dir/core.cc.o.d"
  "/root/repo/src/machine/core_runtime.cc" "src/machine/CMakeFiles/cg_machine.dir/core_runtime.cc.o" "gcc" "src/machine/CMakeFiles/cg_machine.dir/core_runtime.cc.o.d"
  "/root/repo/src/machine/multicore.cc" "src/machine/CMakeFiles/cg_machine.dir/multicore.cc.o" "gcc" "src/machine/CMakeFiles/cg_machine.dir/multicore.cc.o.d"
  "/root/repo/src/machine/trace.cc" "src/machine/CMakeFiles/cg_machine.dir/trace.cc.o" "gcc" "src/machine/CMakeFiles/cg_machine.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/cg_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/queue/CMakeFiles/cg_queue.dir/DependInfo.cmake"
  "/root/repo/build/src/commguard/CMakeFiles/cg_commguard.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
