file(REMOVE_RECURSE
  "libcg_machine.a"
)
