file(REMOVE_RECURSE
  "CMakeFiles/cg_machine.dir/backends.cc.o"
  "CMakeFiles/cg_machine.dir/backends.cc.o.d"
  "CMakeFiles/cg_machine.dir/core.cc.o"
  "CMakeFiles/cg_machine.dir/core.cc.o.d"
  "CMakeFiles/cg_machine.dir/core_runtime.cc.o"
  "CMakeFiles/cg_machine.dir/core_runtime.cc.o.d"
  "CMakeFiles/cg_machine.dir/multicore.cc.o"
  "CMakeFiles/cg_machine.dir/multicore.cc.o.d"
  "CMakeFiles/cg_machine.dir/trace.cc.o"
  "CMakeFiles/cg_machine.dir/trace.cc.o.d"
  "libcg_machine.a"
  "libcg_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
