# Empty dependencies file for cg_cnc.
# This may be replaced when dependencies are built.
