file(REMOVE_RECURSE
  "CMakeFiles/cg_cnc.dir/cnc.cc.o"
  "CMakeFiles/cg_cnc.dir/cnc.cc.o.d"
  "libcg_cnc.a"
  "libcg_cnc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_cnc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
