file(REMOVE_RECURSE
  "libcg_cnc.a"
)
