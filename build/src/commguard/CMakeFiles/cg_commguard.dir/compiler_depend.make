# Empty compiler generated dependencies file for cg_commguard.
# This may be replaced when dependencies are built.
