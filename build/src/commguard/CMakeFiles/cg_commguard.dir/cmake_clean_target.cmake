file(REMOVE_RECURSE
  "libcg_commguard.a"
)
