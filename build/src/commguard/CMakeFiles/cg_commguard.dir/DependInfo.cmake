
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/commguard/alignment_manager.cc" "src/commguard/CMakeFiles/cg_commguard.dir/alignment_manager.cc.o" "gcc" "src/commguard/CMakeFiles/cg_commguard.dir/alignment_manager.cc.o.d"
  "/root/repo/src/commguard/header_inserter.cc" "src/commguard/CMakeFiles/cg_commguard.dir/header_inserter.cc.o" "gcc" "src/commguard/CMakeFiles/cg_commguard.dir/header_inserter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/queue/CMakeFiles/cg_queue.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
