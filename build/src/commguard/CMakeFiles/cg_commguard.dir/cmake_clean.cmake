file(REMOVE_RECURSE
  "CMakeFiles/cg_commguard.dir/alignment_manager.cc.o"
  "CMakeFiles/cg_commguard.dir/alignment_manager.cc.o.d"
  "CMakeFiles/cg_commguard.dir/header_inserter.cc.o"
  "CMakeFiles/cg_commguard.dir/header_inserter.cc.o.d"
  "libcg_commguard.a"
  "libcg_commguard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_commguard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
