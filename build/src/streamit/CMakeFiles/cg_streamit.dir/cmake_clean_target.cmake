file(REMOVE_RECURSE
  "libcg_streamit.a"
)
