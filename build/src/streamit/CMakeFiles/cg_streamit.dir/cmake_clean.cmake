file(REMOVE_RECURSE
  "CMakeFiles/cg_streamit.dir/graph.cc.o"
  "CMakeFiles/cg_streamit.dir/graph.cc.o.d"
  "CMakeFiles/cg_streamit.dir/loader.cc.o"
  "CMakeFiles/cg_streamit.dir/loader.cc.o.d"
  "CMakeFiles/cg_streamit.dir/schedule.cc.o"
  "CMakeFiles/cg_streamit.dir/schedule.cc.o.d"
  "libcg_streamit.a"
  "libcg_streamit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_streamit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
