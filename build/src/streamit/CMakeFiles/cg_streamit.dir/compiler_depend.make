# Empty compiler generated dependencies file for cg_streamit.
# This may be replaced when dependencies are built.
