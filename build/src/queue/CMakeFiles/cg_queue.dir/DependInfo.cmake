
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/queue/ring_queue.cc" "src/queue/CMakeFiles/cg_queue.dir/ring_queue.cc.o" "gcc" "src/queue/CMakeFiles/cg_queue.dir/ring_queue.cc.o.d"
  "/root/repo/src/queue/software_queue.cc" "src/queue/CMakeFiles/cg_queue.dir/software_queue.cc.o" "gcc" "src/queue/CMakeFiles/cg_queue.dir/software_queue.cc.o.d"
  "/root/repo/src/queue/working_set_queue.cc" "src/queue/CMakeFiles/cg_queue.dir/working_set_queue.cc.o" "gcc" "src/queue/CMakeFiles/cg_queue.dir/working_set_queue.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
