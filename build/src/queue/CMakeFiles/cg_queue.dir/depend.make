# Empty dependencies file for cg_queue.
# This may be replaced when dependencies are built.
