file(REMOVE_RECURSE
  "libcg_queue.a"
)
