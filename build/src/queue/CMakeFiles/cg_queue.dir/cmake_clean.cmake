file(REMOVE_RECURSE
  "CMakeFiles/cg_queue.dir/ring_queue.cc.o"
  "CMakeFiles/cg_queue.dir/ring_queue.cc.o.d"
  "CMakeFiles/cg_queue.dir/software_queue.cc.o"
  "CMakeFiles/cg_queue.dir/software_queue.cc.o.d"
  "CMakeFiles/cg_queue.dir/working_set_queue.cc.o"
  "CMakeFiles/cg_queue.dir/working_set_queue.cc.o.d"
  "libcg_queue.a"
  "libcg_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
