file(REMOVE_RECURSE
  "CMakeFiles/cg_isa.dir/assembler.cc.o"
  "CMakeFiles/cg_isa.dir/assembler.cc.o.d"
  "CMakeFiles/cg_isa.dir/inst.cc.o"
  "CMakeFiles/cg_isa.dir/inst.cc.o.d"
  "CMakeFiles/cg_isa.dir/program.cc.o"
  "CMakeFiles/cg_isa.dir/program.cc.o.d"
  "libcg_isa.a"
  "libcg_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
