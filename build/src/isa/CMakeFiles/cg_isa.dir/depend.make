# Empty dependencies file for cg_isa.
# This may be replaced when dependencies are built.
