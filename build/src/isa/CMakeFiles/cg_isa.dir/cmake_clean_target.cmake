file(REMOVE_RECURSE
  "libcg_isa.a"
)
