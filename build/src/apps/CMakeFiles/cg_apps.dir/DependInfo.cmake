
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app_util.cc" "src/apps/CMakeFiles/cg_apps.dir/app_util.cc.o" "gcc" "src/apps/CMakeFiles/cg_apps.dir/app_util.cc.o.d"
  "/root/repo/src/apps/beamformer_app.cc" "src/apps/CMakeFiles/cg_apps.dir/beamformer_app.cc.o" "gcc" "src/apps/CMakeFiles/cg_apps.dir/beamformer_app.cc.o.d"
  "/root/repo/src/apps/complexfir_app.cc" "src/apps/CMakeFiles/cg_apps.dir/complexfir_app.cc.o" "gcc" "src/apps/CMakeFiles/cg_apps.dir/complexfir_app.cc.o.d"
  "/root/repo/src/apps/fft_app.cc" "src/apps/CMakeFiles/cg_apps.dir/fft_app.cc.o" "gcc" "src/apps/CMakeFiles/cg_apps.dir/fft_app.cc.o.d"
  "/root/repo/src/apps/jpeg_app.cc" "src/apps/CMakeFiles/cg_apps.dir/jpeg_app.cc.o" "gcc" "src/apps/CMakeFiles/cg_apps.dir/jpeg_app.cc.o.d"
  "/root/repo/src/apps/mp3_app.cc" "src/apps/CMakeFiles/cg_apps.dir/mp3_app.cc.o" "gcc" "src/apps/CMakeFiles/cg_apps.dir/mp3_app.cc.o.d"
  "/root/repo/src/apps/vocoder_app.cc" "src/apps/CMakeFiles/cg_apps.dir/vocoder_app.cc.o" "gcc" "src/apps/CMakeFiles/cg_apps.dir/vocoder_app.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/streamit/CMakeFiles/cg_streamit.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/cg_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/cg_media.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/cg_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/commguard/CMakeFiles/cg_commguard.dir/DependInfo.cmake"
  "/root/repo/build/src/queue/CMakeFiles/cg_queue.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/cg_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
