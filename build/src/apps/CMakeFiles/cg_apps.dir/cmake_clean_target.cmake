file(REMOVE_RECURSE
  "libcg_apps.a"
)
