# Empty compiler generated dependencies file for cg_apps.
# This may be replaced when dependencies are built.
