file(REMOVE_RECURSE
  "CMakeFiles/cg_apps.dir/app_util.cc.o"
  "CMakeFiles/cg_apps.dir/app_util.cc.o.d"
  "CMakeFiles/cg_apps.dir/beamformer_app.cc.o"
  "CMakeFiles/cg_apps.dir/beamformer_app.cc.o.d"
  "CMakeFiles/cg_apps.dir/complexfir_app.cc.o"
  "CMakeFiles/cg_apps.dir/complexfir_app.cc.o.d"
  "CMakeFiles/cg_apps.dir/fft_app.cc.o"
  "CMakeFiles/cg_apps.dir/fft_app.cc.o.d"
  "CMakeFiles/cg_apps.dir/jpeg_app.cc.o"
  "CMakeFiles/cg_apps.dir/jpeg_app.cc.o.d"
  "CMakeFiles/cg_apps.dir/mp3_app.cc.o"
  "CMakeFiles/cg_apps.dir/mp3_app.cc.o.d"
  "CMakeFiles/cg_apps.dir/vocoder_app.cc.o"
  "CMakeFiles/cg_apps.dir/vocoder_app.cc.o.d"
  "libcg_apps.a"
  "libcg_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
