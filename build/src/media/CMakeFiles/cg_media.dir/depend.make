# Empty dependencies file for cg_media.
# This may be replaced when dependencies are built.
