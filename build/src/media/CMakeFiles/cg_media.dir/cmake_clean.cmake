file(REMOVE_RECURSE
  "CMakeFiles/cg_media.dir/audio.cc.o"
  "CMakeFiles/cg_media.dir/audio.cc.o.d"
  "CMakeFiles/cg_media.dir/image.cc.o"
  "CMakeFiles/cg_media.dir/image.cc.o.d"
  "CMakeFiles/cg_media.dir/jpeg_codec.cc.o"
  "CMakeFiles/cg_media.dir/jpeg_codec.cc.o.d"
  "CMakeFiles/cg_media.dir/quality.cc.o"
  "CMakeFiles/cg_media.dir/quality.cc.o.d"
  "CMakeFiles/cg_media.dir/subband_codec.cc.o"
  "CMakeFiles/cg_media.dir/subband_codec.cc.o.d"
  "libcg_media.a"
  "libcg_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
