
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/media/audio.cc" "src/media/CMakeFiles/cg_media.dir/audio.cc.o" "gcc" "src/media/CMakeFiles/cg_media.dir/audio.cc.o.d"
  "/root/repo/src/media/image.cc" "src/media/CMakeFiles/cg_media.dir/image.cc.o" "gcc" "src/media/CMakeFiles/cg_media.dir/image.cc.o.d"
  "/root/repo/src/media/jpeg_codec.cc" "src/media/CMakeFiles/cg_media.dir/jpeg_codec.cc.o" "gcc" "src/media/CMakeFiles/cg_media.dir/jpeg_codec.cc.o.d"
  "/root/repo/src/media/quality.cc" "src/media/CMakeFiles/cg_media.dir/quality.cc.o" "gcc" "src/media/CMakeFiles/cg_media.dir/quality.cc.o.d"
  "/root/repo/src/media/subband_codec.cc" "src/media/CMakeFiles/cg_media.dir/subband_codec.cc.o" "gcc" "src/media/CMakeFiles/cg_media.dir/subband_codec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
