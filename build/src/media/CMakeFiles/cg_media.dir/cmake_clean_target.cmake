file(REMOVE_RECURSE
  "libcg_media.a"
)
