file(REMOVE_RECURSE
  "libcg_kernels.a"
)
