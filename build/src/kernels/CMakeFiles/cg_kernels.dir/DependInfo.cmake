
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/audio_kernels.cc" "src/kernels/CMakeFiles/cg_kernels.dir/audio_kernels.cc.o" "gcc" "src/kernels/CMakeFiles/cg_kernels.dir/audio_kernels.cc.o.d"
  "/root/repo/src/kernels/basic.cc" "src/kernels/CMakeFiles/cg_kernels.dir/basic.cc.o" "gcc" "src/kernels/CMakeFiles/cg_kernels.dir/basic.cc.o.d"
  "/root/repo/src/kernels/dsp_kernels.cc" "src/kernels/CMakeFiles/cg_kernels.dir/dsp_kernels.cc.o" "gcc" "src/kernels/CMakeFiles/cg_kernels.dir/dsp_kernels.cc.o.d"
  "/root/repo/src/kernels/fft_kernels.cc" "src/kernels/CMakeFiles/cg_kernels.dir/fft_kernels.cc.o" "gcc" "src/kernels/CMakeFiles/cg_kernels.dir/fft_kernels.cc.o.d"
  "/root/repo/src/kernels/jpeg_kernels.cc" "src/kernels/CMakeFiles/cg_kernels.dir/jpeg_kernels.cc.o" "gcc" "src/kernels/CMakeFiles/cg_kernels.dir/jpeg_kernels.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/cg_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/cg_media.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
