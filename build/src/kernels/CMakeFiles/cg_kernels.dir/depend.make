# Empty dependencies file for cg_kernels.
# This may be replaced when dependencies are built.
