file(REMOVE_RECURSE
  "CMakeFiles/cg_kernels.dir/audio_kernels.cc.o"
  "CMakeFiles/cg_kernels.dir/audio_kernels.cc.o.d"
  "CMakeFiles/cg_kernels.dir/basic.cc.o"
  "CMakeFiles/cg_kernels.dir/basic.cc.o.d"
  "CMakeFiles/cg_kernels.dir/dsp_kernels.cc.o"
  "CMakeFiles/cg_kernels.dir/dsp_kernels.cc.o.d"
  "CMakeFiles/cg_kernels.dir/fft_kernels.cc.o"
  "CMakeFiles/cg_kernels.dir/fft_kernels.cc.o.d"
  "CMakeFiles/cg_kernels.dir/jpeg_kernels.cc.o"
  "CMakeFiles/cg_kernels.dir/jpeg_kernels.cc.o.d"
  "libcg_kernels.a"
  "libcg_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
