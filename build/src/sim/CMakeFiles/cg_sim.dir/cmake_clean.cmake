file(REMOVE_RECURSE
  "CMakeFiles/cg_sim.dir/experiment.cc.o"
  "CMakeFiles/cg_sim.dir/experiment.cc.o.d"
  "CMakeFiles/cg_sim.dir/reliability.cc.o"
  "CMakeFiles/cg_sim.dir/reliability.cc.o.d"
  "CMakeFiles/cg_sim.dir/table.cc.o"
  "CMakeFiles/cg_sim.dir/table.cc.o.d"
  "libcg_sim.a"
  "libcg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
