file(REMOVE_RECURSE
  "libcg_sim.a"
)
