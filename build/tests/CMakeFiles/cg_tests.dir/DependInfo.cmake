
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/alignment_manager_test.cc" "tests/CMakeFiles/cg_tests.dir/alignment_manager_test.cc.o" "gcc" "tests/CMakeFiles/cg_tests.dir/alignment_manager_test.cc.o.d"
  "/root/repo/tests/apps_test.cc" "tests/CMakeFiles/cg_tests.dir/apps_test.cc.o" "gcc" "tests/CMakeFiles/cg_tests.dir/apps_test.cc.o.d"
  "/root/repo/tests/assembler_test.cc" "tests/CMakeFiles/cg_tests.dir/assembler_test.cc.o" "gcc" "tests/CMakeFiles/cg_tests.dir/assembler_test.cc.o.d"
  "/root/repo/tests/backends_test.cc" "tests/CMakeFiles/cg_tests.dir/backends_test.cc.o" "gcc" "tests/CMakeFiles/cg_tests.dir/backends_test.cc.o.d"
  "/root/repo/tests/cnc_test.cc" "tests/CMakeFiles/cg_tests.dir/cnc_test.cc.o" "gcc" "tests/CMakeFiles/cg_tests.dir/cnc_test.cc.o.d"
  "/root/repo/tests/conservation_test.cc" "tests/CMakeFiles/cg_tests.dir/conservation_test.cc.o" "gcc" "tests/CMakeFiles/cg_tests.dir/conservation_test.cc.o.d"
  "/root/repo/tests/core_runtime_test.cc" "tests/CMakeFiles/cg_tests.dir/core_runtime_test.cc.o" "gcc" "tests/CMakeFiles/cg_tests.dir/core_runtime_test.cc.o.d"
  "/root/repo/tests/differential_flow_test.cc" "tests/CMakeFiles/cg_tests.dir/differential_flow_test.cc.o" "gcc" "tests/CMakeFiles/cg_tests.dir/differential_flow_test.cc.o.d"
  "/root/repo/tests/differential_test.cc" "tests/CMakeFiles/cg_tests.dir/differential_test.cc.o" "gcc" "tests/CMakeFiles/cg_tests.dir/differential_test.cc.o.d"
  "/root/repo/tests/doall_test.cc" "tests/CMakeFiles/cg_tests.dir/doall_test.cc.o" "gcc" "tests/CMakeFiles/cg_tests.dir/doall_test.cc.o.d"
  "/root/repo/tests/ecc_test.cc" "tests/CMakeFiles/cg_tests.dir/ecc_test.cc.o" "gcc" "tests/CMakeFiles/cg_tests.dir/ecc_test.cc.o.d"
  "/root/repo/tests/fatal_paths_test.cc" "tests/CMakeFiles/cg_tests.dir/fatal_paths_test.cc.o" "gcc" "tests/CMakeFiles/cg_tests.dir/fatal_paths_test.cc.o.d"
  "/root/repo/tests/frame_domains_test.cc" "tests/CMakeFiles/cg_tests.dir/frame_domains_test.cc.o" "gcc" "tests/CMakeFiles/cg_tests.dir/frame_domains_test.cc.o.d"
  "/root/repo/tests/header_inserter_test.cc" "tests/CMakeFiles/cg_tests.dir/header_inserter_test.cc.o" "gcc" "tests/CMakeFiles/cg_tests.dir/header_inserter_test.cc.o.d"
  "/root/repo/tests/interpreter_test.cc" "tests/CMakeFiles/cg_tests.dir/interpreter_test.cc.o" "gcc" "tests/CMakeFiles/cg_tests.dir/interpreter_test.cc.o.d"
  "/root/repo/tests/jpeg_codec_test.cc" "tests/CMakeFiles/cg_tests.dir/jpeg_codec_test.cc.o" "gcc" "tests/CMakeFiles/cg_tests.dir/jpeg_codec_test.cc.o.d"
  "/root/repo/tests/kernels_test.cc" "tests/CMakeFiles/cg_tests.dir/kernels_test.cc.o" "gcc" "tests/CMakeFiles/cg_tests.dir/kernels_test.cc.o.d"
  "/root/repo/tests/loader_test.cc" "tests/CMakeFiles/cg_tests.dir/loader_test.cc.o" "gcc" "tests/CMakeFiles/cg_tests.dir/loader_test.cc.o.d"
  "/root/repo/tests/machine_test.cc" "tests/CMakeFiles/cg_tests.dir/machine_test.cc.o" "gcc" "tests/CMakeFiles/cg_tests.dir/machine_test.cc.o.d"
  "/root/repo/tests/media_test.cc" "tests/CMakeFiles/cg_tests.dir/media_test.cc.o" "gcc" "tests/CMakeFiles/cg_tests.dir/media_test.cc.o.d"
  "/root/repo/tests/output_alignment_test.cc" "tests/CMakeFiles/cg_tests.dir/output_alignment_test.cc.o" "gcc" "tests/CMakeFiles/cg_tests.dir/output_alignment_test.cc.o.d"
  "/root/repo/tests/queue_test.cc" "tests/CMakeFiles/cg_tests.dir/queue_test.cc.o" "gcc" "tests/CMakeFiles/cg_tests.dir/queue_test.cc.o.d"
  "/root/repo/tests/random_graph_test.cc" "tests/CMakeFiles/cg_tests.dir/random_graph_test.cc.o" "gcc" "tests/CMakeFiles/cg_tests.dir/random_graph_test.cc.o.d"
  "/root/repo/tests/realignment_property_test.cc" "tests/CMakeFiles/cg_tests.dir/realignment_property_test.cc.o" "gcc" "tests/CMakeFiles/cg_tests.dir/realignment_property_test.cc.o.d"
  "/root/repo/tests/rng_test.cc" "tests/CMakeFiles/cg_tests.dir/rng_test.cc.o" "gcc" "tests/CMakeFiles/cg_tests.dir/rng_test.cc.o.d"
  "/root/repo/tests/schedule_test.cc" "tests/CMakeFiles/cg_tests.dir/schedule_test.cc.o" "gcc" "tests/CMakeFiles/cg_tests.dir/schedule_test.cc.o.d"
  "/root/repo/tests/scope_test.cc" "tests/CMakeFiles/cg_tests.dir/scope_test.cc.o" "gcc" "tests/CMakeFiles/cg_tests.dir/scope_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/cg_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/cg_tests.dir/sim_test.cc.o.d"
  "/root/repo/tests/stats_test.cc" "tests/CMakeFiles/cg_tests.dir/stats_test.cc.o" "gcc" "tests/CMakeFiles/cg_tests.dir/stats_test.cc.o.d"
  "/root/repo/tests/subband_codec_test.cc" "tests/CMakeFiles/cg_tests.dir/subband_codec_test.cc.o" "gcc" "tests/CMakeFiles/cg_tests.dir/subband_codec_test.cc.o.d"
  "/root/repo/tests/trace_test.cc" "tests/CMakeFiles/cg_tests.dir/trace_test.cc.o" "gcc" "tests/CMakeFiles/cg_tests.dir/trace_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cnc/CMakeFiles/cg_cnc.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/cg_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/cg_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/cg_media.dir/DependInfo.cmake"
  "/root/repo/build/src/streamit/CMakeFiles/cg_streamit.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/cg_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/cg_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/commguard/CMakeFiles/cg_commguard.dir/DependInfo.cmake"
  "/root/repo/build/src/queue/CMakeFiles/cg_queue.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
