# Empty dependencies file for cg_tests.
# This may be replaced when dependencies are built.
