/**
 * @file
 * A Concurrent Collections (CnC) style tagged programming model on
 * top of CommGuard — the paper's §8 generality claim, implemented.
 *
 * "Programming models that can express high-level control-flow
 * constructs and how these control-flow constructs in different
 * threads relate may easily implement CommGuard. For example,
 * Concurrent Collections expresses control-flow by tagging produced
 * items of a thread and steps threads with a matching tag. ...
 * CommGuard's headers are identifiers for data frames, and alignment
 * manager modules use these identifiers for realignment."
 *
 * The model: *step collections* are stateless-or-locally-stateful
 * computations prescribed once per *tag* t = 1, 2, 3, ...; *item
 * collections* carry data between steps, with each step consuming and
 * producing a statically declared number of items per tag instance.
 *
 * The lowering makes the paper's point concrete: a tag maps to a
 * CommGuard frame ID (the header the HI inserts *is* the tag), an item
 * collection maps to a guarded queue, and a step instance maps to a
 * frame computation. The mapping is nearly one-to-one — which is
 * exactly §8's argument that CommGuard needs only a frame structure
 * linking communication to coarse control flow, not StreamIt
 * specifically.
 */

#ifndef COMMGUARD_CNC_CNC_HH
#define COMMGUARD_CNC_CNC_HH

#include <functional>
#include <string>
#include <vector>

#include "isa/program.hh"
#include "streamit/graph.hh"

namespace commguard::cnc
{

/** Index of a step collection within its graph. */
using StepId = int;

/** Declaration of one step collection. */
struct StepDecl
{
    std::string name;

    /** Items consumed per tag instance, per input item collection. */
    std::vector<int> consumesPerTag;

    /** Items produced per tag instance, per output item collection. */
    std::vector<int> producesPerTag;

    /**
     * Build the step body: a program executing
     * @p instances_per_frame tag instances (the lowering fuses
     * instances when producer/consumer tag granularities differ,
     * exactly as frame analysis groups firings).
     */
    std::function<isa::Program(int instances_per_frame)> body;
};

/**
 * A CnC-style graph of step and item collections.
 */
class CncGraph
{
  public:
    /** Add a step collection. */
    StepId addStep(StepDecl step);

    /**
     * Connect an item collection: items produced by @p producer's
     * output slot @p out_slot are consumed by @p consumer's input
     * slot @p in_slot.
     */
    void connectItems(StepId producer, int out_slot, StepId consumer,
                      int in_slot);

    /** Declare the environment-fed input item collection. */
    void setEnvironmentInput(StepId step, int in_slot);

    /** Declare the environment-read output item collection. */
    void setEnvironmentOutput(StepId step, int out_slot);

    /**
     * Lower the tagged program onto the streaming substrate: steps
     * become filters, item collections become (guarded) queues, tags
     * become CommGuard frame IDs. The result loads through the
     * ordinary streamit::loadGraph.
     */
    streamit::StreamGraph lower() const;

    const std::vector<StepDecl> &steps() const { return _steps; }

  private:
    struct ItemCollection
    {
        StepId producer;
        int outSlot;
        StepId consumer;
        int inSlot;
    };

    std::vector<StepDecl> _steps;
    std::vector<ItemCollection> _items;
    StepId _inputStep = -1;
    int _inputSlot = -1;
    StepId _outputStep = -1;
    int _outputSlot = -1;
};

} // namespace commguard::cnc

#endif // COMMGUARD_CNC_CNC_HH
