#include "cnc/cnc.hh"

#include "common/logging.hh"

namespace commguard::cnc
{

StepId
CncGraph::addStep(StepDecl step)
{
    _steps.push_back(std::move(step));
    return static_cast<StepId>(_steps.size() - 1);
}

void
CncGraph::connectItems(StepId producer, int out_slot, StepId consumer,
                       int in_slot)
{
    _items.push_back(ItemCollection{producer, out_slot, consumer,
                                    in_slot});
}

void
CncGraph::setEnvironmentInput(StepId step, int in_slot)
{
    _inputStep = step;
    _inputSlot = in_slot;
}

void
CncGraph::setEnvironmentOutput(StepId step, int out_slot)
{
    _outputStep = step;
    _outputSlot = out_slot;
}

streamit::StreamGraph
CncGraph::lower() const
{
    if (_inputStep < 0 || _outputStep < 0)
        fatal("cnc: environment input/output not declared");

    streamit::StreamGraph graph;

    // Steps map one-to-one onto filters: per-tag consume/produce
    // counts are the filter's per-firing pop/push rates, and the step
    // body is the work program. Tags become frame IDs implicitly: the
    // loader's frame analysis groups tag instances exactly as it
    // groups firings, and the HI stamps each group's header with the
    // running tag counter (active-fc).
    for (const StepDecl &step : _steps) {
        if (!step.body)
            fatal("cnc: step '" + step.name + "' has no body");
        graph.addFilter(streamit::FilterSpec{
            step.name, step.consumesPerTag, step.producesPerTag,
            step.body});
    }

    // Item collections map onto edges (guarded queues).
    for (const ItemCollection &item : _items) {
        graph.connect(item.producer, item.outSlot, item.consumer,
                      item.inSlot);
    }

    graph.setExternalInput(_inputStep, _inputSlot);
    graph.setExternalOutput(_outputStep, _outputSlot);
    return graph;
}

} // namespace commguard::cnc
