/**
 * @file
 * Work programs of the fft benchmark: a radix-2 decimation-in-time FFT
 * expressed as a pipeline of butterfly-stage filters, the classic
 * StreamIt FFT structure.
 *
 * Samples travel as interleaved complex words (re at 2i, im at 2i+1);
 * each firing transforms one n-point block (2n words).
 */

#ifndef COMMGUARD_KERNELS_FFT_KERNELS_HH
#define COMMGUARD_KERNELS_FFT_KERNELS_HH

#include "isa/program.hh"

namespace commguard::kernels
{

/**
 * Bit-reversal permutation: per firing pops 2n words and pushes them
 * permuted to DIT input order. @p n must be a power of two.
 */
isa::Program buildBitReverse(int n, int firings);

/**
 * One butterfly stage (stage index @p stage in [0, log2(n))): per
 * firing pops a 2n-word block, applies the stage's n/2 butterflies
 * with forward twiddles W = exp(-2*pi*i*t/n), and pushes the block.
 */
isa::Program buildFftStage(int n, int stage, int firings);

} // namespace commguard::kernels

#endif // COMMGUARD_KERNELS_FFT_KERNELS_HH
