/**
 * @file
 * DSP work programs for the complex-fir, audiobeamformer, and
 * channelvocoder benchmarks.
 */

#ifndef COMMGUARD_KERNELS_DSP_KERNELS_HH
#define COMMGUARD_KERNELS_DSP_KERNELS_HH

#include <complex>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace commguard::kernels
{

/**
 * Complex FIR section. Per firing pops an interleaved (re, im) sample,
 * filters it through @p taps, and pushes the filtered (re, im) pair.
 * The delay line is filter state in core-local memory. Tap loops are
 * unrolled (taps are small), as a compiler would for fixed
 * coefficients.
 */
isa::Program buildComplexFir(const std::string &name,
                             const std::vector<std::complex<float>> &taps,
                             int firings);

/** Magnitude: per firing pops (re, im) and pushes sqrt(re^2 + im^2). */
isa::Program buildMagnitude(int firings);

/**
 * Round-robin splitter: per firing pops @p ways items from input port
 * 0 and pushes the i-th to output port i.
 */
isa::Program buildSplitRoundRobin(int ways, int firings);

/**
 * Duplicating splitter: per firing pops one item and pushes it to all
 * @p ways output ports.
 */
isa::Program buildSplitDuplicate(int ways, int firings);

/**
 * Summing joiner: per firing pops one float from each of @p ways input
 * ports and pushes their sum.
 */
isa::Program buildJoinSum(int ways, int firings);

/**
 * Beamformer channel: per firing pops one sample, delays it by
 * @p delay samples (circular buffer state) and scales by @p weight.
 */
isa::Program buildDelayWeight(const std::string &name, int delay,
                              float weight, int firings);

/**
 * Beamformer channel with interpolation filtering: per firing pops
 * one sample, applies the steering delay (circular buffer state),
 * then runs the delayed sample through a real FIR (@p taps, channel
 * weight folded in) — the StreamIt beamformer's per-channel
 * interpolate/decimate structure.
 */
isa::Program buildBeamChannel(const std::string &name, int delay,
                              const std::vector<float> &taps,
                              int firings);

/**
 * Vocoder band: bandpass FIR (@p taps, unrolled) -> envelope follower
 * (one-pole, coefficient @p env_alpha) -> ring modulation by a carrier
 * oscillator advancing @p carrier_step radians per sample.
 */
isa::Program buildVocoderBand(const std::string &name,
                              const std::vector<float> &taps,
                              float env_alpha, float carrier_step,
                              int firings);

} // namespace commguard::kernels

#endif // COMMGUARD_KERNELS_DSP_KERNELS_HH
