#include "kernels/dsp_kernels.hh"

#include <algorithm>
#include <cmath>

#include "isa/assembler.hh"

namespace commguard::kernels
{

using namespace isa;

namespace
{

class LabelGen
{
  public:
    std::string
    next(const char *stem)
    {
        return std::string(stem) + "_" + std::to_string(_n++);
    }

  private:
    int _n = 0;
};

} // namespace

isa::Program
buildComplexFir(const std::string &name,
                const std::vector<std::complex<float>> &taps,
                int firings)
{
    Assembler a(name);
    const int num_taps = static_cast<int>(taps.size());
    const Word dr = a.reserve(num_taps);  // Real delay line.
    const Word di = a.reserve(num_taps);  // Imaginary delay line.

    a.forDown(R30, static_cast<Word>(firings), [&] {
        a.pop(R2, 0);  // re
        a.pop(R3, 0);  // im

        // Shift the delay lines (unrolled; taps are few).
        for (int t = num_taps - 1; t >= 1; --t) {
            a.lw(R4, R0, static_cast<SWord>(dr + t - 1));
            a.sw(R4, R0, static_cast<SWord>(dr + t));
            a.lw(R4, R0, static_cast<SWord>(di + t - 1));
            a.sw(R4, R0, static_cast<SWord>(di + t));
        }
        a.sw(R2, R0, static_cast<SWord>(dr));
        a.sw(R3, R0, static_cast<SWord>(di));

        // Complex MAC accumulation.
        a.lif(R10, 0.0f);  // acc re
        a.lif(R11, 0.0f);  // acc im
        for (int t = 0; t < num_taps; ++t) {
            a.lw(R4, R0, static_cast<SWord>(dr + t));
            a.lw(R5, R0, static_cast<SWord>(di + t));
            a.lif(R6, taps[t].real());
            a.lif(R7, taps[t].imag());
            a.fmul(R8, R6, R4);
            a.fadd(R10, R10, R8);  // + cr*xr
            a.fmul(R8, R7, R5);
            a.fsub(R10, R10, R8);  // - ci*xi
            a.fmul(R8, R6, R5);
            a.fadd(R11, R11, R8);  // + cr*xi
            a.fmul(R8, R7, R4);
            a.fadd(R11, R11, R8);  // + ci*xr
        }
        a.push(0, R10);
        a.push(0, R11);
    });
    a.setEstimatedInsts(static_cast<Count>(firings) *
                        (static_cast<Count>(num_taps) * 16 + 12));
    return a.finalize();
}

isa::Program
buildMagnitude(int firings)
{
    Assembler a("magnitude");
    a.forDown(R30, static_cast<Word>(firings), [&] {
        a.pop(R2, 0);
        a.pop(R3, 0);
        a.fmul(R4, R2, R2);
        a.fmul(R5, R3, R3);
        a.fadd(R6, R4, R5);
        a.fsqrt(R7, R6);
        a.push(0, R7);
    });
    a.setEstimatedInsts(static_cast<Count>(firings) * 10);
    return a.finalize();
}

isa::Program
buildSplitRoundRobin(int ways, int firings)
{
    Assembler a("split_rr" + std::to_string(ways));
    a.forDown(R30, static_cast<Word>(firings), [&] {
        for (int w = 0; w < ways; ++w) {
            a.pop(R2, 0);
            a.push(w, R2);
        }
    });
    a.setEstimatedInsts(static_cast<Count>(firings) * (2 * ways + 4));
    return a.finalize();
}

isa::Program
buildSplitDuplicate(int ways, int firings)
{
    Assembler a("split_dup" + std::to_string(ways));
    a.forDown(R30, static_cast<Word>(firings), [&] {
        a.pop(R2, 0);
        for (int w = 0; w < ways; ++w)
            a.push(w, R2);
    });
    a.setEstimatedInsts(static_cast<Count>(firings) * (ways + 5));
    return a.finalize();
}

isa::Program
buildJoinSum(int ways, int firings)
{
    Assembler a("join_sum" + std::to_string(ways));
    a.forDown(R30, static_cast<Word>(firings), [&] {
        a.pop(R2, 0);
        for (int w = 1; w < ways; ++w) {
            a.pop(R3, w);
            a.fadd(R2, R2, R3);
        }
        a.push(0, R2);
    });
    a.setEstimatedInsts(static_cast<Count>(firings) * (2 * ways + 5));
    return a.finalize();
}

isa::Program
buildDelayWeight(const std::string &name, int delay, float weight,
                 int firings)
{
    Assembler a(name);
    LabelGen lg;

    a.forDown(R30, static_cast<Word>(firings), [&] {
        if (delay == 0) {
            a.pop(R2, 0);
            a.lif(R6, weight);
            a.fmul(R7, R2, R6);
            a.push(0, R7);
            return;
        }

        const Word idx = a.reserve(1);
        const Word buf = a.reserve(static_cast<std::size_t>(delay));
        const std::string wrapped = lg.next("dw");

        a.pop(R2, 0);
        a.lw(R3, R0, static_cast<SWord>(idx));
        a.lw(R4, R3, static_cast<SWord>(buf));  // Oldest sample.
        a.sw(R2, R3, static_cast<SWord>(buf));  // Overwrite with new.
        a.addi(R3, R3, 1);
        a.li(R5, static_cast<Word>(delay));
        a.blt(R3, R5, wrapped);
        a.li(R3, 0);
        a.label(wrapped);
        a.sw(R3, R0, static_cast<SWord>(idx));
        a.lif(R6, weight);
        a.fmul(R7, R4, R6);
        a.push(0, R7);
    });
    a.setEstimatedInsts(static_cast<Count>(firings) * 16);
    return a.finalize();
}

isa::Program
buildBeamChannel(const std::string &name, int delay,
                 const std::vector<float> &taps, int firings)
{
    Assembler a(name);
    LabelGen lg;
    const int num_taps = static_cast<int>(taps.size());
    const Word idx = a.reserve(1);
    const Word dbuf =
        a.reserve(static_cast<std::size_t>(std::max(delay, 1)));
    const Word fir = a.reserve(static_cast<std::size_t>(num_taps));

    a.forDown(R30, static_cast<Word>(firings), [&] {
        a.pop(R2, 0);

        // Steering delay through a circular buffer.
        if (delay == 0) {
            a.mov(R4, R2);
        } else {
            const std::string wrapped = lg.next("bc");
            a.lw(R3, R0, static_cast<SWord>(idx));
            a.lw(R4, R3, static_cast<SWord>(dbuf));
            a.sw(R2, R3, static_cast<SWord>(dbuf));
            a.addi(R3, R3, 1);
            a.li(R5, static_cast<Word>(delay));
            a.blt(R3, R5, wrapped);
            a.li(R3, 0);
            a.label(wrapped);
            a.sw(R3, R0, static_cast<SWord>(idx));
        }

        // Interpolation FIR on the delayed sample (shift + MAC).
        for (int t = num_taps - 1; t >= 1; --t) {
            a.lw(R6, R0, static_cast<SWord>(fir + t - 1));
            a.sw(R6, R0, static_cast<SWord>(fir + t));
        }
        a.sw(R4, R0, static_cast<SWord>(fir));
        a.lif(R10, 0.0f);
        for (int t = 0; t < num_taps; ++t) {
            a.lw(R6, R0, static_cast<SWord>(fir + t));
            a.lif(R7, taps[t]);
            a.fmul(R8, R6, R7);
            a.fadd(R10, R10, R8);
        }
        a.push(0, R10);
    });
    a.setEstimatedInsts(static_cast<Count>(firings) *
                        (static_cast<Count>(num_taps) * 8 + 20));
    return a.finalize();
}

isa::Program
buildVocoderBand(const std::string &name,
                 const std::vector<float> &taps, float env_alpha,
                 float carrier_step, int firings)
{
    Assembler a(name);
    LabelGen lg;
    const int num_taps = static_cast<int>(taps.size());
    const Word dl = a.reserve(static_cast<std::size_t>(num_taps));
    const Word env = a.reserve(1);
    // Oscillator state (cos, sin) initialized to phase 0.
    const Word osc = a.dataFloats({1.0f, 0.0f});

    const float cos_d = std::cos(carrier_step);
    const float sin_d = std::sin(carrier_step);

    a.forDown(R30, static_cast<Word>(firings), [&] {
        a.pop(R2, 0);

        // Bandpass FIR (shift + MAC, unrolled).
        for (int t = num_taps - 1; t >= 1; --t) {
            a.lw(R4, R0, static_cast<SWord>(dl + t - 1));
            a.sw(R4, R0, static_cast<SWord>(dl + t));
        }
        a.sw(R2, R0, static_cast<SWord>(dl));
        a.lif(R10, 0.0f);
        for (int t = 0; t < num_taps; ++t) {
            a.lw(R4, R0, static_cast<SWord>(dl + t));
            a.lif(R5, taps[t]);
            a.fmul(R6, R4, R5);
            a.fadd(R10, R10, R6);
        }

        // Envelope follower: e += alpha * (|y| - e), bounded to
        // [0, 4] so a corrupted stored envelope heals immediately
        // (fmin/fmax also absorb NaN) -- self-stabilizing filter
        // state in the sense of paper SS9.
        a.fabs_(R11, R10);
        a.lw(R12, R0, static_cast<SWord>(env));
        a.fsub(R13, R11, R12);
        a.lif(R14, env_alpha);
        a.fmul(R13, R13, R14);
        a.fadd(R12, R12, R13);
        a.lif(R14, 0.0f);
        a.fmax(R12, R12, R14);
        a.lif(R14, 4.0f);
        a.fmin(R12, R12, R14);
        a.sw(R12, R0, static_cast<SWord>(env));

        // Carrier oscillator rotation. Rotation preserves magnitude,
        // so a corrupted (cos, sin) pair would persist forever; reset
        // the phasor whenever its norm leaves [0.25, 4] (the
        // comparisons are also false for NaN, forcing a reset).
        a.lw(R15, R0, static_cast<SWord>(osc));      // cos
        a.lw(R16, R0, static_cast<SWord>(osc + 1));  // sin
        a.fmul(R19, R15, R15);
        a.fmul(R20, R16, R16);
        a.fadd(R21, R19, R20);  // norm^2
        a.lif(R22, 0.25f);
        a.lif(R23, 4.0f);
        a.fle(R24, R22, R21);   // norm >= 0.25 ?
        a.fle(R25, R21, R23);   // norm <= 4 ?
        a.and_(R24, R24, R25);
        const std::string healthy = lg.next("vb_osc_ok");
        a.bne(R24, R0, healthy);
        a.lif(R15, 1.0f);
        a.lif(R16, 0.0f);
        a.label(healthy);
        a.lif(R17, cos_d);
        a.lif(R18, sin_d);
        a.fmul(R19, R15, R17);
        a.fmul(R20, R16, R18);
        a.fsub(R21, R19, R20);  // cos'
        a.fmul(R19, R16, R17);
        a.fmul(R20, R15, R18);
        a.fadd(R22, R19, R20);  // sin'
        a.sw(R21, R0, static_cast<SWord>(osc));
        a.sw(R22, R0, static_cast<SWord>(osc + 1));

        // Modulate the envelope onto the carrier.
        a.fmul(R23, R12, R22);
        a.push(0, R23);
    });
    a.setEstimatedInsts(static_cast<Count>(firings) *
                        (static_cast<Count>(num_taps) * 8 + 36));
    return a.finalize();
}

} // namespace commguard::kernels
