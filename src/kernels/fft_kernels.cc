#include "kernels/fft_kernels.hh"

#include <cmath>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "isa/assembler.hh"

namespace commguard::kernels
{

using namespace isa;

namespace
{

class LabelGen
{
  public:
    std::string
    next(const char *stem)
    {
        return std::string(stem) + "_" + std::to_string(_n++);
    }

  private:
    int _n = 0;
};

int
log2int(int n)
{
    int bits = 0;
    while ((1 << bits) < n)
        ++bits;
    return bits;
}

} // namespace

isa::Program
buildBitReverse(int n, int firings)
{
    if ((n & (n - 1)) != 0)
        fatal("buildBitReverse: n must be a power of two");

    Assembler a("fft_bitrev" + std::to_string(n));
    LabelGen lg;

    const int bits = log2int(n);
    std::vector<Word> rev(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        Word r = 0;
        for (int b = 0; b < bits; ++b)
            if (i & (1 << b))
                r |= 1u << (bits - 1 - b);
        rev[i] = r;
    }
    const Word rev_base = a.dataWords(rev);
    const Word buf = a.reserve(static_cast<std::size_t>(2 * n));

    a.forDown(R30, static_cast<Word>(firings), [&] {
        a.scopeEnter(static_cast<Count>(n) * 15 + 12);
        a.li(R10, static_cast<Word>(2 * n));
        a.li(R11, static_cast<Word>(n));

        const std::string load = lg.next("bld");
        a.li(R1, 0);
        a.label(load);
        a.pop(R2, 0);
        a.sw(R2, R1, static_cast<SWord>(buf));
        a.addi(R1, R1, 1);
        a.blt(R1, R10, load);

        const std::string emit = lg.next("bem");
        a.li(R1, 0);
        a.label(emit);
        a.lw(R3, R1, static_cast<SWord>(rev_base));
        a.slli(R4, R3, 1);
        a.lw(R2, R4, static_cast<SWord>(buf));
        a.push(0, R2);
        a.addi(R4, R4, 1);
        a.lw(R2, R4, static_cast<SWord>(buf));
        a.push(0, R2);
        a.addi(R1, R1, 1);
        a.blt(R1, R11, emit);
        a.scopeExit();
    });
    a.setEstimatedInsts(static_cast<Count>(firings) *
                        (static_cast<Count>(n) * 15 + 12));
    return a.finalize();
}

isa::Program
buildFftStage(int n, int stage, int firings)
{
    if ((n & (n - 1)) != 0)
        fatal("buildFftStage: n must be a power of two");
    if (stage < 0 || (1 << stage) >= n)
        fatal("buildFftStage: stage out of range");

    Assembler a("fft_stage" + std::to_string(stage));
    LabelGen lg;

    const int half = 1 << stage;
    const int m = half * 2;
    const int tw_stride = n / m;

    // Forward twiddles W_t = exp(-2*pi*i*t/n), t in [0, n/2).
    std::vector<float> wr(static_cast<std::size_t>(n / 2));
    std::vector<float> wi(static_cast<std::size_t>(n / 2));
    const double pi = std::acos(-1.0);
    for (int t = 0; t < n / 2; ++t) {
        wr[t] = static_cast<float>(std::cos(2 * pi * t / n));
        wi[t] = static_cast<float>(-std::sin(2 * pi * t / n));
    }
    const Word wr_base = a.dataFloats(wr);
    const Word wi_base = a.dataFloats(wi);
    const Word buf = a.reserve(static_cast<std::size_t>(2 * n));

    const Count stage_cost = static_cast<Count>(n / 2) * 34 +
                             static_cast<Count>(n) * 9 + 16;
    a.forDown(R30, static_cast<Word>(firings), [&] {
        a.scopeEnter(stage_cost);
        a.li(R10, static_cast<Word>(2 * n));
        a.li(R11, static_cast<Word>(n));
        a.li(R12, static_cast<Word>(tw_stride));
        a.li(R13, static_cast<Word>(half));
        a.li(R15, static_cast<Word>(2 * half));

        const std::string load = lg.next("sld");
        a.li(R1, 0);
        a.label(load);
        a.pop(R2, 0);
        a.sw(R2, R1, static_cast<SWord>(buf));
        a.addi(R1, R1, 1);
        a.blt(R1, R10, load);

        const std::string lj = lg.next("sj");
        const std::string li_loop = lg.next("si");
        a.li(R1, 0);  // j
        a.label(lj);
        a.li(R2, 0);  // i
        a.label(li_loop);
        a.mul(R3, R2, R12);  // twiddle index
        a.lw(R16, R3, static_cast<SWord>(wr_base));
        a.lw(R17, R3, static_cast<SWord>(wi_base));
        a.add(R4, R1, R2);
        a.slli(R4, R4, 1);   // idx1 = 2*(j+i)
        a.lw(R18, R4, static_cast<SWord>(buf));  // ar
        a.addi(R5, R4, 1);
        a.lw(R19, R5, static_cast<SWord>(buf));  // ai
        a.add(R6, R4, R15);  // idx2 = idx1 + 2*half
        a.lw(R20, R6, static_cast<SWord>(buf));  // br
        a.addi(R7, R6, 1);
        a.lw(R21, R7, static_cast<SWord>(buf));  // bi
        // t = b * W
        a.fmul(R22, R20, R16);
        a.fmul(R23, R21, R17);
        a.fsub(R22, R22, R23);  // tr
        a.fmul(R23, R20, R17);
        a.fmul(R24, R21, R16);
        a.fadd(R23, R23, R24);  // ti
        // a +- t
        a.fadd(R25, R18, R22);
        a.fsub(R26, R18, R22);
        a.fadd(R27, R19, R23);
        a.fsub(R28, R19, R23);
        a.sw(R25, R4, static_cast<SWord>(buf));
        a.sw(R27, R5, static_cast<SWord>(buf));
        a.sw(R26, R6, static_cast<SWord>(buf));
        a.sw(R28, R7, static_cast<SWord>(buf));
        a.addi(R2, R2, 1);
        a.blt(R2, R13, li_loop);
        a.addi(R1, R1, m);
        a.blt(R1, R11, lj);

        const std::string emit = lg.next("sem");
        a.li(R1, 0);
        a.label(emit);
        a.lw(R2, R1, static_cast<SWord>(buf));
        a.push(0, R2);
        a.addi(R1, R1, 1);
        a.blt(R1, R10, emit);
        a.scopeExit();
    });
    a.setEstimatedInsts(static_cast<Count>(firings) *
                        (static_cast<Count>(n / 2) * 34 +
                         static_cast<Count>(n) * 9 + 16));
    return a.finalize();
}

} // namespace commguard::kernels
