/**
 * @file
 * Work programs of the mp3-style subband decoder graph.
 *
 * The graph mirrors the paper's mp3 pipeline: unpack (F0), dequantize +
 * even/odd coefficient split (F1), two parallel partial-IMDCT filters
 * (F3a/F3b, a split-join like jpeg's — the paper's AFI hazard), join-add
 * (F4), windowed overlap-add (F5), PCM clamp (F6), and the sink (F7).
 */

#ifndef COMMGUARD_KERNELS_AUDIO_KERNELS_HH
#define COMMGUARD_KERNELS_AUDIO_KERNELS_HH

#include "isa/program.hh"
#include "media/subband_codec.hh"

namespace commguard::kernels
{

/**
 * F1: dequantize + split. Per firing pops one block (scalefactor word
 * plus 32 quantized ints) and pushes 16 even-band floats to port 0 and
 * 16 odd-band floats to port 1.
 */
isa::Program buildSubbandDequantSplit(int firings);

/**
 * F3a/F3b: partial IMDCT. Per firing pops 16 subband samples (the even
 * bands for parity 0, odd for parity 1) and pushes the 64-tap partial
 * synthesis contribution.
 */
isa::Program buildImdctPartial(int parity, int firings);

/** F4: join-add. Pops 64 floats from each of 2 ports, pushes sums. */
isa::Program buildJoinAdd(int firings);

/**
 * F5: overlap-add. Pops a 64-tap synthesis window, emits 32 PCM-domain
 * samples (previous tail + current head) and keeps the new tail as
 * filter state.
 */
isa::Program buildOverlapAdd(int firings);

/** F6: scale to 16-bit PCM range, clamp, and round to int. */
isa::Program buildPcmClamp(int firings);

} // namespace commguard::kernels

#endif // COMMGUARD_KERNELS_AUDIO_KERNELS_HH
