/**
 * @file
 * Generic stream kernels shared by the benchmark applications.
 */

#ifndef COMMGUARD_KERNELS_BASIC_HH
#define COMMGUARD_KERNELS_BASIC_HH

#include <string>

#include "isa/program.hh"

namespace commguard::kernels
{

/**
 * Pass-through filter: per firing, pop @p items_per_firing words from
 * input port 0 and push them unchanged to output port 0. Used for
 * unpack/staging stages (the paper's jpeg F0 role) and sinks.
 */
isa::Program buildPassthrough(const std::string &name,
                              int items_per_firing, int firings);

/**
 * Output-formatting sink: clamps float items into the output device's
 * representable range [lo, hi] (like a DAC or file writer would), so
 * corrupted values saturate instead of dominating quality metrics.
 * fmin/fmax also absorb NaN bit patterns.
 */
isa::Program buildClampRange(const std::string &name, float lo,
                             float hi, int items_per_firing,
                             int firings);

} // namespace commguard::kernels

#endif // COMMGUARD_KERNELS_BASIC_HH
