#include "kernels/jpeg_kernels.hh"

#include <vector>

#include "isa/assembler.hh"

namespace commguard::kernels
{

using namespace isa;
using media::jpeg::blockDim;
using media::jpeg::blockSize;
using media::jpeg::channels;

namespace
{

/** Unique label generator, local to one program build. */
class LabelGen
{
  public:
    std::string
    next(const char *stem)
    {
        return std::string(stem) + "_" + std::to_string(_n++);
    }

  private:
    int _n = 0;
};

/** Basis table as floats, flattened B[u*8+x]. */
std::vector<float>
basisFloats()
{
    const auto &basis = media::jpeg::dctBasis();
    std::vector<float> flat;
    flat.reserve(blockSize);
    for (int u = 0; u < blockDim; ++u)
        for (int x = 0; x < blockDim; ++x)
            flat.push_back(static_cast<float>(basis[u][x]));
    return flat;
}

} // namespace

isa::Program
buildJpegDequant(
    const std::array<float, media::jpeg::blockSize> &qt_zigzag,
    int firings)
{
    Assembler a("jpeg_dequant");
    LabelGen lg;
    const Word qt = a.dataFloats(
        std::vector<float>(qt_zigzag.begin(), qt_zigzag.end()));

    a.forDown(R30, static_cast<Word>(firings), [&] {
        a.scopeEnter(blockSize * 7 + 8);
        const std::string loop = lg.next("deq");
        a.li(R10, blockSize);
        a.li(R1, 0);
        a.label(loop);
        a.pop(R2, 0);
        a.cvtif(R3, R2);
        a.lw(R4, R1, static_cast<SWord>(qt));
        a.fmul(R5, R3, R4);
        a.push(0, R5);
        a.addi(R1, R1, 1);
        a.blt(R1, R10, loop);
        a.scopeExit();
    });
    a.setEstimatedInsts(static_cast<Count>(firings) *
                        (blockSize * 7 + 8));
    return a.finalize();
}

isa::Program
buildInvZigzagSplit3(int firings)
{
    Assembler a("jpeg_invzigzag_split");
    LabelGen lg;

    // zz[i] = natural index of the i-th zigzag coefficient.
    const auto &zz = media::jpeg::zigzagOrder();
    std::vector<Word> zz_words(zz.begin(), zz.end());
    const Word zz_base = a.dataWords(zz_words);
    const Word buf = a.reserve(blockSize);

    a.forDown(R30, static_cast<Word>(firings), [&] {
        a.scopeEnter(channels * blockSize * 10 + 16);
        a.li(R10, blockSize);
        for (int ch = 0; ch < channels; ++ch) {
            const std::string in_loop = lg.next("zin");
            const std::string out_loop = lg.next("zout");

            // Scatter one zigzag block into natural order.
            a.li(R1, 0);
            a.label(in_loop);
            a.pop(R2, 0);
            a.lw(R3, R1, static_cast<SWord>(zz_base));
            a.sw(R2, R3, static_cast<SWord>(buf));
            a.addi(R1, R1, 1);
            a.blt(R1, R10, in_loop);

            // Emit the natural-order block to this channel's port.
            a.li(R1, 0);
            a.label(out_loop);
            a.lw(R2, R1, static_cast<SWord>(buf));
            a.push(ch, R2);
            a.addi(R1, R1, 1);
            a.blt(R1, R10, out_loop);
        }
        a.scopeExit();
    });
    a.setEstimatedInsts(static_cast<Count>(firings) *
                        (channels * blockSize * 10 + 16));
    return a.finalize();
}

isa::Program
buildIdct8x8(int firings)
{
    Assembler a("jpeg_idct8x8");
    LabelGen lg;

    const Word bas = a.dataFloats(basisFloats());
    const Word in = a.reserve(blockSize);
    const Word tmp = a.reserve(blockSize);

    a.forDown(R30, static_cast<Word>(firings), [&] {
        a.scopeEnter(10500);
        a.li(R10, blockDim);
        a.li(R11, blockSize);

        // Load the coefficient block.
        const std::string load = lg.next("ild");
        a.li(R1, 0);
        a.label(load);
        a.pop(R2, 0);
        a.sw(R2, R1, static_cast<SWord>(in));
        a.addi(R1, R1, 1);
        a.blt(R1, R11, load);

        // Pass 1 (columns): tmp[y*8+u] = sum_v B[v*8+y] * in[v*8+u].
        {
            const std::string ly = lg.next("p1y");
            const std::string lu = lg.next("p1u");
            const std::string lv = lg.next("p1v");
            a.li(R1, 0);  // y
            a.label(ly);
            a.li(R2, 0);  // u
            a.label(lu);
            a.lif(R4, 0.0f);
            a.li(R3, 0);  // v*8
            a.label(lv);
            a.add(R7, R3, R1);
            a.lw(R8, R7, static_cast<SWord>(bas));
            a.add(R7, R3, R2);
            a.lw(R9, R7, static_cast<SWord>(in));
            a.fmul(R5, R8, R9);
            a.fadd(R4, R4, R5);
            a.addi(R3, R3, blockDim);
            a.blt(R3, R11, lv);
            a.slli(R7, R1, 3);
            a.add(R7, R7, R2);
            a.sw(R4, R7, static_cast<SWord>(tmp));
            a.addi(R2, R2, 1);
            a.blt(R2, R10, lu);
            a.addi(R1, R1, 1);
            a.blt(R1, R10, ly);
        }

        // Pass 2 (rows): out[y*8+x] = 128 + sum_u B[u*8+x]*tmp[y*8+u],
        // pushed in raster order.
        {
            const std::string ly = lg.next("p2y");
            const std::string lx = lg.next("p2x");
            const std::string lu = lg.next("p2u");
            a.lif(R12, 128.0f);
            a.li(R1, 0);  // y
            a.label(ly);
            a.slli(R13, R1, 3);
            a.li(R2, 0);  // x
            a.label(lx);
            a.lif(R4, 0.0f);
            a.li(R3, 0);  // u
            a.label(lu);
            a.slli(R7, R3, 3);
            a.add(R7, R7, R2);
            a.lw(R8, R7, static_cast<SWord>(bas));
            a.add(R7, R13, R3);
            a.lw(R9, R7, static_cast<SWord>(tmp));
            a.fmul(R5, R8, R9);
            a.fadd(R4, R4, R5);
            a.addi(R3, R3, 1);
            a.blt(R3, R10, lu);
            a.fadd(R4, R4, R12);
            a.push(0, R4);
            a.addi(R2, R2, 1);
            a.blt(R2, R10, lx);
            a.addi(R1, R1, 1);
            a.blt(R1, R10, ly);
        }
        a.scopeExit();
    });
    a.setEstimatedInsts(static_cast<Count>(firings) * 10500);
    return a.finalize();
}

isa::Program
buildJoin3Interleave(int firings)
{
    Assembler a("jpeg_join3");
    LabelGen lg;
    const Word buf = a.reserve(channels * blockSize);

    a.forDown(R30, static_cast<Word>(firings), [&] {
        a.scopeEnter(channels * blockSize * 9 + 16);
        a.li(R10, blockSize);
        for (int ch = 0; ch < channels; ++ch) {
            const std::string in_loop = lg.next("jin");
            a.li(R1, 0);
            a.label(in_loop);
            a.pop(R2, ch);
            a.sw(R2, R1,
                 static_cast<SWord>(buf + ch * blockSize));
            a.addi(R1, R1, 1);
            a.blt(R1, R10, in_loop);
        }
        const std::string out_loop = lg.next("jout");
        a.li(R1, 0);
        a.label(out_loop);
        a.lw(R2, R1, static_cast<SWord>(buf));
        a.push(0, R2);
        a.lw(R2, R1, static_cast<SWord>(buf + blockSize));
        a.push(0, R2);
        a.lw(R2, R1, static_cast<SWord>(buf + 2 * blockSize));
        a.push(0, R2);
        a.addi(R1, R1, 1);
        a.blt(R1, R10, out_loop);
        a.scopeExit();
    });
    a.setEstimatedInsts(static_cast<Count>(firings) *
                        (channels * blockSize * 9 + 16));
    return a.finalize();
}

isa::Program
buildClamp255(int firings)
{
    Assembler a("jpeg_clamp");
    a.forDown(R30, static_cast<Word>(firings), [&] {
        a.lif(R20, 0.0f);
        a.lif(R21, 255.0f);
        a.forDown(R29, channels * blockSize, [&] {
            a.pop(R2, 0);
            a.fmax(R3, R2, R20);
            a.fmin(R3, R3, R21);
            a.push(0, R3);
        });
    });
    a.setEstimatedInsts(static_cast<Count>(firings) *
                        (channels * blockSize * 6 + 8));
    return a.finalize();
}

isa::Program
buildRoundToByte(int firings)
{
    Assembler a("jpeg_round");
    a.forDown(R30, static_cast<Word>(firings), [&] {
        a.lif(R20, 0.5f);
        a.forDown(R29, channels * blockSize, [&] {
            a.pop(R2, 0);
            a.fadd(R3, R2, R20);
            a.cvtfi(R4, R3);
            a.push(0, R4);
        });
    });
    a.setEstimatedInsts(static_cast<Count>(firings) *
                        (channels * blockSize * 6 + 8));
    return a.finalize();
}

isa::Program
buildRowAssembler(int width, int firings)
{
    Assembler a("jpeg_rows");
    LabelGen lg;

    const int blocks = width / blockDim;
    const int row_words = width * blockDim * channels;
    const Word rowbuf = a.reserve(static_cast<std::size_t>(row_words));

    const Count row_cost = static_cast<Count>(blocks) * blockSize * 30 +
                           static_cast<Count>(row_words) * 4 + 32;
    a.forDown(R30, static_cast<Word>(firings), [&] {
        a.scopeEnter(row_cost);
        a.li(R15, static_cast<Word>(width));
        a.li(R16, channels);
        a.li(R17, blockSize);
        a.li(R18, static_cast<Word>(blocks));
        a.li(R19, static_cast<Word>(row_words));

        const std::string lbx = lg.next("rbx");
        const std::string lp = lg.next("rp");
        const std::string lc = lg.next("rc");
        const std::string lout = lg.next("rout");

        // Scatter incoming block-raster samples into the row buffer.
        a.li(R1, 0);  // bx
        a.label(lbx);
        a.slli(R14, R1, 3);  // bx*8
        a.li(R2, 0);         // p: pixel index within block
        a.label(lp);
        a.srli(R5, R2, 3);   // y = p >> 3
        a.andi(R6, R2, 7);   // x = p & 7
        a.mul(R7, R5, R15);  // y*width
        a.add(R7, R7, R14);
        a.add(R7, R7, R6);
        a.slli(R8, R7, 1);
        a.add(R7, R7, R8);   // *3
        a.li(R3, 0);         // c
        a.label(lc);
        a.pop(R4, 0);
        a.add(R9, R7, R3);
        a.sw(R4, R9, static_cast<SWord>(rowbuf));
        a.addi(R3, R3, 1);
        a.blt(R3, R16, lc);
        a.addi(R2, R2, 1);
        a.blt(R2, R17, lp);
        a.addi(R1, R1, 1);
        a.blt(R1, R18, lbx);

        // Emit the stripe in image-raster order.
        a.li(R1, 0);
        a.label(lout);
        a.lw(R2, R1, static_cast<SWord>(rowbuf));
        a.push(0, R2);
        a.addi(R1, R1, 1);
        a.blt(R1, R19, lout);
        a.scopeExit();
    });
    a.setEstimatedInsts(
        static_cast<Count>(firings) *
        (static_cast<Count>(blocks) * blockSize * 30 +
         static_cast<Count>(row_words) * 4 + 32));
    return a.finalize();
}

} // namespace commguard::kernels
