#include "kernels/basic.hh"

#include "isa/assembler.hh"

namespace commguard::kernels
{

using namespace isa;

isa::Program
buildPassthrough(const std::string &name, int items_per_firing,
                 int firings)
{
    Assembler a(name);
    a.forDown(R30, static_cast<Word>(firings), [&] {
        a.forDown(R29, static_cast<Word>(items_per_firing), [&] {
            a.pop(R2, 0);
            a.push(0, R2);
        });
    });
    a.setEstimatedInsts(static_cast<Count>(firings) *
                        (4 * items_per_firing + 4));
    return a.finalize();
}

isa::Program
buildClampRange(const std::string &name, float lo, float hi,
                int items_per_firing, int firings)
{
    Assembler a(name);
    a.forDown(R30, static_cast<Word>(firings), [&] {
        a.lif(R20, lo);
        a.lif(R21, hi);
        a.forDown(R29, static_cast<Word>(items_per_firing), [&] {
            a.pop(R2, 0);
            a.fmax(R3, R2, R20);
            a.fmin(R3, R3, R21);
            a.push(0, R3);
        });
    });
    a.setEstimatedInsts(static_cast<Count>(firings) *
                        (6 * items_per_firing + 8));
    return a.finalize();
}

} // namespace commguard::kernels
