#include "kernels/audio_kernels.hh"

#include <string>
#include <vector>

#include "isa/assembler.hh"

namespace commguard::kernels
{

using namespace isa;
using media::subband::bands;
using media::subband::quantLevels;
using media::subband::synthesisScale;
using media::subband::windowLen;

namespace
{

class LabelGen
{
  public:
    std::string
    next(const char *stem)
    {
        return std::string(stem) + "_" + std::to_string(_n++);
    }

  private:
    int _n = 0;
};

} // namespace

isa::Program
buildSubbandDequantSplit(int firings)
{
    Assembler a("mp3_dequant_split");
    a.forDown(R30, static_cast<Word>(firings), [&] {
        a.lif(R20, 1.0f / static_cast<float>(quantLevels));
        a.pop(R2, 0);           // scalefactor (float bits)
        a.fmul(R21, R2, R20);   // combined scale/levels factor
        a.forDown(R29, bands / 2, [&] {
            // Even band -> port 0.
            a.pop(R3, 0);
            a.cvtif(R4, R3);
            a.fmul(R5, R4, R21);
            a.push(0, R5);
            // Odd band -> port 1.
            a.pop(R3, 0);
            a.cvtif(R4, R3);
            a.fmul(R5, R4, R21);
            a.push(1, R5);
        });
    });
    a.setEstimatedInsts(static_cast<Count>(firings) *
                        (bands * 5 + 12));
    return a.finalize();
}

isa::Program
buildImdctPartial(int parity, int firings)
{
    Assembler a(parity == 0 ? "mp3_imdct_even" : "mp3_imdct_odd");
    LabelGen lg;

    // Partial basis with the synthesis scale folded in:
    // part[j*64+n] = scale * basis[2j+parity][n].
    const auto &basis = media::subband::mdctBasis();
    std::vector<float> part;
    part.reserve(static_cast<std::size_t>(bands / 2) * windowLen);
    for (int j = 0; j < bands / 2; ++j)
        for (int n = 0; n < windowLen; ++n)
            part.push_back(synthesisScale *
                           basis[2 * j + parity][n]);
    const Word tab = a.dataFloats(part);
    const Word cbuf = a.reserve(bands / 2);

    const Count imdct_cost = windowLen * (bands / 2 * 9 + 7) +
                             bands / 2 * 5 + 12;
    a.forDown(R30, static_cast<Word>(firings), [&] {
        a.scopeEnter(imdct_cost);
        a.li(R10, windowLen);
        a.li(R12, bands / 2);

        const std::string load = lg.next("mld");
        a.li(R1, 0);
        a.label(load);
        a.pop(R2, 0);
        a.sw(R2, R1, static_cast<SWord>(cbuf));
        a.addi(R1, R1, 1);
        a.blt(R1, R12, load);

        const std::string ln = lg.next("mn");
        const std::string lj = lg.next("mj");
        a.li(R1, 0);  // n
        a.label(ln);
        a.lif(R4, 0.0f);
        a.li(R3, 0);  // j*64
        a.li(R2, 0);  // j
        a.label(lj);
        a.add(R7, R3, R1);
        a.lw(R8, R7, static_cast<SWord>(tab));
        a.lw(R9, R2, static_cast<SWord>(cbuf));
        a.fmul(R5, R8, R9);
        a.fadd(R4, R4, R5);
        a.addi(R3, R3, windowLen);
        a.addi(R2, R2, 1);
        a.blt(R2, R12, lj);
        a.push(0, R4);
        a.addi(R1, R1, 1);
        a.blt(R1, R10, ln);
        a.scopeExit();
    });
    a.setEstimatedInsts(static_cast<Count>(firings) *
                        (windowLen * (bands / 2 * 9 + 7) +
                         bands / 2 * 5 + 12));
    return a.finalize();
}

isa::Program
buildJoinAdd(int firings)
{
    Assembler a("mp3_join_add");
    LabelGen lg;
    const Word buf = a.reserve(windowLen);

    a.forDown(R30, static_cast<Word>(firings), [&] {
        a.scopeEnter(windowLen * 11 + 8);
        a.li(R10, windowLen);

        const std::string l0 = lg.next("ja");
        a.li(R1, 0);
        a.label(l0);
        a.pop(R2, 0);
        a.sw(R2, R1, static_cast<SWord>(buf));
        a.addi(R1, R1, 1);
        a.blt(R1, R10, l0);

        const std::string l1 = lg.next("jb");
        a.li(R1, 0);
        a.label(l1);
        a.pop(R2, 1);
        a.lw(R3, R1, static_cast<SWord>(buf));
        a.fadd(R4, R2, R3);
        a.push(0, R4);
        a.addi(R1, R1, 1);
        a.blt(R1, R10, l1);
        a.scopeExit();
    });
    a.setEstimatedInsts(static_cast<Count>(firings) *
                        (windowLen * 11 + 8));
    return a.finalize();
}

isa::Program
buildOverlapAdd(int firings)
{
    Assembler a("mp3_overlap_add");
    LabelGen lg;
    const Word prev = a.reserve(bands);     // Persistent tail state.
    const Word ybuf = a.reserve(windowLen);

    a.forDown(R30, static_cast<Word>(firings), [&] {
        a.scopeEnter(windowLen * 10 + 12);
        a.li(R10, bands);
        a.li(R11, windowLen);

        const std::string load = lg.next("old");
        a.li(R1, 0);
        a.label(load);
        a.pop(R2, 0);
        a.sw(R2, R1, static_cast<SWord>(ybuf));
        a.addi(R1, R1, 1);
        a.blt(R1, R11, load);

        // Emit head + previous tail.
        const std::string emit = lg.next("oem");
        a.li(R1, 0);
        a.label(emit);
        a.lw(R2, R1, static_cast<SWord>(ybuf));
        a.lw(R3, R1, static_cast<SWord>(prev));
        a.fadd(R4, R2, R3);
        a.push(0, R4);
        a.addi(R1, R1, 1);
        a.blt(R1, R10, emit);

        // Save the new tail.
        const std::string save = lg.next("osv");
        a.li(R1, 0);
        a.label(save);
        a.addi(R5, R1, bands);
        a.lw(R2, R5, static_cast<SWord>(ybuf));
        a.sw(R2, R1, static_cast<SWord>(prev));
        a.addi(R1, R1, 1);
        a.blt(R1, R10, save);
        a.scopeExit();
    });
    a.setEstimatedInsts(static_cast<Count>(firings) *
                        (windowLen * 10 + 12));
    return a.finalize();
}

isa::Program
buildPcmClamp(int firings)
{
    Assembler a("mp3_pcm");
    a.forDown(R30, static_cast<Word>(firings), [&] {
        a.lif(R20, 32767.0f);
        a.lif(R21, -32767.0f);
        a.forDown(R29, bands, [&] {
            a.pop(R2, 0);
            a.fmul(R3, R2, R20);
            a.fmin(R3, R3, R20);
            a.fmax(R3, R3, R21);
            a.cvtfi(R4, R3);
            a.push(0, R4);
        });
    });
    a.setEstimatedInsts(static_cast<Count>(firings) * (bands * 8 + 8));
    return a.finalize();
}

} // namespace commguard::kernels
