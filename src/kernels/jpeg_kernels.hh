/**
 * @file
 * Work programs of the jpeg decoder graph (paper Fig. 1).
 *
 * The 10-node structure mirrors the paper: staging (F0), dequantization
 * (F1), inverse zigzag + R/G/B split (F2), three parallel 8x8 IDCT
 * filters (F3R/F3G/F3B), interleaving join (F4), clamping (F5),
 * rounding (F6), and the row assembler/sink (F7) whose firing consumes
 * a whole 8-pixel-high stripe — the paper's width*8*3-item frame.
 */

#ifndef COMMGUARD_KERNELS_JPEG_KERNELS_HH
#define COMMGUARD_KERNELS_JPEG_KERNELS_HH

#include <array>

#include "isa/program.hh"
#include "media/jpeg_codec.hh"

namespace commguard::kernels
{

/**
 * F1: dequantize. Per firing pops 64 quantized int coefficients
 * (zigzag order) and pushes 64 dequantized floats.
 *
 * @param qt_zigzag Quantization table reordered to zigzag sequence.
 */
isa::Program buildJpegDequant(
    const std::array<float, media::jpeg::blockSize> &qt_zigzag,
    int firings);

/**
 * F2: inverse zigzag + channel split. Per firing pops 3 blocks of 64
 * zigzag-ordered floats (R, G, B) and pushes each block in natural
 * order to output ports 0, 1, 2 respectively.
 */
isa::Program buildInvZigzagSplit3(int firings);

/**
 * F3: 8x8 2D IDCT + level shift. Per firing pops 64 natural-order
 * coefficients and pushes 64 raster-order samples (float, unclamped,
 * level-shifted by +128).
 */
isa::Program buildIdct8x8(int firings);

/**
 * F4: join. Per firing pops 64 samples from each of 3 input ports and
 * pushes 192 pixel-interleaved samples (r,g,b per pixel).
 */
isa::Program buildJoin3Interleave(int firings);

/** F5: clamp floats to [0, 255]. 192 items per firing. */
isa::Program buildClamp255(int firings);

/** F6: round floats to integer bytes. 192 items per firing. */
isa::Program buildRoundToByte(int firings);

/**
 * F7: row assembler. One firing consumes a whole 8-pixel-high stripe
 * (width/8 blocks of 192 block-raster samples) and pushes width*8*3
 * image-raster bytes to the output.
 */
isa::Program buildRowAssembler(int width, int firings);

} // namespace commguard::kernels

#endif // COMMGUARD_KERNELS_JPEG_KERNELS_HH
