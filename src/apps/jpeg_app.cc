#include "apps/app.hh"

#include <memory>

#include "kernels/basic.hh"
#include "kernels/jpeg_kernels.hh"
#include "media/jpeg_codec.hh"
#include "media/quality.hh"

namespace commguard::apps
{

using namespace streamit;
namespace jc = media::jpeg;

App
makeJpegApp(int width, int height, int quality)
{
    App app;
    app.name = "jpeg";
    app.spec = detail::specJson(
        "jpeg", {{"height", Json(height)},
                 {"quality", Json(quality)},
                 {"width", Json(width)}});

    auto original = std::make_shared<media::Image>(
        media::makeFlowerImage(width, height));
    const jc::JpegStream stream = jc::encode(*original, quality);

    // Quantization table reordered into zigzag (stream) order.
    const auto qt = jc::quantTable(quality);
    const auto &zz = jc::zigzagOrder();
    std::array<float, jc::blockSize> qt_zigzag{};
    for (int i = 0; i < jc::blockSize; ++i)
        qt_zigzag[i] = qt[zz[i]];

    StreamGraph &g = app.graph;
    const int row_words = width * jc::blockDim * jc::channels;

    const NodeId f0 = g.addFilter(
        {"F0_unpack", {64}, {64}, [](int firings) {
             return kernels::buildPassthrough("F0_unpack", 64, firings);
         }});
    const NodeId f1 = g.addFilter(
        {"F1_dequant", {64}, {64}, [qt_zigzag](int firings) {
             return kernels::buildJpegDequant(qt_zigzag, firings);
         }});
    const NodeId f2 = g.addFilter(
        {"F2_zigzag_split", {192}, {64, 64, 64}, [](int firings) {
             return kernels::buildInvZigzagSplit3(firings);
         }});
    const NodeId f3r = g.addFilter(
        {"F3R_idct", {64}, {64}, [](int firings) {
             return kernels::buildIdct8x8(firings);
         }});
    const NodeId f3g = g.addFilter(
        {"F3G_idct", {64}, {64}, [](int firings) {
             return kernels::buildIdct8x8(firings);
         }});
    const NodeId f3b = g.addFilter(
        {"F3B_idct", {64}, {64}, [](int firings) {
             return kernels::buildIdct8x8(firings);
         }});
    const NodeId f4 = g.addFilter(
        {"F4_join", {64, 64, 64}, {192}, [](int firings) {
             return kernels::buildJoin3Interleave(firings);
         }});
    const NodeId f5 = g.addFilter(
        {"F5_clamp", {192}, {192}, [](int firings) {
             return kernels::buildClamp255(firings);
         }});
    const NodeId f6 = g.addFilter(
        {"F6_round", {192}, {192}, [](int firings) {
             return kernels::buildRoundToByte(firings);
         }});
    const NodeId f7 = g.addFilter(
        {"F7_rows", {row_words}, {row_words}, [width](int firings) {
             return kernels::buildRowAssembler(width, firings);
         }});

    g.setExternalInput(f0, 0);
    g.connect(f0, 0, f1, 0);
    g.connect(f1, 0, f2, 0);
    g.connect(f2, 0, f3r, 0);
    g.connect(f2, 1, f3g, 0);
    g.connect(f2, 2, f3b, 0);
    g.connect(f3r, 0, f4, 0);
    g.connect(f3g, 0, f4, 1);
    g.connect(f3b, 0, f4, 2);
    g.connect(f4, 0, f5, 0);
    g.connect(f5, 0, f6, 0);
    g.connect(f6, 0, f7, 0);
    g.setExternalOutput(f7, 0);

    app.input = stream.words;
    app.steadyIterations =
        static_cast<Count>(height / jc::blockDim);  // One per stripe.

    app.errorFreeQualityDb =
        media::psnrDb(*original, jc::decodeHost(stream));

    app.quality = [original, width, height](
                      const std::vector<Word> &output) {
        return media::psnrDb(
            *original, jpegImageFromOutput(output, width, height));
    };
    return app;
}

} // namespace commguard::apps
