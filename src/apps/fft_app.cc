#include "apps/app.hh"

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "kernels/basic.hh"
#include "kernels/fft_kernels.hh"
#include "media/quality.hh"

namespace commguard::apps
{

using namespace streamit;

namespace
{

constexpr int fftPoints = 64;
constexpr int numStages = 6;  // log2(64)
constexpr int blockWords = 2 * fftPoints;

/** Continuous complex signal chopped into FFT blocks. */
std::vector<float>
makeFftInput(int blocks)
{
    const double pi = std::acos(-1.0);
    std::uint32_t noise_state = 0xabad1deau;
    auto noise = [&noise_state] {
        noise_state = noise_state * 1664525u + 1013904223u;
        return static_cast<float>(noise_state >> 8) / 16777216.0f -
               0.5f;
    };

    std::vector<float> input(
        static_cast<std::size_t>(blocks) * blockWords);
    for (int i = 0; i < blocks * fftPoints; ++i) {
        const double t = static_cast<double>(i);
        input[static_cast<std::size_t>(i) * 2] = static_cast<float>(
            0.7 * std::cos(2 * pi * 0.11 * t) +
            0.25 * std::cos(2 * pi * 0.31 * t + 1.1) + 0.1 * noise());
        input[static_cast<std::size_t>(i) * 2 + 1] =
            static_cast<float>(0.7 * std::sin(2 * pi * 0.11 * t) +
                               0.25 * std::sin(2 * pi * 0.31 * t + 1.1) +
                               0.1 * noise());
    }
    return input;
}

/** Bit-identical host model of the FFT pipeline (kernel op order). */
std::vector<float>
hostFft(const std::vector<float> &input, int blocks)
{
    // Bit-reversal permutation table.
    int rev[fftPoints];
    for (int i = 0; i < fftPoints; ++i) {
        int r = 0;
        for (int b = 0; b < numStages; ++b)
            if (i & (1 << b))
                r |= 1 << (numStages - 1 - b);
        rev[i] = r;
    }

    // Twiddles, float precision as in the kernel tables.
    const double pi = std::acos(-1.0);
    float wr[fftPoints / 2];
    float wi[fftPoints / 2];
    for (int t = 0; t < fftPoints / 2; ++t) {
        wr[t] = static_cast<float>(std::cos(2 * pi * t / fftPoints));
        wi[t] = static_cast<float>(-std::sin(2 * pi * t / fftPoints));
    }

    std::vector<float> output(input.size());
    std::vector<float> buf(blockWords);
    for (int block = 0; block < blocks; ++block) {
        const float *in =
            input.data() + static_cast<std::size_t>(block) * blockWords;

        for (int i = 0; i < fftPoints; ++i) {
            buf[2 * i] = in[2 * rev[i]];
            buf[2 * i + 1] = in[2 * rev[i] + 1];
        }

        for (int stage = 0; stage < numStages; ++stage) {
            const int half = 1 << stage;
            const int m = half * 2;
            const int stride = fftPoints / m;
            for (int j = 0; j < fftPoints; j += m) {
                for (int i = 0; i < half; ++i) {
                    const int t = i * stride;
                    const int idx1 = 2 * (j + i);
                    const int idx2 = idx1 + 2 * half;
                    const float ar = buf[idx1];
                    const float ai = buf[idx1 + 1];
                    const float br = buf[idx2];
                    const float bi = buf[idx2 + 1];
                    // Kernel op order.
                    float tr = br * wr[t];
                    tr = tr - bi * wi[t];
                    float ti = br * wi[t];
                    ti = ti + bi * wr[t];
                    buf[idx1] = ar + tr;
                    buf[idx1 + 1] = ai + ti;
                    buf[idx2] = ar - tr;
                    buf[idx2 + 1] = ai - ti;
                }
            }
        }

        for (int i = 0; i < blockWords; ++i) {
            float v = buf[i];
            v = std::fmax(v, -256.0f);
            v = std::fmin(v, 256.0f);
            output[static_cast<std::size_t>(block) * blockWords + i] =
                v;
        }
    }
    return output;
}

} // namespace

App
makeFftApp(int blocks)
{
    App app;
    app.name = "fft";
    app.spec = detail::specJson("fft", {{"blocks", Json(blocks)}});

    const std::vector<float> input = makeFftInput(blocks);
    auto reference =
        std::make_shared<std::vector<float>>(hostFft(input, blocks));

    StreamGraph &g = app.graph;
    const NodeId f0 = g.addFilter(
        {"F0_unpack", {blockWords}, {blockWords}, [](int firings) {
             return kernels::buildPassthrough("F0_unpack", blockWords,
                                              firings);
         }});
    const NodeId f1 = g.addFilter(
        {"F1_bitrev", {blockWords}, {blockWords}, [](int firings) {
             return kernels::buildBitReverse(fftPoints, firings);
         }});
    NodeId prev = f1;
    for (int stage = 0; stage < numStages; ++stage) {
        const NodeId node = g.addFilter(
            {"S" + std::to_string(stage), {blockWords}, {blockWords},
             [stage](int firings) {
                 return kernels::buildFftStage(fftPoints, stage,
                                               firings);
             }});
        g.connect(prev, 0, node, 0);
        prev = node;
    }
    // Spectra of the test signals stay under ~70; the sink clamps
    // into the output device's [-256, 256] range.
    const NodeId f8 = g.addFilter(
        {"F8_sink", {blockWords}, {blockWords}, [](int firings) {
             return kernels::buildClampRange("F8_sink", -256.0f,
                                             256.0f, blockWords,
                                             firings);
         }});
    g.connect(prev, 0, f8, 0);
    g.connect(f0, 0, f1, 0);
    g.setExternalInput(f0, 0);
    g.setExternalOutput(f8, 0);

    app.input = wordsFromFloats(input);
    app.steadyIterations = static_cast<Count>(blocks);
    app.errorFreeQualityDb = std::numeric_limits<double>::infinity();
    app.quality = [reference](const std::vector<Word> &output) {
        return media::snrDb(*reference, floatsFromWords(output));
    };
    return app;
}

} // namespace commguard::apps
