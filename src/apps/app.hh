/**
 * @file
 * Benchmark application bundles.
 *
 * Each of the paper's six StreamIt benchmarks (§6) is packaged as an
 * App: the stream graph, the input stream, the number of steady-state
 * iterations (= frame computations per thread), a quality metric
 * mapping collected output words to dB, and the error-free baseline
 * quality.
 *
 * Quality semantics follow the paper: jpeg/mp3 are compared against the
 * *original* media (their baseline is the error-free lossy decode); the
 * other four are compared against the error-free execution, which this
 * reproduction computes with bit-identical host reference models (the
 * error-free VM run is tested to match them exactly).
 */

#ifndef COMMGUARD_APPS_APP_HH
#define COMMGUARD_APPS_APP_HH

#include <functional>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/types.hh"
#include "media/image.hh"
#include "streamit/graph.hh"

namespace commguard::apps
{

/** A ready-to-load benchmark. */
struct App
{
    std::string name;
    streamit::StreamGraph graph;
    std::vector<Word> input;
    Count steadyIterations = 0;

    /** Output quality in dB (PSNR for jpeg, SNR otherwise). */
    std::function<double(const std::vector<Word> &)> quality;

    /** Quality of an error-free execution (the paper's baselines). */
    double errorFreeQualityDb = 0.0;

    /**
     * Canonical-JSON construction recipe ("{\"factory\":...}"), set by
     * every parameterized factory so another process can rebuild a
     * bit-identical App via makeAppFromSpec() — the basis of sharded
     * sweep execution and of result-cache keys (docs/SHARDING.md).
     * Empty means the app is not reconstructable from a spec (hand-
     * assembled graphs); such descriptors always execute locally and
     * are never cached.
     */
    std::string spec;
};

/** The paper's jpeg benchmark (10-node graph of Fig. 1). */
App makeJpegApp(int width = 256, int height = 192, int quality = 50);

/** The paper's mp3 benchmark (subband decoder with IMDCT split-join). */
App makeMp3App(int samples = 24576);

/** Delay-and-sum audio beamformer over 4 sensor channels. */
App makeBeamformerApp(int samples = 16384);

/** 4-band channel vocoder (bandpass + envelope + carrier). */
App makeChannelVocoderApp(int samples = 16384);

/** Cascade of 4 complex FIR sections plus magnitude detector. */
App makeComplexFirApp(int samples = 16384);

/** 64-point radix-2 FFT pipeline over a stream of blocks. */
App makeFftApp(int blocks = 1024);

/** Factory by benchmark name (paper naming); fatal on unknown names. */
App makeAppByName(const std::string &name);

/**
 * Rebuild an App from an App::spec recipe produced by any factory in
 * this header (or the random-graph generator). The result is
 * bit-identical to the original factory call: same graph, input,
 * quality baseline and name. fatal() on an unparseable spec or an
 * unknown factory name.
 */
App makeAppFromSpec(const std::string &spec);

/** All six benchmark names in the paper's order. */
const std::vector<std::string> &allAppNames();

namespace detail
{

/**
 * Canonical App::spec text: {"factory": factory, ...params} dumped as
 * canonical JSON (sorted keys), so equal recipes are equal strings and
 * spec text can key maps and hashes directly.
 */
std::string specJson(const std::string &factory, Json::Object params);

} // namespace detail

// ----------------------------------------------------------------------
// Output decoding helpers.
// ----------------------------------------------------------------------

/** Reassemble a decoded image from jpeg-graph output words. */
media::Image jpegImageFromOutput(const std::vector<Word> &words,
                                 int width, int height);

/** Interpret words as IEEE-754 floats. */
std::vector<float> floatsFromWords(const std::vector<Word> &words);

/** Pack floats into words. */
std::vector<Word> wordsFromFloats(const std::vector<float> &floats);

} // namespace commguard::apps

#endif // COMMGUARD_APPS_APP_HH
