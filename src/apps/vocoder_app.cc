#include "apps/app.hh"

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "kernels/basic.hh"
#include "kernels/dsp_kernels.hh"
#include "media/audio.hh"
#include "media/quality.hh"

namespace commguard::apps
{

using namespace streamit;

namespace
{

constexpr int numBands = 4;
constexpr int numTaps = 24;
constexpr float envAlpha = 0.05f;
constexpr double sampleRate = 16384.0;

/** Band edges (Hz) and carrier frequencies of the vocoder bank. */
constexpr double bandLow[numBands] = {200, 500, 1100, 2200};
constexpr double bandHigh[numBands] = {500, 1100, 2200, 4000};
constexpr double carrierHz[numBands] = {330, 720, 1500, 2800};

/** Windowed-sinc bandpass design (Hamming). */
std::vector<float>
makeBandpass(double f_low, double f_high)
{
    const double pi = std::acos(-1.0);
    std::vector<float> taps(numTaps);
    const double w1 = 2 * pi * f_low / sampleRate;
    const double w2 = 2 * pi * f_high / sampleRate;
    const double mid = (numTaps - 1) / 2.0;
    for (int n = 0; n < numTaps; ++n) {
        const double k = n - mid;
        double ideal;
        if (std::fabs(k) < 1e-9)
            ideal = (w2 - w1) / pi;
        else
            ideal = (std::sin(w2 * k) - std::sin(w1 * k)) / (pi * k);
        const double window =
            0.54 - 0.46 * std::cos(2 * pi * n / (numTaps - 1));
        taps[n] = static_cast<float>(ideal * window);
    }
    return taps;
}

/** Bit-identical host model of one vocoder band (kernel op order). */
class HostBand
{
  public:
    HostBand(std::vector<float> taps, float carrier_step)
        : _taps(std::move(taps)),
          _delay(_taps.size(), 0.0f),
          _cosD(std::cos(carrier_step)),
          _sinD(std::sin(carrier_step))
    {}

    float
    process(float x)
    {
        // FIR: shift + MAC in kernel order.
        for (std::size_t t = _taps.size() - 1; t >= 1; --t)
            _delay[t] = _delay[t - 1];
        _delay[0] = x;
        float acc = 0.0f;
        for (std::size_t t = 0; t < _taps.size(); ++t)
            acc = acc + _delay[t] * _taps[t];

        // Envelope follower, bounded to [0, 4] like the kernel.
        const float mag = std::fabs(acc);
        _env = _env + (mag - _env) * envAlpha;
        _env = std::fmax(_env, 0.0f);
        _env = std::fmin(_env, 4.0f);

        // Carrier rotation with the kernel's self-stabilizing norm
        // check (reset when outside [0.25, 4]; false for NaN too).
        const float norm = _cos * _cos + _sin * _sin;
        if (!(0.25f <= norm && norm <= 4.0f)) {
            _cos = 1.0f;
            _sin = 0.0f;
        }
        const float c = _cos * _cosD - _sin * _sinD;
        const float s = _sin * _cosD + _cos * _sinD;
        _cos = c;
        _sin = s;
        return _env * s;
    }

  private:
    std::vector<float> _taps;
    std::vector<float> _delay;
    float _cosD, _sinD;
    float _env = 0.0f;
    float _cos = 1.0f;
    float _sin = 0.0f;
};

std::vector<float>
hostVocoder(const std::vector<float> &input)
{
    const double pi = std::acos(-1.0);
    std::vector<HostBand> bank;
    for (int b = 0; b < numBands; ++b) {
        bank.emplace_back(
            makeBandpass(bandLow[b], bandHigh[b]),
            static_cast<float>(2 * pi * carrierHz[b] / sampleRate));
    }

    std::vector<float> output(input.size());
    for (std::size_t i = 0; i < input.size(); ++i) {
        float band_out[numBands];
        for (int b = 0; b < numBands; ++b)
            band_out[b] = bank[b].process(input[i]);
        float acc = band_out[0];
        for (int b = 1; b < numBands; ++b)
            acc = acc + band_out[b];
        acc = std::fmax(acc, -8.0f);
        acc = std::fmin(acc, 8.0f);
        output[i] = acc;
    }
    return output;
}

} // namespace

App
makeChannelVocoderApp(int samples)
{
    App app;
    app.name = "channelvocoder";
    app.spec = detail::specJson("channelvocoder",
                                {{"samples", Json(samples)}});

    const std::vector<float> input = media::makeMusicAudio(samples);
    auto reference =
        std::make_shared<std::vector<float>>(hostVocoder(input));

    const double pi = std::acos(-1.0);
    StreamGraph &g = app.graph;

    const NodeId f0 = g.addFilter(
        {"F0_unpack", {1}, {1}, [](int firings) {
             return kernels::buildPassthrough("F0_unpack", 1, firings);
         }});
    const NodeId f1 = g.addFilter(
        {"F1_split", {1}, {1, 1, 1, 1}, [](int firings) {
             return kernels::buildSplitDuplicate(numBands, firings);
         }});
    NodeId bands_nodes[numBands];
    for (int b = 0; b < numBands; ++b) {
        const std::string name = "B" + std::to_string(b);
        const std::vector<float> taps =
            makeBandpass(bandLow[b], bandHigh[b]);
        const float step =
            static_cast<float>(2 * pi * carrierHz[b] / sampleRate);
        bands_nodes[b] = g.addFilter(
            {name, {1}, {1}, [name, taps, step](int firings) {
                 return kernels::buildVocoderBand(name, taps, envAlpha,
                                                  step, firings);
             }});
    }
    const NodeId f6 = g.addFilter(
        {"F6_sum", {1, 1, 1, 1}, {1}, [](int firings) {
             return kernels::buildJoinSum(numBands, firings);
         }});
    // Output-device clamp, comfortably above the legitimate range.
    const NodeId f7 = g.addFilter(
        {"F7_sink", {1}, {1}, [](int firings) {
             return kernels::buildClampRange("F7_sink", -8.0f, 8.0f,
                                             1, firings);
         }});

    g.setExternalInput(f0, 0);
    g.connect(f0, 0, f1, 0);
    for (int b = 0; b < numBands; ++b) {
        g.connect(f1, b, bands_nodes[b], 0);
        g.connect(bands_nodes[b], 0, f6, b);
    }
    g.connect(f6, 0, f7, 0);
    g.setExternalOutput(f7, 0);

    app.input = wordsFromFloats(input);
    app.steadyIterations = static_cast<Count>(samples);
    app.errorFreeQualityDb = std::numeric_limits<double>::infinity();
    app.quality = [reference](const std::vector<Word> &output) {
        return media::snrDb(*reference, floatsFromWords(output));
    };
    return app;
}

} // namespace commguard::apps
