#include "apps/app.hh"

#include <memory>

#include "kernels/audio_kernels.hh"
#include "kernels/basic.hh"
#include "media/audio.hh"
#include "media/quality.hh"
#include "media/subband_codec.hh"

namespace commguard::apps
{

using namespace streamit;
namespace sb = media::subband;

App
makeMp3App(int samples)
{
    App app;
    app.name = "mp3";
    app.spec = detail::specJson("mp3", {{"samples", Json(samples)}});

    auto audio = std::make_shared<std::vector<float>>(
        media::makeMusicAudio(samples));
    const sb::SubbandStream stream = sb::encode(*audio);

    StreamGraph &g = app.graph;

    const NodeId f0 = g.addFilter(
        {"F0_unpack", {sb::wordsPerBlock}, {sb::wordsPerBlock},
         [](int firings) {
             return kernels::buildPassthrough(
                 "F0_unpack", sb::wordsPerBlock, firings);
         }});
    const NodeId f1 = g.addFilter(
        {"F1_dequant_split", {sb::wordsPerBlock},
         {sb::bands / 2, sb::bands / 2}, [](int firings) {
             return kernels::buildSubbandDequantSplit(firings);
         }});
    const NodeId f2a = g.addFilter(
        {"F2a_imdct_even", {sb::bands / 2}, {sb::windowLen},
         [](int firings) {
             return kernels::buildImdctPartial(0, firings);
         }});
    const NodeId f2b = g.addFilter(
        {"F2b_imdct_odd", {sb::bands / 2}, {sb::windowLen},
         [](int firings) {
             return kernels::buildImdctPartial(1, firings);
         }});
    const NodeId f4 = g.addFilter(
        {"F4_join_add", {sb::windowLen, sb::windowLen},
         {sb::windowLen}, [](int firings) {
             return kernels::buildJoinAdd(firings);
         }});
    const NodeId f5 = g.addFilter(
        {"F5_overlap", {sb::windowLen}, {sb::bands}, [](int firings) {
             return kernels::buildOverlapAdd(firings);
         }});
    const NodeId f6 = g.addFilter(
        {"F6_pcm", {sb::bands}, {sb::bands}, [](int firings) {
             return kernels::buildPcmClamp(firings);
         }});
    const NodeId f7 = g.addFilter(
        {"F7_sink", {sb::bands}, {sb::bands}, [](int firings) {
             return kernels::buildPassthrough("F7_sink", sb::bands,
                                              firings);
         }});

    g.setExternalInput(f0, 0);
    g.connect(f0, 0, f1, 0);
    g.connect(f1, 0, f2a, 0);
    g.connect(f1, 1, f2b, 0);
    g.connect(f2a, 0, f4, 0);
    g.connect(f2b, 0, f4, 1);
    g.connect(f4, 0, f5, 0);
    g.connect(f5, 0, f6, 0);
    g.connect(f6, 0, f7, 0);
    g.setExternalOutput(f7, 0);

    app.input = stream.words;
    app.steadyIterations = static_cast<Count>(stream.numBlocks);

    app.errorFreeQualityDb =
        media::snrDb(*audio, sb::decodeHost(stream));

    const int num_samples = samples;
    app.quality = [audio, num_samples](
                      const std::vector<Word> &output) {
        // The first 32 PCM samples reconstruct the encoder's leading
        // zero padding; the decoded clip follows.
        std::vector<float> decoded(
            static_cast<std::size_t>(num_samples), 0.0f);
        for (int i = 0; i < num_samples; ++i) {
            const std::size_t index =
                static_cast<std::size_t>(i) + sb::bands;
            if (index < output.size()) {
                // The output device is 16-bit PCM: corrupted words
                // saturate at full scale, exactly as writeWav clamps.
                const float v =
                    static_cast<float>(
                        static_cast<SWord>(output[index])) /
                    32767.0f;
                decoded[i] = std::clamp(v, -1.0f, 1.0f);
            }
        }
        return media::snrDb(*audio, decoded);
    };
    return app;
}

} // namespace commguard::apps
