#include "apps/app.hh"

#include <cmath>
#include <complex>
#include <limits>
#include <memory>
#include <vector>

#include "kernels/basic.hh"
#include "kernels/dsp_kernels.hh"
#include "media/quality.hh"

namespace commguard::apps
{

using namespace streamit;

namespace
{

constexpr int numSections = 4;
constexpr int numTaps = 8;

/**
 * Section center frequencies (normalized). The four passbands overlap
 * around 0.11 so the cascade passes the main tone with healthy gain —
 * a channel-select chain rather than four disjoint bands.
 */
constexpr double sectionCenter[numSections] = {0.09, 0.11, 0.13,
                                               0.15};

/** Complex band-shifted lowpass taps for one cascade section. */
std::vector<std::complex<float>>
makeSectionTaps(int section)
{
    const double pi = std::acos(-1.0);
    const double cutoff = 0.09;  // Normalized lowpass width.
    const double mid = (numTaps - 1) / 2.0;
    std::vector<std::complex<float>> taps(numTaps);
    for (int n = 0; n < numTaps; ++n) {
        const double k = n - mid;
        double lowpass;
        if (std::fabs(k) < 1e-9)
            lowpass = 2 * cutoff;
        else
            lowpass = std::sin(2 * pi * cutoff * k) / (pi * k);
        const double window =
            0.54 - 0.46 * std::cos(2 * pi * n / (numTaps - 1));
        const double phase =
            2 * pi * sectionCenter[section] * n;
        taps[n] = std::complex<float>(
            static_cast<float>(lowpass * window * std::cos(phase)),
            static_cast<float>(lowpass * window * std::sin(phase)));
    }

    // Normalize to unity gain at the cascade's common passband
    // frequency (0.11) so the four sections do not attenuate the
    // signal multiplicatively.
    std::complex<double> response = 0.0;
    for (int n = 0; n < numTaps; ++n) {
        const double w = 2 * pi * 0.11 * n;
        response += std::complex<double>(taps[n]) *
                    std::complex<double>(std::cos(-w), std::sin(-w));
    }
    const double gain = std::abs(response);
    for (int n = 0; n < numTaps; ++n)
        taps[n] = std::complex<float>(
            static_cast<float>(taps[n].real() / gain),
            static_cast<float>(taps[n].imag() / gain));
    return taps;
}

/** Bit-identical host model of one complex FIR section. */
class HostSection
{
  public:
    explicit HostSection(std::vector<std::complex<float>> taps)
        : _taps(std::move(taps)),
          _dr(_taps.size(), 0.0f),
          _di(_taps.size(), 0.0f)
    {}

    void
    process(float &re, float &im)
    {
        for (std::size_t t = _taps.size() - 1; t >= 1; --t) {
            _dr[t] = _dr[t - 1];
            _di[t] = _di[t - 1];
        }
        _dr[0] = re;
        _di[0] = im;

        // Kernel accumulation order: +cr*xr, -ci*xi, +cr*xi, +ci*xr.
        float acc_re = 0.0f;
        float acc_im = 0.0f;
        for (std::size_t t = 0; t < _taps.size(); ++t) {
            acc_re = acc_re + _taps[t].real() * _dr[t];
            acc_re = acc_re - _taps[t].imag() * _di[t];
            acc_im = acc_im + _taps[t].real() * _di[t];
            acc_im = acc_im + _taps[t].imag() * _dr[t];
        }
        re = acc_re;
        im = acc_im;
    }

  private:
    std::vector<std::complex<float>> _taps;
    std::vector<float> _dr;
    std::vector<float> _di;
};

/** Synthesized complex input: tone mix plus deterministic noise. */
std::vector<float>
makeComplexInput(int samples)
{
    const double pi = std::acos(-1.0);
    std::uint32_t noise_state = 0xfeedc0deu;
    auto noise = [&noise_state] {
        noise_state = noise_state * 1664525u + 1013904223u;
        return static_cast<float>(noise_state >> 8) / 16777216.0f -
               0.5f;
    };

    std::vector<float> input(static_cast<std::size_t>(samples) * 2);
    for (int i = 0; i < samples; ++i) {
        const double t = static_cast<double>(i);
        const double re = 0.6 * std::cos(2 * pi * 0.11 * t) +
                          0.25 * std::cos(2 * pi * 0.16 * t + 0.4) +
                          0.1 * noise();
        const double im = 0.6 * std::sin(2 * pi * 0.11 * t) +
                          0.25 * std::sin(2 * pi * 0.16 * t + 0.4) +
                          0.1 * noise();
        input[static_cast<std::size_t>(i) * 2] =
            static_cast<float>(re);
        input[static_cast<std::size_t>(i) * 2 + 1] =
            static_cast<float>(im);
    }
    return input;
}

std::vector<float>
hostComplexFir(const std::vector<float> &input, int samples)
{
    std::vector<HostSection> sections;
    for (int s = 0; s < numSections; ++s)
        sections.emplace_back(makeSectionTaps(s));

    std::vector<float> output(samples);
    for (int i = 0; i < samples; ++i) {
        float re = input[static_cast<std::size_t>(i) * 2];
        float im = input[static_cast<std::size_t>(i) * 2 + 1];
        for (auto &section : sections)
            section.process(re, im);
        float mag = std::sqrt(re * re + im * im);
        mag = std::fmax(mag, 0.0f);
        mag = std::fmin(mag, 8.0f);
        output[i] = mag;
    }
    return output;
}

} // namespace

App
makeComplexFirApp(int samples)
{
    App app;
    app.name = "complex-fir";
    app.spec = detail::specJson("complex-fir",
                                {{"samples", Json(samples)}});

    const std::vector<float> input = makeComplexInput(samples);
    auto reference = std::make_shared<std::vector<float>>(
        hostComplexFir(input, samples));

    StreamGraph &g = app.graph;
    const NodeId f0 = g.addFilter(
        {"F0_unpack", {2}, {2}, [](int firings) {
             return kernels::buildPassthrough("F0_unpack", 2, firings);
         }});
    NodeId prev = f0;
    int prev_port = 0;
    for (int s = 0; s < numSections; ++s) {
        const std::string name = "S" + std::to_string(s + 1);
        const auto taps = makeSectionTaps(s);
        const NodeId node = g.addFilter(
            {name, {2}, {2}, [name, taps](int firings) {
                 return kernels::buildComplexFir(name, taps, firings);
             }});
        g.connect(prev, prev_port, node, 0);
        prev = node;
        prev_port = 0;
    }
    const NodeId f5 = g.addFilter(
        {"F5_magnitude", {2}, {1}, [](int firings) {
             return kernels::buildMagnitude(firings);
         }});
    // Magnitudes are non-negative and stay under ~3; the sink clamps
    // into the output device's [0, 8] range.
    const NodeId f6 = g.addFilter(
        {"F6_sink", {1}, {1}, [](int firings) {
             return kernels::buildClampRange("F6_sink", 0.0f, 8.0f, 1,
                                             firings);
         }});

    g.connect(prev, 0, f5, 0);
    g.connect(f5, 0, f6, 0);
    g.setExternalInput(f0, 0);
    g.setExternalOutput(f6, 0);

    app.input = wordsFromFloats(input);
    app.steadyIterations = static_cast<Count>(samples);
    app.errorFreeQualityDb = std::numeric_limits<double>::infinity();
    app.quality = [reference](const std::vector<Word> &output) {
        return media::snrDb(*reference, floatsFromWords(output));
    };
    return app;
}

} // namespace commguard::apps
