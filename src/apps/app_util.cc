#include "apps/app.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace commguard::apps
{

media::Image
jpegImageFromOutput(const std::vector<Word> &words, int width,
                    int height)
{
    media::Image image(width, height);
    const std::size_t expected =
        static_cast<std::size_t>(width) * height * 3;
    for (std::size_t i = 0; i < expected; ++i) {
        // Missing output reads as black; corrupted words clamp.
        const SWord value =
            i < words.size() ? static_cast<SWord>(words[i]) : 0;
        image.rgb[i] = static_cast<std::uint8_t>(
            std::clamp<SWord>(value, 0, 255));
    }
    return image;
}

std::vector<float>
floatsFromWords(const std::vector<Word> &words)
{
    std::vector<float> floats;
    floats.reserve(words.size());
    for (Word w : words) {
        const float f = wordToFloat(w);
        // Corrupted bit patterns can decode to NaN/inf; treat them as
        // silence so quality metrics stay finite.
        floats.push_back(std::isfinite(f) ? f : 0.0f);
    }
    return floats;
}

std::vector<Word>
wordsFromFloats(const std::vector<float> &floats)
{
    std::vector<Word> words;
    words.reserve(floats.size());
    for (float f : floats)
        words.push_back(floatToWord(f));
    return words;
}

const std::vector<std::string> &
allAppNames()
{
    static const std::vector<std::string> names = {
        "audiobeamformer", "channelvocoder", "complex-fir",
        "fft",             "jpeg",           "mp3",
    };
    return names;
}

App
makeAppByName(const std::string &name)
{
    if (name == "jpeg")
        return makeJpegApp();
    if (name == "mp3")
        return makeMp3App();
    if (name == "audiobeamformer")
        return makeBeamformerApp();
    if (name == "channelvocoder")
        return makeChannelVocoderApp();
    if (name == "complex-fir")
        return makeComplexFirApp();
    if (name == "fft")
        return makeFftApp();
    fatal("unknown benchmark: " + name);
}

} // namespace commguard::apps
