#include "apps/app.hh"

#include <algorithm>
#include <cmath>

#include "apps/random_graph_app.hh"
#include "common/logging.hh"

namespace commguard::apps
{

namespace detail
{

std::string
specJson(const std::string &factory, Json::Object params)
{
    Json spec(std::move(params));
    spec["factory"] = Json(factory);
    return spec.dump();
}

} // namespace detail

namespace
{

/** Required integral spec parameter; fatal() when absent or non-int. */
std::int64_t
specInt(const Json &spec, const std::string &key)
{
    const Json *value = spec.find(key);
    if (value == nullptr || !value->isNumber())
        fatal("makeAppFromSpec: spec lacks integer '" + key +
              "': " + spec.dump());
    return static_cast<std::int64_t>(value->number());
}

/** Required unsigned spec parameter, exact to 64 bits (seeds). */
Count
specCount(const Json &spec, const std::string &key)
{
    const Json *value = spec.find(key);
    if (value == nullptr || !value->isNumber())
        fatal("makeAppFromSpec: spec lacks integer '" + key +
              "': " + spec.dump());
    return value->counter();
}

bool
specBool(const Json &spec, const std::string &key)
{
    const Json *value = spec.find(key);
    if (value == nullptr || !value->isBool())
        fatal("makeAppFromSpec: spec lacks boolean '" + key +
              "': " + spec.dump());
    return value->boolean();
}

} // namespace

App
makeAppFromSpec(const std::string &spec)
{
    Json json;
    std::string error;
    if (!Json::parse(spec, json, &error) || !json.isObject())
        fatal("makeAppFromSpec: unparseable spec '" + spec +
              "': " + error);
    const Json *factory = json.find("factory");
    if (factory == nullptr || !factory->isString())
        fatal("makeAppFromSpec: spec lacks a factory name: " + spec);

    const std::string &name = factory->str();
    App app;
    if (name == "jpeg") {
        app = makeJpegApp(static_cast<int>(specInt(json, "width")),
                          static_cast<int>(specInt(json, "height")),
                          static_cast<int>(specInt(json, "quality")));
    } else if (name == "mp3") {
        app = makeMp3App(static_cast<int>(specInt(json, "samples")));
    } else if (name == "audiobeamformer") {
        app = makeBeamformerApp(
            static_cast<int>(specInt(json, "samples")));
    } else if (name == "channelvocoder") {
        app = makeChannelVocoderApp(
            static_cast<int>(specInt(json, "samples")));
    } else if (name == "complex-fir") {
        app = makeComplexFirApp(
            static_cast<int>(specInt(json, "samples")));
    } else if (name == "fft") {
        app = makeFftApp(static_cast<int>(specInt(json, "blocks")));
    } else if (name == "random-graph") {
        RandomGraphOptions options;
        options.stages = static_cast<int>(specInt(json, "stages"));
        options.maxGranularity =
            static_cast<int>(specInt(json, "max_granularity"));
        options.allowSplitJoin = specBool(json, "allow_split_join");
        app = makeRandomGraphApp(specCount(json, "graph_seed"),
                                 options,
                                 specCount(json, "iterations"));
    } else {
        fatal("makeAppFromSpec: unknown factory '" + name + "'");
    }

    // The rebuilt app must advertise the recipe it was built from —
    // anything else means a factory changed its spec format and the
    // shard/cache layers would silently diverge.
    if (app.spec != spec)
        fatal("makeAppFromSpec: spec does not round-trip: '" + spec +
              "' rebuilt as '" + app.spec + "'");
    return app;
}

media::Image
jpegImageFromOutput(const std::vector<Word> &words, int width,
                    int height)
{
    media::Image image(width, height);
    const std::size_t expected =
        static_cast<std::size_t>(width) * height * 3;
    for (std::size_t i = 0; i < expected; ++i) {
        // Missing output reads as black; corrupted words clamp.
        const SWord value =
            i < words.size() ? static_cast<SWord>(words[i]) : 0;
        image.rgb[i] = static_cast<std::uint8_t>(
            std::clamp<SWord>(value, 0, 255));
    }
    return image;
}

std::vector<float>
floatsFromWords(const std::vector<Word> &words)
{
    std::vector<float> floats;
    floats.reserve(words.size());
    for (Word w : words) {
        const float f = wordToFloat(w);
        // Corrupted bit patterns can decode to NaN/inf; treat them as
        // silence so quality metrics stay finite.
        floats.push_back(std::isfinite(f) ? f : 0.0f);
    }
    return floats;
}

std::vector<Word>
wordsFromFloats(const std::vector<float> &floats)
{
    std::vector<Word> words;
    words.reserve(floats.size());
    for (float f : floats)
        words.push_back(floatToWord(f));
    return words;
}

const std::vector<std::string> &
allAppNames()
{
    static const std::vector<std::string> names = {
        "audiobeamformer", "channelvocoder", "complex-fir",
        "fft",             "jpeg",           "mp3",
    };
    return names;
}

App
makeAppByName(const std::string &name)
{
    if (name == "jpeg")
        return makeJpegApp();
    if (name == "mp3")
        return makeMp3App();
    if (name == "audiobeamformer")
        return makeBeamformerApp();
    if (name == "channelvocoder")
        return makeChannelVocoderApp();
    if (name == "complex-fir")
        return makeComplexFirApp();
    if (name == "fft")
        return makeFftApp();
    fatal("unknown benchmark: " + name);
}

} // namespace commguard::apps
