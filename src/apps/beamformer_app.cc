#include "apps/app.hh"

#include <cmath>
#include <memory>
#include <vector>

#include "kernels/basic.hh"
#include "kernels/dsp_kernels.hh"
#include "media/quality.hh"

namespace commguard::apps
{

using namespace streamit;

namespace
{

constexpr int numChannels = 4;
constexpr float channelWeight = 1.0f / numChannels;
constexpr int firTaps = 32;

/** Per-channel arrival delays of the simulated wavefront. */
constexpr int arrivalDelay[numChannels] = {0, 3, 6, 9};
constexpr int maxDelay = 9;

/** Steering delay applied by channel c to re-align the wavefront. */
int
steeringDelay(int channel)
{
    return maxDelay - arrivalDelay[channel];
}

/**
 * Per-channel interpolation FIR (windowed-sinc lowpass with the
 * channel weight folded in) -- the StreamIt beamformer's per-channel
 * filtering stage; this is also what gives each thread the paper's
 * ~72-instruction frame computations.
 */
std::vector<float>
channelFirTaps()
{
    const double pi = std::acos(-1.0);
    const double cutoff = 0.22;  // Normalized passband edge.
    const double mid = (firTaps - 1) / 2.0;
    std::vector<float> taps(firTaps);
    for (int n = 0; n < firTaps; ++n) {
        const double k = n - mid;
        double ideal;
        if (std::fabs(k) < 1e-9)
            ideal = 2 * cutoff;
        else
            ideal = std::sin(2 * pi * cutoff * k) / (pi * k);
        const double window =
            0.54 - 0.46 * std::cos(2 * pi * n / (firTaps - 1));
        taps[n] = static_cast<float>(ideal * window * channelWeight);
    }
    return taps;
}

/**
 * Simulated 4-sensor capture of a wavefront: each channel hears the
 * source delayed by its arrival delay plus independent sensor noise.
 * Returned interleaved (ch0, ch1, ch2, ch3 per sample instant).
 */
std::vector<float>
makeSensorCapture(int samples)
{
    const double pi = std::acos(-1.0);
    std::vector<float> source(samples);
    for (int i = 0; i < samples; ++i) {
        const double t = i / 16384.0;
        source[i] = static_cast<float>(
            0.6 * std::sin(2 * pi * 300.0 * t) +
            0.3 * std::sin(2 * pi * 880.0 * t + 0.7) +
            0.1 * std::sin(2 * pi * 2400.0 * t));
    }

    std::uint32_t noise_state = 0xdecafbadu;
    auto noise = [&noise_state] {
        noise_state = noise_state * 1664525u + 1013904223u;
        return static_cast<float>(noise_state >> 8) / 16777216.0f -
               0.5f;
    };

    std::vector<float> capture(
        static_cast<std::size_t>(samples) * numChannels);
    for (int i = 0; i < samples; ++i) {
        for (int c = 0; c < numChannels; ++c) {
            const int j = i - arrivalDelay[c];
            const float s = j >= 0 ? source[j] : 0.0f;
            capture[static_cast<std::size_t>(i) * numChannels + c] =
                s + 0.25f * noise();
        }
    }
    return capture;
}

/**
 * Bit-identical host model of the beamformer graph (same float ops in
 * the same order as the kernels).
 */
std::vector<float>
hostBeamformer(const std::vector<float> &capture, int samples)
{
    const std::vector<float> taps = channelFirTaps();

    // Per-channel state, zero-initialized like core-local memory.
    std::vector<std::vector<float>> buffers(numChannels);
    std::vector<std::vector<float>> fir(
        numChannels, std::vector<float>(firTaps, 0.0f));
    std::vector<int> index(numChannels, 0);
    for (int c = 0; c < numChannels; ++c)
        buffers[c].assign(std::max(steeringDelay(c), 1), 0.0f);

    std::vector<float> output(samples);
    for (int i = 0; i < samples; ++i) {
        float filtered[numChannels];
        for (int c = 0; c < numChannels; ++c) {
            const float x =
                capture[static_cast<std::size_t>(i) * numChannels + c];
            float delayed;
            if (steeringDelay(c) == 0) {
                delayed = x;
            } else {
                delayed = buffers[c][index[c]];
                buffers[c][index[c]] = x;
                index[c] = (index[c] + 1) % steeringDelay(c);
            }
            // FIR shift + MAC in kernel order.
            for (int t = firTaps - 1; t >= 1; --t)
                fir[c][t] = fir[c][t - 1];
            fir[c][0] = delayed;
            float acc = 0.0f;
            for (int t = 0; t < firTaps; ++t)
                acc = acc + fir[c][t] * taps[t];
            filtered[c] = acc;
        }
        // joinSum pops port 0 first, then adds ports 1..3 in order.
        float acc = filtered[0];
        for (int c = 1; c < numChannels; ++c)
            acc = acc + filtered[c];
        // Sink clamp (kernel order: fmax then fmin).
        acc = std::fmax(acc, -2.0f);
        acc = std::fmin(acc, 2.0f);
        output[i] = acc;
    }
    return output;
}

} // namespace

App
makeBeamformerApp(int samples)
{
    App app;
    app.name = "audiobeamformer";
    app.spec = detail::specJson("audiobeamformer",
                                {{"samples", Json(samples)}});

    const std::vector<float> capture = makeSensorCapture(samples);
    auto reference = std::make_shared<std::vector<float>>(
        hostBeamformer(capture, samples));

    StreamGraph &g = app.graph;
    const NodeId f0 = g.addFilter(
        {"F0_unpack", {numChannels}, {numChannels}, [](int firings) {
             return kernels::buildPassthrough("F0_unpack", numChannels,
                                              firings);
         }});
    const NodeId f1 = g.addFilter(
        {"F1_split", {numChannels}, {1, 1, 1, 1}, [](int firings) {
             return kernels::buildSplitRoundRobin(numChannels,
                                                  firings);
         }});
    const std::vector<float> taps = channelFirTaps();
    NodeId channels[numChannels];
    for (int c = 0; c < numChannels; ++c) {
        const std::string name = "CH" + std::to_string(c);
        const int delay = steeringDelay(c);
        channels[c] = g.addFilter(
            {name, {1}, {1}, [name, delay, taps](int firings) {
                 return kernels::buildBeamChannel(name, delay, taps,
                                                  firings);
             }});
    }
    const NodeId f6 = g.addFilter(
        {"F6_sum", {1, 1, 1, 1}, {1}, [](int firings) {
             return kernels::buildJoinSum(numChannels, firings);
         }});
    // The sink formats samples for the output device, clamping to its
    // +-2.0 full-scale range (as jpeg clamps to bytes, mp3 to PCM16).
    const NodeId f7 = g.addFilter(
        {"F7_sink", {1}, {1}, [](int firings) {
             return kernels::buildClampRange("F7_sink", -2.0f, 2.0f, 1,
                                             firings);
         }});

    g.setExternalInput(f0, 0);
    g.connect(f0, 0, f1, 0);
    for (int c = 0; c < numChannels; ++c) {
        g.connect(f1, c, channels[c], 0);
        g.connect(channels[c], 0, f6, c);
    }
    g.connect(f6, 0, f7, 0);
    g.setExternalOutput(f7, 0);

    app.input = wordsFromFloats(capture);
    app.steadyIterations = static_cast<Count>(samples);
    app.errorFreeQualityDb =
        std::numeric_limits<double>::infinity();
    app.quality = [reference](const std::vector<Word> &output) {
        return media::snrDb(*reference, floatsFromWords(output));
    };
    return app;
}

} // namespace commguard::apps
