#include "apps/random_graph_app.hh"

#include "common/logging.hh"
#include "kernels/basic.hh"
#include "kernels/dsp_kernels.hh"
#include "streamit/schedule.hh"

namespace commguard::apps
{

namespace
{

using namespace streamit;

FilterSpec
passFilter(const std::string &name, int items)
{
    return FilterSpec{name,
                      {items},
                      {items},
                      [name, items](int firings) {
                          return kernels::buildPassthrough(
                              name, items, firings);
                      }};
}

} // namespace

StreamGraph
randomStreamGraph(Rng &rng, const RandomGraphOptions &options)
{
    StreamGraph g;

    const int stages = options.stages < 1 ? 1 : options.stages;
    const int max_granularity =
        options.maxGranularity < 1 ? 1 : options.maxGranularity;
    NodeId prev = -1;
    int node_counter = 0;

    auto fresh_name = [&node_counter](const char *stem) {
        return std::string(stem) + std::to_string(node_counter++);
    };

    for (int s = 0; s < stages; ++s) {
        const int kind = static_cast<int>(rng.below(3));
        if (kind == 2 && s > 0 && options.allowSplitJoin) {
            // Split-join sandwich: duplicate to 2 branches, sum.
            const NodeId split = g.addFilter(
                {fresh_name("split"), {1}, {1, 1}, [](int firings) {
                     return kernels::buildSplitDuplicate(2, firings);
                 }});
            const NodeId bra =
                g.addFilter(passFilter(fresh_name("bra"), 1));
            const NodeId brb =
                g.addFilter(passFilter(fresh_name("brb"), 1));
            const NodeId join = g.addFilter(
                {fresh_name("join"), {1, 1}, {1}, [](int firings) {
                     return kernels::buildJoinSum(2, firings);
                 }});
            g.connect(split, 0, bra, 0);
            g.connect(split, 1, brb, 0);
            g.connect(bra, 0, join, 0);
            g.connect(brb, 0, join, 1);
            if (prev >= 0)
                g.connect(prev, 0, split, 0);
            else
                g.setExternalInput(split, 0);
            prev = join;
        } else {
            // Pass-through with a random granularity.
            const int items =
                1 + static_cast<int>(rng.below(
                        static_cast<std::uint32_t>(max_granularity)));
            const NodeId node =
                g.addFilter(passFilter(fresh_name("p"), items));
            if (prev >= 0)
                g.connect(prev, 0, node, 0);
            else
                g.setExternalInput(node, 0);
            prev = node;
        }
    }
    g.setExternalOutput(prev, 0);
    return g;
}

App
makeRandomGraphApp(std::uint64_t graph_seed,
                   const RandomGraphOptions &options, Count iterations,
                   Count *expected_output_items)
{
    Rng rng(graph_seed);

    App app;
    app.name = "fuzz_" + std::to_string(graph_seed);
    app.spec = detail::specJson(
        "random-graph",
        {{"allow_split_join", Json(options.allowSplitJoin)},
         {"graph_seed", Json(Count{graph_seed})},
         {"iterations", Json(iterations)},
         {"max_granularity", Json(options.maxGranularity)},
         {"stages", Json(options.stages)}});
    app.graph = randomStreamGraph(rng, options);
    app.steadyIterations = iterations;

    const std::string structure = app.graph.validateStructure();
    if (!structure.empty()) {
        panic("random_graph_app: generated graph is invalid: " +
              structure);
    }
    const streamit::RepetitionVector reps =
        streamit::solveRepetitions(app.graph);
    if (!reps.ok) {
        panic("random_graph_app: generated graph is unbalanced: " +
              reps.error);
    }
    const streamit::FrameAnalysis frames =
        streamit::analyzeFrames(app.graph, reps);
    if (expected_output_items != nullptr)
        *expected_output_items = frames.outputItemsPerFrame * iterations;

    app.input.resize(frames.inputItemsPerFrame * iterations);
    for (std::size_t i = 0; i < app.input.size(); ++i)
        app.input[i] = floatToWord(static_cast<float>(i % 17) * 0.25f);

    // Fuzz invariants compare raw output words and metric counters;
    // a dB figure is meaningless for a synthetic graph.
    app.quality = [](const std::vector<Word> &) { return 0.0; };
    app.errorFreeQualityDb = 0.0;
    return app;
}

} // namespace commguard::apps
