/**
 * @file
 * Seeded random StreamIt graph generation for stress testing.
 *
 * The generator produces rate-consistent pipelines — chains of
 * pass-through filters with random granularities, interleaved with
 * duplicate-split/sum-join sandwiches — exactly the shapes
 * tests/random_graph_test.cc exercises, packaged as a library so the
 * fuzz harness (src/sim/fuzz.hh, tools/cg_fuzz) can draw the same
 * graphs. Everything is a pure function of the RNG state and options:
 * the same seed always produces the same graph, which is what makes a
 * fuzz case replayable from its seed alone.
 */

#ifndef COMMGUARD_APPS_RANDOM_GRAPH_APP_HH
#define COMMGUARD_APPS_RANDOM_GRAPH_APP_HH

#include <cstdint>

#include "apps/app.hh"
#include "common/rng.hh"

namespace commguard::apps
{

/** Shape knobs for the random graph generator. */
struct RandomGraphOptions
{
    int stages = 4;          //!< Pipeline stages (>= 1).
    int maxGranularity = 6;  //!< Max items per pass-through firing.
    bool allowSplitJoin = true;  //!< Emit split-join sandwiches.
};

/**
 * Generate one random rate-consistent stream graph. Consumes RNG
 * draws; a fixed seed and options yield a bit-identical graph.
 */
streamit::StreamGraph randomStreamGraph(Rng &rng,
                                        const RandomGraphOptions &options);

/**
 * Package a random graph as a runnable App: deterministic input
 * stream (@p iterations steady frames), a trivial quality metric (the
 * fuzz invariants compare raw output words and counters, not dB), and
 * the name "fuzz_<graph_seed>". When @p expected_output_items is
 * non-null it receives the error-free output item count
 * (outputItemsPerFrame * iterations) — the exactness invariant for
 * error-free runs.
 */
App makeRandomGraphApp(std::uint64_t graph_seed,
                       const RandomGraphOptions &options,
                       Count iterations,
                       Count *expected_output_items = nullptr);

} // namespace commguard::apps

#endif // COMMGUARD_APPS_RANDOM_GRAPH_APP_HH
