#include "common/stats.hh"

namespace commguard
{

Count
StatGroup::getPath(const std::string &path) const
{
    auto slash = path.find('/');
    if (slash == std::string::npos)
        return get(path);
    auto it = _children.find(path.substr(0, slash));
    if (it == _children.end())
        return 0;
    return it->second.getPath(path.substr(slash + 1));
}

Count
StatGroup::sumRecursive(const std::string &name) const
{
    Count total = get(name);
    for (const auto &[_, group] : _children)
        total += group.sumRecursive(name);
    return total;
}

void
StatGroup::merge(const StatGroup &other)
{
    for (const auto &[name, value] : other._counters)
        _counters[name] += value;
    for (const auto &[name, group] : other._children)
        child(name).merge(group);
}

void
StatGroup::clear()
{
    for (auto &[_, value] : _counters)
        value = 0;
    for (auto &[_, group] : _children)
        group.clear();
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    const std::string base = prefix.empty() ? _name : prefix;
    for (const auto &[name, value] : _counters)
        os << base << (base.empty() ? "" : "/") << name
           << " = " << value << "\n";
    for (const auto &[name, group] : _children)
        group.dump(os, base.empty() ? name : base + "/" + name);
}

} // namespace commguard
