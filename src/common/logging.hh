/**
 * @file
 * Minimal logging and error-termination helpers (gem5-style panic/fatal).
 *
 * panic() is for internal invariant violations (simulator bugs); fatal()
 * is for user-caused conditions (bad configuration). warn()/inform() are
 * advisory and never stop the simulation.
 */

#ifndef COMMGUARD_COMMON_LOGGING_HH
#define COMMGUARD_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace commguard
{

/** Print a formatted message with a severity prefix to stderr. */
void logMessage(const char *prefix, const std::string &msg);

/** Abort with a message: an invariant inside the simulator broke. */
[[noreturn]] void panic(const std::string &msg);

/** Exit(1) with a message: the user supplied an impossible config. */
[[noreturn]] void fatal(const std::string &msg);

/** Advisory warning; execution continues. */
void warn(const std::string &msg);

/** Informational status message; execution continues. */
void inform(const std::string &msg);

} // namespace commguard

#endif // COMMGUARD_COMMON_LOGGING_HH
