/**
 * @file
 * Minimal logging and error-termination helpers (gem5-style panic/fatal).
 *
 * panic() is for internal invariant violations (simulator bugs); fatal()
 * is for user-caused conditions (bad configuration). warn()/inform() are
 * advisory and never stop the simulation.
 *
 * Every message funnels through one process-wide sink (stderr by
 * default, replaceable via setLogSink() so tests can capture output).
 * Advisory messages are rate-limited per distinct message text: after
 * kLogRepeatLimit repeats a final "suppressed" notice is emitted and
 * further identical messages are dropped, so a runaway per-slice
 * warning cannot flood stderr during long sweeps. panic()/fatal() are
 * never limited. All entry points are thread-safe (sweep workers warn
 * concurrently).
 */

#ifndef COMMGUARD_COMMON_LOGGING_HH
#define COMMGUARD_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>

namespace commguard
{

/** Destination for formatted log messages. */
using LogSink = std::function<void(const char *prefix,
                                   const std::string &msg)>;

/**
 * Replace the process-wide log sink (nullptr restores the default
 * stderr writer). Returns nothing; tests should restore the default
 * when done.
 */
void setLogSink(LogSink sink);

/**
 * Install a hook invoked (under the log lock) immediately before a
 * message is written to the *default stderr* sink; custom sinks
 * installed via setLogSink() bypass it. Used by the TTY status line
 * (sim::StatusLine) to clear its in-place \r line so a warn()/inform()
 * emitted while a board is live lands on a clean row instead of
 * splicing into the status text. nullptr uninstalls. The hook must not
 * call back into the logging API (the log lock is held).
 */
void setLogPreEmitHook(std::function<void()> hook);

/** Identical advisory messages printed before suppression kicks in. */
inline constexpr unsigned kLogRepeatLimit = 10;

/** Forget all per-message repeat counts (test isolation). */
void resetLogRateLimits();

/** Print a formatted message with a severity prefix to the sink. */
void logMessage(const char *prefix, const std::string &msg);

/** Abort with a message: an invariant inside the simulator broke. */
[[noreturn]] void panic(const std::string &msg);

/** Exit(1) with a message: the user supplied an impossible config. */
[[noreturn]] void fatal(const std::string &msg);

/** Advisory warning; execution continues. Rate-limited. */
void warn(const std::string &msg);

/** Informational status message; execution continues. Rate-limited. */
void inform(const std::string &msg);

} // namespace commguard

#endif // COMMGUARD_COMMON_LOGGING_HH
