#include "common/ecc.hh"

#include <bit>

namespace commguard
{

namespace
{

// Codeword layout: bit positions 1..38 use classic Hamming numbering
// (check bits at powers of two: 1, 2, 4, 8, 16, 32; data bits fill the
// remaining 32 positions in increasing order). Bit position 0 holds the
// overall parity bit that upgrades Hamming SEC to SECDED.

constexpr int kPositions = 39;

bool
isPowerOfTwo(int x)
{
    return (x & (x - 1)) == 0;
}

/** Map data bit index (0..31) to its Hamming position (non-power-of-2). */
constexpr int
dataPosition(int data_bit)
{
    int pos = 0;
    int seen = -1;
    for (pos = 1; pos < kPositions; ++pos) {
        if (isPowerOfTwo(pos))
            continue;
        if (++seen == data_bit)
            return pos;
    }
    return -1;
}

} // namespace

EccWord
eccEncode(Word data)
{
    EccWord code = 0;

    // Place data bits.
    for (int i = 0; i < 32; ++i) {
        if ((data >> i) & 1u)
            code |= EccWord{1} << dataPosition(i);
    }

    // Compute Hamming check bits (positions 1,2,4,8,16,32): check bit at
    // position p covers every position whose index has bit p set.
    for (int p = 1; p < kPositions; p <<= 1) {
        int parity = 0;
        for (int pos = 1; pos < kPositions; ++pos) {
            if ((pos & p) && !isPowerOfTwo(pos))
                parity ^= static_cast<int>((code >> pos) & 1u);
        }
        if (parity)
            code |= EccWord{1} << p;
    }

    // Overall parity over positions 1..38 stored at position 0.
    int overall = std::popcount(code >> 1) & 1;
    if (overall)
        code |= 1u;

    return code;
}

EccDecode
eccDecode(EccWord code)
{
    // Recompute the syndrome.
    int syndrome = 0;
    for (int p = 1; p < kPositions; p <<= 1) {
        int parity = 0;
        for (int pos = 1; pos < kPositions; ++pos) {
            if (pos & p)
                parity ^= static_cast<int>((code >> pos) & 1u);
        }
        if (parity)
            syndrome |= p;
    }

    const int overall = std::popcount(code) & 1;

    EccDecode result;
    if (syndrome == 0 && overall == 0) {
        result.status = EccStatus::Clean;
    } else if (overall == 1) {
        // Odd number of flipped bits: correct the indicated position
        // (syndrome 0 with odd parity means the parity bit itself).
        if (syndrome < kPositions)
            code ^= EccWord{1} << syndrome;
        result.status = EccStatus::Corrected;
    } else {
        // Even number of flips with nonzero syndrome: uncorrectable.
        result.status = EccStatus::Uncorrectable;
    }

    // Extract data bits.
    Word data = 0;
    int seen = -1;
    for (int pos = 1; pos < kPositions; ++pos) {
        if (isPowerOfTwo(pos))
            continue;
        ++seen;
        if ((code >> pos) & 1u)
            data |= Word{1} << seen;
    }
    result.data = data;
    return result;
}

EccWord
eccFlipBit(EccWord code, int bit)
{
    return code ^ (EccWord{1} << bit);
}

} // namespace commguard
