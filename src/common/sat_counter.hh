/**
 * @file
 * Saturating counter used to down-scale frame computation frequency.
 *
 * Paper §5.4: "CommGuard can increase the application-wide frame
 * definitions by downscaling the frame computation frequencies through
 * one saturating counter for frame computation invocations." A counter
 * with limit N makes every N-th frame-computation event visible to the
 * header inserter / alignment manager, multiplying the effective frame
 * size by N.
 *
 * The counter fires on the *first* event of each group of N (events
 * 1, N+1, 2N+1, ...) because frame headers are inserted at frame
 * *starts* (paper §4.1).
 */

#ifndef COMMGUARD_COMMON_SAT_COUNTER_HH
#define COMMGUARD_COMMON_SAT_COUNTER_HH

#include "common/types.hh"

namespace commguard
{

/**
 * Counts events and reports one firing per group of @c limit events.
 */
class SaturatingCounter
{
  public:
    /** @param limit Events per firing; values < 1 are clamped to 1. */
    explicit SaturatingCounter(Count limit = 1) : _limit(limit ? limit : 1)
    {}

    /**
     * Record one event.
     * @return true on the first event of each group of limit() events.
     */
    bool
    tick()
    {
        const bool fire = (_value == 0);
        if (++_value >= _limit)
            _value = 0;
        return fire;
    }

    /** Restart the current group (next tick() fires). */
    void reset() { _value = 0; }

    /** Events per firing. */
    Count limit() const { return _limit; }

    /** Events seen since the last firing. */
    Count value() const { return _value; }

  private:
    Count _limit;
    Count _value = 0;
};

} // namespace commguard

#endif // COMMGUARD_COMMON_SAT_COUNTER_HH
