/**
 * @file
 * A small reusable fixed-size thread pool for embarrassingly parallel
 * host-side work (the experiment engine's sweep fan-out).
 *
 * Design constraints, in order:
 *  - determinism of the *simulation* must not depend on the pool: jobs
 *    carry their own seeded RNG state and never share mutable
 *    simulation objects, so scheduling order only affects wall-clock;
 *  - a pool of size <= 1 executes jobs inline on the submitting thread
 *    (no worker threads are ever spawned), so `CG_JOBS=1` restores the
 *    exact sequential execution environment, stack traces included;
 *  - the pool owns its worker threads and joins them in the
 *    destructor; jobs must not outlive the pool.
 */

#ifndef COMMGUARD_COMMON_THREAD_POOL_HH
#define COMMGUARD_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace commguard
{

/**
 * Fixed-size FIFO thread pool.
 */
class ThreadPool
{
  public:
    /**
     * Create a pool with @p threads workers. With @p threads <= 1 no
     * worker threads are spawned and submit() runs the job inline.
     */
    explicit ThreadPool(unsigned threads);

    /** Drains outstanding jobs, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue one job (runs it inline when the pool is sequential).
     * A throwing job never propagates from submit(): the first
     * exception of the batch is captured — identically for the inline
     * and the worker path — and rethrown from wait().
     */
    void submit(std::function<void()> job);

    /**
     * Block until every submitted job has finished. If any job threw,
     * rethrows the first captured exception (subsequent exceptions of
     * the same batch are dropped); the pool stays usable afterwards.
     */
    void wait();

    /** Worker threads backing the pool (0 means inline execution). */
    unsigned threadCount() const
    {
        return static_cast<unsigned>(_workers.size());
    }

    /**
     * Job-slot count the pool was created with (>= 1); the effective
     * parallelism of a sweep run through this pool.
     */
    unsigned jobs() const { return _jobs; }

    /**
     * Default pool width: the CG_JOBS environment variable when set to
     * a positive integer, otherwise std::thread::hardware_concurrency()
     * (minimum 1).
     */
    static unsigned defaultJobs();

  private:
    class ActiveGuard;

    void workerLoop();

    /** Capture the in-flight exception as the batch's first, if any. */
    void recordException();

    unsigned _jobs;
    std::vector<std::thread> _workers;

    std::mutex _mutex;
    std::condition_variable _workAvailable;
    std::condition_variable _allIdle;
    std::deque<std::function<void()>> _queue;
    unsigned _active = 0;  //!< Jobs currently executing on workers.
    bool _stopping = false;
    std::exception_ptr _pendingException;  //!< First job failure.
};

} // namespace commguard

#endif // COMMGUARD_COMMON_THREAD_POOL_HH
