/**
 * @file
 * A small reusable fixed-size thread pool for embarrassingly parallel
 * host-side work (the experiment engine's sweep fan-out).
 *
 * Design constraints, in order:
 *  - determinism of the *simulation* must not depend on the pool: jobs
 *    carry their own seeded RNG state and never share mutable
 *    simulation objects, so scheduling order only affects wall-clock;
 *  - a pool of size <= 1 executes jobs inline on the submitting thread
 *    (no worker threads are ever spawned), so `CG_JOBS=1` restores the
 *    exact sequential execution environment, stack traces included;
 *  - the pool owns its worker threads and joins them in the
 *    destructor; jobs must not outlive the pool.
 *
 * Two submission paths:
 *  - submit(): the legacy one-job-at-a-time FIFO (mutex + condvar per
 *    job). Kept for ad-hoc host work.
 *  - submitBatch(): the sweep hot path. The batch installs one shared
 *    body and a single atomic index counter; workers *claim* indices
 *    with a lock-free fetch_add and never touch the pool mutex between
 *    indices. One notify_all wakes the pool per batch — no per-job
 *    heap-allocated std::function, no per-job lock, no thundering
 *    herd. See DESIGN.md "Sweep scaling".
 */

#ifndef COMMGUARD_COMMON_THREAD_POOL_HH
#define COMMGUARD_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hh"

namespace commguard
{

/**
 * Fixed-size FIFO thread pool with a lock-free batch path.
 */
class ThreadPool
{
  public:
    /**
     * One batch job: invoked once per index in [0, count) with the
     * claiming worker's slot id in [0, jobs()) — stable per worker
     * thread (0 on the inline path), so callers can key per-worker
     * scratch state off it.
     */
    using BatchBody = std::function<void(unsigned worker,
                                         std::size_t index)>;

    /**
     * Host-side scheduling counters (see docs/METRICS.md, "pool/").
     * Monotonic over the pool's lifetime; read via stats(). These are
     * engine diagnostics — they depend on host scheduling and job
     * count, so they are *never* folded into per-run MetricSnapshots
     * (whose bytes must be independent of CG_JOBS).
     */
    struct Stats
    {
        Count batchesSubmitted = 0;  //!< submitBatch() calls.
        Count tasksStolen = 0;   //!< Batch indices claimed by workers.
        Count jobsQueued = 0;    //!< Legacy submit() jobs enqueued.
        Count queueWaits = 0;    //!< Times a worker blocked for work.
        Count idleWakeups = 0;   //!< Wakeups that found nothing to do.
    };

    /**
     * Create a pool with @p threads workers. With @p threads <= 1 no
     * worker threads are spawned and submit() runs the job inline.
     */
    explicit ThreadPool(unsigned threads);

    /** Drains outstanding jobs, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue one job (runs it inline when the pool is sequential).
     * A throwing job never propagates from submit(): the first
     * exception of the batch is captured — identically for the inline
     * and the worker path — and rethrown from wait().
     */
    void submit(std::function<void()> job);

    /**
     * Run @p body for every index in [0, count) across the pool and
     * block until all indices completed. Workers claim indices from a
     * single atomic counter; the submitting thread sleeps (it is not a
     * worker), so effective parallelism is exactly jobs(). On a
     * sequential pool the indices run inline, in order, on the calling
     * thread with worker id 0.
     *
     * Exception contract matches submit(): a throwing index never
     * aborts the batch — the first exception is captured, every other
     * index still runs, and wait() rethrows. Only one batch can be
     * active at a time (enforced internally); submit() jobs may be
     * queued alongside and are picked up when no batch work is open.
     */
    void submitBatch(std::size_t count, const BatchBody &body);

    /**
     * Block until every submitted job has finished. If any job threw,
     * rethrows the first captured exception (subsequent exceptions of
     * the same batch are dropped); the pool stays usable afterwards.
     */
    void wait();

    /** Worker threads backing the pool (0 means inline execution). */
    unsigned threadCount() const
    {
        return static_cast<unsigned>(_workers.size());
    }

    /**
     * Job-slot count the pool was created with (>= 1); the effective
     * parallelism of a sweep run through this pool.
     */
    unsigned jobs() const { return _jobs; }

    /** Snapshot of the scheduling counters (any thread, racy-fresh). */
    Stats stats() const;

    /** Reset the scheduling counters to zero. */
    void resetStats();

    /**
     * Default pool width: the CG_JOBS environment variable when set to
     * a positive integer, otherwise std::thread::hardware_concurrency()
     * (minimum 1).
     */
    static unsigned defaultJobs();

  private:
    class ActiveGuard;

    void workerLoop(unsigned worker);

    /**
     * Claim-and-run loop of one worker's share of the open batch.
     * Called WITHOUT the pool mutex; @p body/@p size were captured
     * under it and stay valid because submitBatch() cannot clear the
     * batch until _batchWorkersIn drops back to zero.
     */
    void runBatchShare(unsigned worker, const BatchBody &body,
                       std::size_t size);

    /** Batch indices still unclaimed? (call with _mutex held). */
    bool batchOpenLocked() const
    {
        return _batchBody != nullptr &&
               _batchNext.load(std::memory_order_relaxed) < _batchSize;
    }

    /** Capture the in-flight exception as the batch's first, if any. */
    void recordException();

    unsigned _jobs;
    std::vector<std::thread> _workers;

    std::mutex _mutex;
    std::condition_variable _workAvailable;
    std::condition_variable _allIdle;
    std::deque<std::function<void()>> _queue;
    unsigned _active = 0;  //!< Jobs currently executing on workers.
    bool _stopping = false;
    std::exception_ptr _pendingException;  //!< First job failure.

    // ------------------------------------------------------------------
    // Batch state: installed/cleared by submitBatch() under _mutex;
    // claimed lock-free by workers through _batchNext.
    // ------------------------------------------------------------------
    const BatchBody *_batchBody = nullptr;  //!< Null: no open batch.
    std::size_t _batchSize = 0;
    unsigned _batchWorkersIn = 0;  //!< Workers inside runBatchShare().
    std::atomic<std::size_t> _batchNext{0};     //!< Next unclaimed index.
    std::atomic<std::size_t> _batchPending{0};  //!< Indices not yet done.

    // Scheduling counters (relaxed; diagnostics only).
    std::atomic<Count> _statBatches{0};
    std::atomic<Count> _statStolen{0};
    std::atomic<Count> _statJobs{0};
    std::atomic<Count> _statQueueWaits{0};
    std::atomic<Count> _statIdleWakeups{0};
};

} // namespace commguard

#endif // COMMGUARD_COMMON_THREAD_POOL_HH
