/**
 * @file
 * In-run time-series sampling of the metric registry.
 *
 * The per-run MetricSnapshot says what a run did *in total*; the
 * TelemetryRecorder says how that total accrued *over simulated time*.
 * The machine's scheduler samples the registry on a slice cadence
 * (MachineConfig::telemetrySlices); each sample stores only the
 * counters that moved since the previous one as sparse
 * (counter-index, increment) pairs — per-interval rates, not running
 * totals — in a bounded ring.
 *
 * When the ring overflows, the oldest sample is folded into a base
 * vector instead of being discarded, so the identity
 *
 *     base + sum(retained deltas) == the registry's current values
 *
 * holds for the whole run regardless of how many samples were dropped.
 * That conservation property is what lets the export layer, the
 * jsonl_check --telemetry validator and the tests reconcile the final
 * sample 1:1 against the run's MetricSnapshot.
 *
 * Determinism: sampling is keyed on the deterministic scheduler round
 * counter and reads only simulation state, so the recorded series (and
 * everything serialized from it) is bitwise identical for any CG_JOBS.
 * Host-side pool/ statistics are deliberately NOT sampled here; they
 * join sweep-level telemetry only (docs/TELEMETRY.md).
 */

#ifndef COMMGUARD_COMMON_TELEMETRY_HH
#define COMMGUARD_COMMON_TELEMETRY_HH

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.hh"
#include "common/types.hh"

namespace commguard::telemetry
{

/**
 * Version of the telemetry record schema (the JSONL stream written
 * under CG_TELEMETRY_OUT). Independent of metrics::kSchemaVersion:
 * the sample layout can evolve without invalidating run records.
 */
constexpr int kTelemetrySchemaVersion = 1;

/** Recorder configuration (set through MachineConfig). */
struct TelemetryConfig
{
    /** Sample every N scheduler rounds; 0 disables sampling. */
    Count sampleSlices = 0;

    /** Retained interval samples before the ring folds into base. */
    std::size_t ringCapacity = 512;
};

/** One delta-compressed interval sample. */
struct TelemetrySample
{
    Count index = 0;   //!< 0-based over every sample taken this run.
    Count slice = 0;   //!< Scheduler round at sampling time.
    Cycle cycles = 0;  //!< Total machine cycles at sampling time.
    bool final = false;  //!< Recorded at end of run.

    /** (counter index, increment since previous sample), sparse and
     *  index-sorted. Counter indices address names(). */
    std::vector<std::pair<std::uint32_t, Count>> deltas;
};

/**
 * Bounded delta-ring recorder over one run's metrics::Registry.
 * Owned by the Multicore (shared so RunOutcome can keep it alive past
 * the machine, like the event trace).
 */
class TelemetryRecorder
{
  public:
    explicit TelemetryRecorder(TelemetryConfig config)
        : _config(config)
    {
        if (_config.ringCapacity == 0)
            _config.ringCapacity = 1;
    }

    /**
     * Snapshot @p registry and record the per-counter increments since
     * the previous sample. The first call fixes the counter-name table
     * (every component has registered by the time the scheduler runs).
     * @p final marks the end-of-run sample the export layer reconciles
     * against the run's MetricSnapshot.
     */
    void sample(const metrics::Registry &registry, Count slice,
                Cycle cycles, bool final = false);

    const TelemetryConfig &config() const { return _config; }

    /** Counter-name table (sorted, fixed at the first sample). */
    const std::vector<std::string> &names() const { return _names; }

    /** Retained interval samples, oldest first. */
    const std::deque<TelemetrySample> &samples() const
    {
        return _samples;
    }

    /** Every sample taken, including ones folded into the base. */
    Count samplesTaken() const { return _taken; }

    /** Samples folded into the base when the ring overflowed. */
    Count droppedSamples() const { return _dropped; }

    /** Per-counter totals of the folded (dropped) samples. */
    const std::vector<Count> &base() const { return _base; }

    /**
     * base + every retained delta: the registry's counter values as of
     * the last sample. With a final sample recorded this reconciles
     * 1:1 with the run's MetricSnapshot (conservation).
     */
    std::vector<Count> cumulative() const;

  private:
    TelemetryConfig _config;
    std::vector<std::string> _names;
    std::vector<Count> _previous;  //!< Values at the last sample.
    std::vector<Count> _base;      //!< Folded-away sample totals.
    std::deque<TelemetrySample> _samples;
    Count _taken = 0;
    Count _dropped = 0;
};

} // namespace commguard::telemetry

#endif // COMMGUARD_COMMON_TELEMETRY_HH
