/**
 * @file
 * Unified reliability-observability registry.
 *
 * Every observable the paper's evaluation reports — CommGuard
 * suboperations (Tables 2-3), realignment events (Figs. 7-8), memory
 * traffic (Fig. 12), watchdog and timeout activity — is a named, typed
 * metric registered here. The design splits responsibilities so the
 * hot path stays free:
 *
 *  - Components own their counters as plain struct members of type
 *    metrics::Counter (a transparent wrapper over a 64-bit count, so
 *    `++counters.loads` compiles to the same single increment as
 *    before) and *link* them into the per-run Registry by name at
 *    construction time.
 *  - The Registry is a read-only directory: it never sits on an
 *    increment path. At end of run it is flattened into one immutable
 *    MetricSnapshot — the single source every reporting layer
 *    (RunOutcome, JSONL export, BENCH_*.json) reads from.
 *
 * Naming convention (slash-separated, stable — see docs/METRICS.md):
 *    node/<core>/<counter>     per-core execution events
 *    cg/<core>/<counter>       per-core CommGuard suboperations
 *    cg/<core>/amState/<state> AM occupancy histogram buckets
 *    queue/<name>/<counter>    per-queue events
 *    machine/<counter>         scheduler-level events
 *    run/<observable>          per-run results appended by the harness
 */

#ifndef COMMGUARD_COMMON_METRICS_HH
#define COMMGUARD_COMMON_METRICS_HH

#include <cstddef>
#include <deque>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/json.hh"
#include "common/types.hh"

namespace commguard::metrics
{

/**
 * Version of the snapshot/JSONL metric schema. Bump when the export
 * layout (key names, nesting, non-finite encoding) changes shape; the
 * schema self-check and parsers reject other versions.
 *
 * v2: the run-record descriptor key "mode" became "protection_mode"
 * (the value vocabulary is the protection registry's name set, which
 * grew "raw", "replicate" and "abft").
 */
constexpr int kSchemaVersion = 2;

/**
 * A monotonically increasing 64-bit event counter.
 *
 * Deliberately a transparent value type: components embed Counters
 * directly in their hot structs and increment through the member —
 * identical codegen to a raw Count field, no registry involvement.
 */
class Counter
{
  public:
    constexpr Counter() = default;

    Counter &
    operator++()
    {
        ++_value;
        return *this;
    }

    Counter
    operator++(int)
    {
        Counter old = *this;
        ++_value;
        return old;
    }

    Counter &
    operator+=(Count delta)
    {
        _value += delta;
        return *this;
    }

    /** Reads behave like a plain Count. */
    constexpr operator Count() const { return _value; }
    constexpr Count value() const { return _value; }

    void reset() { _value = 0; }

  private:
    Count _value = 0;
};

inline bool
operator==(const Counter &a, const Counter &b)
{
    return a.value() == b.value();
}

inline std::ostream &
operator<<(std::ostream &os, const Counter &c)
{
    return os << c.value();
}

/** An instantaneous double-valued observable. */
class Gauge
{
  public:
    void set(double value) { _value = value; }
    double value() const { return _value; }

  private:
    double _value = 0.0;
};

/**
 * Fixed-bucket labeled histogram (e.g. AM state occupancy). The bucket
 * set is closed at construction; add() indexes by position so hot
 * paths never touch the labels.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<std::string> bucket_names)
        : _names(std::move(bucket_names)), _counts(_names.size(), 0)
    {}

    void
    add(std::size_t bucket, Count delta = 1)
    {
        _counts[bucket] += delta;
    }

    Count count(std::size_t bucket) const { return _counts[bucket]; }
    std::size_t buckets() const { return _names.size(); }
    const std::vector<std::string> &names() const { return _names; }

    Count total() const;

  private:
    std::vector<std::string> _names;
    std::vector<Count> _counts;
};

/**
 * Immutable flattened view of a registry at one instant: the per-run
 * record every reporting layer consumes. Entries are sorted by name,
 * so equal snapshots serialize byte-identically.
 */
class MetricSnapshot
{
  public:
    int schemaVersion = kSchemaVersion;

    /** Counter (and histogram-bucket) entry by full name; 0 if absent. */
    Count get(std::string_view name) const;

    /** Gauge entry by full name; 0.0 if absent. */
    double gauge(std::string_view name) const;

    bool hasCounter(std::string_view name) const;

    /**
     * Sum of every counter whose final path segment equals @p leaf —
     * the generic cross-component aggregation ("committedInsts" over
     * all nodes, "paddedItems" over all CommGuard modules, ...).
     * Adding a component anywhere in the stack automatically joins
     * the total; nothing is hand-copied.
     */
    Count total(std::string_view leaf) const;

    /** Insert or overwrite entries (harness-level run observables). */
    void setCounter(const std::string &name, Count value);
    void setGauge(const std::string &name, double value);

    const std::vector<std::pair<std::string, Count>> &counters() const
    {
        return _counters;
    }
    const std::vector<std::pair<std::string, double>> &gauges() const
    {
        return _gauges;
    }

    bool operator==(const MetricSnapshot &other) const = default;

  private:
    friend class Registry;

    // Sorted by name.
    std::vector<std::pair<std::string, Count>> _counters;
    std::vector<std::pair<std::string, double>> _gauges;
};

/** Serialize a snapshot as {"schema_version", "counters", "gauges"}. */
Json snapshotToJson(const MetricSnapshot &snapshot);

/**
 * Rebuild a snapshot from snapshotToJson() output (the object may
 * carry extra top-level keys, as the per-run JSONL records do).
 * Throws std::runtime_error on missing keys or schema mismatch.
 */
MetricSnapshot snapshotFromJson(const Json &json);

/**
 * Per-run metric directory.
 *
 * Holds (a) metrics it owns, created on demand by counter()/gauge()/
 * histogram(), and (b) links to component-owned metrics. Duplicate
 * names are disambiguated deterministically with a "#k" suffix so a
 * registry never silently merges two components.
 */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** Create (or fetch) an owned metric; the reference stays valid
     *  for the registry's lifetime. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name,
                         std::vector<std::string> bucket_names);

    /** Link a component-owned metric under @p name (not owned; the
     *  component must outlive the registry's last snapshot()). */
    void link(const std::string &name, const Counter &counter);
    void link(const std::string &name, const Count &raw);
    void link(const std::string &name, const Gauge &gauge);
    void link(const std::string &name, const Histogram &histogram);

    /** Number of registered metric bindings. */
    std::size_t size() const { return _bindings.size(); }

    /** Flatten every registered metric into a snapshot. */
    MetricSnapshot snapshot() const;

  private:
    enum class Kind : std::uint8_t
    {
        Counter,
        RawCount,
        Gauge,
        Histogram,
    };

    struct Binding
    {
        std::string name;
        Kind kind;
        const void *metric;
    };

    std::string uniqueName(std::string name);
    void bind(std::string name, Kind kind, const void *metric);

    // Deques: stable addresses under growth.
    std::deque<Counter> _ownedCounters;
    std::deque<Gauge> _ownedGauges;
    std::deque<Histogram> _ownedHistograms;

    std::vector<Binding> _bindings;
};

} // namespace commguard::metrics

#endif // COMMGUARD_COMMON_METRICS_HH
