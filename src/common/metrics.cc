#include "common/metrics.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace commguard::metrics
{

Count
Histogram::total() const
{
    Count sum = 0;
    for (const Count c : _counts)
        sum += c;
    return sum;
}

// ---------------------------------------------------------------------
// MetricSnapshot
// ---------------------------------------------------------------------

namespace
{

template <typename Entries>
auto
findEntry(Entries &entries, std::string_view name)
{
    return std::lower_bound(
        entries.begin(), entries.end(), name,
        [](const auto &entry, std::string_view key) {
            return std::string_view(entry.first) < key;
        });
}

template <typename V>
void
setEntry(std::vector<std::pair<std::string, V>> &entries,
         const std::string &name, V value)
{
    auto it = findEntry(entries, name);
    if (it != entries.end() && it->first == name)
        it->second = value;
    else
        entries.insert(it, {name, value});
}

} // namespace

Count
MetricSnapshot::get(std::string_view name) const
{
    const auto it = findEntry(_counters, name);
    return it != _counters.end() && it->first == name ? it->second : 0;
}

bool
MetricSnapshot::hasCounter(std::string_view name) const
{
    const auto it = findEntry(_counters, name);
    return it != _counters.end() && it->first == name;
}

double
MetricSnapshot::gauge(std::string_view name) const
{
    const auto it = findEntry(_gauges, name);
    return it != _gauges.end() && it->first == name ? it->second : 0.0;
}

Count
MetricSnapshot::total(std::string_view leaf) const
{
    Count sum = 0;
    for (const auto &[name, value] : _counters) {
        // The final path segment, with any "#k" duplicate-registration
        // suffix stripped so disambiguated counters still aggregate.
        std::string_view segment(name);
        if (const auto slash = segment.rfind('/');
            slash != std::string_view::npos)
            segment.remove_prefix(slash + 1);
        if (const auto hash = segment.find('#');
            hash != std::string_view::npos)
            segment = segment.substr(0, hash);
        if (segment == leaf)
            sum += value;
    }
    return sum;
}

void
MetricSnapshot::setCounter(const std::string &name, Count value)
{
    setEntry(_counters, name, value);
}

void
MetricSnapshot::setGauge(const std::string &name, double value)
{
    setEntry(_gauges, name, value);
}

Json
snapshotToJson(const MetricSnapshot &snapshot)
{
    Json counters = Json::object();
    for (const auto &[name, value] : snapshot.counters())
        counters[name] = Json(value);
    Json gauges = Json::object();
    for (const auto &[name, value] : snapshot.gauges())
        gauges[name] = Json(value);

    Json out = Json::object();
    out["schema_version"] =
        Json(static_cast<std::int64_t>(snapshot.schemaVersion));
    out["counters"] = std::move(counters);
    out["gauges"] = std::move(gauges);
    return out;
}

namespace
{

double
gaugeFromJson(const Json &value)
{
    if (value.isString()) {
        // Non-finite doubles are serialized as tagged strings.
        if (value.str() == "inf")
            return std::numeric_limits<double>::infinity();
        if (value.str() == "-inf")
            return -std::numeric_limits<double>::infinity();
        if (value.str() == "nan")
            return std::numeric_limits<double>::quiet_NaN();
        throw std::runtime_error("metric snapshot: bad gauge string \"" +
                                 value.str() + "\"");
    }
    return value.number();
}

} // namespace

MetricSnapshot
snapshotFromJson(const Json &json)
{
    const Json *version = json.find("schema_version");
    if (version == nullptr || !version->isNumber())
        throw std::runtime_error(
            "metric snapshot: missing schema_version");
    if (version->number() !=
        static_cast<double>(kSchemaVersion)) {
        throw std::runtime_error(
            "metric snapshot: unsupported schema_version " +
            std::to_string(version->number()));
    }

    const Json *counters = json.find("counters");
    const Json *gauges = json.find("gauges");
    if (counters == nullptr || !counters->isObject() ||
        gauges == nullptr || !gauges->isObject())
        throw std::runtime_error(
            "metric snapshot: missing counters/gauges objects");

    MetricSnapshot snapshot;
    snapshot.schemaVersion = kSchemaVersion;
    for (const auto &[name, value] : counters->obj())
        snapshot.setCounter(name, value.counter());
    for (const auto &[name, value] : gauges->obj())
        snapshot.setGauge(name, gaugeFromJson(value));
    return snapshot;
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

std::string
Registry::uniqueName(std::string name)
{
    const auto taken = [this](const std::string &candidate) {
        return std::any_of(_bindings.begin(), _bindings.end(),
                           [&](const Binding &b) {
                               return b.name == candidate;
                           });
    };
    if (!taken(name))
        return name;
    for (int k = 2;; ++k) {
        const std::string candidate =
            name + "#" + std::to_string(k);
        if (!taken(candidate))
            return candidate;
    }
}

void
Registry::bind(std::string name, Kind kind, const void *metric)
{
    _bindings.push_back(
        Binding{uniqueName(std::move(name)), kind, metric});
}

Counter &
Registry::counter(const std::string &name)
{
    for (const Binding &binding : _bindings) {
        if (binding.name == name && binding.kind == Kind::Counter) {
            for (Counter &owned : _ownedCounters) {
                if (&owned == binding.metric)
                    return owned;
            }
        }
    }
    _ownedCounters.emplace_back();
    bind(name, Kind::Counter, &_ownedCounters.back());
    return _ownedCounters.back();
}

Gauge &
Registry::gauge(const std::string &name)
{
    for (const Binding &binding : _bindings) {
        if (binding.name == name && binding.kind == Kind::Gauge) {
            for (Gauge &owned : _ownedGauges) {
                if (&owned == binding.metric)
                    return owned;
            }
        }
    }
    _ownedGauges.emplace_back();
    bind(name, Kind::Gauge, &_ownedGauges.back());
    return _ownedGauges.back();
}

Histogram &
Registry::histogram(const std::string &name,
                    std::vector<std::string> bucket_names)
{
    _ownedHistograms.emplace_back(std::move(bucket_names));
    bind(name, Kind::Histogram, &_ownedHistograms.back());
    return _ownedHistograms.back();
}

void
Registry::link(const std::string &name, const Counter &counter)
{
    bind(name, Kind::Counter, &counter);
}

void
Registry::link(const std::string &name, const Count &raw)
{
    bind(name, Kind::RawCount, &raw);
}

void
Registry::link(const std::string &name, const Gauge &gauge)
{
    bind(name, Kind::Gauge, &gauge);
}

void
Registry::link(const std::string &name, const Histogram &histogram)
{
    bind(name, Kind::Histogram, &histogram);
}

MetricSnapshot
Registry::snapshot() const
{
    MetricSnapshot out;
    for (const Binding &binding : _bindings) {
        switch (binding.kind) {
          case Kind::Counter:
            out.setCounter(
                binding.name,
                static_cast<const Counter *>(binding.metric)->value());
            break;
          case Kind::RawCount:
            out.setCounter(
                binding.name,
                *static_cast<const Count *>(binding.metric));
            break;
          case Kind::Gauge:
            out.setGauge(
                binding.name,
                static_cast<const Gauge *>(binding.metric)->value());
            break;
          case Kind::Histogram: {
            const auto &histogram =
                *static_cast<const Histogram *>(binding.metric);
            for (std::size_t b = 0; b < histogram.buckets(); ++b) {
                out.setCounter(binding.name + "/" +
                                   histogram.names()[b],
                               histogram.count(b));
            }
            break;
          }
        }
    }
    return out;
}

} // namespace commguard::metrics
