#include "common/telemetry.hh"

#include "common/logging.hh"

namespace commguard::telemetry
{

void
TelemetryRecorder::sample(const metrics::Registry &registry,
                          Count slice, Cycle cycles, bool final)
{
    const metrics::MetricSnapshot snapshot = registry.snapshot();
    const auto &counters = snapshot.counters();

    if (_names.empty()) {
        _names.reserve(counters.size());
        for (const auto &[name, value] : counters) {
            (void)value;
            _names.push_back(name);
        }
        _previous.assign(_names.size(), 0);
        _base.assign(_names.size(), 0);
    } else if (counters.size() != _names.size()) {
        // The registry's binding set is fixed once the machine is
        // assembled; a mid-run change would desynchronize the deltas.
        fatal("telemetry: registry changed shape mid-run (" +
              std::to_string(counters.size()) + " counters, table has " +
              std::to_string(_names.size()) + ")");
    }

    TelemetrySample interval;
    interval.index = _taken++;
    interval.slice = slice;
    interval.cycles = cycles;
    interval.final = final;
    for (std::size_t i = 0; i < counters.size(); ++i) {
        const Count value = counters[i].second;
        if (value != _previous[i]) {
            interval.deltas.emplace_back(
                static_cast<std::uint32_t>(i), value - _previous[i]);
            _previous[i] = value;
        }
    }
    _samples.push_back(std::move(interval));

    // Bounded memory: fold the oldest sample into the base instead of
    // discarding it, preserving base + retained == current.
    while (_samples.size() > _config.ringCapacity) {
        for (const auto &[index, delta] : _samples.front().deltas)
            _base[index] += delta;
        _samples.pop_front();
        ++_dropped;
    }
}

std::vector<Count>
TelemetryRecorder::cumulative() const
{
    std::vector<Count> totals = _base;
    for (const TelemetrySample &interval : _samples) {
        for (const auto &[index, delta] : interval.deltas)
            totals[index] += delta;
    }
    return totals;
}

} // namespace commguard::telemetry
