#include "common/thread_pool.hh"

#include <utility>

#include "common/env.hh"
#include "common/logging.hh"

namespace commguard
{

/**
 * RAII bookkeeping for one executing job: decrements the active count
 * and wakes wait()ers no matter how the job exits. Without this a
 * throwing job would leave _active forever nonzero and wait() would
 * hang.
 */
class ThreadPool::ActiveGuard
{
  public:
    explicit ActiveGuard(ThreadPool &pool) : _pool(pool) {}

    ~ActiveGuard()
    {
        std::lock_guard<std::mutex> lock(_pool._mutex);
        --_pool._active;
        if (_pool._queue.empty() && _pool._active == 0)
            _pool._allIdle.notify_all();
    }

  private:
    ThreadPool &_pool;
};

ThreadPool::ThreadPool(unsigned threads) : _jobs(threads < 1 ? 1 : threads)
{
    if (_jobs <= 1)
        return;
    _workers.reserve(_jobs);
    for (unsigned i = 0; i < _jobs; ++i)
        _workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(_mutex);
        _allIdle.wait(lock,
                      [this] { return _queue.empty() && _active == 0; });
        _stopping = true;
        if (_pendingException != nullptr) {
            // The destructor cannot rethrow; a job failure nobody
            // wait()ed for is still worth a diagnostic.
            _pendingException = nullptr;
            warn("thread_pool: discarding a job exception that was "
                 "never observed via wait()");
        }
    }
    _workAvailable.notify_all();
    for (std::thread &worker : _workers)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    if (_workers.empty()) {
        // Inline execution mirrors the worker contract: the exception
        // is captured and surfaces from wait(), not mid-batch from
        // whichever submit() happened to run the bad job.
        try {
            job();
        } catch (...) {
            recordException();
        }
        return;
    }
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _queue.push_back(std::move(job));
    }
    _workAvailable.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(_mutex);
    _allIdle.wait(lock,
                  [this] { return _queue.empty() && _active == 0; });
    if (_pendingException != nullptr) {
        std::exception_ptr pending =
            std::exchange(_pendingException, nullptr);
        lock.unlock();
        std::rethrow_exception(pending);
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _workAvailable.wait(lock, [this] {
                return _stopping || !_queue.empty();
            });
            if (_queue.empty())
                return;  // Stopping with nothing left to run.
            job = std::move(_queue.front());
            _queue.pop_front();
            ++_active;
        }
        ActiveGuard guard(*this);
        try {
            job();
        } catch (...) {
            recordException();
        }
    }
}

void
ThreadPool::recordException()
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (_pendingException == nullptr)
        _pendingException = std::current_exception();
}

unsigned
ThreadPool::defaultJobs()
{
    const long parsed = envLong("CG_JOBS", 0);
    if (parsed >= 1)
        return static_cast<unsigned>(parsed);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw < 1 ? 1 : hw;
}

} // namespace commguard
