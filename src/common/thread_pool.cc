#include "common/thread_pool.hh"

#include <utility>

#include "common/env.hh"
#include "common/logging.hh"

namespace commguard
{

/**
 * RAII bookkeeping for one executing job: decrements the active count
 * and wakes wait()ers no matter how the job exits. Without this a
 * throwing job would leave _active forever nonzero and wait() would
 * hang.
 */
class ThreadPool::ActiveGuard
{
  public:
    explicit ActiveGuard(ThreadPool &pool) : _pool(pool) {}

    ~ActiveGuard()
    {
        std::lock_guard<std::mutex> lock(_pool._mutex);
        --_pool._active;
        if (_pool._queue.empty() && _pool._active == 0)
            _pool._allIdle.notify_all();
    }

  private:
    ThreadPool &_pool;
};

ThreadPool::ThreadPool(unsigned threads) : _jobs(threads < 1 ? 1 : threads)
{
    if (_jobs <= 1)
        return;
    _workers.reserve(_jobs);
    for (unsigned i = 0; i < _jobs; ++i)
        _workers.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(_mutex);
        _allIdle.wait(lock, [this] {
            return _queue.empty() && _active == 0 &&
                   _batchBody == nullptr;
        });
        _stopping = true;
        if (_pendingException != nullptr) {
            // The destructor cannot rethrow; a job failure nobody
            // wait()ed for is still worth a diagnostic.
            _pendingException = nullptr;
            warn("thread_pool: discarding a job exception that was "
                 "never observed via wait()");
        }
    }
    _workAvailable.notify_all();
    for (std::thread &worker : _workers)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    _statJobs.fetch_add(1, std::memory_order_relaxed);
    if (_workers.empty()) {
        // Inline execution mirrors the worker contract: the exception
        // is captured and surfaces from wait(), not mid-batch from
        // whichever submit() happened to run the bad job.
        try {
            job();
        } catch (...) {
            recordException();
        }
        return;
    }
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _queue.push_back(std::move(job));
    }
    _workAvailable.notify_one();
}

void
ThreadPool::submitBatch(std::size_t count, const BatchBody &body)
{
    _statBatches.fetch_add(1, std::memory_order_relaxed);
    if (count == 0)
        return;

    if (_workers.empty()) {
        // Sequential pool: indices run inline, in submission order —
        // the exact CG_JOBS=1 environment, stack traces included.
        for (std::size_t i = 0; i < count; ++i) {
            try {
                body(0, i);
            } catch (...) {
                recordException();
            }
        }
        return;
    }

    {
        std::unique_lock<std::mutex> lock(_mutex);
        // One batch at a time (callers are single-threaded over the
        // pool, but a stale batch must never alias a new one).
        _allIdle.wait(lock, [this] { return _batchBody == nullptr; });
        _batchBody = &body;
        _batchSize = count;
        _batchNext.store(0, std::memory_order_relaxed);
        _batchPending.store(count, std::memory_order_relaxed);
    }
    // Exactly one wakeup for the whole batch: every worker claims
    // indices until the counter runs dry.
    _workAvailable.notify_all();

    std::unique_lock<std::mutex> lock(_mutex);
    _allIdle.wait(lock, [this] {
        return _batchPending.load(std::memory_order_acquire) == 0 &&
               _batchWorkersIn == 0;
    });
    // Safe to clear: every index completed and no worker still holds
    // a reference to the body (workers re-lock before leaving).
    _batchBody = nullptr;
    _batchSize = 0;
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(_mutex);
    _allIdle.wait(lock, [this] {
        return _queue.empty() && _active == 0 && _batchBody == nullptr;
    });
    if (_pendingException != nullptr) {
        std::exception_ptr pending =
            std::exchange(_pendingException, nullptr);
        lock.unlock();
        std::rethrow_exception(pending);
    }
}

void
ThreadPool::workerLoop(unsigned worker)
{
    std::unique_lock<std::mutex> lock(_mutex);
    for (;;) {
        bool waited = false;
        while (!_stopping && _queue.empty() && !batchOpenLocked()) {
            if (!waited) {
                waited = true;
                _statQueueWaits.fetch_add(1,
                                          std::memory_order_relaxed);
            } else {
                // Woken with nothing to do: either a spurious wakeup
                // or another worker drained the work first.
                _statIdleWakeups.fetch_add(1,
                                           std::memory_order_relaxed);
            }
            _workAvailable.wait(lock);
        }

        if (batchOpenLocked()) {
            // Capture the batch under the mutex; submitBatch() cannot
            // clear it while _batchWorkersIn > 0.
            const BatchBody *body = _batchBody;
            const std::size_t size = _batchSize;
            ++_batchWorkersIn;
            lock.unlock();
            runBatchShare(worker, *body, size);
            lock.lock();
            --_batchWorkersIn;
            if (_batchWorkersIn == 0 &&
                _batchPending.load(std::memory_order_acquire) == 0) {
                _allIdle.notify_all();
            }
            continue;
        }

        if (!_queue.empty()) {
            std::function<void()> job = std::move(_queue.front());
            _queue.pop_front();
            ++_active;
            lock.unlock();
            {
                ActiveGuard guard(*this);
                try {
                    job();
                } catch (...) {
                    recordException();
                }
            }
            lock.lock();
            continue;
        }

        return;  // Stopping with nothing left to run.
    }
}

void
ThreadPool::runBatchShare(unsigned worker, const BatchBody &body,
                          std::size_t size)
{
    for (;;) {
        // The claim is the whole synchronization cost of one index:
        // no mutex, no condvar, no allocation. Overshoot past `size`
        // is harmless (each worker overshoots at most once).
        const std::size_t index =
            _batchNext.fetch_add(1, std::memory_order_relaxed);
        if (index >= size)
            return;
        _statStolen.fetch_add(1, std::memory_order_relaxed);
        try {
            body(worker, index);
        } catch (...) {
            recordException();
        }
        // Release so the submitter's acquire-load of 0 pending sees
        // every effect of the batch bodies.
        _batchPending.fetch_sub(1, std::memory_order_release);
    }
}

void
ThreadPool::recordException()
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (_pendingException == nullptr)
        _pendingException = std::current_exception();
}

ThreadPool::Stats
ThreadPool::stats() const
{
    Stats stats;
    stats.batchesSubmitted =
        _statBatches.load(std::memory_order_relaxed);
    stats.tasksStolen = _statStolen.load(std::memory_order_relaxed);
    stats.jobsQueued = _statJobs.load(std::memory_order_relaxed);
    stats.queueWaits = _statQueueWaits.load(std::memory_order_relaxed);
    stats.idleWakeups =
        _statIdleWakeups.load(std::memory_order_relaxed);
    return stats;
}

void
ThreadPool::resetStats()
{
    _statBatches.store(0, std::memory_order_relaxed);
    _statStolen.store(0, std::memory_order_relaxed);
    _statJobs.store(0, std::memory_order_relaxed);
    _statQueueWaits.store(0, std::memory_order_relaxed);
    _statIdleWakeups.store(0, std::memory_order_relaxed);
}

unsigned
ThreadPool::defaultJobs()
{
    const long parsed = envLong("CG_JOBS", 0);
    if (parsed >= 1)
        return static_cast<unsigned>(parsed);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw < 1 ? 1 : hw;
}

} // namespace commguard
