#include "common/thread_pool.hh"

#include "common/env.hh"

namespace commguard
{

ThreadPool::ThreadPool(unsigned threads) : _jobs(threads < 1 ? 1 : threads)
{
    if (_jobs <= 1)
        return;
    _workers.reserve(_jobs);
    for (unsigned i = 0; i < _jobs; ++i)
        _workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _stopping = true;
    }
    _workAvailable.notify_all();
    for (std::thread &worker : _workers)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    if (_workers.empty()) {
        job();
        return;
    }
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _queue.push_back(std::move(job));
    }
    _workAvailable.notify_one();
}

void
ThreadPool::wait()
{
    if (_workers.empty())
        return;
    std::unique_lock<std::mutex> lock(_mutex);
    _allIdle.wait(lock,
                  [this] { return _queue.empty() && _active == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _workAvailable.wait(lock, [this] {
                return _stopping || !_queue.empty();
            });
            if (_queue.empty())
                return;  // Stopping with nothing left to run.
            job = std::move(_queue.front());
            _queue.pop_front();
            ++_active;
        }
        job();
        {
            std::lock_guard<std::mutex> lock(_mutex);
            --_active;
            if (_queue.empty() && _active == 0)
                _allIdle.notify_all();
        }
    }
}

unsigned
ThreadPool::defaultJobs()
{
    const long parsed = envLong("CG_JOBS", 0);
    if (parsed >= 1)
        return static_cast<unsigned>(parsed);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw < 1 ? 1 : hw;
}

} // namespace commguard
