#include "common/env.hh"

#include <cstdlib>

namespace commguard
{

bool
envFlag(const char *name)
{
    const char *env = std::getenv(name);
    return env != nullptr && env[0] != '\0' &&
           !(env[0] == '0' && env[1] == '\0');
}

long
envLong(const char *name, long fallback)
{
    const char *env = std::getenv(name);
    if (env == nullptr || env[0] == '\0')
        return fallback;
    char *end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end == env || *end != '\0')
        return fallback;
    return parsed;
}

std::string
envString(const char *name, std::string fallback)
{
    const char *env = std::getenv(name);
    return env == nullptr ? std::move(fallback) : std::string(env);
}

} // namespace commguard
