#include "common/env.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "common/logging.hh"

namespace commguard
{

namespace
{

/** Case-insensitive comparison against a lowercase literal. */
bool
equalsLower(const char *value, const char *lower)
{
    for (; *value != '\0' && *lower != '\0'; ++value, ++lower) {
        if (std::tolower(static_cast<unsigned char>(*value)) != *lower)
            return false;
    }
    return *value == '\0' && *lower == '\0';
}

} // namespace

bool
envFlag(const char *name)
{
    const char *env = std::getenv(name);
    if (env == nullptr || env[0] == '\0')
        return false;
    for (const char *off : {"0", "false", "off", "no"}) {
        if (equalsLower(env, off))
            return false;
    }
    for (const char *on : {"1", "true", "on", "yes"}) {
        if (equalsLower(env, on))
            return true;
    }
    fatal(std::string(name) + "='" + env +
          "' is not a valid flag value (use 1/true/on/yes or "
          "0/false/off/no)");
}

long
envLong(const char *name, long fallback)
{
    const char *env = std::getenv(name);
    if (env == nullptr || env[0] == '\0')
        return fallback;
    char *end = nullptr;
    errno = 0;
    const long parsed = std::strtol(env, &end, 10);
    if (end == env || *end != '\0') {
        fatal(std::string(name) + "='" + env +
              "' is not a whole base-10 integer");
    }
    if (errno == ERANGE) {
        fatal(std::string(name) + "='" + env +
              "' is out of range for a long");
    }
    return parsed;
}

std::string
envString(const char *name, std::string fallback)
{
    const char *env = std::getenv(name);
    return env == nullptr ? std::move(fallback) : std::string(env);
}

} // namespace commguard
