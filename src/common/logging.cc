#include "common/logging.hh"

#include <mutex>
#include <unordered_map>

namespace commguard
{

namespace
{

std::mutex &
logMutex()
{
    static std::mutex mutex;
    return mutex;
}

LogSink &
sinkSlot()
{
    static LogSink sink;
    return sink;
}

std::function<void()> &
preEmitSlot()
{
    static std::function<void()> hook;
    return hook;
}

/**
 * Per-message repeat counts for the advisory rate limiter. Bounded:
 * once kMaxTrackedMessages distinct texts are tracked, further new
 * texts pass through unlimited rather than growing the map without
 * bound (a sweep emitting unique messages is not the flood case the
 * limiter exists for).
 */
constexpr std::size_t kMaxTrackedMessages = 1024;

std::unordered_map<std::string, unsigned> &
repeatCounts()
{
    static std::unordered_map<std::string, unsigned> counts;
    return counts;
}

/** Write through the sink; caller holds the log mutex. */
void
emit(const char *prefix, const std::string &msg)
{
    if (const LogSink &sink = sinkSlot()) {
        sink(prefix, msg);
        return;
    }
    if (const auto &hook = preEmitSlot())
        hook();
    std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
}

/** Advisory path: emit unless this exact message is over its limit. */
void
emitLimited(const char *prefix, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    auto &counts = repeatCounts();
    auto it = counts.find(msg);
    if (it == counts.end()) {
        if (counts.size() >= kMaxTrackedMessages) {
            emit(prefix, msg);
            return;
        }
        it = counts.emplace(msg, 0u).first;
    }
    const unsigned seen = ++it->second;
    if (seen > kLogRepeatLimit)
        return;
    if (seen == kLogRepeatLimit) {
        emit(prefix, msg + " (repeated " +
                         std::to_string(kLogRepeatLimit) +
                         " times; further identical messages "
                         "suppressed)");
        return;
    }
    emit(prefix, msg);
}

} // namespace

void
setLogSink(LogSink sink)
{
    std::lock_guard<std::mutex> lock(logMutex());
    sinkSlot() = std::move(sink);
}

void
setLogPreEmitHook(std::function<void()> hook)
{
    std::lock_guard<std::mutex> lock(logMutex());
    preEmitSlot() = std::move(hook);
}

void
resetLogRateLimits()
{
    std::lock_guard<std::mutex> lock(logMutex());
    repeatCounts().clear();
}

void
logMessage(const char *prefix, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    emit(prefix, msg);
}

void
panic(const std::string &msg)
{
    logMessage("panic", msg);
    std::abort();
}

void
fatal(const std::string &msg)
{
    logMessage("fatal", msg);
    std::exit(1);
}

void
warn(const std::string &msg)
{
    emitLimited("warn", msg);
}

void
inform(const std::string &msg)
{
    emitLimited("info", msg);
}

} // namespace commguard
