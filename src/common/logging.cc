#include "common/logging.hh"

namespace commguard
{

void
logMessage(const char *prefix, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
}

void
panic(const std::string &msg)
{
    logMessage("panic", msg);
    std::abort();
}

void
fatal(const std::string &msg)
{
    logMessage("fatal", msg);
    std::exit(1);
}

void
warn(const std::string &msg)
{
    logMessage("warn", msg);
}

void
inform(const std::string &msg)
{
    logMessage("info", msg);
}

} // namespace commguard
