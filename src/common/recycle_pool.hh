/**
 * @file
 * A freelist of retired std::vector buffers for single-threaded reuse.
 *
 * The sweep engine builds and tears down one complete simulated machine
 * per run; the dominant construction cost is a handful of large buffer
 * allocations (512 KiB core-local memories, multi-KiB queue rings, the
 * framed input stream). Those sizes sit above the allocator's mmap
 * threshold, so every run pays mmap/munmap round trips — and on the
 * parallel path the workers additionally serialize on the kernel's
 * address-space lock. RecyclePool keeps retired buffers per *worker*
 * so the steady state allocates nothing and the workers never meet in
 * the allocator.
 *
 * Determinism: acquire() always returns a buffer of exactly @p n
 * value-initialized elements — bitwise indistinguishable from a fresh
 * `std::vector<T>(n)` — so recycled and cold-start runs compute
 * identical results even when corrupted executions read slots they
 * never wrote.
 *
 * NOT thread-safe by design: one pool belongs to one worker slot.
 */

#ifndef COMMGUARD_COMMON_RECYCLE_POOL_HH
#define COMMGUARD_COMMON_RECYCLE_POOL_HH

#include <cstddef>
#include <vector>

namespace commguard
{

/** Single-owner freelist of std::vector<T> buffers. */
template <typename T>
class RecyclePool
{
  public:
    /**
     * A vector of @p n value-initialized elements, reusing a retired
     * buffer's capacity when one is available. acquire(0) hands back
     * an empty (but possibly roomy) vector for callers that fill via
     * push_back after a reserve().
     */
    std::vector<T>
    acquire(std::size_t n)
    {
        std::vector<T> buffer;
        if (!_free.empty()) {
            buffer = std::move(_free.back());
            _free.pop_back();
        }
        // assign() both sizes and zeroes: recycled storage must be
        // indistinguishable from a fresh allocation.
        buffer.assign(n, T{});
        return buffer;
    }

    /** Retire @p buffer's storage into the freelist. */
    void
    release(std::vector<T> &&buffer)
    {
        if (buffer.capacity() != 0)
            _free.push_back(std::move(buffer));
    }

    /** Buffers currently retired and reusable (tests/diagnostics). */
    std::size_t retained() const { return _free.size(); }

    /** Drop every retired buffer (frees the memory now). */
    void clear() { _free.clear(); }

  private:
    std::vector<std::vector<T>> _free;
};

} // namespace commguard

#endif // COMMGUARD_COMMON_RECYCLE_POOL_HH
