/**
 * @file
 * Minimal JSON value type: build, serialize, and parse.
 *
 * One shared implementation backs every machine-readable artifact the
 * project emits — the per-run JSONL records of the sweep engine, the
 * schema-versioned BENCH_*.json reports of the figure programs, and the
 * metric-snapshot round-trip used by the schema self-check. Keeping a
 * parser next to the writer is what makes exporter drift testable: what
 * we write, we can read back and compare.
 *
 * Scope: standard JSON with two deliberate choices. Numbers keep
 * 64-bit integer precision (counters exceed the double-exact range in
 * long runs), and object keys are stored sorted so serialization is
 * canonical — equal values produce byte-identical text.
 */

#ifndef COMMGUARD_COMMON_JSON_HH
#define COMMGUARD_COMMON_JSON_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

#include "common/types.hh"

namespace commguard
{

/**
 * An immutable-by-convention JSON document node.
 */
class Json
{
  public:
    using Object = std::map<std::string, Json>;
    using Array = std::vector<Json>;

    Json() : _value(nullptr) {}
    Json(std::nullptr_t) : _value(nullptr) {}
    Json(bool value) : _value(value) {}
    Json(double value) : _value(value) {}
    Json(Count value) : _value(value) {}
    Json(int value) : _value(static_cast<std::int64_t>(value)) {}
    Json(std::int64_t value) : _value(value) {}
    Json(const char *value) : _value(std::string(value)) {}
    Json(std::string value) : _value(std::move(value)) {}
    Json(Object value) : _value(std::move(value)) {}
    Json(Array value) : _value(std::move(value)) {}

    static Json object() { return Json(Object{}); }
    static Json array() { return Json(Array{}); }

    bool isNull() const { return holds<std::nullptr_t>(); }
    bool isBool() const { return holds<bool>(); }
    bool isNumber() const
    {
        return holds<double>() || holds<Count>() ||
               holds<std::int64_t>();
    }
    bool isString() const { return holds<std::string>(); }
    bool isObject() const { return holds<Object>(); }
    bool isArray() const { return holds<Array>(); }

    bool boolean() const { return std::get<bool>(_value); }
    const std::string &str() const
    {
        return std::get<std::string>(_value);
    }
    const Object &obj() const { return std::get<Object>(_value); }
    Object &obj() { return std::get<Object>(_value); }
    const Array &arr() const { return std::get<Array>(_value); }
    Array &arr() { return std::get<Array>(_value); }

    /** Numeric value widened to double (any number representation). */
    double number() const;

    /** Numeric value as an unsigned 64-bit counter (exact). */
    Count counter() const;

    /** Object member access; inserts null members on mutation. */
    Json &operator[](const std::string &key)
    {
        return obj()[key];
    }

    /** Object member lookup; returns nullptr when absent. */
    const Json *find(const std::string &key) const;

    /** Append to an array value. */
    void push(Json value) { arr().push_back(std::move(value)); }

    /** Canonical single-line serialization (sorted object keys). */
    std::string dump() const;
    void write(std::ostream &os) const;

    /**
     * Parse one JSON document. Returns false (and sets @p error when
     * given) on malformed input or trailing garbage.
     */
    static bool parse(const std::string &text, Json &out,
                      std::string *error = nullptr);

    bool operator==(const Json &other) const;

  private:
    template <typename T>
    bool
    holds() const
    {
        return std::holds_alternative<T>(_value);
    }

    std::variant<std::nullptr_t, bool, double, Count, std::int64_t,
                 std::string, Object, Array>
        _value;
};

} // namespace commguard

#endif // COMMGUARD_COMMON_JSON_HH
