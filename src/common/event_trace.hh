/**
 * @file
 * Frame-lifecycle event tracing: fixed-capacity per-track binary event
 * buffers recording timestamped simulator events.
 *
 * The trace answers the question the aggregate metric counters cannot:
 * *when* did each error land, what did the Alignment Manager do about
 * it, and how long did realignment take. One EventTrace exists per run
 * (off by default, enabled via MachineConfig::traceEvents or the
 * CG_TRACE_EVENTS knob); it owns one EventBuffer track per core plus a
 * machine-level track for scheduler events.
 *
 * Counting contract: every track keeps an always-incremented per-kind
 * event count even when the bounded ring has to drop (overwrite) the
 * oldest event records. Event *counts* therefore stay exact for any
 * run length and can be cross-checked 1:1 against the metric-registry
 * counters (conservation, sim/trace_export.hh), while event *records*
 * are best-effort within the configured capacity.
 *
 * Retention is two-tier: rare *forensic* events (injected errors,
 * repairs, timeouts, repair-state AM transitions) live in their own
 * ring per track so the bulk queue-traffic events (pushes, pops,
 * depth samples, per-frame FSM chatter) can never evict them. A long
 * run keeps a sliding window of the bulk traffic but the complete
 * error/repair history, which is what the realignment forensics pass
 * joins over.
 *
 * Layering: this file must stay free of machine/queue dependencies, so
 * queues are registered by opaque handle and AM states travel as raw
 * std::uint8_t codes.
 */

#ifndef COMMGUARD_COMMON_EVENT_TRACE_HH
#define COMMGUARD_COMMON_EVENT_TRACE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/types.hh"

namespace commguard::trace
{

/** Everything the tracer can record (one counter slot each). */
enum class EventKind : std::uint8_t
{
    InvocationStart,  //!< A frame-computation invocation began.
    ErrorInjected,    //!< A register bit flip (a = reg, b = bit).
    QueuePush,        //!< A push committed (a = port).
    QueuePop,         //!< A pop committed (a = port).
    QueueBlock,       //!< A queue op first blocked (a = port, b = pop).
    QueueUnblock,     //!< A blocked queue op resumed (a = port).
    QueueCorrupt,     //!< Software-queue state corrupted (b = queue).
    QueueDepth,       //!< Queue depth sample (b = queue, value = depth).
    PopTimeout,       //!< QM timeout resolved a blocked pop (a = port).
    PushTimeout,      //!< QM timeout resolved a blocked push (a = port).
    QmTimeout,        //!< Scheduler fired a QM timeout (machine track).
    DeadlockBreak,    //!< Scheduler broke a system-wide deadlock.
    WatchdogTrip,     //!< PPU scope watchdog fired (a = nested).
    HeaderInsert,     //!< HI stored a header (b = queue, value = frame).
    HeaderDropped,    //!< HI gave up on a blocked header (a = port).
    AmTransition,     //!< AM FSM moved (b = from<<8|to, value = info).
    AmPad,            //!< AM padded a pop response (a = port).
    AmDiscardItem,    //!< AM discarded a queued item (a = port).
    AmDiscardHeader,  //!< AM discarded a queued header (a = port).
};

/** Number of EventKind values (array sizing). */
inline constexpr std::size_t numEventKinds = 19;

/** Stable lower-camel name used by the exporters and checkers. */
const char *eventKindName(EventKind kind);

/**
 * Should an event go to the protected forensic ring? Rare lifecycle
 * events always do; AmTransition qualifies only when it enters or
 * leaves a repair state (packed_states = from<<8 | to), so the
 * per-frame RcvCmp/ExpHdr bookkeeping chatter stays in the bulk ring.
 */
bool isForensicEvent(EventKind kind, std::uint16_t packed_states);

/** One recorded event (32 bytes). */
struct Event
{
    Count seq;        //!< Global record order across all tracks.
    Cycle time;       //!< Emitting core's cycle clock (0 on machine).
    Count slice;      //!< Scheduler round when recorded.
    EventKind kind;
    std::uint8_t a;   //!< Port / register / nested-flag (see kinds).
    std::uint16_t b;  //!< Queue id / bit / packed AM states.
    Word value;       //!< Frame id / depth / payload word.
};

/**
 * One fixed-capacity event track (a core's or the machine's). Two
 * rings: bulk traffic and forensic events (isForensicEvent), each of
 * the configured capacity; when one is full, recording overwrites its
 * own oldest event. Per-kind counts and the drop count keep exact
 * totals regardless of what was overwritten.
 */
class EventBuffer
{
  public:
    EventBuffer(std::string name, std::size_t capacity)
        : _name(std::move(name)),
          _capacity(capacity == 0 ? 1 : capacity),
          _bulk(_capacity), _forensic(_capacity)
    {}

    void
    record(const Event &event)
    {
        ++_recorded;
        ++_counts[static_cast<std::size_t>(event.kind)];
        Ring &ring =
            isForensicEvent(event.kind, event.b) ? _forensic : _bulk;
        ring.record(event, _capacity);
    }

    /** Retained events in chronological (seq) order (both rings). */
    std::vector<Event> events() const;

    const std::string &name() const { return _name; }
    std::size_t capacity() const { return _capacity; }

    /** Events ever recorded (retained + dropped). */
    Count recorded() const { return _recorded; }

    /** Events overwritten by ring wrap-around. */
    Count
    dropped() const
    {
        return _recorded -
               static_cast<Count>(_bulk.events.size() +
                                  _forensic.events.size());
    }

    /** Exact per-kind count, including dropped events. */
    Count
    count(EventKind kind) const
    {
        return _counts[static_cast<std::size_t>(kind)];
    }

  private:
    struct Ring
    {
        explicit Ring(std::size_t capacity)
        {
            events.reserve(capacity);
        }

        void
        record(const Event &event, std::size_t capacity)
        {
            if (events.size() < capacity) {
                events.push_back(event);
                return;
            }
            events[next] = event;
            next = (next + 1) % capacity;
        }

        std::vector<Event> events;
        std::size_t next = 0;  //!< Oldest slot once full.
    };

    std::string _name;
    std::size_t _capacity;
    Ring _bulk;
    Ring _forensic;
    Count _recorded = 0;
    std::array<Count, numEventKinds> _counts{};
};

/**
 * The per-run event trace: a set of named tracks sharing one global
 * sequence counter (per-core cycle clocks are not comparable across
 * cores, so cross-track ordering and the forensics join use seq) and
 * the current scheduler-slice number. Single-threaded by design — each
 * run owns its trace and runs on one worker thread.
 */
class EventTrace
{
  public:
    /** @param track_capacity Ring capacity of each added track. */
    explicit EventTrace(std::size_t track_capacity = 1u << 16)
        : _trackCapacity(track_capacity)
    {}

    /** Add a track; the returned reference stays valid forever. */
    EventBuffer &
    addTrack(const std::string &name)
    {
        _tracks.emplace_back(name, _trackCapacity);
        return _tracks.back();
    }

    std::size_t numTracks() const { return _tracks.size(); }
    const EventBuffer &track(std::size_t i) const { return _tracks[i]; }

    /**
     * Register a queue under an opaque handle (its object address) and
     * return its stable small id for Event::b fields.
     */
    std::uint16_t
    registerQueue(const void *handle, const std::string &name)
    {
        _queueHandles.push_back(handle);
        _queueNames.push_back(name);
        return static_cast<std::uint16_t>(_queueHandles.size() - 1);
    }

    /** Id of a registered queue; unknownQueue when never registered. */
    std::uint16_t
    queueId(const void *handle) const
    {
        for (std::size_t i = 0; i < _queueHandles.size(); ++i)
            if (_queueHandles[i] == handle)
                return static_cast<std::uint16_t>(i);
        return unknownQueue;
    }

    static constexpr std::uint16_t unknownQueue = 0xffff;

    const std::vector<std::string> &queueNames() const
    {
        return _queueNames;
    }

    /** Scheduler round bookkeeping (stamped into every event). */
    void beginSlice(Count n) { _slice = n; }
    Count slice() const { return _slice; }

    /** Record one event on @p track, stamping seq and slice. */
    void
    record(EventBuffer &track, Cycle time, EventKind kind,
           std::uint8_t a = 0, std::uint16_t b = 0, Word value = 0)
    {
        track.record(Event{_nextSeq++, time, _slice, kind, a, b, value});
    }

    // ------------------------------------------------------------------
    // Aggregates over all tracks.
    // ------------------------------------------------------------------

    Count count(EventKind kind) const;
    Count recorded() const;
    Count dropped() const;

  private:
    std::size_t _trackCapacity;
    Count _nextSeq = 0;
    Count _slice = 0;

    // deque: addTrack() must not invalidate earlier references.
    std::deque<EventBuffer> _tracks;
    std::vector<const void *> _queueHandles;
    std::vector<std::string> _queueNames;
};

} // namespace commguard::trace

#endif // COMMGUARD_COMMON_EVENT_TRACE_HH
