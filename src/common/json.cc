#include "common/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace commguard
{

namespace
{

void
writeEscaped(std::ostream &os, const std::string &text)
{
    os << '"';
    for (const char c : text) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

/** Shortest-exact double form (round-trips via strtod). */
void
writeDouble(std::ostream &os, double value)
{
    if (!std::isfinite(value)) {
        // JSON has no Infinity/NaN literals; non-finite doubles are
        // emitted as tagged strings and mapped back by the consumers
        // that expect them (metric snapshots, quality gauges).
        os << (std::isnan(value) ? "\"nan\""
                                 : (value > 0 ? "\"inf\"" : "\"-inf\""));
        return;
    }
    char buf[40];
    for (const int precision : {15, 16, 17}) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
        if (std::strtod(buf, nullptr) == value)
            break;
    }
    os << buf;
}

// ------------------------------------------------------------------
// Recursive-descent parser.
// ------------------------------------------------------------------

struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string error;

    bool
    fail(const std::string &message)
    {
        if (error.empty()) {
            error = message + " at offset " + std::to_string(pos);
        }
        return false;
    }

    void
    skipSpace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::char_traits<char>::length(word);
        if (text.compare(pos, n, word) != 0)
            return false;
        pos += n;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected string");
        out.clear();
        while (pos < text.size()) {
            const char c = text[pos++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos >= text.size())
                break;
            const char esc = text[pos++];
            switch (esc) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'u': {
                if (pos + 4 > text.size())
                    return fail("truncated \\u escape");
                const std::string hex = text.substr(pos, 4);
                pos += 4;
                const long code = std::strtol(hex.c_str(), nullptr, 16);
                // Basic-multilingual-plane code points only; enough
                // for the ASCII control characters we emit.
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(
                        static_cast<char>(0xC0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(
                        static_cast<char>(0xE0 | (code >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
              }
              default: return fail("bad escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(Json &out)
    {
        const std::size_t start = pos;
        if (pos < text.size() && (text[pos] == '-' || text[pos] == '+'))
            ++pos;
        bool integral = true;
        while (pos < text.size()) {
            const char c = text[pos];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos;
            } else {
                break;
            }
        }
        const std::string token = text.substr(start, pos - start);
        if (token.empty())
            return fail("expected number");
        if (integral) {
            errno = 0;
            if (token[0] == '-') {
                const std::int64_t v =
                    std::strtoll(token.c_str(), nullptr, 10);
                if (errno != ERANGE) {
                    out = Json(v);
                    return true;
                }
            } else {
                const Count v =
                    std::strtoull(token.c_str(), nullptr, 10);
                if (errno != ERANGE) {
                    out = Json(v);
                    return true;
                }
            }
        }
        out = Json(std::strtod(token.c_str(), nullptr));
        return true;
    }

    bool
    parseValue(Json &out)
    {
        skipSpace();
        if (pos >= text.size())
            return fail("unexpected end of input");
        const char c = text[pos];
        if (c == '{') {
            ++pos;
            Json::Object object;
            skipSpace();
            if (consume('}')) {
                out = Json(std::move(object));
                return true;
            }
            while (true) {
                skipSpace();
                std::string key;
                if (!parseString(key))
                    return false;
                if (!consume(':'))
                    return fail("expected ':'");
                Json value;
                if (!parseValue(value))
                    return false;
                object.emplace(std::move(key), std::move(value));
                if (consume(','))
                    continue;
                if (consume('}'))
                    break;
                return fail("expected ',' or '}'");
            }
            out = Json(std::move(object));
            return true;
        }
        if (c == '[') {
            ++pos;
            Json::Array array;
            skipSpace();
            if (consume(']')) {
                out = Json(std::move(array));
                return true;
            }
            while (true) {
                Json value;
                if (!parseValue(value))
                    return false;
                array.push_back(std::move(value));
                if (consume(','))
                    continue;
                if (consume(']'))
                    break;
                return fail("expected ',' or ']'");
            }
            out = Json(std::move(array));
            return true;
        }
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return false;
            out = Json(std::move(s));
            return true;
        }
        if (literal("true")) {
            out = Json(true);
            return true;
        }
        if (literal("false")) {
            out = Json(false);
            return true;
        }
        if (literal("null")) {
            out = Json(nullptr);
            return true;
        }
        return parseNumber(out);
    }
};

} // namespace

double
Json::number() const
{
    if (holds<double>())
        return std::get<double>(_value);
    if (holds<Count>())
        return static_cast<double>(std::get<Count>(_value));
    return static_cast<double>(std::get<std::int64_t>(_value));
}

Count
Json::counter() const
{
    if (holds<Count>())
        return std::get<Count>(_value);
    if (holds<std::int64_t>()) {
        const std::int64_t v = std::get<std::int64_t>(_value);
        return v < 0 ? 0 : static_cast<Count>(v);
    }
    const double v = std::get<double>(_value);
    return v < 0.0 ? 0 : static_cast<Count>(v);
}

const Json *
Json::find(const std::string &key) const
{
    if (!isObject())
        return nullptr;
    const auto it = obj().find(key);
    return it == obj().end() ? nullptr : &it->second;
}

void
Json::write(std::ostream &os) const
{
    if (isNull()) {
        os << "null";
    } else if (isBool()) {
        os << (boolean() ? "true" : "false");
    } else if (holds<Count>()) {
        os << std::get<Count>(_value);
    } else if (holds<std::int64_t>()) {
        os << std::get<std::int64_t>(_value);
    } else if (holds<double>()) {
        writeDouble(os, std::get<double>(_value));
    } else if (isString()) {
        writeEscaped(os, str());
    } else if (isArray()) {
        os << '[';
        bool first = true;
        for (const Json &item : arr()) {
            if (!first)
                os << ',';
            first = false;
            item.write(os);
        }
        os << ']';
    } else {
        os << '{';
        bool first = true;
        for (const auto &[key, value] : obj()) {
            if (!first)
                os << ',';
            first = false;
            writeEscaped(os, key);
            os << ':';
            value.write(os);
        }
        os << '}';
    }
}

std::string
Json::dump() const
{
    std::ostringstream os;
    write(os);
    return os.str();
}

bool
Json::parse(const std::string &text, Json &out, std::string *error)
{
    Parser parser{text};
    if (!parser.parseValue(out)) {
        if (error)
            *error = parser.error;
        return false;
    }
    parser.skipSpace();
    if (parser.pos != text.size()) {
        if (error)
            *error = "trailing garbage at offset " +
                     std::to_string(parser.pos);
        return false;
    }
    return true;
}

bool
Json::operator==(const Json &other) const
{
    // Numbers compare by value across representations so that a
    // parsed document equals the one that produced it.
    if (isNumber() && other.isNumber()) {
        if (holds<Count>() && other.holds<Count>())
            return std::get<Count>(_value) ==
                   std::get<Count>(other._value);
        return number() == other.number();
    }
    return _value == other._value;
}

} // namespace commguard
