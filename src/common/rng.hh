/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * Every stochastic component (one error injector per core, workload
 * generators, ...) owns its own Rng instance seeded independently, matching
 * the paper's methodology ("Each core's error injection is independent and
 * has its own random number generator", §6). The generator is
 * xoshiro128**, seeded via splitmix64, so runs are reproducible across
 * platforms for a given seed.
 */

#ifndef COMMGUARD_COMMON_RNG_HH
#define COMMGUARD_COMMON_RNG_HH

#include <cstdint>

#include "common/types.hh"

namespace commguard
{

/**
 * Small, fast, reproducible PRNG (xoshiro128**).
 */
class Rng
{
  public:
    /** Construct with a 64-bit seed; any value (including 0) is valid. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Re-seed the generator, resetting its sequence. */
    void seed(std::uint64_t seed);

    /** Next raw 32-bit value. */
    std::uint32_t next32();

    /** Next raw 64-bit value. */
    std::uint64_t next64();

    /** Uniform integer in [0, bound) via rejection-free Lemire mapping. */
    std::uint32_t below(std::uint32_t bound);

    /** Uniform double in [0, 1). */
    double uniform();

    /**
     * Exponentially distributed sample with the given mean.
     *
     * Used for error inter-arrival times: a mean-time-between-errors of
     * @p mean committed instructions.
     */
    double exponential(double mean);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint32_t range(std::uint32_t lo, std::uint32_t hi);

  private:
    std::uint32_t _state[4];
};

} // namespace commguard

#endif // COMMGUARD_COMMON_RNG_HH
