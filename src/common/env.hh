/**
 * @file
 * Environment-variable parsing primitives.
 *
 * Every CG_* knob in the project is read through these helpers so the
 * accepted syntax is defined exactly once: flags take 1/true/on/yes or
 * 0/false/off/no (case-insensitive; unset or empty means off), numeric
 * knobs take a whole base-10 integer. A malformed value is a user
 * configuration error and exits via fatal() — a typo like CG_JOBS=8k
 * must never silently fall back to a default and change what an
 * experiment measures. User-facing documentation of the knobs lives in
 * sim::EnvOptions and the README.
 */

#ifndef COMMGUARD_COMMON_ENV_HH
#define COMMGUARD_COMMON_ENV_HH

#include <string>

namespace commguard
{

/**
 * Boolean flag value of @p name. Unset, "", "0", "false", "off" and
 * "no" are false; "1", "true", "on" and "yes" are true (both sets
 * case-insensitive). Any other value exits via fatal().
 */
bool envFlag(const char *name);

/**
 * Strict decimal integer value of @p name; @p fallback when the
 * variable is unset or empty. A set-but-malformed value (trailing
 * garbage, non-numeric text, out-of-range) exits via fatal().
 */
long envLong(const char *name, long fallback);

/** String value of @p name; @p fallback when unset. */
std::string envString(const char *name, std::string fallback = "");

} // namespace commguard

#endif // COMMGUARD_COMMON_ENV_HH
