/**
 * @file
 * Environment-variable parsing primitives.
 *
 * Every CG_* knob in the project is read through these helpers so the
 * accepted syntax ("0"/"" mean off, anything else on; strict decimal
 * integers) is defined exactly once. User-facing documentation of the
 * knobs lives in sim::EnvOptions and the README.
 */

#ifndef COMMGUARD_COMMON_ENV_HH
#define COMMGUARD_COMMON_ENV_HH

#include <string>

namespace commguard
{

/** True when @p name is set to anything other than "" or "0". */
bool envFlag(const char *name);

/**
 * Strict decimal integer value of @p name; @p fallback when the
 * variable is unset, empty, or not a whole base-10 number.
 */
long envLong(const char *name, long fallback);

/** String value of @p name; @p fallback when unset. */
std::string envString(const char *name, std::string fallback = "");

} // namespace commguard

#endif // COMMGUARD_COMMON_ENV_HH
