/**
 * @file
 * Fundamental word and identifier types shared across the simulator.
 *
 * The simulated machine is a 32-bit architecture (matching the paper's
 * 32-bit x86 baseline): architectural registers, memory words, and queue
 * items are all 32-bit words. Floating-point values are IEEE-754 single
 * precision reinterpretations of the same word, so a register-file bit
 * flip uniformly models data, addressing, and control-flow errors.
 */

#ifndef COMMGUARD_COMMON_TYPES_HH
#define COMMGUARD_COMMON_TYPES_HH

#include <cstdint>
#include <cstring>

namespace commguard
{

/** A 32-bit architectural word (register, memory cell, queue item). */
using Word = std::uint32_t;

/** Signed view of a word for arithmetic comparisons. */
using SWord = std::int32_t;

/** Wide counters for instruction/cycle/statistic counts. */
using Count = std::uint64_t;

/** Simulated cycle count. */
using Cycle = std::uint64_t;

/** Identifier of a processor core (thread) in the multicore. */
using CoreId = std::uint32_t;

/** Identifier of a communication queue (QID in the paper, Fig. 4). */
using QueueId = std::uint32_t;

/** Frame identifier carried by CommGuard headers (active-fc values). */
using FrameId = std::uint32_t;

/** Reinterpret a word as an IEEE-754 single-precision float. */
inline float
wordToFloat(Word w)
{
    float f;
    std::memcpy(&f, &w, sizeof(f));
    return f;
}

/** Reinterpret an IEEE-754 single-precision float as a word. */
inline Word
floatToWord(float f)
{
    Word w;
    std::memcpy(&w, &f, sizeof(w));
    return w;
}

} // namespace commguard

#endif // COMMGUARD_COMMON_TYPES_HH
