#include "common/rng.hh"

#include <cmath>

namespace commguard
{

namespace
{

/** splitmix64 step, used only for seeding. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint32_t
rotl(std::uint32_t x, int k)
{
    return (x << k) | (x >> (32 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t seed_value)
{
    std::uint64_t s = seed_value;
    std::uint64_t a = splitmix64(s);
    std::uint64_t b = splitmix64(s);
    _state[0] = static_cast<std::uint32_t>(a);
    _state[1] = static_cast<std::uint32_t>(a >> 32);
    _state[2] = static_cast<std::uint32_t>(b);
    _state[3] = static_cast<std::uint32_t>(b >> 32);
    // xoshiro must not start in the all-zero state.
    if ((_state[0] | _state[1] | _state[2] | _state[3]) == 0)
        _state[0] = 1;
}

std::uint32_t
Rng::next32()
{
    const std::uint32_t result = rotl(_state[1] * 5, 7) * 9;
    const std::uint32_t t = _state[1] << 9;

    _state[2] ^= _state[0];
    _state[3] ^= _state[1];
    _state[1] ^= _state[2];
    _state[0] ^= _state[3];
    _state[2] ^= t;
    _state[3] = rotl(_state[3], 11);

    return result;
}

std::uint64_t
Rng::next64()
{
    const std::uint64_t hi = next32();
    return (hi << 32) | next32();
}

std::uint32_t
Rng::below(std::uint32_t bound)
{
    if (bound == 0)
        return 0;
    const std::uint64_t m =
        static_cast<std::uint64_t>(next32()) * bound;
    return static_cast<std::uint32_t>(m >> 32);
}

double
Rng::uniform()
{
    // 53 random mantissa bits.
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

double
Rng::exponential(double mean)
{
    double u = uniform();
    // Avoid log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return -mean * std::log(u);
}

std::uint32_t
Rng::range(std::uint32_t lo, std::uint32_t hi)
{
    return lo + below(hi - lo + 1);
}

} // namespace commguard
