/**
 * @file
 * SECDED error-correcting code for single words.
 *
 * CommGuard protects frame headers and the queue manager's shared
 * head/tail pointers with single-word ECC (paper §4.1, §5.1, Table 3:
 * "Single-word ECC set/check"). We implement a Hamming(38,32) code
 * extended with an overall parity bit — single-error-correcting,
 * double-error-detecting (SECDED) over 32 data bits, 7 check bits,
 * 39-bit codeword stored in a 64-bit container.
 */

#ifndef COMMGUARD_COMMON_ECC_HH
#define COMMGUARD_COMMON_ECC_HH

#include <cstdint>

#include "common/types.hh"

namespace commguard
{

/** A 39-bit SECDED codeword held in the low bits of a uint64_t. */
using EccWord = std::uint64_t;

/** Outcome of decoding a (possibly corrupted) codeword. */
enum class EccStatus
{
    Clean,          //!< No error detected.
    Corrected,      //!< Single-bit error detected and corrected.
    Uncorrectable,  //!< Double-bit (or worse) error detected.
};

/** Result of an ECC decode: recovered data word plus status. */
struct EccDecode
{
    Word data = 0;
    EccStatus status = EccStatus::Clean;
};

/** Number of bits in an encoded codeword. */
constexpr int eccCodewordBits = 39;

/** Encode a 32-bit data word into a SECDED codeword. */
EccWord eccEncode(Word data);

/** Decode a codeword, correcting single-bit errors if present. */
EccDecode eccDecode(EccWord code);

/** Flip one bit (0 <= bit < eccCodewordBits) of a codeword, for tests. */
EccWord eccFlipBit(EccWord code, int bit);

} // namespace commguard

#endif // COMMGUARD_COMMON_ECC_HH
