/**
 * @file
 * Lightweight named-statistics registry.
 *
 * Every component that the paper's evaluation counts (CommGuard
 * suboperations of Tables 2-3, memory events, committed instructions,
 * padded/discarded items, ...) owns named counters inside a StatGroup.
 * Groups nest so a whole Multicore can be dumped or queried by path,
 * e.g. "core3/commguard/eccCheck".
 */

#ifndef COMMGUARD_COMMON_STATS_HH
#define COMMGUARD_COMMON_STATS_HH

#include <map>
#include <ostream>
#include <string>

#include "common/types.hh"

namespace commguard
{

/**
 * A hierarchical group of named 64-bit counters.
 */
class StatGroup
{
  public:
    StatGroup() = default;
    explicit StatGroup(std::string name) : _name(std::move(name)) {}

    /** Add @p delta to the named counter, creating it at zero. */
    void
    add(const std::string &name, Count delta = 1)
    {
        _counters[name] += delta;
    }

    /** Set the named counter to an absolute value. */
    void
    set(const std::string &name, Count value)
    {
        _counters[name] = value;
    }

    /** Read a counter; missing counters read as zero. */
    Count
    get(const std::string &name) const
    {
        auto it = _counters.find(name);
        return it == _counters.end() ? 0 : it->second;
    }

    /** Get (or create) a nested child group. */
    StatGroup &
    child(const std::string &name)
    {
        auto it = _children.find(name);
        if (it == _children.end())
            it = _children.emplace(name, StatGroup(name)).first;
        return it->second;
    }

    /** Read a counter by slash-separated path ("a/b/ctr"). */
    Count getPath(const std::string &path) const;

    /** Sum this group's counter and all descendants' counters of a name. */
    Count sumRecursive(const std::string &name) const;

    /** Merge all counters (and children) of @p other into this group. */
    void merge(const StatGroup &other);

    /** Zero every counter in this group and its descendants. */
    void clear();

    /** Pretty-print all counters, one per line, prefixed by path. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    const std::string &name() const { return _name; }
    const std::map<std::string, Count> &counters() const
    {
        return _counters;
    }
    const std::map<std::string, StatGroup> &children() const
    {
        return _children;
    }

  private:
    std::string _name;
    std::map<std::string, Count> _counters;
    std::map<std::string, StatGroup> _children;
};

} // namespace commguard

#endif // COMMGUARD_COMMON_STATS_HH
