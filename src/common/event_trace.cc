#include "common/event_trace.hh"

namespace commguard::trace
{

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::InvocationStart: return "invocationStart";
      case EventKind::ErrorInjected: return "errorInjected";
      case EventKind::QueuePush: return "queuePush";
      case EventKind::QueuePop: return "queuePop";
      case EventKind::QueueBlock: return "queueBlock";
      case EventKind::QueueUnblock: return "queueUnblock";
      case EventKind::QueueCorrupt: return "queueCorrupt";
      case EventKind::QueueDepth: return "queueDepth";
      case EventKind::PopTimeout: return "popTimeout";
      case EventKind::PushTimeout: return "pushTimeout";
      case EventKind::QmTimeout: return "qmTimeout";
      case EventKind::DeadlockBreak: return "deadlockBreak";
      case EventKind::WatchdogTrip: return "watchdogTrip";
      case EventKind::HeaderInsert: return "headerInsert";
      case EventKind::HeaderDropped: return "headerDropped";
      case EventKind::AmTransition: return "amTransition";
      case EventKind::AmPad: return "amPad";
      case EventKind::AmDiscardItem: return "amDiscardItem";
      case EventKind::AmDiscardHeader: return "amDiscardHeader";
      default: return "???";
    }
}

bool
isForensicEvent(EventKind kind, std::uint16_t packed_states)
{
    switch (kind) {
      case EventKind::ErrorInjected:
      case EventKind::QueueCorrupt:
      case EventKind::PopTimeout:
      case EventKind::PushTimeout:
      case EventKind::QmTimeout:
      case EventKind::DeadlockBreak:
      case EventKind::WatchdogTrip:
      case EventKind::HeaderDropped:
      case EventKind::AmPad:
      case EventKind::AmDiscardItem:
      case EventKind::AmDiscardHeader:
        return true;
      case EventKind::AmTransition: {
        // Repair-state transitions are forensic; the per-frame
        // RcvCmp <-> ExpHdr bookkeeping is bulk. States >= DiscFr (2)
        // are the repair states (DiscFr, Disc, Pdg).
        const auto from = static_cast<std::uint8_t>(packed_states >> 8);
        const auto to = static_cast<std::uint8_t>(packed_states & 0xff);
        return from >= 2 || to >= 2;
      }
      default:
        return false;
    }
}

namespace
{

/** Append a ring's retained events in chronological (seq) order. */
void
appendChronological(std::vector<Event> &out,
                    const std::vector<Event> &ring, std::size_t next,
                    std::size_t capacity)
{
    if (ring.size() < capacity) {
        out.insert(out.end(), ring.begin(), ring.end());
        return;
    }
    // Full ring: `next` is the oldest slot.
    out.insert(out.end(), ring.begin() + static_cast<long>(next),
               ring.end());
    out.insert(out.end(), ring.begin(),
               ring.begin() + static_cast<long>(next));
}

} // namespace

std::vector<Event>
EventBuffer::events() const
{
    std::vector<Event> bulk;
    bulk.reserve(_bulk.events.size());
    appendChronological(bulk, _bulk.events, _bulk.next, _capacity);

    std::vector<Event> forensic;
    forensic.reserve(_forensic.events.size());
    appendChronological(forensic, _forensic.events, _forensic.next,
                        _capacity);

    // Merge the two seq-sorted streams.
    std::vector<Event> out;
    out.reserve(bulk.size() + forensic.size());
    std::size_t b = 0, f = 0;
    while (b < bulk.size() && f < forensic.size()) {
        if (bulk[b].seq < forensic[f].seq)
            out.push_back(bulk[b++]);
        else
            out.push_back(forensic[f++]);
    }
    out.insert(out.end(), bulk.begin() + static_cast<long>(b),
               bulk.end());
    out.insert(out.end(), forensic.begin() + static_cast<long>(f),
               forensic.end());
    return out;
}

Count
EventTrace::count(EventKind kind) const
{
    Count sum = 0;
    for (const EventBuffer &track : _tracks)
        sum += track.count(kind);
    return sum;
}

Count
EventTrace::recorded() const
{
    Count sum = 0;
    for (const EventBuffer &track : _tracks)
        sum += track.recorded();
    return sum;
}

Count
EventTrace::dropped() const
{
    Count sum = 0;
    for (const EventBuffer &track : _tracks)
        sum += track.dropped();
    return sum;
}

} // namespace commguard::trace
