/**
 * @file
 * Host-side MP3-style subband audio codec.
 *
 * The paper's mp3 benchmark is a lossy subband decoder. We reproduce
 * the same structure with a 32-band MDCT filterbank (sine window, 50%
 * overlap — the Princen-Bradley TDAC construction at the heart of MP3's
 * hybrid filterbank) with block-companded quantization: per block, a
 * float scalefactor plus 32 coarsely quantized subband samples. The
 * reliable host encoder produces the stream the error-prone decoder
 * graph consumes; decodeHost() is the error-free lossy baseline
 * (paper §6: error-free SNR 9.4 dB — quantization parameters below are
 * chosen to land in that band).
 *
 * Stream layout per block (33 words):
 *   word 0:      scalefactor (float bits)
 *   words 1..32: quantized subband samples (int32)
 */

#ifndef COMMGUARD_MEDIA_SUBBAND_CODEC_HH
#define COMMGUARD_MEDIA_SUBBAND_CODEC_HH

#include <array>
#include <vector>

#include "common/types.hh"

namespace commguard::media::subband
{

constexpr int bands = 32;
constexpr int windowLen = 2 * bands;
constexpr int wordsPerBlock = bands + 1;

/** Synthesis scale applied in the IMDCT overlap-add. */
constexpr float synthesisScale = 2.0f / bands;

/** Quantizer levels per side (q in [-levels, levels]). */
constexpr int quantLevels = 1;

/** Subbands actually transmitted; higher bands are zeroed. */
constexpr int keptBands = 5;

/** Combined window+cosine basis: basis[k][n] for k bands, n taps. */
const std::array<std::array<float, windowLen>, bands> &mdctBasis();

/** An encoded clip. */
struct SubbandStream
{
    int numBlocks = 0;
    int originalSamples = 0;
    std::vector<Word> words;
};

/**
 * Encode a clip. The input is framed into numBlocks =
 * samples/bands + 1 overlapping windows (32 zeros padded at both
 * ends), so the decoder reconstructs exactly `originalSamples`.
 */
SubbandStream encode(const std::vector<float> &samples);

/** Reference (reliable) decoder; the error-free lossy baseline. */
std::vector<float> decodeHost(const SubbandStream &stream);

} // namespace commguard::media::subband

#endif // COMMGUARD_MEDIA_SUBBAND_CODEC_HH
