#include "media/subband_codec.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace commguard::media::subband
{

const std::array<std::array<float, windowLen>, bands> &
mdctBasis()
{
    static const auto basis = [] {
        std::array<std::array<float, windowLen>, bands> b{};
        const double pi = std::acos(-1.0);
        for (int k = 0; k < bands; ++k) {
            for (int n = 0; n < windowLen; ++n) {
                const double window =
                    std::sin(pi / windowLen * (n + 0.5));
                const double cosine = std::cos(
                    pi / bands * (n + 0.5 + bands / 2.0) * (k + 0.5));
                b[k][n] = static_cast<float>(window * cosine);
            }
        }
        return b;
    }();
    return basis;
}

SubbandStream
encode(const std::vector<float> &samples)
{
    if (samples.size() % bands != 0)
        fatal("subband::encode: sample count must be a multiple of 32");

    const auto &basis = mdctBasis();

    // Pad 32 zeros on both sides so overlap-add reconstructs the full
    // clip; one extra block covers the tail.
    std::vector<float> padded(samples.size() + 2 * bands, 0.0f);
    std::copy(samples.begin(), samples.end(), padded.begin() + bands);

    SubbandStream stream;
    stream.originalSamples = static_cast<int>(samples.size());
    stream.numBlocks = static_cast<int>(samples.size() / bands) + 1;
    stream.words.reserve(
        static_cast<std::size_t>(stream.numBlocks) * wordsPerBlock);

    for (int block = 0; block < stream.numBlocks; ++block) {
        const float *window = padded.data() +
                              static_cast<std::size_t>(block) * bands;

        float coeffs[bands];
        float peak = 0.0f;
        for (int k = 0; k < bands; ++k) {
            if (k >= keptBands) {
                coeffs[k] = 0.0f;  // Bandwidth truncation (lossy).
                continue;
            }
            double acc = 0.0;
            for (int n = 0; n < windowLen; ++n)
                acc += static_cast<double>(basis[k][n]) * window[n];
            coeffs[k] = static_cast<float>(acc);
            peak = std::max(peak, std::fabs(coeffs[k]));
        }

        const float scale = peak > 0.0f ? peak : 1.0f;
        stream.words.push_back(floatToWord(scale));
        for (int k = 0; k < bands; ++k) {
            const int q = static_cast<int>(std::lround(
                coeffs[k] / scale * quantLevels));
            const int clamped =
                std::clamp(q, -quantLevels, quantLevels);
            stream.words.push_back(
                static_cast<Word>(static_cast<SWord>(clamped)));
        }
    }
    return stream;
}

std::vector<float>
decodeHost(const SubbandStream &stream)
{
    const auto &basis = mdctBasis();

    std::vector<float> accum(
        static_cast<std::size_t>(stream.numBlocks + 1) * bands, 0.0f);

    std::size_t cursor = 0;
    for (int block = 0; block < stream.numBlocks; ++block) {
        const float scale = wordToFloat(stream.words[cursor++]);
        float coeffs[bands];
        for (int k = 0; k < bands; ++k) {
            const SWord q =
                static_cast<SWord>(stream.words[cursor++]);
            coeffs[k] = static_cast<float>(q) * scale /
                        static_cast<float>(quantLevels);
        }

        float *out = accum.data() +
                     static_cast<std::size_t>(block) * bands;
        for (int n = 0; n < windowLen; ++n) {
            double acc = 0.0;
            for (int k = 0; k < bands; ++k)
                acc += static_cast<double>(coeffs[k]) * basis[k][n];
            out[n] += static_cast<float>(acc * synthesisScale);
        }
    }

    // Strip the leading half-window of padding.
    std::vector<float> result(
        accum.begin() + bands,
        accum.begin() + bands + stream.originalSamples);
    return result;
}

} // namespace commguard::media::subband
