#include "media/jpeg_codec.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace commguard::media::jpeg
{

namespace
{

/** Standard JPEG luminance quantization table (Annex K). */
constexpr int baseQuant[blockSize] = {
    16, 11, 10, 16, 24,  40,  51,  61,
    12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,
    14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,
    24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101,
    72, 92, 95, 98, 112, 100, 103, 99,
};

std::array<int, blockSize>
computeZigzag()
{
    std::array<int, blockSize> order{};
    int index = 0;
    for (int s = 0; s < 2 * blockDim - 1; ++s) {
        if (s % 2 == 0) {
            // Walk up-right.
            int y = std::min(s, blockDim - 1);
            int x = s - y;
            while (y >= 0 && x < blockDim)
                order[index++] = y-- * blockDim + x++;
        } else {
            // Walk down-left.
            int x = std::min(s, blockDim - 1);
            int y = s - x;
            while (x >= 0 && y < blockDim)
                order[index++] = y++ * blockDim + x--;
        }
    }
    return order;
}

} // namespace

const std::array<int, blockSize> &
zigzagOrder()
{
    static const std::array<int, blockSize> order = computeZigzag();
    return order;
}

std::array<float, blockSize>
quantTable(int quality)
{
    quality = std::clamp(quality, 1, 100);
    const int scale =
        quality < 50 ? 5000 / quality : 200 - 2 * quality;
    std::array<float, blockSize> table{};
    for (int i = 0; i < blockSize; ++i) {
        const int q = std::clamp((baseQuant[i] * scale + 50) / 100, 1,
                                 255);
        table[i] = static_cast<float>(q);
    }
    return table;
}

const std::array<std::array<double, blockDim>, blockDim> &
dctBasis()
{
    static const auto basis = [] {
        std::array<std::array<double, blockDim>, blockDim> b{};
        const double pi = std::acos(-1.0);
        for (int u = 0; u < blockDim; ++u) {
            const double cu =
                u == 0 ? std::sqrt(0.5) : 1.0;
            for (int x = 0; x < blockDim; ++x) {
                b[u][x] = 0.5 * cu *
                          std::cos((2 * x + 1) * u * pi / 16.0);
            }
        }
        return b;
    }();
    return basis;
}

JpegStream
encode(const Image &image, int quality)
{
    if (image.width % blockDim != 0 || image.height % blockDim != 0)
        fatal("jpeg::encode: dimensions must be multiples of 8");

    JpegStream stream;
    stream.width = image.width;
    stream.height = image.height;
    stream.quality = quality;
    stream.words.reserve(static_cast<std::size_t>(image.width) *
                         image.height * channels);

    const auto qt = quantTable(quality);
    const auto &zz = zigzagOrder();
    const auto &basis = dctBasis();

    double samples[blockDim][blockDim];
    double temp[blockDim][blockDim];
    double coeffs[blockDim][blockDim];

    for (int by = 0; by < image.height / blockDim; ++by) {
        for (int bx = 0; bx < image.width / blockDim; ++bx) {
            for (int ch = 0; ch < channels; ++ch) {
                // Level shift.
                for (int y = 0; y < blockDim; ++y)
                    for (int x = 0; x < blockDim; ++x)
                        samples[y][x] =
                            image.at(bx * blockDim + x,
                                     by * blockDim + y, ch) -
                            128.0;

                // Separable 2D DCT: rows, then columns.
                for (int y = 0; y < blockDim; ++y)
                    for (int u = 0; u < blockDim; ++u) {
                        double acc = 0.0;
                        for (int x = 0; x < blockDim; ++x)
                            acc += basis[u][x] * samples[y][x];
                        temp[y][u] = acc;
                    }
                for (int u = 0; u < blockDim; ++u)
                    for (int v = 0; v < blockDim; ++v) {
                        double acc = 0.0;
                        for (int y = 0; y < blockDim; ++y)
                            acc += basis[v][y] * temp[y][u];
                        coeffs[v][u] = acc;
                    }

                // Quantize and emit in zigzag order.
                for (int i = 0; i < blockSize; ++i) {
                    const int natural = zz[i];
                    const int v = natural / blockDim;
                    const int u = natural % blockDim;
                    const double q = coeffs[v][u] / qt[natural];
                    const SWord rounded = static_cast<SWord>(
                        std::lround(q));
                    stream.words.push_back(
                        static_cast<Word>(rounded));
                }
            }
        }
    }
    return stream;
}

Image
decodeHost(const JpegStream &stream)
{
    Image image(stream.width, stream.height);
    const auto qt = quantTable(stream.quality);
    const auto &zz = zigzagOrder();
    const auto &basis = dctBasis();

    double coeffs[blockDim][blockDim];
    double temp[blockDim][blockDim];

    std::size_t cursor = 0;
    for (int by = 0; by < stream.height / blockDim; ++by) {
        for (int bx = 0; bx < stream.width / blockDim; ++bx) {
            for (int ch = 0; ch < channels; ++ch) {
                // Dequantize out of zigzag order.
                for (int i = 0; i < blockSize; ++i) {
                    const int natural = zz[i];
                    const int v = natural / blockDim;
                    const int u = natural % blockDim;
                    const SWord q = static_cast<SWord>(
                        stream.words[cursor++]);
                    coeffs[v][u] = q * qt[natural];
                }

                // Separable 2D IDCT: columns, then rows.
                for (int u = 0; u < blockDim; ++u)
                    for (int y = 0; y < blockDim; ++y) {
                        double acc = 0.0;
                        for (int v = 0; v < blockDim; ++v)
                            acc += basis[v][y] * coeffs[v][u];
                        temp[y][u] = acc;
                    }
                for (int y = 0; y < blockDim; ++y)
                    for (int x = 0; x < blockDim; ++x) {
                        double acc = 0.0;
                        for (int u = 0; u < blockDim; ++u)
                            acc += basis[u][x] * temp[y][u];
                        const double value = acc + 128.0;
                        image.at(bx * blockDim + x,
                                 by * blockDim + y, ch) =
                            static_cast<std::uint8_t>(
                                std::clamp(value, 0.0, 255.0));
                    }
            }
        }
    }
    return image;
}

} // namespace commguard::media::jpeg
