#include "media/audio.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdint>

namespace commguard::media
{

std::vector<float>
makeMusicAudio(int samples, int sample_rate)
{
    std::vector<float> audio(samples, 0.0f);
    const double pi = std::acos(-1.0);

    // A little pentatonic phrase.
    const double notes[] = {220.0,  261.63, 293.66, 329.63,
                            392.0,  329.63, 293.66, 261.63};
    const int num_notes = 8;
    const double note_len = 0.35;  // seconds

    std::uint32_t noise_state = 0x12345678u;
    auto noise = [&noise_state] {
        noise_state = noise_state * 1664525u + 1013904223u;
        return static_cast<double>(noise_state >> 8) / 16777216.0 -
               0.5;
    };

    for (int i = 0; i < samples; ++i) {
        const double t = static_cast<double>(i) / sample_rate;
        const int note_index =
            static_cast<int>(t / note_len) % num_notes;
        const double note_t = std::fmod(t, note_len);
        const double freq =
            notes[note_index] *
            (1.0 + 0.004 * std::sin(2 * pi * 5.0 * t));  // vibrato

        // ADSR-ish envelope per note.
        double env;
        if (note_t < 0.02)
            env = note_t / 0.02;
        else
            env = std::exp(-3.0 * (note_t - 0.02));

        double v = 0.0;
        v += 0.55 * std::sin(2 * pi * freq * t);
        v += 0.25 * std::sin(2 * pi * 2 * freq * t);
        v += 0.12 * std::sin(2 * pi * 3 * freq * t);
        v *= env;

        // Percussive noise tick at note onsets.
        if (note_t < 0.03)
            v += 0.2 * (1.0 - note_t / 0.03) * noise();

        // Gentle pad underneath.
        v += 0.08 * std::sin(2 * pi * 110.0 * t);

        audio[i] = static_cast<float>(std::clamp(v, -1.0, 1.0));
    }
    return audio;
}

bool
writeWav(const std::vector<float> &samples, int sample_rate,
         const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (file == nullptr)
        return false;

    const std::uint32_t data_bytes =
        static_cast<std::uint32_t>(samples.size() * 2);
    const std::uint32_t riff_size = 36 + data_bytes;

    auto put16 = [&](std::uint16_t v) { std::fwrite(&v, 2, 1, file); };
    auto put32 = [&](std::uint32_t v) { std::fwrite(&v, 4, 1, file); };

    std::fwrite("RIFF", 1, 4, file);
    put32(riff_size);
    std::fwrite("WAVE", 1, 4, file);
    std::fwrite("fmt ", 1, 4, file);
    put32(16);
    put16(1);  // PCM
    put16(1);  // mono
    put32(static_cast<std::uint32_t>(sample_rate));
    put32(static_cast<std::uint32_t>(sample_rate * 2));
    put16(2);
    put16(16);
    std::fwrite("data", 1, 4, file);
    put32(data_bytes);

    for (float f : samples) {
        const double clamped = std::clamp(
            static_cast<double>(f), -1.0, 1.0);
        const std::int16_t pcm =
            static_cast<std::int16_t>(std::lround(clamped * 32767.0));
        std::fwrite(&pcm, 2, 1, file);
    }
    std::fclose(file);
    return true;
}

} // namespace commguard::media
