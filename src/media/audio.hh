/**
 * @file
 * Host-side audio synthesis and WAV output.
 *
 * The paper's mp3 benchmark decodes music; our substitute input is a
 * synthesized melody with harmonics, vibrato, and percussion-like noise
 * bursts — spectrally rich enough that subband quantization and error
 * corruption are audible/measurable, like the paper's example clips.
 */

#ifndef COMMGUARD_MEDIA_AUDIO_HH
#define COMMGUARD_MEDIA_AUDIO_HH

#include <string>
#include <vector>

namespace commguard::media
{

/** Synthesize @p samples of music-like audio in [-1, 1]. */
std::vector<float> makeMusicAudio(int samples, int sample_rate = 32768);

/** Write mono 16-bit PCM WAV. Returns false on I/O failure. */
bool writeWav(const std::vector<float> &samples, int sample_rate,
              const std::string &path);

} // namespace commguard::media

#endif // COMMGUARD_MEDIA_AUDIO_HH
