#include "media/image.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace commguard::media
{

bool
writePpm(const Image &image, const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (file == nullptr)
        return false;
    std::fprintf(file, "P6\n%d %d\n255\n", image.width, image.height);
    const std::size_t wrote = std::fwrite(
        image.rgb.data(), 1, image.rgb.size(), file);
    std::fclose(file);
    return wrote == image.rgb.size();
}

namespace
{

std::uint8_t
toByte(double v)
{
    return static_cast<std::uint8_t>(
        std::clamp(v, 0.0, 255.0));
}

/** Cheap value-noise-ish hash for texture. */
double
hashNoise(int x, int y)
{
    std::uint32_t h = static_cast<std::uint32_t>(x) * 374761393u +
                      static_cast<std::uint32_t>(y) * 668265263u;
    h = (h ^ (h >> 13)) * 1274126177u;
    return static_cast<double>(h & 0xffffu) / 65535.0;
}

} // namespace

Image
makeFlowerImage(int width, int height)
{
    Image image(width, height);

    const double cx = width * 0.52;
    const double cy = height * 0.42;
    const double flower_r = std::min(width, height) * 0.33;
    const int petals = 7;

    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            const double fy = static_cast<double>(y) / height;

            // Background: sky gradient into grass.
            double r, g, b;
            if (fy < 0.62) {
                const double t = fy / 0.62;
                r = 120 + 60 * t;
                g = 170 + 40 * t;
                b = 235 - 35 * t;
            } else {
                const double t = (fy - 0.62) / 0.38;
                r = 70 - 25 * t;
                g = 150 - 45 * t;
                b = 60 - 20 * t;
            }
            r += 10 * (hashNoise(x / 3, y / 3) - 0.5);
            g += 10 * (hashNoise(x / 3 + 7, y / 3) - 0.5);

            // Stem.
            const double stem_x =
                cx + 0.08 * flower_r *
                         std::sin((y - cy) * 0.05);
            if (y > cy && std::fabs(x - stem_x) <
                              std::max(1.5, width * 0.012)) {
                r = 40;
                g = 110 + 20 * hashNoise(x, y);
                b = 35;
            }

            // Flower: petal rosette + core disc.
            const double dx = x - cx;
            const double dy = y - cy;
            const double dist = std::sqrt(dx * dx + dy * dy);
            const double theta = std::atan2(dy, dx);
            const double petal_r =
                flower_r *
                (0.45 + 0.55 * std::fabs(std::cos(petals * theta / 2)));
            if (dist < petal_r) {
                const double t = dist / petal_r;
                r = 245 - 60 * t + 8 * (hashNoise(x, y) - 0.5);
                g = 120 + 60 * t;
                b = 160 + 50 * t;
            }
            if (dist < flower_r * 0.22) {
                const double t = dist / (flower_r * 0.22);
                r = 250 - 30 * t;
                g = 200 - 60 * t;
                b = 40 + 30 * t;
                if (hashNoise(x, y) > 0.75) {
                    r -= 60;
                    g -= 60;
                }
            }

            image.at(x, y, 0) = toByte(r);
            image.at(x, y, 1) = toByte(g);
            image.at(x, y, 2) = toByte(b);
        }
    }
    return image;
}

} // namespace commguard::media
