#include "media/quality.hh"

#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace commguard::media
{

double
psnrDb(const Image &reference, const Image &output)
{
    if (reference.width != output.width ||
        reference.height != output.height) {
        warn("psnrDb: image dimensions differ; comparing overlap");
    }

    double sum_sq = 0.0;
    std::size_t count = 0;
    const int width = std::min(reference.width, output.width);
    const int height = std::min(reference.height, output.height);
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            for (int c = 0; c < 3; ++c) {
                const double d =
                    static_cast<double>(reference.at(x, y, c)) -
                    static_cast<double>(output.at(x, y, c));
                sum_sq += d * d;
                ++count;
            }
        }
    }
    if (count == 0)
        return 0.0;
    const double mse = sum_sq / static_cast<double>(count);
    if (mse == 0.0)
        return std::numeric_limits<double>::infinity();
    return 10.0 * std::log10(255.0 * 255.0 / mse);
}

namespace
{

template <typename T>
double
snrImpl(const std::vector<T> &reference, const std::vector<T> &output)
{
    double signal = 0.0;
    double noise = 0.0;
    for (std::size_t i = 0; i < reference.size(); ++i) {
        const double ref = static_cast<double>(reference[i]);
        const double out =
            i < output.size() ? static_cast<double>(output[i]) : 0.0;
        signal += ref * ref;
        noise += (ref - out) * (ref - out);
    }
    if (noise == 0.0)
        return std::numeric_limits<double>::infinity();
    if (signal == 0.0)
        return 0.0;
    return 10.0 * std::log10(signal / noise);
}

} // namespace

double
snrDb(const std::vector<float> &reference,
      const std::vector<float> &output)
{
    return snrImpl(reference, output);
}

double
snrDb(const std::vector<double> &reference,
      const std::vector<double> &output)
{
    return snrImpl(reference, output);
}

} // namespace commguard::media
