/**
 * @file
 * Host-side JPEG-style transform codec.
 *
 * The paper's jpeg benchmark decodes a baseline JPEG on the error-prone
 * multicore. This reproduction keeps the transform path bit-faithful —
 * per-channel 8x8 DCT, quantization with the standard table and a
 * libjpeg-style quality scale, zigzag ordering — and replaces entropy
 * coding with a plain coefficient stream (the paper's F0-F2 parsing
 * stages become unpack/staging filters; see DESIGN.md). The reliable
 * host encoder produces the input stream for the error-prone decoder
 * graph; the host decoder provides the error-free lossy baseline
 * quality reference (paper §6).
 *
 * Stream layout (one word per coefficient, int32):
 *   for each 8-pixel-high stripe, for each horizontal block, for each
 *   channel (R, G, B): 64 quantized coefficients in zigzag order.
 */

#ifndef COMMGUARD_MEDIA_JPEG_CODEC_HH
#define COMMGUARD_MEDIA_JPEG_CODEC_HH

#include <array>
#include <vector>

#include "common/types.hh"
#include "media/image.hh"

namespace commguard::media::jpeg
{

constexpr int blockDim = 8;
constexpr int blockSize = blockDim * blockDim;
constexpr int channels = 3;

/** Natural index of the i-th zigzag-ordered coefficient. */
const std::array<int, blockSize> &zigzagOrder();

/** Quantization table (natural order) scaled for @p quality (1-100). */
std::array<float, blockSize> quantTable(int quality);

/** Separable DCT basis: basis[u][x] = C(u)/2 * cos((2x+1)u*pi/16). */
const std::array<std::array<double, blockDim>, blockDim> &dctBasis();

/** An encoded image: coefficient stream plus geometry. */
struct JpegStream
{
    int width = 0;
    int height = 0;
    int quality = 50;
    std::vector<Word> words;

    /** Coefficient words per 8-pixel-high stripe. */
    Count
    wordsPerStripe() const
    {
        return static_cast<Count>(width / blockDim) * channels *
               blockSize;
    }

    int numStripes() const { return height / blockDim; }
};

/**
 * Encode an image (dimensions must be multiples of 8).
 */
JpegStream encode(const Image &image, int quality);

/**
 * Reference (reliable) decoder mirroring the error-prone graph's
 * arithmetic; used for the error-free lossy baseline.
 */
Image decodeHost(const JpegStream &stream);

} // namespace commguard::media::jpeg

#endif // COMMGUARD_MEDIA_JPEG_CODEC_HH
