/**
 * @file
 * Host-side image representation, PPM I/O, and the synthetic "flower"
 * test image.
 *
 * The paper's jpeg experiments decode a flower photograph (Figs. 3, 7,
 * 9). No such input ships with this reproduction, so a procedurally
 * generated flower scene with smooth gradients, petal structure, and
 * mild texture provides an equivalent data-error-tolerant workload
 * whose corruption is equally visible.
 */

#ifndef COMMGUARD_MEDIA_IMAGE_HH
#define COMMGUARD_MEDIA_IMAGE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace commguard::media
{

/** Simple interleaved 8-bit RGB image. */
struct Image
{
    int width = 0;
    int height = 0;
    std::vector<std::uint8_t> rgb;  //!< width * height * 3 bytes.

    Image() = default;
    Image(int w, int h)
        : width(w), height(h),
          rgb(static_cast<std::size_t>(w) * h * 3, 0)
    {}

    std::uint8_t &
    at(int x, int y, int channel)
    {
        return rgb[(static_cast<std::size_t>(y) * width + x) * 3 +
                   channel];
    }

    std::uint8_t
    at(int x, int y, int channel) const
    {
        return rgb[(static_cast<std::size_t>(y) * width + x) * 3 +
                   channel];
    }
};

/** Write a binary PPM (P6). Returns false on I/O failure. */
bool writePpm(const Image &image, const std::string &path);

/** Generate the synthetic flower test image. */
Image makeFlowerImage(int width, int height);

} // namespace commguard::media

#endif // COMMGUARD_MEDIA_IMAGE_HH
