/**
 * @file
 * Output-quality metrics (paper §6, "Benchmarks").
 *
 * "Lossiness is commonly measured using signal-to-noise-ratio (SNR) for
 * audio, and using peak-signal-to-noise-ratio (PSNR) for image." PSNR
 * compares against the 8-bit peak; SNR against the reference signal
 * energy. Outputs shorter/longer than the reference are zero-padded /
 * truncated to the reference length, so missing data counts as error.
 */

#ifndef COMMGUARD_MEDIA_QUALITY_HH
#define COMMGUARD_MEDIA_QUALITY_HH

#include <vector>

#include "media/image.hh"

namespace commguard::media
{

/** PSNR in dB between two same-sized images (inf for identical). */
double psnrDb(const Image &reference, const Image &output);

/** SNR in dB of @p output against @p reference (inf for identical). */
double snrDb(const std::vector<float> &reference,
             const std::vector<float> &output);

/** SNR over double-precision vectors. */
double snrDb(const std::vector<double> &reference,
             const std::vector<double> &output);

} // namespace commguard::media

#endif // COMMGUARD_MEDIA_QUALITY_HH
