#include "isa/inst.hh"

namespace commguard::isa
{

const char *
opName(Op op)
{
    switch (op) {
      case Op::Nop: return "nop";
      case Op::Halt: return "halt";
      case Op::Li: return "li";
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::Mul: return "mul";
      case Op::Divu: return "divu";
      case Op::Divs: return "divs";
      case Op::Remu: return "remu";
      case Op::And: return "and";
      case Op::Or: return "or";
      case Op::Xor: return "xor";
      case Op::Sll: return "sll";
      case Op::Srl: return "srl";
      case Op::Sra: return "sra";
      case Op::Slt: return "slt";
      case Op::Sltu: return "sltu";
      case Op::Addi: return "addi";
      case Op::Andi: return "andi";
      case Op::Ori: return "ori";
      case Op::Xori: return "xori";
      case Op::Slli: return "slli";
      case Op::Srli: return "srli";
      case Op::Srai: return "srai";
      case Op::Fadd: return "fadd";
      case Op::Fsub: return "fsub";
      case Op::Fmul: return "fmul";
      case Op::Fdiv: return "fdiv";
      case Op::Fsqrt: return "fsqrt";
      case Op::Fabs: return "fabs";
      case Op::Fneg: return "fneg";
      case Op::Fmin: return "fmin";
      case Op::Fmax: return "fmax";
      case Op::Cvtif: return "cvtif";
      case Op::Cvtfi: return "cvtfi";
      case Op::Feq: return "feq";
      case Op::Flt: return "flt";
      case Op::Fle: return "fle";
      case Op::Beq: return "beq";
      case Op::Bne: return "bne";
      case Op::Blt: return "blt";
      case Op::Bge: return "bge";
      case Op::Bltu: return "bltu";
      case Op::Bgeu: return "bgeu";
      case Op::Jmp: return "jmp";
      case Op::Lw: return "lw";
      case Op::Sw: return "sw";
      case Op::Push: return "push";
      case Op::Pop: return "pop";
      case Op::ScopeEnter: return "scope.enter";
      case Op::ScopeExit: return "scope.exit";
      default: return "???";
    }
}

bool
isMemoryOp(Op op)
{
    return op == Op::Lw || op == Op::Sw;
}

bool
isQueueOp(Op op)
{
    return op == Op::Push || op == Op::Pop;
}

bool
isControlOp(Op op)
{
    switch (op) {
      case Op::Beq:
      case Op::Bne:
      case Op::Blt:
      case Op::Bge:
      case Op::Bltu:
      case Op::Bgeu:
      case Op::Jmp:
        return true;
      default:
        return false;
    }
}

} // namespace commguard::isa
