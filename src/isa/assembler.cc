#include "isa/assembler.hh"

#include <algorithm>

#include "common/logging.hh"

namespace commguard::isa
{

Assembler::Assembler(std::string name)
{
    _prog.name = std::move(name);
}

Word
Assembler::dataWords(const std::vector<Word> &words)
{
    const Word base = static_cast<Word>(_prog.data.size());
    _prog.data.insert(_prog.data.end(), words.begin(), words.end());
    return base;
}

Word
Assembler::dataFloats(const std::vector<float> &floats)
{
    const Word base = static_cast<Word>(_prog.data.size());
    for (float f : floats)
        _prog.data.push_back(floatToWord(f));
    return base;
}

Word
Assembler::reserve(std::size_t words)
{
    const Word base = static_cast<Word>(_prog.data.size());
    _prog.data.insert(_prog.data.end(), words, 0u);
    return base;
}

void
Assembler::label(const std::string &name)
{
    if (_labels.count(name))
        fatal("assembler: duplicate label '" + name + "' in " +
              _prog.name);
    _labels[name] = static_cast<std::int32_t>(_prog.code.size());
}

Inst &
Assembler::emit(Op op)
{
    _prog.code.push_back(Inst{});
    _prog.code.back().op = op;
    return _prog.code.back();
}

void
Assembler::branch(Op op, Reg a, Reg b, const std::string &target)
{
    Inst &inst = emit(op);
    inst.rs1 = a;
    inst.rs2 = b;
    _fixups.emplace_back(_prog.code.size() - 1, target);
}

void Assembler::jmp(const std::string &t) { branch(Op::Jmp, 0, 0, t); }
void Assembler::beq(Reg a, Reg b, const std::string &t)
{ branch(Op::Beq, a, b, t); }
void Assembler::bne(Reg a, Reg b, const std::string &t)
{ branch(Op::Bne, a, b, t); }
void Assembler::blt(Reg a, Reg b, const std::string &t)
{ branch(Op::Blt, a, b, t); }
void Assembler::bge(Reg a, Reg b, const std::string &t)
{ branch(Op::Bge, a, b, t); }
void Assembler::bltu(Reg a, Reg b, const std::string &t)
{ branch(Op::Bltu, a, b, t); }
void Assembler::bgeu(Reg a, Reg b, const std::string &t)
{ branch(Op::Bgeu, a, b, t); }

void
Assembler::forDown(Reg cnt, Word n, const std::function<void()> &body)
{
    if (n == 0)
        fatal("assembler: forDown with zero count in " + _prog.name);
    // Per-assembler counter: labels only need to be unique within one
    // program, and instance state keeps concurrent sweep workers from
    // racing on a shared static.
    const std::string top =
        "__loop" + std::to_string(_uniqueLoop++) + "_" + _prog.name;
    li(cnt, n);
    label(top);
    body();
    addi(cnt, cnt, -1);
    bne(cnt, R0, top);
}

void Assembler::nop() { emit(Op::Nop); }
void Assembler::halt() { emit(Op::Halt); }

void
Assembler::li(Reg rd, Word imm)
{
    Inst &inst = emit(Op::Li);
    inst.rd = rd;
    inst.imm = imm;
}

void
Assembler::lif(Reg rd, float value)
{
    li(rd, floatToWord(value));
}

void
Assembler::mov(Reg rd, Reg rs)
{
    add(rd, rs, R0);
}

#define CG_RRR(fn, opcode)                                              \
    void                                                                \
    Assembler::fn(Reg rd, Reg rs1, Reg rs2)                             \
    {                                                                   \
        Inst &inst = emit(Op::opcode);                                  \
        inst.rd = rd;                                                   \
        inst.rs1 = rs1;                                                 \
        inst.rs2 = rs2;                                                 \
    }

CG_RRR(add, Add)
CG_RRR(sub, Sub)
CG_RRR(mul, Mul)
CG_RRR(divu, Divu)
CG_RRR(divs, Divs)
CG_RRR(remu, Remu)
CG_RRR(and_, And)
CG_RRR(or_, Or)
CG_RRR(xor_, Xor)
CG_RRR(sll, Sll)
CG_RRR(srl, Srl)
CG_RRR(sra, Sra)
CG_RRR(slt, Slt)
CG_RRR(sltu, Sltu)
CG_RRR(fadd, Fadd)
CG_RRR(fsub, Fsub)
CG_RRR(fmul, Fmul)
CG_RRR(fdiv, Fdiv)
CG_RRR(fmin, Fmin)
CG_RRR(fmax, Fmax)
CG_RRR(feq, Feq)
CG_RRR(flt, Flt)
CG_RRR(fle, Fle)

#undef CG_RRR

#define CG_RRI(fn, opcode)                                              \
    void                                                                \
    Assembler::fn(Reg rd, Reg rs1, Word imm)                            \
    {                                                                   \
        Inst &inst = emit(Op::opcode);                                  \
        inst.rd = rd;                                                   \
        inst.rs1 = rs1;                                                 \
        inst.imm = imm;                                                 \
    }

CG_RRI(andi, Andi)
CG_RRI(ori, Ori)
CG_RRI(xori, Xori)
CG_RRI(slli, Slli)
CG_RRI(srli, Srli)
CG_RRI(srai, Srai)

#undef CG_RRI

void
Assembler::addi(Reg rd, Reg rs1, SWord imm)
{
    Inst &inst = emit(Op::Addi);
    inst.rd = rd;
    inst.rs1 = rs1;
    inst.imm = static_cast<Word>(imm);
}

#define CG_RR(fn, opcode)                                               \
    void                                                                \
    Assembler::fn(Reg rd, Reg rs1)                                      \
    {                                                                   \
        Inst &inst = emit(Op::opcode);                                  \
        inst.rd = rd;                                                   \
        inst.rs1 = rs1;                                                 \
    }

CG_RR(fsqrt, Fsqrt)
CG_RR(fabs_, Fabs)
CG_RR(fneg, Fneg)
CG_RR(cvtif, Cvtif)
CG_RR(cvtfi, Cvtfi)

#undef CG_RR

void
Assembler::lw(Reg rd, Reg base, SWord offset)
{
    Inst &inst = emit(Op::Lw);
    inst.rd = rd;
    inst.rs1 = base;
    inst.imm = static_cast<Word>(offset);
}

void
Assembler::sw(Reg rs, Reg base, SWord offset)
{
    Inst &inst = emit(Op::Sw);
    inst.rs2 = rs;
    inst.rs1 = base;
    inst.imm = static_cast<Word>(offset);
}

void
Assembler::push(int out_port, Reg rs)
{
    Inst &inst = emit(Op::Push);
    inst.rs2 = rs;
    inst.imm = static_cast<Word>(out_port);
    _prog.numOutPorts = std::max(_prog.numOutPorts, out_port + 1);
}

void
Assembler::pop(Reg rd, int in_port)
{
    Inst &inst = emit(Op::Pop);
    inst.rd = rd;
    inst.imm = static_cast<Word>(in_port);
    _prog.numInPorts = std::max(_prog.numInPorts, in_port + 1);
}

int
Assembler::scopeEnter(Count estimated_insts)
{
    const int index = static_cast<int>(_prog.scopes.size());
    ScopeInfo info;
    info.estimatedInsts = estimated_insts;
    _prog.scopes.push_back(info);
    Inst &inst = emit(Op::ScopeEnter);
    inst.imm = static_cast<Word>(index);
    _openScopes.push_back(index);
    return index;
}

void
Assembler::scopeExit()
{
    if (_openScopes.empty())
        fatal("assembler: scopeExit without scopeEnter in " +
              _prog.name);
    const int index = _openScopes.back();
    _openScopes.pop_back();
    _prog.scopes[index].exitPc =
        static_cast<std::int32_t>(_prog.code.size());
    Inst &inst = emit(Op::ScopeExit);
    inst.imm = static_cast<Word>(index);
}

void
Assembler::setMemWords(std::size_t words)
{
    _prog.memWords = words;
}

void
Assembler::setEstimatedInsts(Count insts)
{
    _prog.estimatedInstsPerInvocation = insts;
}

Program
Assembler::finalize()
{
    if (_finalized)
        fatal("assembler: finalize called twice for " + _prog.name);
    _finalized = true;
    if (!_openScopes.empty())
        fatal("assembler: unclosed scope in " + _prog.name);

    if (_prog.code.empty() || _prog.code.back().op != Op::Halt)
        _prog.code.push_back(Inst{Op::Halt, 0, 0, 0, 0, 0});

    for (const auto &[pc, name] : _fixups) {
        auto it = _labels.find(name);
        if (it == _labels.end())
            fatal("assembler: undefined label '" + name + "' in " +
                  _prog.name);
        _prog.code[pc].target = it->second;
    }

    if (_prog.memWords < _prog.data.size())
        _prog.memWords = _prog.data.size();

    ValidationResult result = validate(_prog);
    if (!result.ok)
        fatal("assembler: " + result.message);
    return std::move(_prog);
}

} // namespace commguard::isa
