/**
 * @file
 * In-process assembler EDSL for writing filter kernels.
 *
 * Kernels (src/kernels/) build their frame-computation programs through
 * this builder: one method per opcode, string labels with forward
 * references, data-segment allocation helpers, and a down-counting loop
 * helper. finalize() resolves labels and statically validates the result.
 */

#ifndef COMMGUARD_ISA_ASSEMBLER_HH
#define COMMGUARD_ISA_ASSEMBLER_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace commguard::isa
{

/** Named register constants (R0 is hardwired zero). */
constexpr Reg R0 = 0,  R1 = 1,  R2 = 2,  R3 = 3,  R4 = 4,  R5 = 5;
constexpr Reg R6 = 6,  R7 = 7,  R8 = 8,  R9 = 9,  R10 = 10, R11 = 11;
constexpr Reg R12 = 12, R13 = 13, R14 = 14, R15 = 15, R16 = 16;
constexpr Reg R17 = 17, R18 = 18, R19 = 19, R20 = 20, R21 = 21;
constexpr Reg R22 = 22, R23 = 23, R24 = 24, R25 = 25, R26 = 26;
constexpr Reg R27 = 27, R28 = 28, R29 = 29, R30 = 30, R31 = 31;

/**
 * Program builder. All emit methods append one instruction.
 */
class Assembler
{
  public:
    explicit Assembler(std::string name);

    // ------------------------------------------------------------------
    // Data segment.
    // ------------------------------------------------------------------

    /** Append words to the data segment; returns their base address. */
    Word dataWords(const std::vector<Word> &words);

    /** Append floats (bit-cast) to the data segment. */
    Word dataFloats(const std::vector<float> &floats);

    /** Reserve zero-initialized scratch words; returns base address. */
    Word reserve(std::size_t words);

    // ------------------------------------------------------------------
    // Labels and control flow.
    // ------------------------------------------------------------------

    /** Place a label at the next instruction. */
    void label(const std::string &name);

    void jmp(const std::string &target);
    void beq(Reg a, Reg b, const std::string &target);
    void bne(Reg a, Reg b, const std::string &target);
    void blt(Reg a, Reg b, const std::string &target);
    void bge(Reg a, Reg b, const std::string &target);
    void bltu(Reg a, Reg b, const std::string &target);
    void bgeu(Reg a, Reg b, const std::string &target);

    /**
     * Emit a loop running @p body exactly @p n times (n >= 1), using
     * @p cnt as a down-counter. The counter is error-prone like any
     * register, which is precisely how control-flow errors perturb
     * item counts in the paper.
     */
    void forDown(Reg cnt, Word n, const std::function<void()> &body);

    // ------------------------------------------------------------------
    // Moves and immediates.
    // ------------------------------------------------------------------

    void nop();
    void halt();
    void li(Reg rd, Word imm);
    void lif(Reg rd, float value);
    void mov(Reg rd, Reg rs);

    // ------------------------------------------------------------------
    // Integer ALU.
    // ------------------------------------------------------------------

    void add(Reg rd, Reg rs1, Reg rs2);
    void sub(Reg rd, Reg rs1, Reg rs2);
    void mul(Reg rd, Reg rs1, Reg rs2);
    void divu(Reg rd, Reg rs1, Reg rs2);
    void divs(Reg rd, Reg rs1, Reg rs2);
    void remu(Reg rd, Reg rs1, Reg rs2);
    void and_(Reg rd, Reg rs1, Reg rs2);
    void or_(Reg rd, Reg rs1, Reg rs2);
    void xor_(Reg rd, Reg rs1, Reg rs2);
    void sll(Reg rd, Reg rs1, Reg rs2);
    void srl(Reg rd, Reg rs1, Reg rs2);
    void sra(Reg rd, Reg rs1, Reg rs2);
    void slt(Reg rd, Reg rs1, Reg rs2);
    void sltu(Reg rd, Reg rs1, Reg rs2);

    void addi(Reg rd, Reg rs1, SWord imm);
    void andi(Reg rd, Reg rs1, Word imm);
    void ori(Reg rd, Reg rs1, Word imm);
    void xori(Reg rd, Reg rs1, Word imm);
    void slli(Reg rd, Reg rs1, Word sh);
    void srli(Reg rd, Reg rs1, Word sh);
    void srai(Reg rd, Reg rs1, Word sh);

    // ------------------------------------------------------------------
    // Floating point.
    // ------------------------------------------------------------------

    void fadd(Reg rd, Reg rs1, Reg rs2);
    void fsub(Reg rd, Reg rs1, Reg rs2);
    void fmul(Reg rd, Reg rs1, Reg rs2);
    void fdiv(Reg rd, Reg rs1, Reg rs2);
    void fsqrt(Reg rd, Reg rs1);
    void fabs_(Reg rd, Reg rs1);
    void fneg(Reg rd, Reg rs1);
    void fmin(Reg rd, Reg rs1, Reg rs2);
    void fmax(Reg rd, Reg rs1, Reg rs2);
    void cvtif(Reg rd, Reg rs1);
    void cvtfi(Reg rd, Reg rs1);
    void feq(Reg rd, Reg rs1, Reg rs2);
    void flt(Reg rd, Reg rs1, Reg rs2);
    void fle(Reg rd, Reg rs1, Reg rs2);

    // ------------------------------------------------------------------
    // Memory and communication.
    // ------------------------------------------------------------------

    void lw(Reg rd, Reg base, SWord offset);
    void sw(Reg rs, Reg base, SWord offset);
    void push(int out_port, Reg rs);
    void pop(Reg rd, int in_port);

    // ------------------------------------------------------------------
    // Nested scopes (paper SS4.4).
    // ------------------------------------------------------------------

    /**
     * Open a nested scope with a static instruction estimate; the PPU
     * module force-completes the scope when execution inside it
     * exceeds its budget. Must be balanced by scopeExit(). Returns
     * the scope index.
     */
    int scopeEnter(Count estimated_insts);

    /** Close the innermost open scope. */
    void scopeExit();

    // ------------------------------------------------------------------
    // Finalization.
    // ------------------------------------------------------------------

    /** Declare local memory size in words (default 64Ki words). */
    void setMemWords(std::size_t words);

    /** Record a dynamic-instruction estimate for the PPU watchdog. */
    void setEstimatedInsts(Count insts);

    /** Current instruction count (useful for building estimates). */
    std::size_t codeSize() const { return _prog.code.size(); }

    /**
     * Resolve labels, validate, and return the finished program.
     * Calls fatal() on malformed programs (an authoring bug).
     */
    Program finalize();

  private:
    Inst &emit(Op op);
    void branch(Op op, Reg a, Reg b, const std::string &target);

    Program _prog;
    std::vector<int> _openScopes;
    std::map<std::string, std::int32_t> _labels;
    // Instruction index -> unresolved label name.
    std::vector<std::pair<std::size_t, std::string>> _fixups;
    int _uniqueLoop = 0;  //!< forDown() label uniquifier.
    bool _finalized = false;
};

} // namespace commguard::isa

#endif // COMMGUARD_ISA_ASSEMBLER_HH
