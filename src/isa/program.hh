/**
 * @file
 * A loadable program: code, initial data segment, and port counts.
 *
 * One Program implements one filter's *frame computation*: the body loops
 * over the filter's firings-per-frame (with the loop counter living in an
 * error-prone register, exactly the coarse scope structure of paper §4.4)
 * and communicates through numbered input/output ports. The reliable
 * runtime invokes the program once per frame computation.
 */

#ifndef COMMGUARD_ISA_PROGRAM_HH
#define COMMGUARD_ISA_PROGRAM_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/inst.hh"

namespace commguard::isa
{

/** One nested control-flow scope (paper SS4.4). */
struct ScopeInfo
{
    /** Static estimate of dynamic instructions inside the scope. */
    Count estimatedInsts = 0;

    /** PC of the matching ScopeExit instruction. */
    std::int32_t exitPc = -1;
};

/** A validated, loadable unit of filter code. */
struct Program
{
    std::string name;

    /** Instruction stream (stored reliably; never error-injected). */
    std::vector<Inst> code;

    /**
     * Initial data segment, copied to the base of core-local memory when
     * the program is loaded (coefficient tables, window functions, ...).
     * Loading is a reliable operation.
     */
    std::vector<Word> data;

    /** Core-local memory size in words (must hold the data segment). */
    std::size_t memWords = 1u << 16;

    /** Number of input (pop) ports the code references. */
    int numInPorts = 0;

    /** Number of output (push) ports the code references. */
    int numOutPorts = 0;

    /**
     * Static estimate of dynamic instructions per invocation, set by the
     * assembler user; the PPU guard derives its per-scope watchdog budget
     * from this. Zero means "unknown", letting the guard fall back to a
     * machine-level default.
     */
    Count estimatedInstsPerInvocation = 0;

    /** Nested scopes declared by the program (indexed by imm of
     *  ScopeEnter/ScopeExit). */
    std::vector<ScopeInfo> scopes;
};

/**
 * Validation result: empty message means the program is well-formed.
 */
struct ValidationResult
{
    bool ok = true;
    std::string message;
};

/**
 * Statically validate a program: register indices in range, branch
 * targets inside the code, ports within the declared counts, data
 * segment within memory.
 */
ValidationResult validate(const Program &prog);

/** Render the program as human-readable assembly. */
std::string disassemble(const Program &prog);

/** Render a single instruction. */
std::string disassemble(const Inst &inst);

} // namespace commguard::isa

#endif // COMMGUARD_ISA_PROGRAM_HH
