#include "isa/program.hh"

#include <sstream>

namespace commguard::isa
{

namespace
{

bool
usesRd(Op op)
{
    switch (op) {
      case Op::Nop:
      case Op::Halt:
      case Op::Beq: case Op::Bne: case Op::Blt: case Op::Bge:
      case Op::Bltu: case Op::Bgeu: case Op::Jmp:
      case Op::Sw:
      case Op::Push:
      case Op::ScopeEnter:
      case Op::ScopeExit:
        return false;
      default:
        return true;
    }
}

} // namespace

ValidationResult
validate(const Program &prog)
{
    auto fail = [&](const std::string &why, std::size_t pc) {
        std::ostringstream os;
        os << prog.name << "[" << pc << "]: " << why;
        return ValidationResult{false, os.str()};
    };

    if (prog.data.size() > prog.memWords)
        return {false, prog.name + ": data segment exceeds local memory"};

    for (std::size_t pc = 0; pc < prog.code.size(); ++pc) {
        const Inst &inst = prog.code[pc];
        if (inst.op >= Op::NumOps)
            return fail("invalid opcode", pc);
        if (inst.rd >= numRegs || inst.rs1 >= numRegs ||
            inst.rs2 >= numRegs) {
            return fail("register index out of range", pc);
        }
        if (isControlOp(inst.op)) {
            if (inst.target < 0 ||
                static_cast<std::size_t>(inst.target) >=
                    prog.code.size()) {
                return fail("branch target outside code", pc);
            }
        }
        if (inst.op == Op::Pop &&
            inst.imm >= static_cast<Word>(prog.numInPorts)) {
            return fail("pop references undeclared input port", pc);
        }
        if (inst.op == Op::Push &&
            inst.imm >= static_cast<Word>(prog.numOutPorts)) {
            return fail("push references undeclared output port", pc);
        }
        if (inst.op == Op::ScopeEnter || inst.op == Op::ScopeExit) {
            if (inst.imm >= prog.scopes.size())
                return fail("scope index out of range", pc);
            if (inst.op == Op::ScopeEnter) {
                const std::int32_t exit_pc =
                    prog.scopes[inst.imm].exitPc;
                if (exit_pc < 0 ||
                    static_cast<std::size_t>(exit_pc) >=
                        prog.code.size() ||
                    prog.code[exit_pc].op != Op::ScopeExit) {
                    return fail("scope exit PC invalid", pc);
                }
            }
        }
        if (usesRd(inst.op) && inst.rd == 0 && inst.op != Op::Nop) {
            // Writes to R0 are legal no-ops but usually indicate an
            // assembler bug in kernels; flag them.
            return fail("instruction writes hardwired R0", pc);
        }
    }
    return {};
}

std::string
disassemble(const Inst &inst)
{
    std::ostringstream os;
    os << opName(inst.op);
    auto r = [](Reg reg) { return "r" + std::to_string(int(reg)); };
    switch (inst.op) {
      case Op::Nop:
      case Op::Halt:
        break;
      case Op::Li:
        os << " " << r(inst.rd) << ", " << inst.imm;
        break;
      case Op::Addi: case Op::Andi: case Op::Ori: case Op::Xori:
      case Op::Slli: case Op::Srli: case Op::Srai:
        os << " " << r(inst.rd) << ", " << r(inst.rs1) << ", "
           << static_cast<SWord>(inst.imm);
        break;
      case Op::Lw:
        os << " " << r(inst.rd) << ", " << static_cast<SWord>(inst.imm)
           << "(" << r(inst.rs1) << ")";
        break;
      case Op::Sw:
        os << " " << r(inst.rs2) << ", " << static_cast<SWord>(inst.imm)
           << "(" << r(inst.rs1) << ")";
        break;
      case Op::Push:
        os << " port" << inst.imm << ", " << r(inst.rs2);
        break;
      case Op::ScopeEnter:
      case Op::ScopeExit:
        os << " scope" << inst.imm;
        break;
      case Op::Pop:
        os << " " << r(inst.rd) << ", port" << inst.imm;
        break;
      case Op::Jmp:
        os << " @" << inst.target;
        break;
      case Op::Beq: case Op::Bne: case Op::Blt: case Op::Bge:
      case Op::Bltu: case Op::Bgeu:
        os << " " << r(inst.rs1) << ", " << r(inst.rs2) << ", @"
           << inst.target;
        break;
      case Op::Fsqrt: case Op::Fabs: case Op::Fneg:
      case Op::Cvtif: case Op::Cvtfi:
        os << " " << r(inst.rd) << ", " << r(inst.rs1);
        break;
      default:
        os << " " << r(inst.rd) << ", " << r(inst.rs1) << ", "
           << r(inst.rs2);
        break;
    }
    return os.str();
}

std::string
disassemble(const Program &prog)
{
    std::ostringstream os;
    os << "# program " << prog.name << " (" << prog.code.size()
       << " insts, " << prog.data.size() << " data words, "
       << prog.numInPorts << " in, " << prog.numOutPorts << " out)\n";
    for (std::size_t pc = 0; pc < prog.code.size(); ++pc)
        os << pc << ":\t" << disassemble(prog.code[pc]) << "\n";
    return os.str();
}

} // namespace commguard::isa
