/**
 * @file
 * Instruction set of the simulated partially-protected cores.
 *
 * A compact 32-bit load/store ISA standing in for the paper's 32-bit x86
 * baseline (§6). Thirty-two general registers hold 32-bit words; floating
 * point operations reinterpret register bits as IEEE-754 singles, so the
 * register-file bit-flip error injector uniformly produces data,
 * addressing, and control-flow errors. StreamIt communication appears as
 * ISA-visible PUSH/POP operations on filter-local ports (the paper's
 * hardware push/pop instructions carrying a queue identifier, §4).
 */

#ifndef COMMGUARD_ISA_INST_HH
#define COMMGUARD_ISA_INST_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace commguard::isa
{

/** Number of architectural registers; R0 is hardwired to zero. */
constexpr int numRegs = 32;

/** Register name. R0 reads as zero and ignores writes. */
using Reg = std::uint8_t;

/** Operation codes. */
enum class Op : std::uint8_t
{
    Nop,
    Halt,       //!< End of the current frame-computation invocation.

    Li,         //!< rd = imm (32-bit immediate load).

    // Integer ALU, register-register.
    Add, Sub, Mul, Divu, Divs, Remu,
    And, Or, Xor, Sll, Srl, Sra,
    Slt, Sltu,

    // Integer ALU, register-immediate.
    Addi, Andi, Ori, Xori, Slli, Srli, Srai,

    // Floating point (IEEE-754 single reinterpretation).
    Fadd, Fsub, Fmul, Fdiv, Fsqrt, Fabs, Fneg, Fmin, Fmax,
    Cvtif,      //!< rd = float(signed rs1)
    Cvtfi,      //!< rd = trunc-to-int(float rs1); NaN/overflow -> 0
    Feq, Flt, Fle,  //!< rd = (rs1 OP rs2) ? 1 : 0 on float views.

    // Control flow. Branch targets are immediates (instructions are
    // stored reliably; only register values are error-prone).
    Beq, Bne, Blt, Bge, Bltu, Bgeu,
    Jmp,

    // Core-local memory. Address = rs1 + imm, wrapped by the PPU guard.
    Lw,         //!< rd = mem[rs1 + imm]
    Sw,         //!< mem[rs1 + imm] = rs2

    // Streaming communication on filter-local ports (imm = port).
    Push,       //!< push rs2 to output port imm
    Pop,        //!< rd = pop from input port imm

    // Guided execution management (paper SS4.4): nested control-flow
    // scopes with per-scope instruction budgets, enforced by the
    // reliable PPU module. imm = index into Program::scopes.
    ScopeEnter,
    ScopeExit,

    NumOps
};

/** One decoded instruction. */
struct Inst
{
    Op op = Op::Nop;
    Reg rd = 0;
    Reg rs1 = 0;
    Reg rs2 = 0;
    Word imm = 0;       //!< Immediate / memory offset / port number.
    std::int32_t target = 0;  //!< Branch/jump target (instruction index).
};

/** Mnemonic for an opcode (for the disassembler and error messages). */
const char *opName(Op op);

/**
 * The ISA's *defined* float-min semantics (Fmin): if either operand is
 * NaN the other is returned; otherwise b < a ? b : a (so for a +-0.0
 * tie the FIRST operand is returned). std::fmin leaves the signed-zero
 * tie unspecified, which would make simulation results depend on the
 * host compiler; the ISA pins it down.
 */
inline float
isaFmin(float a, float b)
{
    if (a != a)
        return b;
    if (b != b)
        return a;
    return b < a ? b : a;
}

/** Defined float-max semantics (Fmax); mirror of isaFmin. */
inline float
isaFmax(float a, float b)
{
    if (a != a)
        return b;
    if (b != b)
        return a;
    return a < b ? b : a;
}

/** True for Lw/Sw (used by the timing model's memory-event accounting). */
bool isMemoryOp(Op op);

/** True for Push/Pop. */
bool isQueueOp(Op op);

/** True for any branch or jump. */
bool isControlOp(Op op);

} // namespace commguard::isa

#endif // COMMGUARD_ISA_INST_HH
