/**
 * @file
 * Hot-path suboperation counters for the CommGuard modules.
 *
 * One instance per core, shared by its header inserter, alignment
 * managers, queue managers, and active-fc counter. The fields mirror
 * the suboperations of paper Tables 2-3 so the overhead evaluation
 * (Figs. 12 and 14) reads directly from a run.
 *
 * The fields are metrics::Counter values — plain embedded 64-bit
 * counts on the increment path — and linkTo() publishes them into the
 * per-run metrics registry, from which every reporting layer (metric
 * snapshots, RunOutcome, JSONL export) reads.
 */

#ifndef COMMGUARD_COMMGUARD_COUNTERS_HH
#define COMMGUARD_COMMGUARD_COUNTERS_HH

#include "common/metrics.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace commguard
{

/** Per-core CommGuard suboperation counters. */
struct CgCounters
{
    using Counter = metrics::Counter;

    // Memory events in the queue substrate (Fig. 12).
    Counter dataStores;    //!< Item pushes.
    Counter dataLoads;     //!< Item pops.
    Counter headerStores;  //!< Header pushes.
    Counter headerLoads;   //!< Header pops.

    // Table 3 suboperation classes (Fig. 14).
    Counter headerBitOps;      //!< is-header tag checks.
    Counter eccChecks;         //!< check-ECC for received headers.
    Counter eccComputes;       //!< compute-ECC for inserted headers.
    Counter fsmOps;            //!< FSM-check/update operations.
    Counter counterOps;        //!< active-fc reads/increments.
    Counter prepareHeaderOps;  //!< prepare-header operations.

    // Realignment activity (Figs. 7-8).
    Counter paddedItems;
    Counter discardedItems;
    Counter discardedHeaders;
    Counter acceptedItems;

    // Timeout recovery.
    Counter headerDropsOnTimeout;

    /**
     * AM pop-event occupancy per FSM state (bucket order matches
     * AmState): the per-node hardware-activity breakdown of the
     * stage-profiling view. Shared by the core's alignment managers.
     */
    metrics::Histogram amStateOccupancy{
        {"RcvCmp", "ExpHdr", "DiscFr", "Disc", "Pdg"}};

    /** FSM/Counter class of Fig. 14. */
    Count fsmCounterOps() const { return fsmOps + counterOps; }

    /** ECC class of Fig. 14 (working-set pointer ECC is counted by the
     *  queues and added by the reporting layer). */
    Count eccOps() const { return eccChecks + eccComputes; }

    /** Total CommGuard suboperations (Fig. 14 "Total"). */
    Count
    totalOps() const
    {
        return fsmCounterOps() + eccOps() + headerBitOps +
               prepareHeaderOps;
    }

    /** Register every counter in @p registry under @p prefix. */
    void
    linkTo(metrics::Registry &registry,
           const std::string &prefix) const
    {
        registry.link(prefix + "/dataStores", dataStores);
        registry.link(prefix + "/dataLoads", dataLoads);
        registry.link(prefix + "/headerStores", headerStores);
        registry.link(prefix + "/headerLoads", headerLoads);
        registry.link(prefix + "/headerBitOps", headerBitOps);
        registry.link(prefix + "/eccChecks", eccChecks);
        registry.link(prefix + "/eccComputes", eccComputes);
        registry.link(prefix + "/fsmOps", fsmOps);
        registry.link(prefix + "/counterOps", counterOps);
        registry.link(prefix + "/prepareHeaderOps", prepareHeaderOps);
        registry.link(prefix + "/paddedItems", paddedItems);
        registry.link(prefix + "/discardedItems", discardedItems);
        registry.link(prefix + "/discardedHeaders", discardedHeaders);
        registry.link(prefix + "/acceptedItems", acceptedItems);
        registry.link(prefix + "/headerDropsOnTimeout",
                      headerDropsOnTimeout);
        registry.link(prefix + "/amState", amStateOccupancy);
    }

    /** Publish all counters into @p group. */
    void
    exportTo(StatGroup &group) const
    {
        group.set("dataStores", dataStores);
        group.set("dataLoads", dataLoads);
        group.set("headerStores", headerStores);
        group.set("headerLoads", headerLoads);
        group.set("headerBitOps", headerBitOps);
        group.set("eccChecks", eccChecks);
        group.set("eccComputes", eccComputes);
        group.set("fsmOps", fsmOps);
        group.set("counterOps", counterOps);
        group.set("prepareHeaderOps", prepareHeaderOps);
        group.set("paddedItems", paddedItems);
        group.set("discardedItems", discardedItems);
        group.set("discardedHeaders", discardedHeaders);
        group.set("acceptedItems", acceptedItems);
        group.set("headerDropsOnTimeout", headerDropsOnTimeout);
    }
};

} // namespace commguard

#endif // COMMGUARD_COMMGUARD_COUNTERS_HH
