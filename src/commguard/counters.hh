/**
 * @file
 * Hot-path suboperation counters for the CommGuard modules.
 *
 * One instance per core, shared by its header inserter, alignment
 * managers, queue managers, and active-fc counter. The fields mirror
 * the suboperations of paper Tables 2-3 so the overhead evaluation
 * (Figs. 12 and 14) reads directly from a run.
 */

#ifndef COMMGUARD_COMMGUARD_COUNTERS_HH
#define COMMGUARD_COMMGUARD_COUNTERS_HH

#include "common/stats.hh"
#include "common/types.hh"

namespace commguard
{

/** Per-core CommGuard suboperation counters. */
struct CgCounters
{
    // Memory events in the queue substrate (Fig. 12).
    Count dataStores = 0;    //!< Item pushes.
    Count dataLoads = 0;     //!< Item pops.
    Count headerStores = 0;  //!< Header pushes.
    Count headerLoads = 0;   //!< Header pops.

    // Table 3 suboperation classes (Fig. 14).
    Count headerBitOps = 0;      //!< is-header tag checks.
    Count eccChecks = 0;         //!< check-ECC for received headers.
    Count eccComputes = 0;       //!< compute-ECC for inserted headers.
    Count fsmOps = 0;            //!< FSM-check/update operations.
    Count counterOps = 0;        //!< active-fc reads/increments.
    Count prepareHeaderOps = 0;  //!< prepare-header operations.

    // Realignment activity (Figs. 7-8).
    Count paddedItems = 0;
    Count discardedItems = 0;
    Count discardedHeaders = 0;
    Count acceptedItems = 0;

    // Timeout recovery.
    Count headerDropsOnTimeout = 0;

    /** FSM/Counter class of Fig. 14. */
    Count fsmCounterOps() const { return fsmOps + counterOps; }

    /** ECC class of Fig. 14 (working-set pointer ECC is counted by the
     *  queues and added by the reporting layer). */
    Count eccOps() const { return eccChecks + eccComputes; }

    /** Total CommGuard suboperations (Fig. 14 "Total"). */
    Count
    totalOps() const
    {
        return fsmCounterOps() + eccOps() + headerBitOps +
               prepareHeaderOps;
    }

    /** Publish all counters into @p group. */
    void
    exportTo(StatGroup &group) const
    {
        group.set("dataStores", dataStores);
        group.set("dataLoads", dataLoads);
        group.set("headerStores", headerStores);
        group.set("headerLoads", headerLoads);
        group.set("headerBitOps", headerBitOps);
        group.set("eccChecks", eccChecks);
        group.set("eccComputes", eccComputes);
        group.set("fsmOps", fsmOps);
        group.set("counterOps", counterOps);
        group.set("prepareHeaderOps", prepareHeaderOps);
        group.set("paddedItems", paddedItems);
        group.set("discardedItems", discardedItems);
        group.set("discardedHeaders", discardedHeaders);
        group.set("acceptedItems", acceptedItems);
        group.set("headerDropsOnTimeout", headerDropsOnTimeout);
    }
};

} // namespace commguard

#endif // COMMGUARD_COMMGUARD_COUNTERS_HH
