/**
 * @file
 * The active frame computation (active-fc) counter.
 *
 * Paper §4: "The PPU core increments the active-fc counter for every new
 * frame computation and this counter represents the frame progress of
 * the thread." The header inserter stamps outgoing headers with this
 * value and the alignment manager compares incoming headers against it.
 *
 * A saturating counter optionally down-scales the increment frequency so
 * that N program-level frame computations form one CommGuard frame
 * (paper §5.4, the frame-size knob evaluated in Figs. 10, 11, 13).
 */

#ifndef COMMGUARD_COMMGUARD_ACTIVE_FC_HH
#define COMMGUARD_COMMGUARD_ACTIVE_FC_HH

#include "common/sat_counter.hh"
#include "commguard/counters.hh"
#include "common/types.hh"

namespace commguard
{

/**
 * Reliable frame-progress counter with optional down-scaling.
 */
class ActiveFcCounter
{
  public:
    /** Result of registering one frame-computation invocation. */
    struct Tick
    {
        bool newFrame;  //!< True when a new CommGuard frame starts.
        FrameId id;     //!< The (possibly unchanged) active-fc value.
    };

    /**
     * @param downscale Program frame computations per CommGuard frame
     *                  (1 = paper's default application-wide frames).
     * @param counters  Optional counter-op accounting target.
     */
    explicit ActiveFcCounter(Count downscale = 1,
                             CgCounters *counters = nullptr)
        : _downscale(downscale), _counters(counters)
    {}

    /** Register the start of one program-level frame computation. */
    Tick
    onFrameComputation()
    {
        if (_counters)
            ++_counters->counterOps;
        if (_downscale.tick()) {
            ++_value;
            return {true, _value};
        }
        return {false, _value};
    }

    /** Current frame ID (0 before the first frame). */
    FrameId value() const { return _value; }

    /** Frame computations per CommGuard frame. */
    Count downscale() const { return _downscale.limit(); }

  private:
    FrameId _value = 0;
    SaturatingCounter _downscale;
    CgCounters *_counters;
};

} // namespace commguard

#endif // COMMGUARD_COMMGUARD_ACTIVE_FC_HH
