/**
 * @file
 * CommGuard header inserter (HI).
 *
 * Paper §4.1: on the producer side, at the start of every frame
 * computation the HI inserts an ECC-protected frame header carrying the
 * active-fc value into *all* outgoing queues, giving downstream
 * alignment managers specific points at which alignment can be
 * restored. When the thread's computation ends, a special end-of-
 * computation frame ID is inserted instead. The thread is oblivious to
 * HI actions.
 *
 * Insertion is resumable: a full outgoing queue blocks the insertion,
 * which later retries from the first not-yet-written port.
 */

#ifndef COMMGUARD_COMMGUARD_HEADER_INSERTER_HH
#define COMMGUARD_COMMGUARD_HEADER_INSERTER_HH

#include <vector>

#include "commguard/counters.hh"
#include "commguard/queue_manager.hh"

namespace commguard
{

/**
 * Per-core header insertion engine.
 */
class HeaderInserter
{
  public:
    /**
     * @param outs     Queue managers of the core's outgoing edges.
     * @param counters Per-core CommGuard suboperation accounting.
     */
    HeaderInserter(std::vector<QueueManager *> outs, CgCounters &counters)
        : _outs(std::move(outs)), _counters(counters)
    {}

    /**
     * Insert the header for frame @p id into every outgoing queue.
     * Returns Blocked if some queue is full; call again with the same
     * @p id to resume (already-written ports are not written twice).
     */
    QueueOpStatus insert(FrameId id);

    /** Insert the end-of-computation marker into every outgoing queue. */
    QueueOpStatus
    insertEndOfComputation()
    {
        return insert(endOfComputationId);
    }

    /**
     * Timeout recovery: give up on the port currently blocking an
     * in-progress insertion (its consumer will realign via padding or
     * discarding when traffic resumes).
     */
    void skipBlockedPort();

    /** Number of outgoing queues. */
    std::size_t numPorts() const { return _outs.size(); }

  private:
    std::vector<QueueManager *> _outs;
    CgCounters &_counters;

    bool _inProgress = false;
    QueueWord _header;
    std::size_t _nextPort = 0;
};

} // namespace commguard

#endif // COMMGUARD_COMMGUARD_HEADER_INSERTER_HH
