#include "commguard/header_inserter.hh"

namespace commguard
{

QueueOpStatus
HeaderInserter::insert(FrameId id)
{
    if (!_inProgress) {
        // Table 2, "new frame computation": prepare-header (read then
        // increment active-fc, set header-bit) and compute-ECC happen
        // once; the per-queue pushes follow.
        ++_counters.prepareHeaderOps;
        ++_counters.eccComputes;
        _header = makeHeader(id);
        _nextPort = 0;
        _inProgress = true;
    }

    for (; _nextPort < _outs.size(); ++_nextPort) {
        // Table 2: one FSM-update per outgoing queue.
        ++_counters.fsmOps;
        if (_outs[_nextPort]->pushHeader(_header) ==
            QueueOpStatus::Blocked) {
            return QueueOpStatus::Blocked;
        }
    }

    _inProgress = false;
    return QueueOpStatus::Ok;
}

void
HeaderInserter::skipBlockedPort()
{
    if (_inProgress && _nextPort < _outs.size()) {
        ++_counters.headerDropsOnTimeout;
        ++_nextPort;
    }
}

} // namespace commguard
