/**
 * @file
 * CommGuard alignment manager (AM): the 5-state checker FSM of Table 1.
 *
 * One AM instance guards one incoming queue of a consumer core. It
 * receives two kinds of events: the local thread starting a new frame
 * computation, and the local thread issuing a pop. Using the frame IDs
 * in received headers and the thread's active-fc counter it detects
 * misalignment and repairs it by discarding queued words (communication
 * realignment) or padding pop responses with zeroes (computation
 * realignment), converting catastrophic alignment errors into tolerable
 * data errors (paper §4.2).
 */

#ifndef COMMGUARD_COMMGUARD_ALIGNMENT_MANAGER_HH
#define COMMGUARD_COMMGUARD_ALIGNMENT_MANAGER_HH

#include "commguard/counters.hh"
#include "commguard/queue_manager.hh"

namespace commguard
{

/** Alignment manager FSM states (paper Table 1). */
enum class AmState : std::uint8_t
{
    RcvCmp,   //!< Receiving/computing items of the active frame.
    ExpHdr,   //!< New frame computation started; expecting a header.
    DiscFr,   //!< Discarding frames from the queue (AE-FE).
    Disc,     //!< Discarding items and frames (AE-IE, AE-FE).
    Pdg,      //!< Padding the thread for lost data (AE-IL, AE-FL).
};

/** Printable state name. */
const char *amStateName(AmState state);

/** Outcome of one pop request processed by the AM. */
struct AmPopResult
{
    enum class Kind : std::uint8_t
    {
        Item,     //!< A real data item was delivered.
        Pad,      //!< The AM padded the response (value is 0).
        Blocked,  //!< The underlying queue is empty; retry later.
    };

    Kind kind;
    Word value;
};

/**
 * Alignment checker for one incoming queue.
 */
class AlignmentManager
{
  public:
    /** @param counters Per-core CommGuard suboperation accounting. */
    explicit AlignmentManager(CgCounters &counters)
        : _counters(counters)
    {}

    /**
     * Event: local thread rolled over to a new frame computation whose
     * frame ID is @p active_fc.
     */
    void onNewFrameComputation(FrameId active_fc);

    /**
     * Event: local thread issued a pop on this queue. May consume
     * several queued words (discarding) before resolving. Re-entrant:
     * if the queue drains mid-discard the call returns Blocked and a
     * later retry resumes from the persisted FSM state.
     */
    AmPopResult onPop(QueueManager &qm, FrameId active_fc);

    AmState state() const { return _state; }

    /** Future header being waited for while padding (valid in Pdg). */
    FrameId pendingHeader() const { return _pendingHeader; }

  private:
    /** Count one FSM-check/update suboperation (Table 3). */
    void fsmOp() { ++_counters.fsmOps; }

    AmState _state = AmState::RcvCmp;
    FrameId _pendingHeader = 0;
    CgCounters &_counters;
};

} // namespace commguard

#endif // COMMGUARD_COMMGUARD_ALIGNMENT_MANAGER_HH
