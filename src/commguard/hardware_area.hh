/**
 * @file
 * Hardware-area accounting for the CommGuard modules (paper §5.5).
 *
 * "CommGuard modules need reliable storage for maintaining static and
 * dynamic state ... modules store 2 counters and their limits;
 * active-fc and a saturating counter ... Further, the modules need to
 * store the following for each incoming queue; 3-bits and 1 word for
 * header, queue ID, the local buffer pointer and its speculative copy
 * in the QIT. ... with 4 queues per core the total reliable storage
 * would account to 4 x 4B + 4 x (3bits + 4B + 4B + 4B + 4B) ~ 82B."
 */

#ifndef COMMGUARD_COMMGUARD_HARDWARE_AREA_HH
#define COMMGUARD_COMMGUARD_HARDWARE_AREA_HH

#include "common/types.hh"

namespace commguard
{

/** Per-core reliable storage requirement, in bits. */
struct HardwareArea
{
    Count counterBits = 0;   //!< active-fc + saturating counter state.
    Count perQueueBits = 0;  //!< QIT entries for the incoming queues.

    Count totalBits() const { return counterBits + perQueueBits; }

    /** Rounded-up bytes (the paper reports ~82B for 4 queues). */
    Count totalBytes() const { return (totalBits() + 7) / 8; }
};

/**
 * Compute the reliable storage a core's CommGuard modules need for
 * @p num_queues incoming queues, following the paper's §5.5 itemized
 * accounting:
 *  - 2 counters and their limits (active-fc, frame downscaler): 4
 *    words;
 *  - per incoming queue: a 3-bit FSM state, a 1-word header buffer, a
 *    1-word queue ID, a 1-word local buffer pointer, and its 1-word
 *    speculative copy (the §5.3 option (ii) speculation storage).
 */
inline HardwareArea
commGuardReliableStorage(int num_queues)
{
    constexpr Count word_bits = 32;

    HardwareArea area;
    area.counterBits = 4 * word_bits;
    area.perQueueBits =
        static_cast<Count>(num_queues) * (3 + 4 * word_bits);
    return area;
}

} // namespace commguard

#endif // COMMGUARD_COMMGUARD_HARDWARE_AREA_HH
