#include "commguard/alignment_manager.hh"

namespace commguard
{

const char *
amStateName(AmState state)
{
    switch (state) {
      case AmState::RcvCmp: return "RcvCmp";
      case AmState::ExpHdr: return "ExpHdr";
      case AmState::DiscFr: return "DiscFr";
      case AmState::Disc: return "Disc";
      case AmState::Pdg: return "Pdg";
      default: return "???";
    }
}

namespace
{

/** Header classification relative to the local active-fc. */
enum class HeaderKind { Past, Correct, Future };

HeaderKind
classify(FrameId id, FrameId active_fc)
{
    // The end-of-computation marker compares as an infinitely-future
    // frame: the producer is done, so the consumer pads out its
    // remaining frame computations.
    if (id == endOfComputationId || id > active_fc)
        return HeaderKind::Future;
    if (id == active_fc)
        return HeaderKind::Correct;
    return HeaderKind::Past;
}

} // namespace

void
AlignmentManager::onNewFrameComputation(FrameId active_fc)
{
    fsmOp();
    switch (_state) {
      case AmState::RcvCmp:
        // Table 1: RcvCmp, "New frame computation started" -> ExpHdr.
        _state = AmState::ExpHdr;
        break;
      case AmState::Pdg:
        // Table 1: Pdg, "New frame computation matched header" ->
        // RcvCmp. The matching header was already consumed when Pdg
        // was entered, so delivery resumes directly with items.
        if (_pendingHeader != endOfComputationId &&
            active_fc >= _pendingHeader) {
            _state = AmState::RcvCmp;
        }
        break;
      case AmState::ExpHdr:
      case AmState::DiscFr:
      case AmState::Disc:
        // No transition listed in Table 1: the realignment in progress
        // continues; header comparisons below use the new active-fc.
        break;
    }
}

AmPopResult
AlignmentManager::onPop(QueueManager &qm, FrameId active_fc)
{
    // Each iteration consumes at most one queued word; the loop ends by
    // delivering an item, delivering padding, or blocking on an empty
    // queue (Table 2: "while FSM not DONE").
    while (true) {
        fsmOp();

        // Stage profiling: one occupancy tick per FSM evaluation,
        // bucketed by the state the FSM was in when the pop arrived.
        _counters.amStateOccupancy.add(static_cast<std::size_t>(_state));

        if (_state == AmState::Pdg) {
            // Table 2: "if FSM-check not Pdg do ..." -- in Pdg the pop
            // request is answered with a 0 without touching the queue.
            ++_counters.paddedItems;
            return {AmPopResult::Kind::Pad, 0};
        }

        QueueWord word;
        if (qm.pop(word) == QueueOpStatus::Blocked)
            return {AmPopResult::Kind::Blocked, 0};

        if (!word.isHeader) {
            switch (_state) {
              case AmState::RcvCmp:
                // Normal delivery.
                ++_counters.acceptedItems;
                return {AmPopResult::Kind::Item, word.value};
              case AmState::ExpHdr:
                // Table 1: ExpHdr, "Received item or past header" ->
                // DiscFr. The offending item is discarded.
                _state = AmState::DiscFr;
                ++_counters.discardedItems;
                continue;
              case AmState::DiscFr:
              case AmState::Disc:
                ++_counters.discardedItems;
                continue;
              default:
                continue;
            }
        }

        // A header: ECC-check and compare with the frame progress.
        const FrameId id = qm.checkHeader(word);
        const HeaderKind kind = classify(id, active_fc);

        switch (_state) {
          case AmState::RcvCmp:
            if (kind == HeaderKind::Future) {
                // Table 1: RcvCmp, "Received future header" -> Pdg.
                _pendingHeader = id;
                _state = AmState::Pdg;
            } else {
                // Table 1: RcvCmp, "Received past header" -> Disc.
                // (A duplicate header of the current frame is treated
                // the same way; it cannot arise from reliable HIs.)
                _state = AmState::Disc;
                ++_counters.discardedHeaders;
            }
            continue;

          case AmState::ExpHdr:
            if (kind == HeaderKind::Correct) {
                // Table 1: ExpHdr, "Received correct header" -> RcvCmp.
                _state = AmState::RcvCmp;
            } else if (kind == HeaderKind::Future) {
                // Table 1: ExpHdr, "Received future header" -> Pdg.
                _pendingHeader = id;
                _state = AmState::Pdg;
            } else {
                // Table 1: ExpHdr, "Received ... past header" -> DiscFr.
                _state = AmState::DiscFr;
                ++_counters.discardedHeaders;
            }
            continue;

          case AmState::DiscFr:
            if (kind == HeaderKind::Correct) {
                // Table 1: DiscFr, "Received correct header" -> RcvCmp.
                _state = AmState::RcvCmp;
            } else if (kind == HeaderKind::Future) {
                // Table 1: DiscFr, "Received future header" -> Pdg.
                _pendingHeader = id;
                _state = AmState::Pdg;
            } else {
                ++_counters.discardedHeaders;
            }
            continue;

          case AmState::Disc:
            if (kind == HeaderKind::Future) {
                // Table 1: Disc, "Received future header" -> Pdg.
                _pendingHeader = id;
                _state = AmState::Pdg;
            } else {
                // Past and current headers are discarded with their
                // frames; Disc resolves only on a future header.
                ++_counters.discardedHeaders;
            }
            continue;

          default:
            continue;
        }
    }
}

} // namespace commguard
