/**
 * @file
 * CommGuard queue manager (QM): reliable transfer of items and headers.
 *
 * Paper §4.3: the QM (i) sends/receives items through the memory
 * subsystem, (ii) separates items and headers, and (iii) ECC-checks
 * headers. This class wraps one queue endpoint, performing those duties
 * and recording every suboperation the evaluation counts: data vs
 * header memory events (Fig. 12), header-bit checks and ECC operations
 * (Fig. 14, Table 3).
 */

#ifndef COMMGUARD_COMMGUARD_QUEUE_MANAGER_HH
#define COMMGUARD_COMMGUARD_QUEUE_MANAGER_HH

#include "commguard/counters.hh"
#include "queue/queue_base.hh"

namespace commguard
{

/**
 * Per-endpoint reliable queue access with suboperation accounting.
 */
class QueueManager
{
  public:
    /**
     * @param queue    Underlying storage (normally a WorkingSetQueue).
     * @param counters Suboperation accounting target (shared per core).
     */
    QueueManager(QueueBase &queue, CgCounters &counters)
        : _queue(queue), _counters(counters)
    {}

    /** Producer-side: store one data item. */
    QueueOpStatus
    pushItem(Word value)
    {
        const QueueOpStatus status = _queue.tryPush(makeItem(value));
        if (status == QueueOpStatus::Ok)
            ++_counters.dataStores;
        return status;
    }

    /** Producer-side: store one pre-encoded frame header. */
    QueueOpStatus
    pushHeader(const QueueWord &header)
    {
        const QueueOpStatus status = _queue.tryPush(header);
        if (status == QueueOpStatus::Ok)
            ++_counters.headerStores;
        return status;
    }

    /**
     * Consumer-side: load the next data unit and classify it via the
     * header tag bit (Table 3: "is-header: Check header-bit").
     */
    QueueOpStatus
    pop(QueueWord &word)
    {
        const QueueOpStatus status = _queue.tryPop(word);
        if (status == QueueOpStatus::Ok) {
            ++_counters.headerBitOps;
            if (word.isHeader)
                ++_counters.headerLoads;
            else
                ++_counters.dataLoads;
        }
        return status;
    }

    /**
     * ECC-check a received header and return its frame ID (Table 3:
     * "check-ECC: Single-word ECC set/check"). Headers are end-to-end
     * protected, so decode failures indicate a simulator bug.
     */
    FrameId
    checkHeader(const QueueWord &header)
    {
        ++_counters.eccChecks;
        const EccDecode decoded = eccDecode(header.ecc);
        return decoded.data;
    }

    QueueBase &queue() { return _queue; }
    CgCounters &counters() { return _counters; }

  private:
    QueueBase &_queue;
    CgCounters &_counters;
};

} // namespace commguard

#endif // COMMGUARD_COMMGUARD_QUEUE_MANAGER_HH
