#include "sim/shard.hh"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>
#include <utility>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "sim/run_codec.hh"
#include "sim/run_export.hh"
#include "sim/telemetry_export.hh"
#include "sim/trace_export.hh"

namespace commguard::sim
{

namespace
{

/** Frames above this are a protocol error, not a real payload. */
constexpr std::size_t kMaxFrameBytes = 1u << 30;

bool
writeAll(int fd, const char *data, std::size_t size)
{
    while (size > 0) {
        const ssize_t n = ::write(fd, data, size);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

bool
readAll(int fd, char *data, std::size_t size)
{
    while (size > 0) {
        const ssize_t n = ::read(fd, data, size);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false;  // EOF mid-frame: peer died.
        data += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

Json
helloFrame()
{
    Json hello = Json::object();
    hello["build_stamp"] = Json(buildStamp());
    hello["protocol_version"] = Json(kShardProtocolVersion);
    hello["schema_version"] = Json(metrics::kSchemaVersion);
    hello["type"] = Json("hello");
    return hello;
}

/** Parse a frame payload; empty Json (null) on failure. */
bool
parseFrame(const std::string &payload, Json *out, std::string *error)
{
    return Json::parse(payload, *out, error) && out->isObject();
}

} // namespace

bool
writeFrame(int fd, const std::string &payload)
{
    if (payload.size() > kMaxFrameBytes)
        return false;
    unsigned char prefix[4];
    const std::size_t size = payload.size();
    prefix[0] = static_cast<unsigned char>(size & 0xFF);
    prefix[1] = static_cast<unsigned char>((size >> 8) & 0xFF);
    prefix[2] = static_cast<unsigned char>((size >> 16) & 0xFF);
    prefix[3] = static_cast<unsigned char>((size >> 24) & 0xFF);
    return writeAll(fd, reinterpret_cast<const char *>(prefix), 4) &&
           writeAll(fd, payload.data(), payload.size());
}

bool
readFrame(int fd, std::string *payload)
{
    unsigned char prefix[4];
    if (!readAll(fd, reinterpret_cast<char *>(prefix), 4))
        return false;
    const std::size_t size =
        static_cast<std::size_t>(prefix[0]) |
        (static_cast<std::size_t>(prefix[1]) << 8) |
        (static_cast<std::size_t>(prefix[2]) << 16) |
        (static_cast<std::size_t>(prefix[3]) << 24);
    if (size > kMaxFrameBytes)
        return false;
    payload->resize(size);
    return size == 0 || readAll(fd, payload->data(), size);
}

ShardStats &
shardStats()
{
    static ShardStats instance;
    return instance;
}

namespace
{
ShardPlan g_plan;
bool g_planSet = false;
} // namespace

void
setProcessShardPlan(ShardPlan plan)
{
    g_plan = std::move(plan);
    g_planSet = true;
}

const ShardPlan *
processShardPlan()
{
    return g_planSet ? &g_plan : nullptr;
}

int
shardWorkerLoop(int in_fd, int out_fd)
{
    if (!writeFrame(out_fd, helloFrame().dump()))
        return 1;

    AppCache apps;
    RunScratch scratch;
    scratch.beginBatch();

    std::string payload;
    while (readFrame(in_fd, &payload)) {
        Json frame;
        std::string error;
        if (!parseFrame(payload, &frame, &error)) {
            warn("shard worker: bad frame: " + error);
            return 1;
        }
        const Json *type = frame.find("type");
        if (type == nullptr || !type->isString()) {
            warn("shard worker: frame lacks a type");
            return 1;
        }
        if (type->str() == "exit")
            return 0;
        if (type->str() != "run") {
            warn("shard worker: unexpected frame type '" +
                 type->str() + "'");
            return 1;
        }

        const Json *id = frame.find("id");
        const Json *descriptor_json = frame.find("descriptor");
        if (id == nullptr || !id->isNumber() ||
            descriptor_json == nullptr) {
            warn("shard worker: malformed run frame");
            return 1;
        }
        RunDescriptor descriptor;
        if (!descriptorFromJson(*descriptor_json, apps, &descriptor,
                                &error)) {
            // Report the reason before dying so the serve side can
            // distinguish a protocol bug from a crash.
            Json reply = Json::object();
            reply["id"] = Json(id->counter());
            reply["message"] = Json(error);
            reply["type"] = Json("error");
            writeFrame(out_fd, reply.dump());
            return 1;
        }

        const RunOutcome outcome =
            runOnce(*descriptor.app, descriptor.options, &scratch);
        Json reply = Json::object();
        reply["id"] = Json(id->counter());
        reply["output"] = Json(encodeWords(outcome.output));
        reply["record"] = runRecordJson(descriptor, outcome);
        reply["type"] = Json("result");
        if (!writeFrame(out_fd, reply.dump()))
            return 1;
    }
    // EOF without an exit frame: the serve side died; just stop.
    return 0;
}

ShardExecutor::ShardExecutor(ShardPlan plan) : _plan(std::move(plan))
{
    if (_plan.shards == 0)
        fatal("ShardExecutor: shard count must be >= 1");
    if (_plan.workerArgv.empty())
        fatal("ShardExecutor: no worker command line configured");
    // A worker death surfaces as a failed pipe write/read, not a
    // process-killing signal.
    std::signal(SIGPIPE, SIG_IGN);
}

ShardExecutor::~ShardExecutor()
{
    for (Worker &worker : _workers) {
        if (!worker.live)
            continue;
        writeFrame(worker.toWorker, "{\"type\":\"exit\"}");
        retireWorker(worker);
        int status = 0;
        ::waitpid(worker.pid, &status, 0);
    }
}

void
ShardExecutor::spawnWorker()
{
    int to_worker[2];
    int from_worker[2];
    if (::pipe(to_worker) != 0 || ::pipe(from_worker) != 0)
        fatal("shard: pipe failed: " +
              std::string(std::strerror(errno)));
    // CLOEXEC on every end: a worker must not inherit its siblings'
    // pipe ends, or their EOF-based death detection breaks. The child
    // dup2()s its own two ends, which clears the flag on the copies.
    for (int fd : {to_worker[0], to_worker[1], from_worker[0],
                   from_worker[1]})
        if (::fcntl(fd, F_SETFD, FD_CLOEXEC) != 0)
            fatal("shard: fcntl(FD_CLOEXEC) failed: " +
                  std::string(std::strerror(errno)));

    const pid_t pid = ::fork();
    if (pid < 0)
        fatal("shard: fork failed: " +
              std::string(std::strerror(errno)));
    if (pid == 0) {
        // Child: frames arrive on stdin, leave on stdout (dup2 clears
        // O_CLOEXEC on the duplicates), then become the worker tool.
        if (::dup2(to_worker[0], 0) < 0 ||
            ::dup2(from_worker[1], 1) < 0)
            ::_exit(127);
        std::vector<char *> argv;
        argv.reserve(_plan.workerArgv.size() + 1);
        for (const std::string &arg : _plan.workerArgv)
            argv.push_back(const_cast<char *>(arg.c_str()));
        argv.push_back(nullptr);
        ::execv(argv[0], argv.data());
        ::_exit(127);
    }

    ::close(to_worker[0]);
    ::close(from_worker[1]);

    Worker worker;
    worker.pid = pid;
    worker.toWorker = to_worker[1];
    worker.fromWorker = from_worker[0];
    worker.live = true;
    worker.inflight = -1;

    // The handshake rejects a worker from a different build or
    // protocol before any run is entrusted to it.
    std::string payload;
    Json hello;
    std::string error;
    if (!readFrame(worker.fromWorker, &payload) ||
        !parseFrame(payload, &hello, &error))
        fatal("shard: worker failed to start (no hello frame); "
              "worker argv[0] = " +
              _plan.workerArgv[0]);
    if (hello.dump() != helloFrame().dump())
        fatal("shard: worker handshake mismatch (build or protocol "
              "skew): got " +
              hello.dump() + ", want " + helloFrame().dump());

    shardStats().workersSpawned.fetch_add(1,
                                          std::memory_order_relaxed);
    _workers.push_back(worker);
}

void
ShardExecutor::retireWorker(Worker &worker)
{
    if (worker.toWorker >= 0)
        ::close(worker.toWorker);
    if (worker.fromWorker >= 0)
        ::close(worker.fromWorker);
    worker.toWorker = -1;
    worker.fromWorker = -1;
    worker.live = false;
}

void
ShardExecutor::onWorkerDeath(Worker &worker,
                             std::deque<std::size_t> &pending,
                             std::vector<int> &attempts)
{
    warn("shard: worker pid " + std::to_string(worker.pid) +
         " died; reassigning its work");
    retireWorker(worker);
    int status = 0;
    ::waitpid(worker.pid, &status, 0);
    shardStats().workersLost.fetch_add(1, std::memory_order_relaxed);

    if (worker.inflight >= 0) {
        const std::size_t index =
            static_cast<std::size_t>(worker.inflight);
        worker.inflight = -1;
        if (++attempts[index] >= _plan.maxAttempts)
            fatal("shard: run " + std::to_string(index) +
                  " lost its worker " +
                  std::to_string(_plan.maxAttempts) +
                  " times; aborting the sweep");
        // Front of the queue: the retried run goes out next, so a
        // flaky run fails fast instead of at the end of the sweep.
        pending.push_front(index);
    }

    bool any_live = false;
    for (const Worker &w : _workers)
        any_live |= w.live;
    if (!any_live) {
        if (_respawns >= _plan.maxRespawns)
            fatal("shard: worker pool exhausted after " +
                  std::to_string(_respawns) + " respawns");
        ++_respawns;
        spawnWorker();
    }
}

void
ShardExecutor::runInline(std::size_t index,
                         const RunDescriptor &descriptor,
                         const ExecutionRequest &request,
                         ExecutedRun &run)
{
    // Mirrors LocalExecutor's per-run body exactly, so a batch's
    // bytes do not depend on which side executed each run.
    run.outcome =
        runOnce(*descriptor.app, descriptor.options, &_inlineScratch);
    if (request.wantRecords)
        run.recordLine = runRecordJson(descriptor, run.outcome).dump();
    if (request.wantTraceDocs && run.outcome.eventTrace != nullptr)
        run.traceDoc = perfettoTraceJson(*run.outcome.eventTrace).dump();
    if (request.wantTelemetry)
        run.telemetryChunk = telemetryLines(
            descriptor, run.outcome, request.telemetryBase + index);
    if (request.onRunDone)
        request.onRunDone(index, descriptor, run.outcome);
    shardStats().localFallbackRuns.fetch_add(
        1, std::memory_order_relaxed);
}

void
ShardExecutor::execute(const std::vector<RunDescriptor> &batch,
                       const ExecutionRequest &request,
                       std::vector<ExecutedRun> &out)
{
    if (_workers.empty()) {
        for (unsigned i = 0; i < _plan.shards; ++i)
            spawnWorker();
        _inlineScratch.beginBatch();
    }

    std::deque<std::size_t> pending;
    std::vector<std::size_t> inline_runs;
    for (std::size_t i = 0; i < batch.size(); ++i) {
        if (runShippable(batch[i]))
            pending.push_back(i);
        else
            inline_runs.push_back(i);
    }
    std::size_t remaining = pending.size();
    std::vector<int> attempts(batch.size(), 0);

    const auto assign = [&](Worker &worker) {
        const std::size_t index = pending.front();
        pending.pop_front();
        worker.inflight = static_cast<int>(index);

        Json frame = Json::object();
        frame["descriptor"] = descriptorJson(batch[index]);
        frame["id"] = Json(Count{index});
        frame["type"] = Json("run");
        if (!writeFrame(worker.toWorker, frame.dump())) {
            onWorkerDeath(worker, pending, attempts);
            return;
        }
        shardStats().runsAssigned.fetch_add(1,
                                            std::memory_order_relaxed);
        if (attempts[index] > 0)
            shardStats().runsReassigned.fetch_add(
                1, std::memory_order_relaxed);

        ++_assignedTotal;
        if (_plan.testKillAfterAssignments > 0 && !_testKillDone &&
            _assignedTotal >= _plan.testKillAfterAssignments) {
            // Test hook: take down the worker we just loaded, forcing
            // the death-detection and reassignment path.
            _testKillDone = true;
            ::kill(worker.pid, SIGKILL);
        }
    };

    while (remaining > 0) {
        // Top up: every idle live worker gets the next pending run.
        for (std::size_t w = 0;
             w < _workers.size() && !pending.empty(); ++w) {
            if (_workers[w].live && _workers[w].inflight < 0)
                assign(_workers[w]);
        }

        std::vector<struct pollfd> fds;
        std::vector<std::size_t> fd_owner;
        for (std::size_t w = 0; w < _workers.size(); ++w) {
            if (!_workers[w].live || _workers[w].inflight < 0)
                continue;
            fds.push_back({_workers[w].fromWorker, POLLIN, 0});
            fd_owner.push_back(w);
        }
        if (fds.empty()) {
            if (pending.empty())
                fatal("shard: runs outstanding but none in flight");
            continue;  // A respawned worker picks them up next pass.
        }

        int ready = ::poll(fds.data(), fds.size(), -1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            fatal("shard: poll failed: " +
                  std::string(std::strerror(errno)));
        }

        for (std::size_t f = 0; f < fds.size(); ++f) {
            if (fds[f].revents == 0)
                continue;
            Worker &worker = _workers[fd_owner[f]];
            if (!worker.live)
                continue;  // Already retired this pass.

            std::string payload;
            if (!readFrame(worker.fromWorker, &payload)) {
                onWorkerDeath(worker, pending, attempts);
                continue;
            }
            Json frame;
            std::string error;
            if (!parseFrame(payload, &frame, &error))
                fatal("shard: undecodable worker frame: " + error);
            const Json *type = frame.find("type");
            if (type == nullptr || !type->isString())
                fatal("shard: worker frame lacks a type");
            if (type->str() == "error") {
                const Json *message = frame.find("message");
                fatal("shard: worker rejected a run: " +
                      (message != nullptr && message->isString()
                           ? message->str()
                           : payload));
            }
            if (type->str() != "result")
                fatal("shard: unexpected worker frame type '" +
                      type->str() + "'");

            const Json *id = frame.find("id");
            const Json *record = frame.find("record");
            const Json *output = frame.find("output");
            if (id == nullptr || !id->isNumber() ||
                record == nullptr || !record->isObject() ||
                output == nullptr || !output->isString())
                fatal("shard: malformed result frame");
            const std::size_t index =
                static_cast<std::size_t>(id->counter());
            if (worker.inflight < 0 ||
                static_cast<std::size_t>(worker.inflight) != index)
                fatal("shard: result id " + std::to_string(index) +
                      " does not match the worker's in-flight run");
            worker.inflight = -1;

            std::vector<Word> words;
            if (!decodeWords(output->str(), &words))
                fatal("shard: corrupt output encoding in result " +
                      std::to_string(index));
            ExecutedRun &run = out[index];
            run.outcome = outcomeFromRecord(*record, std::move(words));
            if (request.wantRecords)
                run.recordLine = record->dump();
            if (request.wantTelemetry)
                run.telemetryChunk =
                    telemetryLines(batch[index], run.outcome,
                                   request.telemetryBase + index);
            if (request.onRunDone)
                request.onRunDone(index, batch[index], run.outcome);
            shardStats().resultFrames.fetch_add(
                1, std::memory_order_relaxed);
            --remaining;
        }
    }

    // Descriptors that cannot ship (hand-assembled graphs, traced or
    // telemetry-sampled runs) execute on this side, same bytes as the
    // local path.
    for (std::size_t index : inline_runs)
        runInline(index, batch[index], request, out[index]);
}

} // namespace commguard::sim
