/**
 * @file
 * Deterministic parallel experiment engine.
 *
 * Every evaluation sweep (figures, ablations, §6 methodology) is a set
 * of independent runs: each (app, mode, mtbe, seed, frameScale)
 * descriptor builds its own self-contained Multicore with per-core
 * seeded RNGs, so runs share no mutable state. SweepRunner owns the
 * *what* of a sweep — the queued descriptors, submission-order result
 * collection, progress reporting, artifact writes — and delegates the
 * *where* to a RunExecutor (sim/run_executor.hh): the in-process
 * ThreadPool by default, OS worker processes when a shard plan is
 * installed (sim/shard.hh), with an optional content-addressed result
 * cache in front of either (sim/result_cache.hh, CG_CACHE_DIR).
 *
 * Determinism guarantee: the outcome vector is bitwise identical for
 * any job count, shard count, and cache hit/miss history, because all
 * randomness lives in per-run seeded RNGs and the engine only decides
 * *when/where* a run executes, never what it computes. Export
 * artifacts (CG_JSONL lines, Perfetto trace documents) are *serialized*
 * where the run executed and *written* after the batch in submission
 * order, so file bytes carry the same independence.
 *
 * Ownership: a SweepRunner owns its executor for its whole lifetime
 * (pool workers / shard processes are reused across runAll() calls);
 * descriptors reference apps::App objects that must outlive runAll().
 */

#ifndef COMMGUARD_SIM_SWEEP_RUNNER_HH
#define COMMGUARD_SIM_SWEEP_RUNNER_HH

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/thread_pool.hh"
#include "sim/experiment.hh"
#include "sim/run_executor.hh"

namespace commguard::sim
{

/**
 * Canonical sweep options for seed index @p seed_index (0-based): the
 * paper methodology's per-seed derivation shared by every bench.
 */
streamit::LoadOptions sweepOptions(streamit::ProtectionMode mode,
                                   bool inject_errors, double mtbe,
                                   int seed_index,
                                   Count frame_scale = 1);

/**
 * Parallel fan-out of independent experiment runs.
 */
class SweepRunner
{
  public:
    /**
     * Whether this runner may consult the CG_CACHE_DIR result cache.
     * Off exists for callers whose point is to *execute* (timing
     * measurements in micro_sweep_throughput, determinism comparisons
     * in the fuzz harness): a replayed result would measure the cache,
     * not the machine.
     */
    enum class Caching
    {
        Auto,  //!< Use the process cache when CG_CACHE_DIR is set.
        Off,   //!< Never look up or store, cache or not.
    };

    /** @param jobs Pool width; 0 means ThreadPool::defaultJobs(). */
    explicit SweepRunner(unsigned jobs = 0,
                         Caching caching = Caching::Auto);

    /** A runner on an explicit execution backend (e.g. shards). */
    explicit SweepRunner(std::unique_ptr<RunExecutor> executor,
                         Caching caching = Caching::Auto);

    /** Queue one run; returns its index in the outcome vector. */
    std::size_t enqueue(const apps::App &app,
                        const streamit::LoadOptions &options);
    std::size_t enqueue(RunDescriptor descriptor);

    /**
     * Execute every queued descriptor and return their outcomes in
     * submission order (clears the queue). Long sweeps print periodic
     * progress lines to stderr; quick ones stay silent.
     */
    std::vector<RunOutcome> runAll();

    /** Effective parallelism of this runner's backend. */
    unsigned jobs() const { return _executor->jobs(); }

    /** Backend name ("local", "shard") for logs and boards. */
    const char *executorName() const { return _executor->name(); }

    /**
     * Host-side scheduling counters of the backend's in-process pool,
     * when it has one (batches, stolen indices, waits/wakeups). Engine
     * diagnostics only — never part of per-run snapshots, whose bytes
     * must not depend on the job count. See docs/METRICS.md, "pool/".
     */
    ThreadPool::Stats poolStats() const
    {
        return _executor->poolStats();
    }

    /** Reset the scheduling counters (e.g. between bench phases). */
    void resetPoolStats() { _executor->resetPoolStats(); }

    // ------------------------------------------------------------------
    // Progress (readable from any thread while runAll is executing).
    // ------------------------------------------------------------------

    /** Descriptors in the current/last runAll batch. */
    std::size_t total() const { return _total; }

    /** Runs finished so far in the current/last batch. */
    std::size_t completed() const
    {
        return _completed.load(std::memory_order_relaxed);
    }

    /**
     * Observer called after each completed run with (done, total);
     * invoked under an internal mutex, possibly from worker threads.
     * Replaces the default stderr progress printer. Install it before
     * runAll(): the batch latches whether a callback is present at its
     * start.
     */
    void setProgress(
        std::function<void(std::size_t, std::size_t)> callback)
    {
        _progress = std::move(callback);
    }

    /**
     * Observer called after each completed run with (done, total,
     * descriptor, outcome) — the sweep health board's hook
     * (sim/telemetry_export.hh). Invoked under an internal mutex,
     * possibly from worker threads; it takes precedence over both
     * setProgress() and the default printer. Like setProgress(), the
     * batch latches its presence at runAll() start. Cache hits report
     * through it too (from the submitting thread).
     */
    using OutcomeObserver = std::function<void(
        std::size_t, std::size_t, const RunDescriptor &,
        const RunOutcome &)>;
    void setOutcomeObserver(OutcomeObserver observer)
    {
        _outcomeObserver = std::move(observer);
    }

  private:
    void finishRun(const RunDescriptor &descriptor,
                   const RunOutcome &outcome);
    void reportProgress(std::size_t done);

    std::unique_ptr<RunExecutor> _executor;
    Caching _caching = Caching::Auto;
    std::vector<RunDescriptor> _queued;

    std::size_t _total = 0;
    std::atomic<std::size_t> _completed{0};
    std::function<void(std::size_t, std::size_t)> _progress;
    bool _useCallback = false;  //!< Latched per batch from _progress.
    OutcomeObserver _outcomeObserver;
    bool _useOutcomeObserver = false;  //!< Latched per batch.

    std::mutex _progressMutex;       //!< Serializes actual printing.
    double _startSeconds = 0.0;      //!< Monotonic batch start.

    /**
     * Next time the default reporter may print. Checked with one
     * relaxed load on every completion — the mutex above is only taken
     * when a print is actually due, so finishing a run costs no lock.
     */
    std::atomic<double> _nextPrintSeconds{0.0};
};

/**
 * Process-wide runner shared by qualitySweep() and the bench helpers,
 * reused for every sweep. Only for use from the main thread. Backed by
 * a ShardExecutor when a process shard plan is installed
 * (setProcessShardPlan — `cg_bench run --shards=N`), by the default
 * local pool otherwise.
 *
 * The local pool width is pinned when the first caller constructs the
 * runner; changing CG_JOBS later in the process (e.g. setenv() from
 * test code) does NOT re-size it. A mismatch between the pinned width
 * and the current CG_JOBS is reported once via warn() so a silently
 * ignored setting is at least visible. Construct a private
 * SweepRunner(jobs) when a specific width is required.
 */
SweepRunner &sharedRunner();

} // namespace commguard::sim

#endif // COMMGUARD_SIM_SWEEP_RUNNER_HH
