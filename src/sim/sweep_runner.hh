/**
 * @file
 * Deterministic parallel experiment engine.
 *
 * Every evaluation sweep (figures, ablations, §6 methodology) is a set
 * of independent runs: each (app, mode, mtbe, seed, frameScale)
 * descriptor builds its own self-contained Multicore with per-core
 * seeded RNGs, so runs share no mutable state. SweepRunner fans the
 * descriptors out through the pool's lock-free batch path (workers
 * claim run indices from one atomic counter) and collects RunOutcomes
 * in submission order.
 *
 * Determinism guarantee: the outcome vector is bitwise identical for
 * any job count, because all randomness lives in per-run seeded RNGs
 * and host scheduling only decides *when* a run executes, never what
 * it computes. Per-worker RunScratch state preserves this: recycled
 * buffers are re-zeroed and cached programs copied pristine, so which
 * worker runs a descriptor cannot leak into its outcome. `CG_JOBS=1`
 * restores fully sequential execution on the submitting thread.
 *
 * Export artifacts (CG_JSONL lines, Perfetto trace documents) are
 * *serialized* on the worker that ran the run and *written* after the
 * batch in submission order, so file bytes are also independent of
 * CG_JOBS while the string building stays off the barrier.
 *
 * Ownership: a SweepRunner owns its ThreadPool for its whole lifetime
 * (workers are reused across runAll() calls); descriptors reference
 * apps::App objects that must outlive runAll().
 */

#ifndef COMMGUARD_SIM_SWEEP_RUNNER_HH
#define COMMGUARD_SIM_SWEEP_RUNNER_HH

#include <atomic>
#include <cstddef>
#include <functional>
#include <vector>

#include "common/thread_pool.hh"
#include "sim/experiment.hh"

namespace commguard::sim
{

/** One independent run of a sweep. */
struct RunDescriptor
{
    const apps::App *app = nullptr;  //!< Not owned; must outlive run.
    streamit::LoadOptions options;
};

/**
 * Canonical sweep options for seed index @p seed_index (0-based): the
 * paper methodology's per-seed derivation shared by every bench.
 */
streamit::LoadOptions sweepOptions(streamit::ProtectionMode mode,
                                   bool inject_errors, double mtbe,
                                   int seed_index,
                                   Count frame_scale = 1);

/**
 * Parallel fan-out of independent experiment runs.
 */
class SweepRunner
{
  public:
    /** @param jobs Pool width; 0 means ThreadPool::defaultJobs(). */
    explicit SweepRunner(unsigned jobs = 0);

    /** Queue one run; returns its index in the outcome vector. */
    std::size_t enqueue(const apps::App &app,
                        const streamit::LoadOptions &options);
    std::size_t enqueue(RunDescriptor descriptor);

    /**
     * Execute every queued descriptor and return their outcomes in
     * submission order (clears the queue). Long sweeps print periodic
     * progress lines to stderr; quick ones stay silent.
     */
    std::vector<RunOutcome> runAll();

    /** Effective parallelism of this runner. */
    unsigned jobs() const { return _pool.jobs(); }

    /**
     * Host-side scheduling counters of the underlying pool (batches,
     * stolen indices, waits/wakeups). Engine diagnostics only — never
     * part of per-run snapshots, whose bytes must not depend on the
     * job count. See docs/METRICS.md, "pool/".
     */
    ThreadPool::Stats poolStats() const { return _pool.stats(); }

    /** Reset the scheduling counters (e.g. between bench phases). */
    void resetPoolStats() { _pool.resetStats(); }

    // ------------------------------------------------------------------
    // Progress (readable from any thread while runAll is executing).
    // ------------------------------------------------------------------

    /** Descriptors in the current/last runAll batch. */
    std::size_t total() const { return _total; }

    /** Runs finished so far in the current/last batch. */
    std::size_t completed() const
    {
        return _completed.load(std::memory_order_relaxed);
    }

    /**
     * Observer called after each completed run with (done, total);
     * invoked under an internal mutex, possibly from worker threads.
     * Replaces the default stderr progress printer. Install it before
     * runAll(): the batch latches whether a callback is present at its
     * start.
     */
    void setProgress(
        std::function<void(std::size_t, std::size_t)> callback)
    {
        _progress = std::move(callback);
    }

    /**
     * Observer called after each completed run with (done, total,
     * descriptor, outcome) — the sweep health board's hook
     * (sim/telemetry_export.hh). Invoked under an internal mutex,
     * possibly from worker threads; it takes precedence over both
     * setProgress() and the default printer. Like setProgress(), the
     * batch latches its presence at runAll() start.
     */
    using OutcomeObserver = std::function<void(
        std::size_t, std::size_t, const RunDescriptor &,
        const RunOutcome &)>;
    void setOutcomeObserver(OutcomeObserver observer)
    {
        _outcomeObserver = std::move(observer);
    }

  private:
    void reportProgress(std::size_t done);

    ThreadPool _pool;
    std::vector<RunDescriptor> _queued;

    /**
     * One reusable RunScratch per pool job slot, indexed by the batch
     * worker id (slot 0 doubles as the inline-path scratch). Grown
     * lazily on the first runAll(); lives as long as the runner so
     * recycled buffers survive across batches.
     */
    std::vector<RunScratch> _scratches;

    std::size_t _total = 0;
    std::atomic<std::size_t> _completed{0};
    std::function<void(std::size_t, std::size_t)> _progress;
    bool _useCallback = false;  //!< Latched per batch from _progress.
    OutcomeObserver _outcomeObserver;
    bool _useOutcomeObserver = false;  //!< Latched per batch.

    std::mutex _progressMutex;       //!< Serializes actual printing.
    double _startSeconds = 0.0;      //!< Monotonic batch start.

    /**
     * Next time the default reporter may print. Checked with one
     * relaxed load on every completion — the mutex above is only taken
     * when a print is actually due, so finishing a run costs no lock.
     */
    std::atomic<double> _nextPrintSeconds{0.0};
};

/**
 * Process-wide runner shared by qualitySweep() and the bench helpers:
 * one pool of CG_JOBS workers reused for every sweep. Only for use
 * from the main thread.
 *
 * The pool width is pinned when the first caller constructs the
 * runner; changing CG_JOBS later in the process (e.g. setenv() from
 * test code) does NOT re-size it. A mismatch between the pinned width
 * and the current CG_JOBS is reported once via warn() so a silently
 * ignored setting is at least visible. Construct a private
 * SweepRunner(jobs) when a specific width is required.
 */
SweepRunner &sharedRunner();

} // namespace commguard::sim

#endif // COMMGUARD_SIM_SWEEP_RUNNER_HH
