/**
 * @file
 * The protection-backend registry: the extensible vocabulary of
 * communication-protection configurations.
 *
 * Historically `ProtectionMode` was a closed three-value enum owned by
 * the graph loader, and the loader hard-wired one queue class and one
 * backend class per value. This module inverts that: a protection mode
 * is an opaque id minted by the ProtectionRegistry, and everything the
 * rest of the system needs to know about it — its canonical name, its
 * edge-queue substrate, its per-core CommBackend factory, and the
 * loader hooks for source framing and cost accounting — lives in a
 * self-describing ModeDescriptor. The loader, the experiment layer,
 * the JSONL/BENCH exporters, the fuzz harness, and the scenario
 * registry all iterate the registry instead of switching on the enum,
 * so adding a protection mode is one registration, not surgery.
 *
 * Built-in modes (registered in id order, names are the JSONL schema
 * vocabulary):
 *  - "raw"            corruptible software queues (Fig. 3b);
 *                     parse alias: "ppu-only" (the pre-registry name)
 *  - "reliable-queue" reliable hardware queues, no alignment (Fig. 3c)
 *  - "commguard"      reliable QM + HI + AM (Fig. 3d)
 *  - "replicate"      N-modular filter-firing replication with output
 *                     voting over reliable queues (PAPERS.md
 *                     "Protecting Futures" task replication)
 *  - "abft"           checksum-augmented streams over corruptible
 *                     software queues (FT-GEMM-style ABFT)
 */

#ifndef COMMGUARD_SIM_PROTECTION_HH
#define COMMGUARD_SIM_PROTECTION_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/recycle_pool.hh"
#include "common/types.hh"
#include "machine/comm_backend.hh"
#include "queue/queue_word.hh"

namespace commguard::protection
{

/**
 * Opaque protection-mode id. The named constants are the built-in
 * registrations; ProtectionRegistry::add() mints fresh ids beyond
 * them. Only the registry gives an id meaning — never switch on it.
 */
enum class ProtectionMode : std::uint8_t
{
    Raw = 0,        //!< Corruptible software queues (Fig. 3b).
    PpuOnly = Raw,  //!< Deprecated pre-registry alias for Raw.
    ReliableQueue = 1,  //!< Reliable queues, no CommGuard (Fig. 3c).
    CommGuard = 2,      //!< Reliable QM + HI + AM (Fig. 3d).
    Replicate = 3,      //!< Filter-firing replication + voting.
    Abft = 4,           //!< Checksum-augmented streams.
};

/** How the reliable input device frames the source stream. */
enum class SourceFraming
{
    Plain,      //!< Data items only.
    Headers,    //!< CommGuard frame headers before each frame block.
    Checksums,  //!< ABFT checksum header-words after each block.
};

/**
 * Everything a per-core backend factory needs about one core's ports.
 * Built by the loader; indices parallel the core's in/out port tables.
 */
struct BackendSpec
{
    std::vector<QueueBase *> ins;
    std::vector<QueueBase *> outs;

    /** Per-edge frame-domain scales (§5.4 lcm of the endpoints). */
    std::vector<Count> inScales;
    std::vector<Count> outScales;

    /** False bypasses protection for that input edge (source-guard
     *  ablation). */
    std::vector<bool> inGuarded;

    /** Items per protection block on each edge (frame items x scale). */
    std::vector<Count> inBlockItems;
    std::vector<Count> outBlockItems;

    /** Whole-run data items each edge carries (final partial block). */
    std::vector<Count> inTotalItems;
    std::vector<Count> outTotalItems;

    /** Executions per firing for replicating modes (>= 2). */
    int replicas = 2;
};

/**
 * Self-describing protection mode: name, provenance, and the factories
 * and loader hooks that make it runnable.
 */
struct ModeDescriptor
{
    /** Registry-assigned id (ignored on add(); set by the registry). */
    ProtectionMode mode{};

    /** Canonical name: the JSONL vocabulary and the --mode spelling. */
    std::string name;

    /** One-line description for listings. */
    std::string description;

    /** Paper / related-work provenance. */
    std::string paperRef;

    /** Additional accepted spellings for parsing (never emitted). */
    std::vector<std::string> aliases;

    /** Input-device framing this mode's consumers expect. */
    SourceFraming sourceFraming = SourceFraming::Plain;

    /** Edge-queue substrate factory. Required. */
    std::function<std::unique_ptr<QueueBase>(
        const std::string &name, std::size_t capacity,
        RecyclePool<QueueWord> *recycle)>
        makeEdgeQueue;

    /** Per-core backend factory. Required. */
    std::function<std::unique_ptr<CommBackend>(const BackendSpec &)>
        makeBackend;

    /**
     * Loader cost hook: the mode re-executes each invocation once per
     * replica, so global watchdog estimates scale with
     * LoadOptions::replicas.
     */
    bool costScalesWithReplicas = false;

    /**
     * Loader capacity hook: consumers buffer a whole protection block
     * before serving it, so edge capacity must cover two blocks (plus
     * their checksum words) or producer and consumer can ratchet into
     * permanent timeout recovery.
     */
    bool consumerBuffersBlocks = false;
};

/**
 * Process-wide mode table. The five built-ins are registered at
 * construction in id order; add() extends the table (tests, future
 * out-of-tree modes). Iteration order is registration order, which is
 * deterministic by construction.
 */
class ProtectionRegistry
{
  public:
    /** The process-wide instance (built-ins already registered). */
    static ProtectionRegistry &instance();

    /**
     * Register @p descriptor and mint its id. fatal() on an empty
     * name, a duplicate name/alias, or a missing factory — a
     * half-described mode would fail much later, inside a sweep.
     */
    ProtectionMode add(ModeDescriptor descriptor);

    /** Descriptor for @p mode; fatal() on an unregistered id. */
    const ModeDescriptor &describe(ProtectionMode mode) const;

    /** Parse a canonical name or alias; false on unknown names. */
    bool tryParse(const std::string &name, ProtectionMode *out) const;

    /** All registered modes, in registration (id) order. */
    std::vector<ProtectionMode> modes() const;

    /** All canonical names, in registration (id) order. */
    std::vector<std::string> names() const;

    /** "raw, reliable-queue, ..." for error messages and listings. */
    std::string nameList() const;

    std::size_t size() const { return _descriptors.size(); }

  private:
    ProtectionRegistry();

    // Deque: descriptors (and their name storage, which
    // protectionModeName() hands out) never move once registered.
    std::deque<ModeDescriptor> _descriptors;
};

/** Canonical name of @p mode; fatal() on an unregistered id. */
const char *protectionModeName(ProtectionMode mode);

/**
 * Parse a mode name; fatal() with the registered-name list on unknown
 * input. The one canonical parse used by EnvOptions, ExperimentConfig,
 * the exporters, and the fuzz repro bundles.
 */
ProtectionMode parseProtectionMode(const std::string &name);

/** Non-fatal parse for tools that want exit-code control. */
bool tryParseProtectionMode(const std::string &name,
                            ProtectionMode *out);

} // namespace commguard::protection

#endif // COMMGUARD_SIM_PROTECTION_HH
