/**
 * @file
 * The "how does a run get executed" seam of the sweep engine.
 *
 * SweepRunner decides *what* to run (the queued descriptors), in what
 * order results are reported (submission order), and which artifacts
 * each run must yield (outcome, JSONL record, trace document,
 * telemetry chunk). A RunExecutor decides *where* the work happens:
 *
 *  - LocalExecutor: the in-process ThreadPool batch path (workers
 *    claim run indices lock-free from one atomic counter) — the
 *    default, byte-identical to the pre-seam engine for any CG_JOBS.
 *
 *  - ShardExecutor (sim/shard.hh): OS worker processes fed over a
 *    length-prefixed pipe protocol, for sweeps that outgrow one
 *    address space (docs/SHARDING.md).
 *
 * The executor contract is the determinism keystone: out[i] depends
 * only on batch[i], never on which worker/process/cache served it, so
 * the merged artifact bytes are independent of job count, shard count
 * and scheduling. Executors report completions through
 * ExecutionRequest::onRunDone as runs finish (any thread, any order);
 * slot placement is always by submission index.
 */

#ifndef COMMGUARD_SIM_RUN_EXECUTOR_HH
#define COMMGUARD_SIM_RUN_EXECUTOR_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/thread_pool.hh"
#include "sim/experiment.hh"

namespace commguard::sim
{

/** One independent run of a sweep. */
struct RunDescriptor
{
    const apps::App *app = nullptr;  //!< Not owned; must outlive run.
    streamit::LoadOptions options;
};

/**
 * Everything one executed run hands back to the engine. The string
 * artifacts are serialized where the run executed (worker thread or
 * worker process) so the post-batch barrier only concatenates; empty
 * strings mean the artifact was not requested (or the run produced
 * none, e.g. an untraced run has no trace document).
 */
struct ExecutedRun
{
    RunOutcome outcome;

    /** runRecordJson(descriptor, outcome).dump() (one JSONL line). */
    std::string recordLine;

    /** perfettoTraceJson(...).dump() for traced runs. */
    std::string traceDoc;

    /** telemetryLines(...) chunk for telemetry-sampled runs. */
    std::string telemetryChunk;
};

/** What the engine needs from each run of a batch. */
struct ExecutionRequest
{
    bool wantRecords = false;    //!< Fill ExecutedRun::recordLine.
    bool wantTraceDocs = false;  //!< Fill ExecutedRun::traceDoc.
    bool wantTelemetry = false;  //!< Fill ExecutedRun::telemetryChunk.

    /** Stream-wide run_index base for telemetry records (chunk i uses
     *  telemetryBase + i, so stream bytes stay deterministic). */
    Count telemetryBase = 0;

    /**
     * Called once per finished run with (batch index, descriptor,
     * outcome) — possibly from a worker thread, in completion order.
     * May be empty. Used for progress reporting and the sweep health
     * board; must not assume any ordering.
     */
    std::function<void(std::size_t, const RunDescriptor &,
                       const RunOutcome &)>
        onRunDone;
};

/** Abstract run-execution backend. */
class RunExecutor
{
  public:
    virtual ~RunExecutor() = default;

    /** Stable backend name ("local", "shard") for logs and boards. */
    virtual const char *name() const = 0;

    /** Effective parallelism (pool width or worker-process count). */
    virtual unsigned jobs() const = 0;

    /**
     * Host-side scheduling counters of an in-process pool, when the
     * backend has one; zeroes otherwise. Engine diagnostics only —
     * never part of per-run snapshots (docs/METRICS.md, "pool/").
     */
    virtual ThreadPool::Stats poolStats() const { return {}; }
    virtual void resetPoolStats() {}

    /**
     * Execute every descriptor of @p batch and fill @p out (resized by
     * the caller to batch.size()) by submission index. Rethrows the
     * first run exception after the batch completes, matching the
     * ThreadPool contract.
     */
    virtual void execute(const std::vector<RunDescriptor> &batch,
                         const ExecutionRequest &request,
                         std::vector<ExecutedRun> &out) = 0;
};

/**
 * The in-process executor: the ThreadPool batch path with one
 * reusable RunScratch per pool job slot (buffers recycled across
 * batches; re-zeroed so recycled storage cannot leak into outcomes).
 */
class LocalExecutor : public RunExecutor
{
  public:
    /** @param jobs Pool width; 0 means ThreadPool::defaultJobs(). */
    explicit LocalExecutor(unsigned jobs = 0);

    const char *name() const override { return "local"; }
    unsigned jobs() const override { return _pool.jobs(); }
    ThreadPool::Stats poolStats() const override
    {
        return _pool.stats();
    }
    void resetPoolStats() override { _pool.resetStats(); }

    void execute(const std::vector<RunDescriptor> &batch,
                 const ExecutionRequest &request,
                 std::vector<ExecutedRun> &out) override;

  private:
    ThreadPool _pool;

    /**
     * One reusable RunScratch per pool job slot, indexed by the batch
     * worker id (slot 0 doubles as the inline-path scratch). Grown
     * lazily on the first execute(); lives as long as the executor so
     * recycled buffers survive across batches.
     */
    std::vector<RunScratch> _scratches;
};

} // namespace commguard::sim

#endif // COMMGUARD_SIM_RUN_EXECUTOR_HH
