#include "sim/service_driver.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "queue/queue_word.hh"
#include "sim/protection.hh"
#include "sim/telemetry_export.hh"

namespace commguard::sim
{

namespace
{

/** splitmix64 finalizer: the same avalanche the loader's per-core
 *  seed derivation uses. */
std::uint64_t
mix64(std::uint64_t x)
{
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * The arrival process RNG. Integer-only (no libm, no doubles) so the
 * schedule is bit-stable across platforms and builds.
 */
struct ArrivalRng
{
    std::uint64_t state;

    std::uint64_t
    next()
    {
        state += 0x9e3779b97f4a7c15ull;
        return mix64(state);
    }

    /** Uniform in [1, 2*mean - 1]: mean @p mean, never zero. */
    Count
    aroundMean(Count mean)
    {
        if (mean <= 1)
            return 1;
        return 1 + static_cast<Count>(next() % (2 * mean - 1));
    }
};

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::string
hex64(std::uint64_t value)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[value & 0xf];
        value >>= 4;
    }
    return out;
}

const char *
eventKindName(ServiceEvent::Kind kind)
{
    return kind == ServiceEvent::Kind::MtbeDegrade ? "mtbe_degrade"
                                                   : "remap";
}

/** What a sampled counter contributes to service observability. */
enum class CounterKind : std::uint8_t
{
    Other,
    Error,     //!< node/<name>/errorsInjected
    Repair,    //!< repair-action leaves (padded/discarded/voted/...)
    Underflow, //!< queue/source/underflowPops
};

/** "node/F1/errorsInjected" / "cg/F1/paddedItems" → "F1". */
std::string
middleComponent(const std::string &name)
{
    const std::size_t first = name.find('/');
    if (first == std::string::npos)
        return name;
    const std::size_t second = name.find('/', first + 1);
    if (second == std::string::npos)
        return name.substr(first + 1);
    return name.substr(first + 1, second - first - 1);
}

bool
endsWith(const std::string &name, const char *leaf)
{
    const std::size_t n = std::char_traits<char>::length(leaf);
    return name.size() >= n &&
           name.compare(name.size() - n, n, leaf) == 0;
}

} // namespace

ServiceDriver::ServiceDriver(ServiceConfig config)
    : _config(std::move(config))
{
    if (_config.app == nullptr)
        fatal("service: config.app must be set");
    if (_config.totalFrames == 0)
        fatal("service: totalFrames must be positive");
    if (_config.load.frameScale != 1 ||
        !_config.load.perNodeFrameScale.empty()) {
        fatal("service: streaming requires the uniform frame domain "
              "(frameScale == 1, no per-node scales)");
    }
    if (_config.load.frameAlignedOutput)
        fatal("service: frameAlignedOutput is a batch-output device; "
              "the streaming collector drains incrementally");
    if (_config.meanBurstFrames == 0 || _config.meanGapSlices == 0)
        fatal("service: meanBurstFrames and meanGapSlices must be "
              "positive");
    if (_config.maxBacklogFrames == 0)
        fatal("service: maxBacklogFrames must be positive");
    if (_config.snapshotEveryFrames == 0)
        fatal("service: snapshotEveryFrames must be positive");
    if (_config.forensicsWindow == 0)
        fatal("service: forensicsWindow must be positive");
    for (const ServiceEvent &event : _config.events) {
        if (event.kind == ServiceEvent::Kind::MtbeDegrade &&
            !(event.factor > 0.0))
            fatal("service: degrade factor must be positive");
    }
    // Deterministic firing order regardless of construction order.
    std::stable_sort(_config.events.begin(), _config.events.end(),
                     [](const ServiceEvent &a, const ServiceEvent &b) {
                         return a.atFrame < b.atFrame;
                     });
}

ServiceOutcome
ServiceDriver::run()
{
    const apps::App &application = *_config.app;

    streamit::LoadOptions load = _config.load;
    load.streamingSource = true;
    load.machine.telemetrySlices =
        _config.telemetrySlices ? _config.telemetrySlices : 1;
    load.machine.telemetryRingCapacity = _config.telemetryRingCapacity;

    streamit::LoadedApp app =
        streamit::loadGraph(application.graph, application.input,
                            _config.totalFrames, load);
    Multicore &machine = *app.machine;
    const int num_nodes = application.graph.numNodes();
    const Count items_per_frame = app.frames.inputItemsPerFrame;
    const protection::SourceFraming framing =
        load.guardSourceEdge
            ? protection::ProtectionRegistry::instance()
                  .describe(load.mode)
                  .sourceFraming
            : protection::SourceFraming::Plain;

    ServiceOutcome outcome;
    outcome.outputChecksum = kFnvOffset;

    // --------------------------------------------------------------
    // Placement state: logical node n executes on physical slot
    // (n + rotation) % num_nodes; slots carry the heterogeneous MTBE
    // table and accumulate degradation events.
    // --------------------------------------------------------------
    std::vector<double> slot_mtbe(
        static_cast<std::size_t>(num_nodes), load.mtbe);
    if (!load.perCoreMtbe.empty())
        slot_mtbe = load.perCoreMtbe;
    int rotation = 0;
    std::uint64_t epoch = 0;
    auto reconfigure_node = [&](int n) {
        ErrorInjector::Config injector;
        injector.enabled = load.injectErrors;
        const int slot = (n + rotation) % num_nodes;
        injector.mtbe = slot_mtbe[static_cast<std::size_t>(slot)];
        injector.flipAllRegisters = load.flipAllRegisters;
        injector.seed = mix64(
            load.seed +
            0x9e3779b97f4a7c15ull *
                (epoch * 4096 + static_cast<std::uint64_t>(n) + 1));
        machine.cores()[static_cast<std::size_t>(n)]->configureInjector(
            injector);
    };

    // --------------------------------------------------------------
    // JSONL stream. Every record carries the schema version; the
    // whole stream is a pure function of the config (virtual time
    // only), so it is bitwise reproducible.
    // --------------------------------------------------------------
    auto append_record = [&outcome](const Json &record) {
        outcome.jsonl += record.dump();
        outcome.jsonl += '\n';
    };

    {
        Json per_core = Json::array();
        for (double m : slot_mtbe)
            per_core.push(Json(m));
        Json events = Json::array();
        for (const ServiceEvent &event : _config.events) {
            Json e = Json::object();
            e["kind"] = Json(eventKindName(event.kind));
            e["at_frame"] = Json(event.atFrame);
            if (event.kind == ServiceEvent::Kind::MtbeDegrade) {
                e["core"] = Json(event.core);
                e["factor"] = Json(event.factor);
            } else {
                e["rotation"] = Json(event.rotation);
            }
            events.push(std::move(e));
        }
        Json meta = Json::object();
        meta["type"] = Json("meta");
        meta["service_schema_version"] = Json(kServiceSchemaVersion);
        meta["app"] = Json(application.name);
        meta["protection_mode"] =
            Json(protection::protectionModeName(load.mode));
        meta["seed"] = Json(Count{load.seed});
        meta["arrival_seed"] = Json(Count{_config.arrivalSeed});
        meta["total_frames"] = Json(_config.totalFrames);
        meta["mean_burst_frames"] = Json(_config.meanBurstFrames);
        meta["mean_gap_slices"] = Json(_config.meanGapSlices);
        meta["max_backlog_frames"] = Json(_config.maxBacklogFrames);
        meta["snapshot_every_frames"] =
            Json(_config.snapshotEveryFrames);
        meta["telemetry_slices"] =
            Json(load.machine.telemetrySlices);
        meta["forensics_window"] =
            Json(Count{_config.forensicsWindow});
        meta["per_core_mtbe"] = std::move(per_core);
        meta["events"] = std::move(events);
        append_record(meta);
    }

    // --------------------------------------------------------------
    // Streaming source framing: the reliable input device appends the
    // same framed words the batch loader would pre-fill, one burst at
    // a time (docs/SERVICE.md).
    // --------------------------------------------------------------
    SourceQueue &source = *app.source;
    CollectorQueue &collector = *app.collector;
    std::vector<QueueWord> frame_words;
    std::size_t input_cursor = 0;
    const std::vector<Word> &input = application.input;
    Count admitted = 0;
    auto admit_frames = [&](Count frames) {
        frame_words.clear();
        for (Count f = 0; f < frames; ++f) {
            const Count inv = admitted + f;
            if (framing == protection::SourceFraming::Headers) {
                frame_words.push_back(
                    makeHeader(static_cast<FrameId>(inv + 1)));
            }
            Word sum_s = 0;
            Word sum_w = 0;
            for (Count i = 0; i < items_per_frame; ++i) {
                const Word value =
                    input.empty()
                        ? 0
                        : input[input_cursor++ % input.size()];
                frame_words.push_back(makeItem(value));
                if (framing == protection::SourceFraming::Checksums) {
                    sum_s += value;
                    sum_w += static_cast<Word>(i + 1) * value;
                }
            }
            if (framing == protection::SourceFraming::Checksums) {
                frame_words.push_back(
                    makeHeader(static_cast<FrameId>(sum_s)));
                frame_words.push_back(
                    makeHeader(static_cast<FrameId>(sum_w)));
            }
        }
        admitted += frames;
        if (admitted == _config.totalFrames &&
            framing == protection::SourceFraming::Headers) {
            frame_words.push_back(makeHeader(endOfComputationId));
        }
        source.append(frame_words.data(), frame_words.size());
        outcome.maxBacklogWords =
            std::max(outcome.maxBacklogWords, source.size());
    };

    auto min_frames_completed = [&]() -> Count {
        Count completed = _config.totalFrames;
        for (const auto &runtime : machine.runtimes())
            completed = std::min(completed, runtime->framesCompleted());
        return completed;
    };

    auto drain_collector = [&]() {
        const std::vector<Word> items = collector.takeItems();
        outcome.outputItems += items.size();
        for (Word item : items) {
            outcome.outputChecksum =
                (outcome.outputChecksum ^ item) * kFnvPrime;
        }
    };

    // --------------------------------------------------------------
    // Observability state: snapshot deltas against the recorder's
    // cumulative view, plus the rolling forensics ring.
    // --------------------------------------------------------------
    telemetry::TelemetryRecorder &recorder =
        *machine.telemetryRecorder();
    std::vector<Count> previous_totals;
    std::vector<CounterKind> counter_kinds;
    std::vector<std::string> counter_nodes;
    std::deque<ServiceForensicsEntry> forensics;
    Count last_sample_round = 0;
    Count slice = 0;

    auto classify_counters = [&]() {
        const std::vector<std::string> &names = recorder.names();
        counter_kinds.assign(names.size(), CounterKind::Other);
        counter_nodes.assign(names.size(), std::string());
        for (std::size_t i = 0; i < names.size(); ++i) {
            const std::string &name = names[i];
            if (endsWith(name, "/errorsInjected") &&
                name.compare(0, 5, "node/") == 0) {
                counter_kinds[i] = CounterKind::Error;
            } else if (telemetryRepairLeaf(name)) {
                counter_kinds[i] = CounterKind::Repair;
            } else if (name == "queue/source/underflowPops") {
                counter_kinds[i] = CounterKind::Underflow;
            }
            counter_nodes[i] = middleComponent(name);
        }
    };

    auto emit_snapshot = [&](Count completed, bool final) {
        // Freshen the ring: one explicit sample at the current round
        // unless the scheduler cadence (or finish()) just took one.
        if (!final && machine.schedulerRound() > last_sample_round) {
            recorder.sample(machine.metrics(),
                            machine.schedulerRound(),
                            machine.totalCycles());
        }
        last_sample_round = machine.schedulerRound();
        if (counter_kinds.size() != recorder.names().size())
            classify_counters();

        drain_collector();
        const std::vector<Count> totals = recorder.cumulative();
        if (previous_totals.size() != totals.size())
            previous_totals.assign(totals.size(), 0);

        // Error→repair join over this interval, per node: the rolling
        // forensics window entry.
        std::vector<std::pair<Count, Count>> per_node(
            static_cast<std::size_t>(num_nodes), {0, 0});
        auto node_index = [&](const std::string &node) -> int {
            for (int n = 0; n < num_nodes; ++n) {
                if (machine.cores()[static_cast<std::size_t>(n)]
                        ->name() == node)
                    return n;
            }
            return -1;
        };

        Json deltas = Json::object();
        const std::vector<std::string> &names = recorder.names();
        for (std::size_t i = 0; i < totals.size(); ++i) {
            const Count delta = totals[i] - previous_totals[i];
            if (delta == 0)
                continue;
            deltas[names[i]] = Json(delta);
            const int n = counter_kinds[i] == CounterKind::Other
                              ? -1
                              : node_index(counter_nodes[i]);
            if (n < 0)
                continue;
            if (counter_kinds[i] == CounterKind::Error)
                per_node[static_cast<std::size_t>(n)].first += delta;
            else if (counter_kinds[i] == CounterKind::Repair)
                per_node[static_cast<std::size_t>(n)].second += delta;
        }
        previous_totals = totals;

        for (int n = 0; n < num_nodes; ++n) {
            const auto &[errors, repairs] =
                per_node[static_cast<std::size_t>(n)];
            if (errors == 0 && repairs == 0)
                continue;
            if (forensics.size() >= _config.forensicsWindow) {
                forensics.pop_front();
                ++outcome.forensicsDropped;
            }
            forensics.push_back(ServiceForensicsEntry{
                slice,
                machine.cores()[static_cast<std::size_t>(n)]->name(),
                errors, repairs});
            ++outcome.forensicsRecorded;
        }

        Json recent = Json::array();
        const std::size_t shown =
            std::min(forensics.size(), _config.forensicsPerSnapshot);
        for (std::size_t i = forensics.size() - shown;
             i < forensics.size(); ++i) {
            const ServiceForensicsEntry &entry = forensics[i];
            Json e = Json::object();
            e["slice"] = Json(entry.slice);
            e["node"] = Json(entry.node);
            e["errors"] = Json(entry.errors);
            e["repairs"] = Json(entry.repairs);
            recent.push(std::move(e));
        }
        Json window = Json::object();
        window["entries"] = Json(Count{forensics.size()});
        window["recorded"] = Json(outcome.forensicsRecorded);
        window["dropped"] = Json(outcome.forensicsDropped);
        window["recent"] = std::move(recent);

        Json ring = Json::object();
        ring["taken"] = Json(recorder.samplesTaken());
        ring["dropped"] = Json(recorder.droppedSamples());
        ring["retained"] = Json(Count{recorder.samples().size()});

        Json record = Json::object();
        record["type"] = Json("snapshot");
        record["service_schema_version"] = Json(kServiceSchemaVersion);
        record["index"] = Json(outcome.snapshots);
        record["slice"] = Json(slice);
        record["machine_round"] = Json(machine.schedulerRound());
        record["cycles"] = Json(Cycle{machine.totalCycles()});
        record["frames_admitted"] = Json(admitted);
        record["frames_completed"] = Json(completed);
        record["backlog_words"] = Json(Count{source.size()});
        record["output_items"] = Json(outcome.outputItems);
        record["deltas"] = std::move(deltas);
        record["forensics"] = std::move(window);
        record["ring"] = std::move(ring);
        append_record(record);
        ++outcome.snapshots;
    };

    // --------------------------------------------------------------
    // The traffic loop. Virtual time only: `slice` advances one per
    // executed machine round and fast-forwards across idle gaps, so
    // arrival spacing never shows up as scheduler-visible stall
    // rounds (QM timeouts stay reserved for error-induced stalls).
    // --------------------------------------------------------------
    ArrivalRng rng{mix64(_config.arrivalSeed)};
    Count next_arrival = 0;
    Count burst_index = 0;
    std::size_t event_index = 0;
    Count next_snapshot_at = _config.snapshotEveryFrames;
    bool aborted = false;

    auto apply_due_events = [&]() {
        while (event_index < _config.events.size() &&
               _config.events[event_index].atFrame <= admitted) {
            const ServiceEvent &event = _config.events[event_index];
            ++epoch;
            Json record = Json::object();
            record["type"] = Json("event");
            record["service_schema_version"] =
                Json(kServiceSchemaVersion);
            record["kind"] = Json(eventKindName(event.kind));
            record["slice"] = Json(slice);
            record["frames_admitted"] = Json(admitted);
            if (event.kind == ServiceEvent::Kind::MtbeDegrade) {
                const int slot =
                    ((event.core % num_nodes) + num_nodes) % num_nodes;
                slot_mtbe[static_cast<std::size_t>(slot)] /=
                    event.factor;
                record["core"] = Json(slot);
                record["factor"] = Json(event.factor);
                // Reconfigure the node currently placed on the slot.
                for (int n = 0; n < num_nodes; ++n) {
                    if ((n + rotation) % num_nodes == slot)
                        reconfigure_node(n);
                }
            } else {
                rotation =
                    (rotation + ((event.rotation % num_nodes) +
                                 num_nodes)) %
                    num_nodes;
                record["rotation"] = Json(event.rotation);
                for (int n = 0; n < num_nodes; ++n)
                    reconfigure_node(n);
            }
            append_record(record);
            ++outcome.eventsApplied;
            ++event_index;
        }
    };

    apply_due_events(); // atFrame == 0 events precede traffic.

    while (true) {
        if (admitted < _config.totalFrames && slice >= next_arrival) {
            // Draw the burst unconditionally (the RNG sequence depends
            // only on the arrival count), clamp to admission control.
            Count burst = rng.aroundMean(_config.meanBurstFrames);
            if (burst_index++ % 8 == 7)
                burst *= 4; // deterministic traffic spike
            // Forced timeouts can "complete" frames ahead of the
            // traffic in catastrophically corrupted runs, so clamp
            // both subtractions.
            const Count done_now = min_frames_completed();
            const Count inflight =
                admitted > done_now ? admitted - done_now : 0;
            const Count space = _config.maxBacklogFrames > inflight
                                    ? _config.maxBacklogFrames - inflight
                                    : 0;
            burst = std::min(
                {burst, space, _config.totalFrames - admitted});
            if (burst > 0) {
                admit_frames(burst);
                ++outcome.bursts;
                apply_due_events();
            }
            next_arrival = slice + rng.aroundMean(_config.meanGapSlices);
        }

        const Count completed = min_frames_completed();
        if (completed >= admitted) {
            if (admitted >= _config.totalFrames)
                break; // everything admitted and drained
            // Idle: fast-forward virtual time to the next arrival
            // instead of spinning the scheduler on an empty machine.
            slice = std::max(slice, next_arrival);
            continue;
        }

        const Multicore::RoundStatus status = machine.stepRound();
        ++outcome.machineRounds;
        ++slice;
        if (status == Multicore::RoundStatus::WatchdogAbort) {
            aborted = true;
            break;
        }

        const Count now_completed = min_frames_completed();
        if (now_completed >= next_snapshot_at) {
            emit_snapshot(now_completed, false);
            while (next_snapshot_at <= now_completed)
                next_snapshot_at += _config.snapshotEveryFrames;
        }
    }

    const MachineRunResult result = machine.finish();
    outcome.framesAdmitted = admitted;
    outcome.framesCompleted = min_frames_completed();
    outcome.virtualSlices = slice;
    outcome.completed =
        !aborted && outcome.framesCompleted == _config.totalFrames;
    outcome.totalInstructions = result.totalInstructions;
    outcome.totalCycles = result.totalCycles;
    outcome.timeoutsFired = result.timeoutsFired;
    outcome.deadlockBreaks = result.deadlockBreaks;

    // finish() took the final sample; fold the tail interval into one
    // last snapshot so the stream's running totals reconcile.
    last_sample_round = machine.schedulerRound();
    emit_snapshot(outcome.framesCompleted, true);

    const std::vector<Count> totals = recorder.cumulative();
    const std::vector<std::string> &names = recorder.names();
    if (counter_kinds.size() != names.size())
        classify_counters();
    for (std::size_t i = 0; i < totals.size(); ++i) {
        switch (counter_kinds[i]) {
        case CounterKind::Error:
            outcome.errorsInjected += totals[i];
            break;
        case CounterKind::Repair:
            outcome.repairs += totals[i];
            break;
        case CounterKind::Underflow:
            outcome.sourceUnderflows += totals[i];
            break;
        case CounterKind::Other:
            break;
        }
    }

    Json summary = Json::object();
    summary["type"] = Json("summary");
    summary["service_schema_version"] = Json(kServiceSchemaVersion);
    summary["app"] = Json(application.name);
    summary["protection_mode"] =
        Json(protection::protectionModeName(load.mode));
    summary["seed"] = Json(Count{load.seed});
    summary["arrival_seed"] = Json(Count{_config.arrivalSeed});
    summary["completed"] = Json(outcome.completed);
    summary["total_frames"] = Json(_config.totalFrames);
    summary["frames_admitted"] = Json(outcome.framesAdmitted);
    summary["frames_completed"] = Json(outcome.framesCompleted);
    summary["bursts"] = Json(outcome.bursts);
    summary["virtual_slices"] = Json(outcome.virtualSlices);
    summary["machine_rounds"] = Json(outcome.machineRounds);
    summary["output_items"] = Json(outcome.outputItems);
    summary["output_checksum"] = Json(hex64(outcome.outputChecksum));
    summary["total_instructions"] = Json(outcome.totalInstructions);
    summary["total_cycles"] = Json(Cycle{outcome.totalCycles});
    summary["timeouts_fired"] = Json(outcome.timeoutsFired);
    summary["deadlock_breaks"] = Json(outcome.deadlockBreaks);
    summary["errors_injected"] = Json(outcome.errorsInjected);
    summary["repairs"] = Json(outcome.repairs);
    summary["source_underflows"] = Json(outcome.sourceUnderflows);
    summary["snapshots"] = Json(outcome.snapshots);
    summary["events_applied"] = Json(outcome.eventsApplied);
    summary["forensics_recorded"] = Json(outcome.forensicsRecorded);
    summary["forensics_dropped"] = Json(outcome.forensicsDropped);
    summary["max_backlog_words"] =
        Json(Count{outcome.maxBacklogWords});
    outcome.summary = summary;
    append_record(summary);
    return outcome;
}

} // namespace commguard::sim
