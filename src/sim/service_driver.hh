/**
 * @file
 * Service mode: a long-lived streaming driver over one live machine
 * (docs/SERVICE.md).
 *
 * Every other workload in the repo is a batch sweep — build a machine,
 * pre-fill the whole input stream, run to completion, tear down. The
 * paper's setting is a *service*: a streaming pipeline that keeps
 * meeting its real-time contract under errors, indefinitely. The
 * ServiceDriver models that: it keeps one Multicore alive and pushes an
 * open-loop traffic model through it — seeded bursty frame arrivals in
 * virtual slices, admission-controlled backlog, per-core MTBE
 * heterogeneity, and scheduled mid-run events (core MTBE degradation,
 * live graph remap across physical slots) — while exporting
 * service-shaped observability: periodic live metric snapshots reusing
 * the telemetry recorder's delta-ring, and a rolling forensics window
 * (a bounded ring of recent error→repair joins) instead of a full
 * trace.
 *
 * Determinism contract: the driver runs in virtual time only (machine
 * scheduler rounds). The arrival schedule, the event schedule, the
 * admission decisions and every exported byte are pure functions of the
 * configuration and its seeds — the same config produces a bitwise
 * identical JSONL stream and end-of-run summary on every invocation,
 * independent of wall clock and CG_JOBS.
 */

#ifndef COMMGUARD_SIM_SERVICE_DRIVER_HH
#define COMMGUARD_SIM_SERVICE_DRIVER_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "apps/app.hh"
#include "common/json.hh"
#include "streamit/loader.hh"

namespace commguard::sim
{

/**
 * Version of the service JSONL record schema (`jsonl_check --service`).
 * Bump on any breaking change to the meta/event/snapshot/summary record
 * layout.
 */
constexpr int kServiceSchemaVersion = 1;

/** One scheduled mid-run event, fired when admitted frames reach a
 *  threshold. */
struct ServiceEvent
{
    enum class Kind
    {
        MtbeDegrade, //!< A physical slot's error rate worsens.
        Remap,       //!< Rotate the node→slot placement (live remap).
    };

    Kind kind = Kind::MtbeDegrade;

    /** Fires once admitted frames reach this count. */
    Count atFrame = 0;

    /** MtbeDegrade: physical slot whose MTBE is divided by factor. */
    int core = 0;

    /** MtbeDegrade: degradation factor (> 1 worsens the slot). */
    double factor = 8.0;

    /** Remap: how many slots the node→slot rotation advances. */
    int rotation = 1;
};

/** Service-mode configuration. */
struct ServiceConfig
{
    /** The streaming application (not owned; must outlive the run). */
    const apps::App *app = nullptr;

    /**
     * Protection / machine / error configuration. Service mode
     * requires the uniform frame domain (frameScale == 1, no per-node
     * scales) and a streaming collector (frameAlignedOutput == false);
     * perCoreMtbe seeds the heterogeneous slot MTBE table.
     */
    streamit::LoadOptions load;

    /** Total frames pushed through the machine. */
    Count totalFrames = 100'000;

    /** Seed of the arrival process (independent of the error seed). */
    std::uint64_t arrivalSeed = 1;

    /**
     * Bursty open-loop arrivals: bursts average meanBurstFrames frames
     * (with deterministic 4x spikes roughly every 8th burst), spaced
     * an average of meanGapSlices virtual slices apart. Integer
     * arithmetic only, so the schedule is bit-stable across platforms.
     */
    Count meanBurstFrames = 32;
    Count meanGapSlices = 8;

    /**
     * Admission control: at most this many frames in flight
     * (admitted but not yet fully drained). Bounds source-backlog
     * memory; arrivals beyond it are clamped (ingress backpressure).
     */
    Count maxBacklogFrames = 4096;

    /** Emit a snapshot record every N fully-drained frames. */
    Count snapshotEveryFrames = 10'000;

    /** Telemetry sampling cadence (scheduler rounds) and ring size. */
    Count telemetrySlices = 256;
    std::size_t telemetryRingCapacity = 512;

    /** Rolling forensics ring capacity (error→repair join entries). */
    std::size_t forensicsWindow = 64;

    /** Most-recent forensics entries exported per snapshot record. */
    std::size_t forensicsPerSnapshot = 8;

    /** Mid-run events, fired in atFrame order. */
    std::vector<ServiceEvent> events;
};

/** One rolling-forensics entry: a per-node error→repair join over one
 *  snapshot interval. */
struct ServiceForensicsEntry
{
    Count slice = 0;   //!< Virtual slice of the joining snapshot.
    std::string node;  //!< Graph node (core) name.
    Count errors = 0;  //!< Errors injected in the interval.
    Count repairs = 0; //!< Repair actions observed in the interval.
};

/** End-of-run result. summary/jsonl are the deterministic artifacts. */
struct ServiceOutcome
{
    bool completed = false;   //!< All frames drained, no abort.
    Count framesAdmitted = 0;
    Count framesCompleted = 0; //!< Fully drained through every node.
    Count bursts = 0;
    Count virtualSlices = 0;  //!< Virtual clock at end of run.
    Count machineRounds = 0;  //!< Scheduler rounds actually executed.
    Count outputItems = 0;
    std::uint64_t outputChecksum = 0; //!< FNV-1a over output words.
    Count totalInstructions = 0;
    Cycle totalCycles = 0;
    Count timeoutsFired = 0;
    Count deadlockBreaks = 0;
    Count errorsInjected = 0;
    Count repairs = 0;
    Count sourceUnderflows = 0;
    Count snapshots = 0;
    Count eventsApplied = 0;
    Count forensicsRecorded = 0;
    Count forensicsDropped = 0;

    /** Peak source backlog in words (bounded-memory witness). */
    std::size_t maxBacklogWords = 0;

    /** The end-of-run summary record (also the last JSONL line). */
    Json summary;

    /** The full schema-versioned JSONL stream (meta, events,
     *  snapshots, summary — one record per line). */
    std::string jsonl;
};

/**
 * The long-lived streaming driver. Construct with a validated config,
 * call run() once. Validation failures exit via fatal() (service
 * configs are operator input, not library API).
 */
class ServiceDriver
{
  public:
    explicit ServiceDriver(ServiceConfig config);

    /** Drive the whole traffic schedule through the machine. */
    ServiceOutcome run();

  private:
    ServiceConfig _config;
};

} // namespace commguard::sim

#endif // COMMGUARD_SIM_SERVICE_DRIVER_HH
