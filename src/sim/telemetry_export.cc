#include "sim/telemetry_export.hh"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>

#include "common/logging.hh"
#include "common/telemetry.hh"
#include "sim/env_options.hh"
#include "sim/result_cache.hh"
#include "sim/shard.hh"

namespace commguard::sim
{

namespace
{

double
monotonicSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

/** Repair leaves summed into the boards' "repairs" aggregate (the
 *  pareto_protection "repaired items" definition). */
bool
isRepairLeaf(const std::string &name)
{
    auto ends_with = [&name](const char *leaf) {
        const std::size_t n = std::strlen(leaf);
        return name.size() >= n &&
               name.compare(name.size() - n, n, leaf) == 0;
    };
    return ends_with("/paddedItems") || ends_with("/discardedItems") ||
           ends_with("/votedCorrections") ||
           ends_with("/correctedItems");
}

Count
outcomeRepairs(const RunOutcome &outcome)
{
    return outcome.paddedItems() + outcome.discardedItems() +
           outcome.snapshot.total("votedCorrections") +
           outcome.snapshot.total("correctedItems");
}

/** Finite plotting value for a quality sample (+inf dB = error-free
 *  output; the report caps it so the axis stays readable). */
double
plottableQuality(double quality_db)
{
    if (!std::isfinite(quality_db))
        return quality_db > 0 ? 120.0 : -20.0;
    return std::min(120.0, std::max(-20.0, quality_db));
}

/** Per-mode stage-profile series: per-sample increments, bucketed so
 *  the series never exceeds kMaxStagePoints positions. */
constexpr std::size_t kMaxStagePoints = 256;

struct StageSeries
{
    std::string label;  //!< "app seed=N" the series was taken from.
    std::vector<double> work;     //!< committedInsts per bucket.
    std::vector<double> blocked;  //!< blockedSlices per bucket.
    std::vector<double> repairs;  //!< Repair leaves per bucket.
};

StageSeries
extractStageSeries(const RunDescriptor &descriptor,
                   const telemetry::TelemetryRecorder &recorder)
{
    StageSeries series;
    series.label = descriptor.app->name + " seed=" +
                   std::to_string(descriptor.options.seed);

    // Classify every counter index once.
    enum class Kind : std::uint8_t { Other, Work, Blocked, Repair };
    const std::vector<std::string> &names = recorder.names();
    std::vector<Kind> kinds(names.size(), Kind::Other);
    for (std::size_t i = 0; i < names.size(); ++i) {
        const std::string &name = names[i];
        if (name.size() >= 14 &&
            name.compare(name.size() - 14, 14, "committedInsts") == 0)
            kinds[i] = Kind::Work;
        else if (name.size() >= 13 &&
                 name.compare(name.size() - 13, 13, "blockedSlices") ==
                     0)
            kinds[i] = Kind::Blocked;
        else if (isRepairLeaf(name))
            kinds[i] = Kind::Repair;
    }

    const auto &samples = recorder.samples();
    const std::size_t stride =
        samples.size() <= kMaxStagePoints
            ? 1
            : (samples.size() + kMaxStagePoints - 1) / kMaxStagePoints;
    const std::size_t points = (samples.size() + stride - 1) / stride;
    series.work.assign(points, 0.0);
    series.blocked.assign(points, 0.0);
    series.repairs.assign(points, 0.0);

    std::size_t position = 0;
    for (const telemetry::TelemetrySample &sample : samples) {
        const std::size_t bucket = position / stride;
        for (const auto &[index, delta] : sample.deltas) {
            switch (kinds[index]) {
            case Kind::Work:
                series.work[bucket] += static_cast<double>(delta);
                break;
            case Kind::Blocked:
                series.blocked[bucket] += static_cast<double>(delta);
                break;
            case Kind::Repair:
                series.repairs[bucket] += static_cast<double>(delta);
                break;
            case Kind::Other:
                break;
            }
        }
        ++position;
    }
    return series;
}

/** Process-wide HTML report accumulator (batches fold in over the
 *  whole process; the file is rewritten after each batch). */
struct ReportState
{
    std::mutex mutex;

    //!< mode -> mtbe -> plottable qualities (injected runs only).
    std::map<std::string, std::map<double, std::vector<double>>>
        quality;

    //!< mode -> stage profile of the first sampled run seen.
    std::map<std::string, StageSeries> stages;

    struct PoolRow
    {
        std::size_t runs = 0;
        unsigned jobs = 0;
        double seconds = 0.0;
        Count stolen = 0;
        Count waits = 0;
        Count wakeups = 0;
    };
    std::vector<PoolRow> pool;
    ThreadPool::Stats lastPoolStats{};
    Count totalRuns = 0;
};

ReportState &
reportState()
{
    static ReportState state;
    return state;
}

Json
reportDataJson(ReportState &state)
{
    Json quality = Json::object();
    for (const auto &[mode, curve] : state.quality) {
        Json points = Json::array();
        for (const auto &[mtbe, values] : curve) {
            double sum = 0.0;
            for (double v : values)
                sum += v;
            Json point = Json::array();
            point.push(Json(mtbe));
            point.push(
                Json(sum / static_cast<double>(values.size())));
            points.push(std::move(point));
        }
        quality[mode] = std::move(points);
    }

    Json stages = Json::object();
    for (const auto &[mode, series] : state.stages) {
        Json entry = Json::object();
        entry["label"] = Json(series.label);
        Json work = Json::array();
        Json blocked = Json::array();
        Json repairs = Json::array();
        for (double v : series.work)
            work.push(Json(v));
        for (double v : series.blocked)
            blocked.push(Json(v));
        for (double v : series.repairs)
            repairs.push(Json(v));
        entry["work"] = std::move(work);
        entry["blocked"] = std::move(blocked);
        entry["repairs"] = std::move(repairs);
        stages[mode] = std::move(entry);
    }

    Json pool = Json::array();
    for (const ReportState::PoolRow &row : state.pool) {
        Json entry = Json::object();
        entry["runs"] = Json(Count{row.runs});
        entry["jobs"] = Json(Count{row.jobs});
        entry["seconds"] = Json(row.seconds);
        entry["stolen"] = Json(row.stolen);
        entry["waits"] = Json(row.waits);
        entry["wakeups"] = Json(row.wakeups);
        pool.push(std::move(entry));
    }

    Json data = Json::object();
    data["telemetry_schema_version"] =
        Json(telemetry::kTelemetrySchemaVersion);
    data["total_runs"] = Json(state.totalRuns);
    data["quality"] = std::move(quality);
    data["stages"] = std::move(stages);
    data["pool"] = std::move(pool);
    return data;
}

/** The report's static markup + inline-JS renderer. The JS reads the
 *  embedded DATA object and draws three SVG panels; no external
 *  assets, so the file opens anywhere. */
const char *kReportHtmlPrefix = R"html(<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>CommGuard telemetry report</title>
<style>
 body { font: 14px/1.4 system-ui, sans-serif; margin: 24px;
        background: #fafafa; color: #222; }
 h1 { font-size: 20px; } h2 { font-size: 16px; margin-top: 28px; }
 .panel { background: #fff; border: 1px solid #ddd; border-radius: 6px;
          padding: 12px; margin-bottom: 16px; }
 .legend span { display: inline-block; margin-right: 14px; }
 .swatch { display: inline-block; width: 10px; height: 10px;
           border-radius: 2px; margin-right: 4px; }
 svg { width: 100%; height: auto; }
 .note { color: #666; font-size: 12px; }
</style>
</head>
<body>
<h1>CommGuard telemetry report</h1>
<p class="note" id="summary"></p>
<div class="panel"><h2>Quality vs. injected-error rate</h2>
 <div class="legend" id="quality-legend"></div>
 <svg id="quality" viewBox="0 0 720 280"></svg>
 <p class="note">Mean output quality (dB, capped at 120 for error-free
 runs) per protection mode against MTBE (mean instructions between
 injected errors, log scale; lower MTBE = more errors).</p></div>
<div class="panel"><h2>Stage profile over simulated time</h2>
 <div id="stages"></div>
 <p class="note">Per-sample increments from one representative run per
 mode: committed instructions (work), fully blocked scheduler slices,
 and repaired items (padded + discarded + voted + corrected), stacked
 and normalized per sample bucket.</p></div>
<div class="panel"><h2>Host pool utilization</h2>
 <div id="pool"></div>
 <p class="note">Per-batch ThreadPool deltas (host-side only; never
 part of per-run records, see docs/METRICS.md).</p></div>
<script id="data" type="application/json">
)html";

const char *kReportHtmlSuffix = R"html(
</script>
<script>
'use strict';
const DATA = JSON.parse(document.getElementById('data').textContent);
const COLORS = ['#2266cc', '#cc5522', '#228844', '#8844cc',
                '#aa8800', '#cc2266', '#227788', '#555555'];
const NS = 'http://www.w3.org/2000/svg';
function el(parent, tag, attrs) {
  const node = document.createElementNS(NS, tag);
  for (const k in attrs) node.setAttribute(k, attrs[k]);
  parent.appendChild(node);
  return node;
}
function text(parent, x, y, s, anchor) {
  const node = el(parent, 'text', {x: x, y: y, 'font-size': 10,
                                   fill: '#666',
                                   'text-anchor': anchor || 'middle'});
  node.textContent = s;
  return node;
}

document.getElementById('summary').textContent =
  DATA.total_runs + ' runs folded into this report (schema v' +
  DATA.telemetry_schema_version + ').';

// Panel 1: quality vs. MTBE, one polyline per mode, log-x.
(function qualityChart() {
  const svg = document.getElementById('quality');
  const legend = document.getElementById('quality-legend');
  const modes = Object.keys(DATA.quality);
  if (!modes.length) { text(svg, 360, 140, 'no injected runs'); return; }
  const W = 720, H = 280, L = 52, R = 12, T = 12, B = 34;
  let xs = [], ys = [];
  modes.forEach(m => DATA.quality[m].forEach(p => {
    xs.push(Math.log(p[0])); ys.push(p[1]); }));
  const x0 = Math.min(...xs), x1 = Math.max(...xs) || x0 + 1;
  const y0 = Math.min(0, ...ys), y1 = Math.max(10, ...ys);
  const px = v => L + (x1 === x0 ? 0.5 : (Math.log(v) - x0) / (x1 - x0))
                      * (W - L - R);
  const py = v => H - B - (v - y0) / (y1 - y0) * (H - T - B);
  el(svg, 'line', {x1: L, y1: H - B, x2: W - R, y2: H - B,
                   stroke: '#999'});
  el(svg, 'line', {x1: L, y1: T, x2: L, y2: H - B, stroke: '#999'});
  text(svg, (L + W - R) / 2, H - 8, 'MTBE (insts, log)');
  for (let g = 0; g <= 4; ++g) {
    const v = y0 + (y1 - y0) * g / 4;
    text(svg, L - 6, py(v) + 3, v.toFixed(0), 'end');
    el(svg, 'line', {x1: L, y1: py(v), x2: W - R, y2: py(v),
                     stroke: '#eee'});
  }
  modes.forEach((m, i) => {
    const c = COLORS[i % COLORS.length];
    const pts = DATA.quality[m]
      .map(p => px(p[0]).toFixed(1) + ',' + py(p[1]).toFixed(1))
      .join(' ');
    el(svg, 'polyline', {points: pts, fill: 'none', stroke: c,
                         'stroke-width': 2});
    DATA.quality[m].forEach(p => el(svg, 'circle',
      {cx: px(p[0]), cy: py(p[1]), r: 2.5, fill: c}));
    legend.insertAdjacentHTML('beforeend',
      '<span><span class="swatch" style="background:' + c +
      '"></span>' + m + '</span>');
  });
})();

// Panel 2: per-mode stacked areas of normalized stage shares.
(function stageChart() {
  const host = document.getElementById('stages');
  const modes = Object.keys(DATA.stages);
  if (!modes.length) {
    host.textContent = 'no sampled runs';
    return;
  }
  const LAYERS = [['work', '#7aa6d6'], ['blocked', '#d6a37a'],
                  ['repairs', '#c97a7a']];
  modes.forEach(m => {
    const s = DATA.stages[m];
    const n = s.work.length;
    const W = 720, H = 120, L = 8, R = 8, T = 16, B = 8;
    const head = document.createElement('div');
    head.className = 'note';
    head.textContent = m + ' — ' + s.label + ' (' + n + ' buckets)';
    host.appendChild(head);
    const svg = document.createElementNS(NS, 'svg');
    svg.setAttribute('viewBox', '0 0 ' + W + ' ' + H);
    host.appendChild(svg);
    if (!n) { text(svg, W / 2, H / 2, 'empty series'); return; }
    const px = i => L + (n === 1 ? 0.5 : i / (n - 1)) * (W - L - R);
    let base = new Array(n).fill(0);
    const totals = s.work.map((v, i) =>
      v + s.blocked[i] + s.repairs[i]);
    LAYERS.forEach(layer => {
      const values = s[layer[0]];
      const top = base.map((b, i) =>
        b + (totals[i] ? values[i] / totals[i] : 0));
      let d = '';
      for (let i = 0; i < n; ++i)
        d += (i ? 'L' : 'M') + px(i).toFixed(1) + ' ' +
             (H - B - base[i] * (H - T - B)).toFixed(1);
      for (let i = n - 1; i >= 0; --i)
        d += 'L' + px(i).toFixed(1) + ' ' +
             (H - B - top[i] * (H - T - B)).toFixed(1);
      el(svg, 'path', {d: d + 'Z', fill: layer[1], stroke: 'none',
                       'fill-opacity': 0.85});
      base = top;
    });
  });
  host.insertAdjacentHTML('beforeend',
    '<div class="legend">' + LAYERS.map(l =>
      '<span><span class="swatch" style="background:' + l[1] +
      '"></span>' + l[0] + '</span>').join('') + '</div>');
})();

// Panel 3: one utilization row per batch.
(function poolStrip() {
  const host = document.getElementById('pool');
  if (!DATA.pool.length) {
    host.textContent = 'no batches recorded';
    return;
  }
  const maxRuns = Math.max(...DATA.pool.map(r => r.runs), 1);
  DATA.pool.forEach((r, i) => {
    const row = document.createElement('div');
    const width = Math.max(2, 100 * r.runs / maxRuns);
    row.innerHTML =
      '<span class="note">batch ' + i + ': ' + r.runs + ' runs, ' +
      r.jobs + ' jobs, ' + r.seconds.toFixed(2) + 's — stolen ' +
      r.stolen + ', waits ' + r.waits + ', idle ' + r.wakeups +
      '</span><div style="background:#7aa6d6;height:6px;width:' +
      width + '%;border-radius:3px"></div>';
    host.appendChild(row);
  });
})();
</script>
</body>
</html>
)html";

} // namespace

std::vector<Json>
telemetryRecordsJson(const RunDescriptor &descriptor,
                     const RunOutcome &outcome, Count run_index)
{
    std::vector<Json> records;
    const auto &recorder = outcome.telemetry;
    if (recorder == nullptr)
        return records;

    const std::vector<std::string> &names = recorder->names();
    for (const telemetry::TelemetrySample &sample :
         recorder->samples()) {
        Json record = Json::object();
        record["telemetry_schema_version"] =
            Json(telemetry::kTelemetrySchemaVersion);
        record["app"] = Json(descriptor.app->name);
        record["protection_mode"] = Json(
            streamit::protectionModeName(descriptor.options.mode));
        record["inject_errors"] =
            Json(descriptor.options.injectErrors);
        record["mtbe"] = Json(descriptor.options.mtbe);
        record["seed"] = Json(Count{descriptor.options.seed});
        record["frame_scale"] = Json(descriptor.options.frameScale);
        record["run_index"] = Json(run_index);
        record["sample"] = Json(sample.index);
        record["slice"] = Json(sample.slice);
        record["cycles"] = Json(sample.cycles);
        record["final"] = Json(sample.final);

        Json deltas = Json::object();
        for (const auto &[index, delta] : sample.deltas)
            deltas[names[index]] = Json(delta);
        record["deltas"] = std::move(deltas);

        if (sample.final) {
            record["samples_taken"] = Json(recorder->samplesTaken());
            record["samples_dropped"] =
                Json(recorder->droppedSamples());
            Json cumulative = Json::object();
            const std::vector<Count> totals = recorder->cumulative();
            for (std::size_t i = 0; i < totals.size(); ++i) {
                if (totals[i] != 0)
                    cumulative[names[i]] = Json(totals[i]);
            }
            record["cumulative"] = std::move(cumulative);
        }
        records.push_back(std::move(record));
    }
    return records;
}

std::string
telemetryLines(const RunDescriptor &descriptor,
               const RunOutcome &outcome, Count run_index)
{
    std::string lines;
    for (const Json &record :
         telemetryRecordsJson(descriptor, outcome, run_index)) {
        if (!lines.empty())
            lines += '\n';
        lines += record.dump();
    }
    return lines;
}

void
telemetryReportAdd(const std::vector<RunDescriptor> &batch,
                   const std::vector<RunOutcome> &outcomes,
                   const ThreadPool::Stats &pool_stats, unsigned jobs,
                   double elapsed_seconds)
{
    ReportState &state = reportState();
    std::lock_guard<std::mutex> lock(state.mutex);

    for (std::size_t i = 0; i < batch.size(); ++i) {
        const RunDescriptor &descriptor = batch[i];
        const RunOutcome &outcome = outcomes[i];
        const std::string mode =
            streamit::protectionModeName(descriptor.options.mode);
        ++state.totalRuns;

        if (descriptor.options.injectErrors) {
            state.quality[mode][descriptor.options.mtbe].push_back(
                plottableQuality(outcome.qualityDb));
        }
        if (outcome.telemetry != nullptr &&
            state.stages.find(mode) == state.stages.end()) {
            state.stages.emplace(
                mode,
                extractStageSeries(descriptor, *outcome.telemetry));
        }
    }

    ReportState::PoolRow row;
    row.runs = batch.size();
    row.jobs = jobs;
    row.seconds = elapsed_seconds;
    auto delta = [](Count now, Count before) {
        return now >= before ? now - before : 0;
    };
    row.stolen =
        delta(pool_stats.tasksStolen, state.lastPoolStats.tasksStolen);
    row.waits =
        delta(pool_stats.queueWaits, state.lastPoolStats.queueWaits);
    row.wakeups = delta(pool_stats.idleWakeups,
                        state.lastPoolStats.idleWakeups);
    state.lastPoolStats = pool_stats;
    state.pool.push_back(row);
}

void
writeTelemetryReport(const std::string &path)
{
    ReportState &state = reportState();
    std::string data;
    {
        std::lock_guard<std::mutex> lock(state.mutex);
        data = reportDataJson(state).dump();
    }

    std::ofstream out(path);
    if (!out) {
        warn("telemetry_export: cannot write '" + path + "'");
        return;
    }
    out << kReportHtmlPrefix << data << kReportHtmlSuffix;
}

namespace
{

/**
 * The one status line currently showing on stderr (at most one board
 * is live at a time; a second one simply takes over the slot). The
 * mutex coordinates the owner's repaints with the logging pre-emit
 * hook, which fires on any thread that warns. Lock order: the logging
 * module's internal lock is taken first (the hook runs under it), then
 * this one; StatusLine methods never call the logging API while
 * holding it.
 */
struct ActiveStatusLine
{
    std::mutex mutex;
    StatusLine *line = nullptr;
};

ActiveStatusLine &
activeStatusLine()
{
    static ActiveStatusLine active;
    return active;
}

std::once_flag statusLineHookOnce;

} // namespace

void
StatusLine::clearActiveLine()
{
    ActiveStatusLine &active = activeStatusLine();
    std::lock_guard<std::mutex> lock(active.mutex);
    StatusLine *line = active.line;
    if (line == nullptr || !line->_dirty)
        return;
    std::fprintf(stderr, "\r%*s\r",
                 static_cast<int>(line->_lastWidth), "");
    std::fflush(stderr);
    line->_dirty = false;
    line->_lastWidth = 0;
    line->_nextPrint = 0.0;  // Repaint on the owner's next update().
}

StatusLine::~StatusLine()
{
    ActiveStatusLine &active = activeStatusLine();
    std::lock_guard<std::mutex> lock(active.mutex);
    if (active.line == this)
        active.line = nullptr;
}

void
StatusLine::update(const std::string &text)
{
    if (!_enabled)
        return;
    std::call_once(statusLineHookOnce, [] {
        setLogPreEmitHook(&StatusLine::clearActiveLine);
    });
    ActiveStatusLine &active = activeStatusLine();
    std::lock_guard<std::mutex> lock(active.mutex);
    const double now = monotonicSeconds();
    if (now < _nextPrint)
        return;
    _nextPrint = now + 0.25;
    std::string padded = text;
    if (padded.size() < _lastWidth)
        padded.append(_lastWidth - padded.size(), ' ');
    std::fprintf(stderr, "\r%s", padded.c_str());
    std::fflush(stderr);
    _lastWidth = text.size();
    _dirty = true;
    active.line = this;
}

void
StatusLine::finish(const std::string &text)
{
    if (!_enabled)
        return;
    ActiveStatusLine &active = activeStatusLine();
    std::lock_guard<std::mutex> lock(active.mutex);
    if (!_dirty && text.empty()) {
        if (active.line == this)
            active.line = nullptr;
        return;
    }
    std::string padded = text;
    if (padded.size() < _lastWidth)
        padded.append(_lastWidth - padded.size(), ' ');
    std::fprintf(stderr, _dirty ? "\r%s\n" : "%s\n", padded.c_str());
    std::fflush(stderr);
    _lastWidth = 0;
    _nextPrint = 0.0;
    _dirty = false;
    if (active.line == this)
        active.line = nullptr;
}

bool
telemetryRepairLeaf(const std::string &name)
{
    return isRepairLeaf(name);
}

std::string
formatRateEta(std::size_t done, std::size_t total,
              double elapsed_seconds)
{
    // A zero-done batch or an instant cache replay has no meaningful
    // rate; rendering the division would print inf/garbage.
    constexpr double kMinElapsed = 1e-3;
    if (done == 0 || elapsed_seconds < kMinElapsed)
        return "--/s  eta --";
    const double rate =
        static_cast<double>(done) / elapsed_seconds;
    if (!std::isfinite(rate) || rate <= 0.0)
        return "--/s  eta --";
    const double eta =
        static_cast<double>(total - done) / rate;
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.1f/s  eta %.0fs", rate,
                  std::isfinite(eta) ? eta : 0.0);
    return buffer;
}

bool
SweepHealthBoard::enabledFromEnv()
{
    const int forced = EnvOptions::get().healthBoard;
    if (forced >= 0)
        return forced != 0;
    return isatty(fileno(stderr)) != 0;
}

void
SweepHealthBoard::attach(SweepRunner &runner)
{
    _runner = &runner;
    _batchBaseStats = runner.poolStats();
    runner.setOutcomeObserver(
        [this](std::size_t done, std::size_t total,
               const RunDescriptor &descriptor,
               const RunOutcome &outcome) {
            observe(done, total, descriptor, outcome);
        });
}

void
SweepHealthBoard::observe(std::size_t done, std::size_t total,
                          const RunDescriptor &descriptor,
                          const RunOutcome &outcome)
{
    const double now = monotonicSeconds();
    if (done <= _lastDone || _lastDone == 0) {
        // First completion of a new batch.
        _batchStart = now;
        _batchBaseStats = _runner->poolStats();
        _modes.clear();
    }
    _lastDone = done == total ? 0 : done;

    ModeAggregate &aggregate =
        _modes[streamit::protectionModeName(descriptor.options.mode)];
    ++aggregate.runs;
    aggregate.repairs += outcomeRepairs(outcome);

    const ThreadPool::Stats stats = _runner->poolStats();
    auto delta = [](Count a, Count b) { return a >= b ? a - b : 0; };

    std::ostringstream text;
    text << "[board] " << done << "/" << total << " runs  ";
    char buffer[64];
    text << formatRateEta(done, total, now - _batchStart)
         << "  | pool stolen "
         << delta(stats.tasksStolen, _batchBaseStats.tasksStolen)
         << " waits "
         << delta(stats.queueWaits, _batchBaseStats.queueWaits)
         << " idle "
         << delta(stats.idleWakeups, _batchBaseStats.idleWakeups)
         << " |";

    // Cache and shard traffic (docs/METRICS.md "cache/", "shard/"):
    // process-wide totals, shown only when the subsystem is active so
    // plain local sweeps keep the familiar line.
    const ResultCacheStats &cache = ResultCache::stats();
    if (ResultCache::process() != nullptr) {
        text << " cache "
             << cache.hits.load(std::memory_order_relaxed) << " hit "
             << cache.misses.load(std::memory_order_relaxed)
             << " miss |";
    }
    const ShardStats &shard = shardStats();
    const Count workers =
        shard.workersSpawned.load(std::memory_order_relaxed);
    if (workers > 0) {
        text << " shard " << workers << " workers "
             << shard.resultFrames.load(std::memory_order_relaxed)
             << " results";
        const Count lost =
            shard.workersLost.load(std::memory_order_relaxed);
        if (lost > 0)
            text << " " << lost << " lost "
                 << shard.runsReassigned.load(
                        std::memory_order_relaxed)
                 << " reassigned";
        text << " |";
    }
    for (const auto &[mode, entry] : _modes) {
        std::snprintf(buffer, sizeof buffer, " %s %.1f rep/run",
                      mode.c_str(),
                      static_cast<double>(entry.repairs) /
                          static_cast<double>(entry.runs));
        text << buffer;
    }

    if (done == total)
        _line.finish(text.str());
    else
        _line.update(text.str());
}

} // namespace commguard::sim
