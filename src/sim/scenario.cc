#include "sim/scenario.hh"

#include <filesystem>
#include <iostream>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "sim/env_options.hh"
#include "sim/protection.hh"
#include "sim/run_export.hh"

namespace commguard::sim
{

SweepAxes
sweepAxes(bool quick)
{
    SweepAxes axes;
    if (quick) {
        axes.seeds = 2;
        axes.mtbe = {128'000, 1'024'000, 8'192'000};
        axes.frameScales = {1};
    } else {
        axes.seeds = seedsPerPoint;
        axes.mtbe = mtbeAxis();
        axes.frameScales = {1, 2, 4, 8};
    }
    return axes;
}

ScenarioContext::ScenarioContext(Options options)
    : _options(std::move(options)), _axes(sweepAxes(_options.quick))
{
}

ScenarioContext::Options
ScenarioContext::optionsFromEnv()
{
    const EnvOptions &env = EnvOptions::get();
    Options options;
    options.quick = env.quick;
    options.csv = env.csv;
    options.writeJson = env.json;
    if (!env.modeFilter.empty()) {
        options.modeFilter = {
            protection::parseProtectionMode(env.modeFilter)};
    }
    return options;
}

ScenarioContext
ScenarioContext::fromEnv()
{
    return ScenarioContext(optionsFromEnv());
}

std::vector<streamit::ProtectionMode>
ScenarioContext::modesToRun() const
{
    if (!_options.modeFilter.empty())
        return _options.modeFilter;
    return protection::ProtectionRegistry::instance().modes();
}

std::string
ScenarioContext::outputDir() const
{
    std::error_code ec;
    std::filesystem::create_directories(_options.artifactDir, ec);
    if (ec) {
        fatal("scenario: cannot create artifact directory '" +
              _options.artifactDir + "': " + ec.message());
    }
    return _options.artifactDir;
}

void
ScenarioContext::publishTable(const std::string &name,
                              const Table &table)
{
    table.print();
    if (_options.csv) {
        std::cout << "\n[csv]\n";
        table.printCsv();
    }

    _rows += table.rowCount();
    _documents.emplace_back(name, benchDocument(name, table.toJson()));
    if (_options.writeJson)
        writeBenchJson(name, table.toJson());
}

std::vector<RunOutcome>
ScenarioContext::runSweep(
    const std::vector<RunDescriptor> &descriptors) const
{
    SweepRunner &runner = sharedRunner();
    for (const RunDescriptor &descriptor : descriptors)
        runner.enqueue(descriptor);
    return runner.runAll();
}

RunOutcome
ScenarioContext::runOne(const RunDescriptor &descriptor) const
{
    return runSweep({descriptor}).front();
}

std::vector<double>
ScenarioContext::qualitySamples(const apps::App &app,
                                streamit::ProtectionMode mode,
                                bool inject, double mtbe,
                                Count frame_scale) const
{
    std::vector<RunDescriptor> descriptors;
    descriptors.reserve(static_cast<std::size_t>(seeds()));
    for (int seed = 0; seed < seeds(); ++seed) {
        descriptors.push_back(RunDescriptor{
            &app,
            sweepOptions(mode, inject, mtbe, seed, frame_scale)});
    }

    std::vector<double> samples;
    for (const RunOutcome &outcome : runSweep(descriptors))
        samples.push_back(outcome.qualityDb);
    return samples;
}

ScenarioRegistry &
ScenarioRegistry::instance()
{
    static ScenarioRegistry registry;
    return registry;
}

void
ScenarioRegistry::add(Scenario scenario)
{
    if (scenario.name.empty())
        fatal("scenario registry: scenario with empty name");
    if (!scenario.run) {
        fatal("scenario registry: '" + scenario.name +
              "' has no run function");
    }
    const auto [it, inserted] =
        _scenarios.emplace(scenario.name, std::move(scenario));
    if (!inserted) {
        fatal("scenario registry: duplicate scenario '" + it->first +
              "'");
    }
}

const Scenario *
ScenarioRegistry::find(const std::string &name) const
{
    const auto it = _scenarios.find(name);
    return it == _scenarios.end() ? nullptr : &it->second;
}

std::vector<const Scenario *>
ScenarioRegistry::all() const
{
    std::vector<const Scenario *> result;
    result.reserve(_scenarios.size());
    for (const auto &[name, scenario] : _scenarios)
        result.push_back(&scenario);
    return result;
}

std::vector<const Scenario *>
ScenarioRegistry::withTag(const std::string &tag) const
{
    std::vector<const Scenario *> result;
    for (const auto &[name, scenario] : _scenarios) {
        for (const std::string &candidate : scenario.tags) {
            if (candidate == tag) {
                result.push_back(&scenario);
                break;
            }
        }
    }
    return result;
}

std::vector<std::string>
ScenarioRegistry::names() const
{
    std::vector<std::string> result;
    result.reserve(_scenarios.size());
    for (const auto &[name, scenario] : _scenarios)
        result.push_back(name);
    return result;
}

Json
scenarioListJson()
{
    Json scenarios = Json::array();
    for (const Scenario *scenario : ScenarioRegistry::instance().all()) {
        Json entry = Json::object();
        entry["name"] = Json(scenario->name);
        entry["description"] = Json(scenario->description);
        entry["paper_ref"] = Json(scenario->paperRef);
        Json tags = Json::array();
        for (const std::string &tag : scenario->tags)
            tags.push(Json(tag));
        entry["tags"] = tags;
        scenarios.push(entry);
    }

    Json document = Json::object();
    document["schema_version"] = Json(metrics::kSchemaVersion);
    document["scenarios"] = scenarios;
    return document;
}

} // namespace commguard::sim
