#include "sim/reliability.hh"

#include <cmath>

#include "sim/experiment.hh"

namespace commguard::sim
{

ReliabilityModel
buildReliabilityModel(const apps::App &app, Count frame_scale)
{
    streamit::LoadOptions options;
    options.mode = streamit::ProtectionMode::CommGuard;
    options.injectErrors = false;
    options.frameScale = frame_scale;

    streamit::LoadedApp loaded = streamit::loadGraph(
        app.graph, app.input, app.steadyIterations, options);
    loaded.run();

    const double frames =
        static_cast<double>(app.steadyIterations) /
        static_cast<double>(frame_scale ? frame_scale : 1);

    ReliabilityModel model;
    for (const auto &core : loaded.machine->cores()) {
        const double per_frame =
            static_cast<double>(core->counters().committedInsts) /
            frames;
        model.instsPerFrame.push_back(per_frame);
        model.totalInstsPerFrame += per_frame;
    }
    return model;
}

double
corruptedFrameFraction(const std::vector<Word> &reference,
                       const std::vector<Word> &output,
                       Count items_per_frame)
{
    if (items_per_frame == 0 || reference.empty())
        return 0.0;

    const Count frames =
        (reference.size() + items_per_frame - 1) / items_per_frame;
    Count corrupted = 0;
    for (Count frame = 0; frame < frames; ++frame) {
        const std::size_t begin =
            static_cast<std::size_t>(frame * items_per_frame);
        const std::size_t end = std::min<std::size_t>(
            begin + items_per_frame, reference.size());
        bool clean = true;
        for (std::size_t i = begin; i < end; ++i) {
            if (i >= output.size() || output[i] != reference[i]) {
                clean = false;
                break;
            }
        }
        if (!clean)
            ++corrupted;
    }
    return static_cast<double>(corrupted) /
           static_cast<double>(frames);
}

} // namespace commguard::sim
