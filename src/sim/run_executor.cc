#include "sim/run_executor.hh"

#include "sim/run_export.hh"
#include "sim/telemetry_export.hh"
#include "sim/trace_export.hh"

namespace commguard::sim
{

LocalExecutor::LocalExecutor(unsigned jobs)
    : _pool(jobs == 0 ? ThreadPool::defaultJobs() : jobs)
{
}

void
LocalExecutor::execute(const std::vector<RunDescriptor> &batch,
                       const ExecutionRequest &request,
                       std::vector<ExecutedRun> &out)
{
    // One scratch per pool job slot, reused batch over batch (the
    // freelists inside keep the big per-run buffers warm). beginBatch
    // drops caches keyed by graph addresses that may have been reused
    // since the last execute().
    if (_scratches.size() < _pool.jobs())
        _scratches.resize(_pool.jobs());
    for (RunScratch &scratch : _scratches)
        scratch.beginBatch();

    _pool.submitBatch(
        batch.size(), [&](unsigned worker, std::size_t i) {
            const RunDescriptor &descriptor = batch[i];
            ExecutedRun &run = out[i];
            run.outcome = runOnce(*descriptor.app, descriptor.options,
                                  &_scratches[worker]);
            if (request.wantRecords)
                run.recordLine =
                    runRecordJson(descriptor, run.outcome).dump();
            if (request.wantTraceDocs &&
                run.outcome.eventTrace != nullptr)
                run.traceDoc =
                    perfettoTraceJson(*run.outcome.eventTrace).dump();
            if (request.wantTelemetry)
                run.telemetryChunk = telemetryLines(
                    descriptor, run.outcome,
                    request.telemetryBase + i);
            if (request.onRunDone)
                request.onRunDone(i, descriptor, run.outcome);
        });
    _pool.wait();  // Rethrows the batch's first exception, if any.
}

} // namespace commguard::sim
