#include "sim/env_options.hh"

#include "common/env.hh"

namespace commguard::sim
{

const EnvOptions &
EnvOptions::get()
{
    static const EnvOptions options = [] {
        EnvOptions parsed;
        parsed.quick = envFlag("CG_QUICK");
        const long jobs = envLong("CG_JOBS", 0);
        parsed.jobs = jobs > 0 ? static_cast<unsigned>(jobs) : 0;
        parsed.csv = envFlag("CG_CSV");
        parsed.json = envFlag("CG_JSON");
        parsed.jsonlPath = envString("CG_JSONL", "");
        return parsed;
    }();
    return options;
}

} // namespace commguard::sim
