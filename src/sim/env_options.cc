#include "sim/env_options.hh"

#include <cstdlib>

#include "common/env.hh"
#include "common/logging.hh"
#include "sim/protection.hh"

namespace commguard::sim
{

EnvOptions
parseEnvOptions()
{
    EnvOptions parsed;
    parsed.quick = envFlag("CG_QUICK");
    const long jobs = envLong("CG_JOBS", 0);
    parsed.jobs = jobs > 0 ? static_cast<unsigned>(jobs) : 0;
    parsed.csv = envFlag("CG_CSV");
    parsed.json = envFlag("CG_JSON");
    parsed.jsonlPath = envString("CG_JSONL", "");
    parsed.traceEvents = envFlag("CG_TRACE_EVENTS");

    parsed.modeFilter = envString("CG_MODE", "");
    if (!parsed.modeFilter.empty()) {
        // Validate eagerly so a typo dies at startup, not mid-sweep.
        protection::parseProtectionMode(parsed.modeFilter);
    }

    if (const char *out = std::getenv("CG_TRACE_OUT")) {
        if (!parsed.traceEvents)
            fatal("CG_TRACE_OUT is set but CG_TRACE_EVENTS is not; "
                  "trace output needs CG_TRACE_EVENTS=1");
        if (*out == '\0')
            fatal("CG_TRACE_OUT must name a directory");
        parsed.traceOut = out;
    }
    return parsed;
}

const EnvOptions &
EnvOptions::get()
{
    static const EnvOptions options = parseEnvOptions();
    return options;
}

} // namespace commguard::sim
