#include "sim/env_options.hh"

#include <cstdlib>
#include <cstring>
#include <set>

#include "common/env.hh"
#include "common/logging.hh"
#include "sim/protection.hh"

extern char **environ;

namespace commguard::sim
{

namespace
{

/** Knobs parsed here plus test-only keys common/env.hh tests use. */
const std::set<std::string> &
builtinEnvKeys()
{
    static const std::set<std::string> keys = {
        "CG_QUICK",           "CG_JOBS",
        "CG_CSV",             "CG_JSON",
        "CG_JSONL",           "CG_TRACE_EVENTS",
        "CG_TRACE_OUT",       "CG_MODE",
        "CG_TELEMETRY_SLICES", "CG_TELEMETRY_OUT",
        "CG_BOARD",
        "CG_TEST_FLAG",       "CG_TEST_LONG",
    };
    return keys;
}

std::set<std::string> &
registeredEnvKeys()
{
    static std::set<std::string> keys;
    return keys;
}

/**
 * Reject any CG_* variable that is neither a built-in knob nor
 * registered via allowEnvKey(): a typo'd knob silently no-opping would
 * change what an experiment measures.
 */
void
rejectUnknownEnvKeys()
{
    for (char **entry = environ; entry != nullptr && *entry != nullptr;
         ++entry) {
        if (std::strncmp(*entry, "CG_", 3) != 0)
            continue;
        const char *eq = std::strchr(*entry, '=');
        const std::string key =
            eq != nullptr
                ? std::string(*entry,
                              static_cast<std::size_t>(eq - *entry))
                : std::string(*entry);
        if (!isKnownEnvKey(key)) {
            fatal("unknown CG_ environment variable " + key +
                  " (typo? see sim/env_options.hh for the knob list; "
                  "tools register extra keys via sim::allowEnvKey)");
        }
    }
}

} // namespace

void
allowEnvKey(const std::string &key)
{
    registeredEnvKeys().insert(key);
}

bool
isKnownEnvKey(const std::string &key)
{
    return builtinEnvKeys().count(key) > 0 ||
           registeredEnvKeys().count(key) > 0;
}

EnvOptions
parseEnvOptions()
{
    rejectUnknownEnvKeys();

    EnvOptions parsed;
    parsed.quick = envFlag("CG_QUICK");
    const long jobs = envLong("CG_JOBS", 0);
    parsed.jobs = jobs > 0 ? static_cast<unsigned>(jobs) : 0;
    parsed.csv = envFlag("CG_CSV");
    parsed.json = envFlag("CG_JSON");
    parsed.jsonlPath = envString("CG_JSONL", "");
    parsed.traceEvents = envFlag("CG_TRACE_EVENTS");

    parsed.modeFilter = envString("CG_MODE", "");
    if (!parsed.modeFilter.empty()) {
        // Validate eagerly so a typo dies at startup, not mid-sweep.
        protection::parseProtectionMode(parsed.modeFilter);
    }

    if (const char *out = std::getenv("CG_TRACE_OUT")) {
        if (!parsed.traceEvents)
            fatal("CG_TRACE_OUT is set but CG_TRACE_EVENTS is not; "
                  "trace output needs CG_TRACE_EVENTS=1");
        if (*out == '\0')
            fatal("CG_TRACE_OUT must name a directory");
        parsed.traceOut = out;
    }

    const long slices = envLong("CG_TELEMETRY_SLICES", 0);
    if (slices < 0)
        fatal("CG_TELEMETRY_SLICES must be >= 0 (0 disables sampling)");
    parsed.telemetrySlices = static_cast<Count>(slices);

    if (const char *out = std::getenv("CG_TELEMETRY_OUT")) {
        if (parsed.telemetrySlices == 0)
            fatal("CG_TELEMETRY_OUT is set but CG_TELEMETRY_SLICES is "
                  "not; the telemetry stream needs a sampling cadence "
                  "(CG_TELEMETRY_SLICES=N)");
        if (*out == '\0')
            fatal("CG_TELEMETRY_OUT must name a file");
        parsed.telemetryOut = out;
    }

    if (std::getenv("CG_BOARD") != nullptr)
        parsed.healthBoard = envFlag("CG_BOARD") ? 1 : 0;

    return parsed;
}

const EnvOptions &
EnvOptions::get()
{
    static const EnvOptions options = parseEnvOptions();
    return options;
}

} // namespace commguard::sim
