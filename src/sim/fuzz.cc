#include "sim/fuzz.hh"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

#include "apps/random_graph_app.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/rng.hh"
#include "sim/protection.hh"
#include "sim/run_export.hh"
#include "sim/sweep_runner.hh"
#include "sim/trace_export.hh"

namespace commguard::sim
{

namespace
{

/** The jsonl_check line validation, reusable on an in-memory record. */
void
appendSchemaErrors(const Json &record, std::size_t run_index,
                   std::vector<std::string> &failures)
{
    const auto fail = [&](const std::string &why) {
        failures.push_back("schema: run " + std::to_string(run_index) +
                           ": " + why);
    };

    // Round-trip through text: the record must survive its own
    // serialization, exactly like a CG_JSONL consumer would see it.
    Json reparsed;
    std::string parse_error;
    if (!Json::parse(record.dump(), reparsed, &parse_error)) {
        fail("record does not reparse: " + parse_error);
        return;
    }

    for (const char *key :
         {"app", "protection_mode", "inject_errors", "mtbe", "seed",
          "frame_scale"}) {
        if (reparsed.find(key) == nullptr) {
            fail(std::string("missing descriptor field '") + key + "'");
            return;
        }
    }
    const Json *version = reparsed.find("schema_version");
    if (version == nullptr ||
        version->counter() != static_cast<Count>(metrics::kSchemaVersion)) {
        fail("bad or missing schema_version");
        return;
    }

    metrics::MetricSnapshot snapshot;
    try {
        snapshot = metrics::snapshotFromJson(reparsed);
    } catch (const std::exception &e) {
        fail(std::string("snapshot rejected: ") + e.what());
        return;
    }
    const Json reencoded = metrics::snapshotToJson(snapshot);
    const Json *counters = reparsed.find("counters");
    const Json *gauges = reparsed.find("gauges");
    if (counters == nullptr || gauges == nullptr) {
        fail("missing counters/gauges");
        return;
    }
    if (reencoded.find("counters")->dump() != counters->dump() ||
        reencoded.find("gauges")->dump() != gauges->dump())
        fail("snapshot does not round-trip canonically");
}

} // namespace

FuzzCase
randomFuzzCase(std::uint64_t case_seed)
{
    // Decorrelate neighboring seeds; the Rng's splitmix seeding does
    // the heavy lifting, the odd multiplier keeps seed 0 nontrivial.
    Rng rng(case_seed * 0x9E3779B97F4A7C15ull + 0x243F6A8885A308D3ull);

    FuzzCase fuzz_case;
    fuzz_case.caseSeed = case_seed;
    fuzz_case.graphSeed = rng.next64();
    fuzz_case.stages = 2 + static_cast<int>(rng.below(4));
    fuzz_case.maxGranularity = 1 + static_cast<int>(rng.below(6));
    fuzz_case.allowSplitJoin = rng.below(4) != 0;

    // Every registered protection mode is a fuzz axis point: a new
    // backend joins the invariant sweep by registering itself.
    const std::vector<streamit::ProtectionMode> modes =
        protection::ProtectionRegistry::instance().modes();
    fuzz_case.mode = modes[rng.below(modes.size())];
    fuzz_case.injectErrors = rng.below(4) != 0;

    static constexpr double mtbes[] = {8'000.0, 32'000.0, 128'000.0,
                                       1'024'000.0};
    fuzz_case.mtbe = mtbes[rng.below(4)];

    static constexpr Count frame_scales[] = {1, 2, 4};
    fuzz_case.frameScale = frame_scales[rng.below(3)];

    // Deliberately includes non-power-of-two points: swept capacities
    // must be enforced exactly (the RingQueue rounding bug's axis).
    static constexpr std::size_t capacities[] = {48, 96, 256, 1'000,
                                                 1u << 12};
    fuzz_case.queueCapacityWords = capacities[rng.below(5)];

    fuzz_case.iterations = 4 + rng.below(13);
    fuzz_case.jobs = 2 + rng.below(3);
    fuzz_case.sweepSeeds = 1 + static_cast<int>(rng.below(2));
    return fuzz_case;
}

Json
fuzzCaseJson(const FuzzCase &fuzz_case)
{
    Json json = Json::object();
    json["case_seed"] = Json(Count{fuzz_case.caseSeed});
    json["graph_seed"] = Json(Count{fuzz_case.graphSeed});
    json["stages"] = Json(fuzz_case.stages);
    json["max_granularity"] = Json(fuzz_case.maxGranularity);
    json["allow_split_join"] = Json(fuzz_case.allowSplitJoin);
    json["mode"] =
        Json(streamit::protectionModeName(fuzz_case.mode));
    json["inject_errors"] = Json(fuzz_case.injectErrors);
    json["mtbe"] = Json(fuzz_case.mtbe);
    json["frame_scale"] = Json(fuzz_case.frameScale);
    json["queue_capacity_words"] =
        Json(Count{fuzz_case.queueCapacityWords});
    json["iterations"] = Json(fuzz_case.iterations);
    json["jobs"] = Json(static_cast<int>(fuzz_case.jobs));
    json["sweep_seeds"] = Json(fuzz_case.sweepSeeds);
    json["break_invariant"] = Json(fuzz_case.breakInvariant);
    return json;
}

bool
fuzzCaseFromJson(const Json &json, FuzzCase &out, std::string *error)
{
    const auto fail = [error](const std::string &why) {
        if (error != nullptr)
            *error = why;
        return false;
    };
    if (!json.isObject())
        return fail("fuzz case is not an object");

    const auto number = [&](const char *key, Count &value) {
        const Json *field = json.find(key);
        if (field == nullptr || !field->isNumber())
            return false;
        value = field->counter();
        return true;
    };

    FuzzCase parsed;
    Count raw = 0;
    if (!number("case_seed", raw))
        return fail("missing numeric 'case_seed'");
    parsed.caseSeed = raw;
    if (!number("graph_seed", raw))
        return fail("missing numeric 'graph_seed'");
    parsed.graphSeed = raw;
    if (!number("stages", raw) || raw < 1)
        return fail("'stages' must be a positive number");
    parsed.stages = static_cast<int>(raw);
    if (!number("max_granularity", raw) || raw < 1)
        return fail("'max_granularity' must be a positive number");
    parsed.maxGranularity = static_cast<int>(raw);
    if (!number("frame_scale", raw) || raw < 1)
        return fail("'frame_scale' must be a positive number");
    parsed.frameScale = raw;
    if (!number("queue_capacity_words", raw) || raw < 1)
        return fail("'queue_capacity_words' must be a positive number");
    parsed.queueCapacityWords = raw;
    if (!number("iterations", raw) || raw < 1)
        return fail("'iterations' must be a positive number");
    parsed.iterations = raw;
    if (!number("jobs", raw) || raw < 1)
        return fail("'jobs' must be a positive number");
    parsed.jobs = static_cast<unsigned>(raw);
    if (!number("sweep_seeds", raw) || raw < 1)
        return fail("'sweep_seeds' must be a positive number");
    parsed.sweepSeeds = static_cast<int>(raw);

    const Json *mtbe = json.find("mtbe");
    if (mtbe == nullptr || !mtbe->isNumber() || !(mtbe->number() > 0.0))
        return fail("'mtbe' must be a positive number");
    parsed.mtbe = mtbe->number();

    const Json *split = json.find("allow_split_join");
    const Json *inject = json.find("inject_errors");
    if (split == nullptr || !split->isBool() || inject == nullptr ||
        !inject->isBool())
        return fail("missing boolean 'allow_split_join'/"
                    "'inject_errors'");
    parsed.allowSplitJoin = split->boolean();
    parsed.injectErrors = inject->boolean();

    const Json *mode = json.find("mode");
    if (mode == nullptr || !mode->isString() ||
        !protection::tryParseProtectionMode(mode->str(), &parsed.mode))
        return fail("'mode' is not a known protection mode name");

    const Json *hook = json.find("break_invariant");
    if (hook == nullptr || !hook->isString())
        return fail("missing string 'break_invariant'");
    parsed.breakInvariant = hook->str();

    out = parsed;
    return true;
}

FuzzVerdict
checkFuzzCase(const FuzzCase &fuzz_case)
{
    FuzzVerdict verdict;

    apps::RandomGraphOptions graph_options;
    graph_options.stages = fuzz_case.stages;
    graph_options.maxGranularity = fuzz_case.maxGranularity;
    graph_options.allowSplitJoin = fuzz_case.allowSplitJoin;

    Count expected_items = 0;
    const apps::App app = apps::makeRandomGraphApp(
        fuzz_case.graphSeed, graph_options, fuzz_case.iterations,
        &expected_items);

    std::vector<RunDescriptor> descriptors;
    for (int seed = 0; seed < fuzz_case.sweepSeeds; ++seed) {
        streamit::LoadOptions options =
            sweepOptions(fuzz_case.mode, fuzz_case.injectErrors,
                         fuzz_case.mtbe, seed, fuzz_case.frameScale);
        options.queueCapacityWords = fuzz_case.queueCapacityWords;
        // The conservation invariant needs the event trace.
        options.machine.traceEvents = true;
        descriptors.push_back({&app, options});
    }

    const auto run_batch = [&](unsigned jobs) {
        // Caching off: the whole point is comparing two *executions*
        // (jobs=1 vs jobs=N); a cache would serve the second batch
        // from the first and the comparison would test nothing.
        SweepRunner runner(jobs, SweepRunner::Caching::Off);
        runner.setProgress([](std::size_t, std::size_t) {});
        for (const RunDescriptor &descriptor : descriptors)
            runner.enqueue(descriptor);
        return runner.runAll();
    };
    std::vector<RunOutcome> base = run_batch(1);
    std::vector<RunOutcome> threaded = run_batch(fuzz_case.jobs);
    verdict.runs = base.size() + threaded.size();

    // Test hooks: deliberately corrupt one checked artifact so the
    // failure→shrink→repro-bundle path itself stays tested.
    if (fuzz_case.breakInvariant == "counter") {
        // Both batches equally: conservation breaks, determinism
        // stays intact, isolating the one invariant.
        for (std::vector<RunOutcome> *batch : {&base, &threaded}) {
            for (RunOutcome &outcome : *batch)
                outcome.snapshot.setCounter("node/fuzz-hook/invocations",
                                            1);
        }
    } else if (fuzz_case.breakInvariant == "determinism") {
        for (RunOutcome &outcome : threaded) {
            outcome.snapshot.setCounter(
                "run/outputItems",
                outcome.snapshot.get("run/outputItems") + 1);
        }
    }

    for (std::size_t i = 0; i < base.size(); ++i) {
        const std::string run = "run " + std::to_string(i);

        // Progress: the paper's liveness requirement.
        if (!base[i].completed)
            verdict.failures.push_back("progress: " + run +
                                       " did not complete");

        // Exactness: error-free runs forward every expected item.
        if (!fuzz_case.injectErrors &&
            base[i].output.size() != expected_items) {
            verdict.failures.push_back(
                "exactness: " + run + " forwarded " +
                std::to_string(base[i].output.size()) +
                " items, expected " + std::to_string(expected_items));
        }

        // Determinism: jobs=1 vs jobs=N, bitwise.
        const bool quality_equal =
            std::memcmp(&base[i].qualityDb, &threaded[i].qualityDb,
                        sizeof(double)) == 0;
        if (!quality_equal || base[i].completed != threaded[i].completed ||
            !(base[i].snapshot == threaded[i].snapshot) ||
            base[i].output != threaded[i].output) {
            verdict.failures.push_back(
                "determinism: " + run + " differs between jobs=1 and "
                "jobs=" + std::to_string(fuzz_case.jobs));
        }

        // Determinism of the export: byte-identical JSONL records.
        const Json base_record = runRecordJson(descriptors[i], base[i]);
        const Json threaded_record =
            runRecordJson(descriptors[i], threaded[i]);
        if (base_record.dump() != threaded_record.dump()) {
            verdict.failures.push_back(
                "determinism: " + run +
                " JSONL record differs between job counts");
        }

        // Conservation: trace event counts must match the counters.
        const std::pair<const char *, const RunOutcome *> views[] = {
            {"jobs=1", &base[i]}, {"jobs=N", &threaded[i]}};
        for (const auto &[label, outcome] : views) {
            if (outcome->eventTrace == nullptr) {
                verdict.failures.push_back("conservation: " + run + " (" +
                                           label + ") has no event trace");
                continue;
            }
            for (const std::string &message : traceConservationErrors(
                     *outcome->eventTrace, outcome->snapshot)) {
                verdict.failures.push_back("conservation: " + run +
                                           " (" + label + "): " + message);
            }
        }

        // Schema: the JSONL record validates and round-trips.
        Json checked = base_record;
        if (fuzz_case.breakInvariant == "schema")
            checked["schema_version"] =
                Json(metrics::kSchemaVersion + 1000);
        appendSchemaErrors(checked, i, verdict.failures);
    }
    return verdict;
}

FuzzCase
shrinkFuzzCase(const FuzzCase &failing, int max_checks)
{
    FuzzCase best = failing;
    int checks = 0;

    const auto try_adopt = [&](FuzzCase candidate) -> bool {
        if (candidate == best || checks >= max_checks)
            return false;
        ++checks;
        if (checkFuzzCase(candidate).ok())
            return false;
        best = std::move(candidate);
        return true;
    };

    bool changed = true;
    while (changed && checks < max_checks) {
        changed = false;

        {
            FuzzCase candidate = best;
            candidate.sweepSeeds = 1;
            changed |= try_adopt(candidate);
        }
        for (const int stages : {2, best.stages / 2}) {
            if (stages < 2 || stages >= best.stages)
                continue;
            FuzzCase candidate = best;
            candidate.stages = stages;
            if (try_adopt(candidate)) {
                changed = true;
                break;
            }
        }
        {
            FuzzCase candidate = best;
            candidate.allowSplitJoin = false;
            changed |= try_adopt(candidate);
        }
        {
            FuzzCase candidate = best;
            candidate.maxGranularity = 1;
            changed |= try_adopt(candidate);
        }
        for (const Count iterations :
             {Count{1}, best.iterations / 2}) {
            if (iterations < 1 || iterations >= best.iterations)
                continue;
            FuzzCase candidate = best;
            candidate.iterations = iterations;
            if (try_adopt(candidate)) {
                changed = true;
                break;
            }
        }
        {
            FuzzCase candidate = best;
            candidate.frameScale = 1;
            changed |= try_adopt(candidate);
        }
        {
            FuzzCase candidate = best;
            candidate.queueCapacityWords = 1u << 12;
            changed |= try_adopt(candidate);
        }
        {
            FuzzCase candidate = best;
            candidate.injectErrors = false;
            changed |= try_adopt(candidate);
        }
        {
            FuzzCase candidate = best;
            candidate.mode = streamit::ProtectionMode::Raw;
            changed |= try_adopt(candidate);
        }
        {
            FuzzCase candidate = best;
            candidate.jobs = 2;
            changed |= try_adopt(candidate);
        }
    }
    return best;
}

Json
reproBundleJson(const FuzzCase &fuzz_case,
                const std::vector<std::string> &failures)
{
    Json bundle = Json::object();
    bundle["schema_version"] = Json(metrics::kSchemaVersion);
    bundle["kind"] = Json("fuzz_repro");
    bundle["case"] = fuzzCaseJson(fuzz_case);
    Json list = Json::array();
    for (const std::string &failure : failures)
        list.push(Json(failure));
    bundle["failures"] = list;
    return bundle;
}

bool
reproBundleFromJson(const Json &json, FuzzCase &out, std::string *error)
{
    const auto fail = [error](const std::string &why) {
        if (error != nullptr)
            *error = why;
        return false;
    };
    if (!json.isObject())
        return fail("bundle is not an object");
    const Json *version = json.find("schema_version");
    if (version == nullptr || !version->isNumber() ||
        version->counter() != static_cast<Count>(metrics::kSchemaVersion))
        return fail("bad or missing schema_version");
    const Json *kind = json.find("kind");
    if (kind == nullptr || !kind->isString() ||
        kind->str() != "fuzz_repro")
        return fail("bundle kind is not 'fuzz_repro'");
    const Json *failures = json.find("failures");
    if (failures == nullptr || !failures->isArray())
        return fail("missing failures array");
    for (const Json &failure : failures->arr()) {
        if (!failure.isString())
            return fail("failures entries must be strings");
    }
    const Json *embedded = json.find("case");
    if (embedded == nullptr)
        return fail("missing case object");
    return fuzzCaseFromJson(*embedded, out, error);
}

void
writeReproBundle(const std::string &path, const FuzzCase &fuzz_case,
                 const std::vector<std::string> &failures)
{
    std::ofstream out(path);
    if (!out)
        fatal("fuzz: cannot write repro bundle '" + path + "'");
    reproBundleJson(fuzz_case, failures).write(out);
    out << '\n';
    if (!out.good())
        fatal("fuzz: I/O error writing repro bundle '" + path + "'");
}

// ----------------------------------------------------------------------
// FuzzWatchdog.
// ----------------------------------------------------------------------

FuzzWatchdog::FuzzWatchdog()
{
    _monitor = std::thread([this] { monitorLoop(); });
}

FuzzWatchdog::~FuzzWatchdog()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _stopping = true;
        ++_generation;
    }
    _changed.notify_all();
    _monitor.join();
}

void
FuzzWatchdog::arm(double budget_seconds, std::string context)
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(budget_seconds));
        _context = std::move(context);
        _armed = true;
        ++_generation;
    }
    _changed.notify_all();
}

void
FuzzWatchdog::disarm()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _armed = false;
        ++_generation;
    }
    _changed.notify_all();
}

void
FuzzWatchdog::monitorLoop()
{
    std::unique_lock<std::mutex> lock(_mutex);
    for (;;) {
        if (_stopping)
            return;
        if (!_armed) {
            _changed.wait(lock);
            continue;
        }
        const std::uint64_t generation = _generation;
        const bool state_changed = _changed.wait_until(
            lock, _deadline,
            [&] { return _stopping || _generation != generation; });
        if (state_changed)
            continue;
        // Deadline passed with the same case still armed: the case is
        // hung. Print the repro context and kill the process hard —
        // destructors may themselves be wedged.
        std::fprintf(stderr,
                     "[fuzz] watchdog: case exceeded its wall-clock "
                     "budget (likely deadlock or livelock)\n%s\n",
                     _context.c_str());
        std::fflush(stderr);
        std::_Exit(kFuzzWatchdogExitCode);
    }
}

} // namespace commguard::sim
