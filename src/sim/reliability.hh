/**
 * @file
 * Rely-style frame reliability analysis (paper §9).
 *
 * The paper argues that CommGuard is what makes quantitative
 * reliability analysis of streaming programs possible: "with
 * CommGuard, the reliability analysis can capture that error effects
 * do not propagate across frame boundaries. As a result, Rely's
 * reliability analysis may compute the overall application reliability
 * for streaming data." The authors leave this as future work; this
 * module implements the analysis for our substrate.
 *
 * Model: each core's errors form a Poisson process over committed
 * instructions with rate 1/MTBE. A CommGuard frame on node n spans
 * I_n committed instructions, so the probability that node n suffers
 * at least one error during one frame is 1 - exp(-I_n / MTBE).
 * Because CommGuard confines error effects to the frames they occur
 * in, an output frame is clean *at least* whenever no node erred
 * during it:
 *
 *     P(frame affected) <= 1 - prod_n exp(-I_n / MTBE)
 *                        = 1 - exp(-sum_n I_n / MTBE).
 *
 * This is an upper bound: not every register flip corrupts output
 * (dead values, masked bits). The measured corrupted-frame fraction
 * divided by the bound gives the empirical sensitivity factor.
 */

#ifndef COMMGUARD_SIM_RELIABILITY_HH
#define COMMGUARD_SIM_RELIABILITY_HH

#include <cmath>
#include <vector>

#include "apps/app.hh"
#include "streamit/loader.hh"

namespace commguard::sim
{

/** Static inputs of the frame-reliability model. */
struct ReliabilityModel
{
    /** Committed instructions per CommGuard frame, per node. */
    std::vector<double> instsPerFrame;

    /** Sum over nodes (instructions the whole machine spends per
     *  frame). */
    double totalInstsPerFrame = 0.0;

    /**
     * Upper bound on the probability that a given output frame is
     * affected by at least one error, at the given per-core MTBE.
     */
    double
    frameAffectedBound(double mtbe) const
    {
        return 1.0 - std::exp(-totalInstsPerFrame / mtbe);
    }

    /** Expected affected frames out of @p frames at @p mtbe. */
    double
    expectedAffectedFrames(double mtbe, double frames) const
    {
        return frames * frameAffectedBound(mtbe);
    }
};

/**
 * Build the model by measuring per-node instructions per frame on an
 * error-free CommGuard run of @p app.
 */
ReliabilityModel buildReliabilityModel(const apps::App &app,
                                       Count frame_scale = 1);

/**
 * Measured counterpart: the fraction of output frames that differ
 * from the error-free output. Frames are compared as contiguous
 * groups of @p items_per_frame output items; missing items count as
 * corrupted.
 */
double corruptedFrameFraction(const std::vector<Word> &reference,
                              const std::vector<Word> &output,
                              Count items_per_frame);

} // namespace commguard::sim

#endif // COMMGUARD_SIM_RELIABILITY_HH
