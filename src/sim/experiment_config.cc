#include "sim/experiment_config.hh"

#include <stdexcept>
#include <string>

#include "sim/result_cache.hh"

namespace commguard::sim
{

ExperimentConfig &
ExperimentConfig::mtbe(double value)
{
    if (!(value > 0.0))
        throw std::invalid_argument(
            "ExperimentConfig: mtbe must be positive, got " +
            std::to_string(value));
    _options.mtbe = value;
    return *this;
}

ExperimentConfig &
ExperimentConfig::perCoreMtbe(std::vector<double> mtbes)
{
    const std::size_t nodes =
        static_cast<std::size_t>(_app->graph.numNodes());
    if (!mtbes.empty() && mtbes.size() != nodes)
        throw std::invalid_argument(
            "ExperimentConfig: perCoreMtbe has " +
            std::to_string(mtbes.size()) + " entries for a " +
            std::to_string(nodes) + "-node graph");
    for (double m : mtbes)
        if (!(m > 0.0))
            throw std::invalid_argument(
                "ExperimentConfig: perCoreMtbe entries must be "
                "positive");
    _options.perCoreMtbe = std::move(mtbes);
    return *this;
}

ExperimentConfig &
ExperimentConfig::seedIndex(int index)
{
    if (index < 0)
        throw std::invalid_argument(
            "ExperimentConfig: seed index must be >= 0, got " +
            std::to_string(index));
    _options.seed = static_cast<std::uint64_t>(index + 1) * 1000003;
    return *this;
}

ExperimentConfig &
ExperimentConfig::replicas(int value)
{
    if (value < 2)
        throw std::invalid_argument(
            "ExperimentConfig: replicas must be >= 2, got " +
            std::to_string(value));
    _options.replicas = value;
    return *this;
}

ExperimentConfig &
ExperimentConfig::frameScale(Count value)
{
    if (value == 0)
        throw std::invalid_argument(
            "ExperimentConfig: frameScale must be nonzero");
    _options.frameScale = value;
    return *this;
}

ExperimentConfig &
ExperimentConfig::perNodeFrameScale(std::vector<Count> scales)
{
    const std::size_t nodes =
        static_cast<std::size_t>(_app->graph.numNodes());
    if (!scales.empty() && scales.size() != nodes)
        throw std::invalid_argument(
            "ExperimentConfig: perNodeFrameScale has " +
            std::to_string(scales.size()) + " entries for a " +
            std::to_string(nodes) + "-node graph");
    for (Count scale : scales)
        if (scale == 0)
            throw std::invalid_argument(
                "ExperimentConfig: perNodeFrameScale entries must "
                "be nonzero");
    _options.perNodeFrameScale = std::move(scales);
    return *this;
}

ExperimentConfig &
ExperimentConfig::queueCapacityWords(std::size_t words)
{
    if (words == 0)
        throw std::invalid_argument(
            "ExperimentConfig: queueCapacityWords must be nonzero");
    _options.queueCapacityWords = words;
    return *this;
}

RunOutcome
ExperimentConfig::run() const
{
    return runOnce(*_app, _options);
}

std::string
ExperimentConfig::cacheKey() const
{
    return ResultCache::keyFor(descriptor());
}

} // namespace commguard::sim
