/**
 * @file
 * Structured run/figure export: the one place that turns snapshots and
 * tables into files.
 *
 * Two artifact kinds, both carrying metrics::kSchemaVersion as a
 * "schema_version" field so downstream tooling can reject layouts it
 * does not understand:
 *
 *  - Per-run JSONL: one canonical-JSON line per sweep run (descriptor
 *    fields + the full MetricSnapshot). SweepRunner appends these after
 *    each batch, in submission order, when CG_JSONL=<path> is set —
 *    ordering and content are therefore identical for any CG_JOBS.
 *
 *  - BENCH_<name>.json: a figure program's table, written next to the
 *    run directory through writeBenchJson().
 *
 * JSON is canonical (sorted keys, exact 64-bit counters, non-finite
 * doubles as tagged strings), so equal inputs produce byte-identical
 * files.
 */

#ifndef COMMGUARD_SIM_RUN_EXPORT_HH
#define COMMGUARD_SIM_RUN_EXPORT_HH

#include <string>
#include <vector>

#include "common/json.hh"
#include "sim/sweep_runner.hh"
#include "sim/table.hh"

namespace commguard::sim
{

/**
 * The JSONL record of one run: snapshotToJson() of the outcome's
 * snapshot plus the identifying descriptor fields ("app",
 * "protection_mode", "inject_errors", "mtbe", "seed", "frame_scale").
 * snapshotFromJson()
 * accepts the result unchanged (extra keys are ignored), so a parsed
 * line round-trips to the exact in-memory snapshot.
 */
Json runRecordJson(const RunDescriptor &descriptor,
                   const RunOutcome &outcome);

/** Append @p records to @p path, one canonical-JSON line each. */
void appendJsonl(const std::string &path,
                 const std::vector<Json> &records);

/**
 * Append pre-serialized lines to @p path (sweep hot path: workers
 * dump() their records off the main thread, the barrier just
 * concatenates). Empty strings are skipped; each of the others is
 * canonical-JSON Json::dump() output — either one record, or several
 * records newline-joined without a trailing newline (the telemetry
 * path's per-run chunks). The bytes written equal what the Json
 * overload would write record by record.
 */
void appendJsonl(const std::string &path,
                 const std::vector<std::string> &lines);

/**
 * The BENCH document for @p name:
 * {"schema_version": ..., "bench": name, "data": data}. Exposed
 * separately from writeBenchJson() so the scenario layer and tests
 * can validate documents without touching the filesystem.
 */
Json benchDocument(const std::string &name, const Json &data);

/** Write benchDocument() as BENCH_<name>.json in the working dir. */
void writeBenchJson(const std::string &name, const Json &data);

} // namespace commguard::sim

#endif // COMMGUARD_SIM_RUN_EXPORT_HH
