#include "sim/sweep_runner.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "common/logging.hh"
#include "sim/env_options.hh"
#include "sim/run_export.hh"
#include "sim/telemetry_export.hh"
#include "sim/trace_export.hh"

namespace commguard::sim
{

namespace
{

double
monotonicSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

/** Silence threshold before the default printer starts reporting. */
constexpr double progressQuietSeconds = 2.0;

} // namespace

streamit::LoadOptions
sweepOptions(streamit::ProtectionMode mode, bool inject_errors,
             double mtbe, int seed_index, Count frame_scale)
{
    streamit::LoadOptions options;
    options.mode = mode;
    options.injectErrors = inject_errors;
    options.mtbe = mtbe;
    options.seed =
        static_cast<std::uint64_t>(seed_index + 1) * 1000003;
    options.frameScale = frame_scale;
    return options;
}

SweepRunner::SweepRunner(unsigned jobs)
    : _pool(jobs == 0 ? ThreadPool::defaultJobs() : jobs)
{
}

std::size_t
SweepRunner::enqueue(const apps::App &app,
                     const streamit::LoadOptions &options)
{
    return enqueue(RunDescriptor{&app, options});
}

std::size_t
SweepRunner::enqueue(RunDescriptor descriptor)
{
    _queued.push_back(std::move(descriptor));
    return _queued.size() - 1;
}

std::vector<RunOutcome>
SweepRunner::runAll()
{
    std::vector<RunDescriptor> batch;
    batch.swap(_queued);

    _total = batch.size();
    _completed.store(0, std::memory_order_relaxed);
    _startSeconds = monotonicSeconds();
    _nextPrintSeconds.store(_startSeconds + progressQuietSeconds,
                            std::memory_order_relaxed);
    _useCallback = static_cast<bool>(_progress);
    _useOutcomeObserver = static_cast<bool>(_outcomeObserver);

    const EnvOptions &env = EnvOptions::get();
    const bool want_jsonl = !env.jsonlPath.empty();
    const bool want_traces = env.traceEvents;
    const bool want_telemetry =
        env.telemetrySlices > 0 && !env.telemetryOut.empty();

    // One scratch per pool job slot, reused batch over batch (the
    // freelists inside keep the big per-run buffers warm). beginBatch
    // drops caches keyed by graph addresses that may have been reused
    // since the last runAll().
    if (_scratches.size() < _pool.jobs())
        _scratches.resize(_pool.jobs());
    for (RunScratch &scratch : _scratches)
        scratch.beginBatch();

    std::vector<RunOutcome> outcomes(batch.size());

    // Export artifacts are *serialized* on the worker that ran the
    // run (into its submission-order slot) and *written* after the
    // barrier: file bytes stay independent of CG_JOBS while the
    // string building — which dwarfs the final write — runs off the
    // critical path.
    std::vector<std::string> jsonl_lines(want_jsonl ? batch.size() : 0);
    std::vector<std::string> trace_docs(want_traces ? batch.size() : 0);
    std::vector<std::string> telemetry_chunks(
        want_telemetry ? batch.size() : 0);

    // Stream-wide run index base, taken on the submitting thread:
    // batch composition never depends on the job count, so run_index
    // assignment (and with it the stream's bytes) stays deterministic.
    static std::atomic<Count> telemetry_run_serial{0};
    const Count telemetry_base =
        want_telemetry ? telemetry_run_serial.fetch_add(
                             batch.size(), std::memory_order_relaxed)
                       : 0;

    _pool.submitBatch(
        batch.size(), [&](unsigned worker, std::size_t i) {
            const RunDescriptor &descriptor = batch[i];
            RunOutcome &outcome = outcomes[i];
            outcome = runOnce(*descriptor.app, descriptor.options,
                              &_scratches[worker]);
            if (want_jsonl)
                jsonl_lines[i] =
                    runRecordJson(descriptor, outcome).dump();
            if (want_traces && outcome.eventTrace != nullptr)
                trace_docs[i] =
                    perfettoTraceJson(*outcome.eventTrace).dump();
            if (want_telemetry)
                telemetry_chunks[i] = telemetryLines(
                    descriptor, outcome, telemetry_base + i);
            const std::size_t done =
                _completed.fetch_add(1, std::memory_order_relaxed) +
                1;
            if (_useOutcomeObserver) {
                std::lock_guard<std::mutex> lock(_progressMutex);
                _outcomeObserver(done, _total, descriptor, outcome);
            } else {
                reportProgress(done);
            }
        });
    _pool.wait();  // Rethrows the batch's first exception, if any.

    // Per-run JSONL export (CG_JSONL=<path>): concatenated in
    // submission order, so file content is independent of CG_JOBS.
    if (want_jsonl && !batch.empty())
        appendJsonl(env.jsonlPath, jsonl_lines);

    // Telemetry stream (CG_TELEMETRY_OUT=<path>): each chunk is one
    // run's newline-joined sample records, concatenated in submission
    // order — bytes independent of CG_JOBS, like the run JSONL. The
    // HTML report next to it is rewritten after every batch so it is
    // live mid-sweep (host-side content, so jobs-dependent).
    if (want_telemetry && !batch.empty()) {
        appendJsonl(env.telemetryOut, telemetry_chunks);
        telemetryReportAdd(batch, outcomes, _pool.stats(),
                           _pool.jobs(),
                           monotonicSeconds() - _startSeconds);
        writeTelemetryReport(env.telemetryOut + ".html");
    }

    // Per-run Perfetto trace files (CG_TRACE_EVENTS=1): also written
    // post-batch in submission order, with a process-wide sequence
    // number so successive batches never collide.
    if (want_traces && !batch.empty()) {
        static std::atomic<Count> trace_serial{0};
        std::error_code ec;
        std::filesystem::create_directories(env.traceOut, ec);
        if (ec) {
            warn("sweep_runner: cannot create trace directory '" +
                 env.traceOut + "': " + ec.message());
        } else {
            for (std::size_t i = 0; i < batch.size(); ++i) {
                if (trace_docs[i].empty())
                    continue;
                const Count n = trace_serial.fetch_add(
                    1, std::memory_order_relaxed);
                const std::string path =
                    env.traceOut + "/trace_" + std::to_string(n) +
                    "_" + batch[i].app->name + "_" +
                    streamit::protectionModeName(
                        batch[i].options.mode) +
                    "_seed" +
                    std::to_string(batch[i].options.seed) + ".json";
                writeTraceFile(path, trace_docs[i]);
            }
        }
    }
    return outcomes;
}

void
SweepRunner::reportProgress(std::size_t done)
{
    if (_useCallback) {
        // Observer path: serialized so callbacks never interleave.
        std::lock_guard<std::mutex> lock(_progressMutex);
        if (_progress)
            _progress(done, _total);
        return;
    }

    // Default reporter: silent for quick sweeps, then a line roughly
    // every two seconds so long benches never look hung. Fast path is
    // one relaxed load + one clock read and NO mutex — the previous
    // version serialized every run completion on _progressMutex,
    // which showed up once runs got cheap and jobs high.
    const double now = monotonicSeconds();
    if (done != _total &&
        now < _nextPrintSeconds.load(std::memory_order_relaxed))
        return;
    if (now - _startSeconds < progressQuietSeconds)
        return;

    std::lock_guard<std::mutex> lock(_progressMutex);
    // Recheck under the lock: a racing worker may have just printed.
    if (done != _total &&
        now < _nextPrintSeconds.load(std::memory_order_relaxed))
        return;
    _nextPrintSeconds.store(now + progressQuietSeconds,
                            std::memory_order_relaxed);
    std::fprintf(stderr, "[sweep] %zu/%zu runs (%.0fs, %u jobs)\n",
                 done, _total, now - _startSeconds, _pool.jobs());
}

SweepRunner &
sharedRunner()
{
    static SweepRunner runner;
    // The pool width was pinned when the first caller constructed the
    // runner: a later CG_JOBS change (setenv from test or bench code)
    // silently does not apply, so surface the mismatch once.
    const unsigned wanted = ThreadPool::defaultJobs();
    if (wanted != runner.jobs()) {
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true)) {
            warn("sharedRunner: pool width pinned at " +
                 std::to_string(runner.jobs()) +
                 " jobs at first use; current CG_JOBS asks for " +
                 std::to_string(wanted) +
                 " — construct a private SweepRunner for that");
        }
    }
    return runner;
}

} // namespace commguard::sim
