#include "sim/sweep_runner.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>

#include "common/logging.hh"
#include "sim/env_options.hh"
#include "sim/result_cache.hh"
#include "sim/run_export.hh"
#include "sim/shard.hh"
#include "sim/telemetry_export.hh"
#include "sim/trace_export.hh"

namespace commguard::sim
{

namespace
{

double
monotonicSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

/** Silence threshold before the default printer starts reporting. */
constexpr double progressQuietSeconds = 2.0;

} // namespace

streamit::LoadOptions
sweepOptions(streamit::ProtectionMode mode, bool inject_errors,
             double mtbe, int seed_index, Count frame_scale)
{
    streamit::LoadOptions options;
    options.mode = mode;
    options.injectErrors = inject_errors;
    options.mtbe = mtbe;
    options.seed =
        static_cast<std::uint64_t>(seed_index + 1) * 1000003;
    options.frameScale = frame_scale;
    return options;
}

SweepRunner::SweepRunner(unsigned jobs, Caching caching)
    : _executor(std::make_unique<LocalExecutor>(jobs)),
      _caching(caching)
{
}

SweepRunner::SweepRunner(std::unique_ptr<RunExecutor> executor,
                         Caching caching)
    : _executor(std::move(executor)), _caching(caching)
{
}

std::size_t
SweepRunner::enqueue(const apps::App &app,
                     const streamit::LoadOptions &options)
{
    return enqueue(RunDescriptor{&app, options});
}

std::size_t
SweepRunner::enqueue(RunDescriptor descriptor)
{
    _queued.push_back(std::move(descriptor));
    return _queued.size() - 1;
}

std::vector<RunOutcome>
SweepRunner::runAll()
{
    std::vector<RunDescriptor> batch;
    batch.swap(_queued);

    _total = batch.size();
    _completed.store(0, std::memory_order_relaxed);
    _startSeconds = monotonicSeconds();
    _nextPrintSeconds.store(_startSeconds + progressQuietSeconds,
                            std::memory_order_relaxed);
    _useCallback = static_cast<bool>(_progress);
    _useOutcomeObserver = static_cast<bool>(_outcomeObserver);

    const EnvOptions &env = EnvOptions::get();
    const bool want_jsonl = !env.jsonlPath.empty();
    const bool want_traces = env.traceEvents;
    const bool want_telemetry =
        env.telemetrySlices > 0 && !env.telemetryOut.empty();

    // Cached entries carry no trace or telemetry artifacts, so any
    // env-level observability request disables the cache for the
    // whole batch (runOnce() applies those knobs to every run).
    ResultCache *cache =
        (_caching == Caching::Auto && !env.traceEvents &&
         env.telemetrySlices == 0)
            ? ResultCache::process()
            : nullptr;

    std::vector<ExecutedRun> runs(batch.size());

    ExecutionRequest request;
    request.wantRecords = want_jsonl || cache != nullptr;
    request.wantTraceDocs = want_traces;
    request.wantTelemetry = want_telemetry;
    request.onRunDone = [this](std::size_t,
                               const RunDescriptor &descriptor,
                               const RunOutcome &outcome) {
        finishRun(descriptor, outcome);
    };

    // Stream-wide run index base, taken on the submitting thread:
    // batch composition never depends on the job count, so run_index
    // assignment (and with it the stream's bytes) stays deterministic.
    static std::atomic<Count> telemetry_run_serial{0};
    request.telemetryBase =
        want_telemetry ? telemetry_run_serial.fetch_add(
                             batch.size(), std::memory_order_relaxed)
                       : 0;

    // Cache replay pass: hits fill their submission-order slot
    // directly (the stored recordLine is the very dump() a fresh run
    // would produce, so downstream bytes cannot tell the difference);
    // misses execute on the backend.
    std::vector<char> from_cache(batch.size(), 0);
    if (cache != nullptr) {
        for (std::size_t i = 0; i < batch.size(); ++i) {
            if (runCacheable(batch[i]) &&
                cache->lookup(batch[i], &runs[i])) {
                from_cache[i] = 1;
                finishRun(batch[i], runs[i].outcome);
            }
        }
    }

    std::vector<std::size_t> pending;
    pending.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i)
        if (!from_cache[i])
            pending.push_back(i);

    if (pending.size() == batch.size()) {
        // Nothing replayed: hand the batch over untouched (the common
        // path, and the one where sub-indices must equal submission
        // indices for telemetryBase + i to be right — telemetry-on
        // batches always take it, since telemetry disables the cache).
        _executor->execute(batch, request, runs);
    } else if (!pending.empty()) {
        std::vector<RunDescriptor> sub_batch;
        sub_batch.reserve(pending.size());
        for (std::size_t i : pending)
            sub_batch.push_back(batch[i]);
        std::vector<ExecutedRun> sub_runs(pending.size());
        _executor->execute(sub_batch, request, sub_runs);
        for (std::size_t s = 0; s < pending.size(); ++s)
            runs[pending[s]] = std::move(sub_runs[s]);
    }

    if (cache != nullptr) {
        for (std::size_t i : pending)
            if (runCacheable(batch[i]))
                cache->store(batch[i], runs[i]);
    }

    // Results move out of their slots before the artifact writes so
    // the telemetry report sees the final outcome vector.
    std::vector<RunOutcome> outcomes;
    outcomes.reserve(runs.size());
    for (ExecutedRun &run : runs)
        outcomes.push_back(std::move(run.outcome));

    // Per-run JSONL export (CG_JSONL=<path>): concatenated in
    // submission order, so file content is independent of the
    // backend, its job count, and the cache hit pattern.
    if (want_jsonl && !batch.empty()) {
        std::vector<std::string> jsonl_lines;
        jsonl_lines.reserve(runs.size());
        for (ExecutedRun &run : runs)
            jsonl_lines.push_back(std::move(run.recordLine));
        appendJsonl(env.jsonlPath, jsonl_lines);
    }

    // Telemetry stream (CG_TELEMETRY_OUT=<path>): each chunk is one
    // run's newline-joined sample records, concatenated in submission
    // order — bytes independent of CG_JOBS, like the run JSONL. The
    // HTML report next to it is rewritten after every batch so it is
    // live mid-sweep (host-side content, so jobs-dependent).
    if (want_telemetry && !batch.empty()) {
        std::vector<std::string> telemetry_chunks;
        telemetry_chunks.reserve(runs.size());
        for (ExecutedRun &run : runs)
            telemetry_chunks.push_back(std::move(run.telemetryChunk));
        appendJsonl(env.telemetryOut, telemetry_chunks);
        telemetryReportAdd(batch, outcomes, _executor->poolStats(),
                           _executor->jobs(),
                           monotonicSeconds() - _startSeconds);
        writeTelemetryReport(env.telemetryOut + ".html");
    }

    // Per-run Perfetto trace files (CG_TRACE_EVENTS=1): also written
    // post-batch in submission order, with a process-wide sequence
    // number so successive batches never collide.
    if (want_traces && !batch.empty()) {
        static std::atomic<Count> trace_serial{0};
        std::error_code ec;
        std::filesystem::create_directories(env.traceOut, ec);
        if (ec) {
            warn("sweep_runner: cannot create trace directory '" +
                 env.traceOut + "': " + ec.message());
        } else {
            for (std::size_t i = 0; i < batch.size(); ++i) {
                if (runs[i].traceDoc.empty())
                    continue;
                const Count n = trace_serial.fetch_add(
                    1, std::memory_order_relaxed);
                const std::string path =
                    env.traceOut + "/trace_" + std::to_string(n) +
                    "_" + batch[i].app->name + "_" +
                    streamit::protectionModeName(
                        batch[i].options.mode) +
                    "_seed" +
                    std::to_string(batch[i].options.seed) + ".json";
                writeTraceFile(path, runs[i].traceDoc);
            }
        }
    }
    return outcomes;
}

void
SweepRunner::finishRun(const RunDescriptor &descriptor,
                       const RunOutcome &outcome)
{
    const std::size_t done =
        _completed.fetch_add(1, std::memory_order_relaxed) + 1;
    if (_useOutcomeObserver) {
        std::lock_guard<std::mutex> lock(_progressMutex);
        _outcomeObserver(done, _total, descriptor, outcome);
    } else {
        reportProgress(done);
    }
}

void
SweepRunner::reportProgress(std::size_t done)
{
    if (_useCallback) {
        // Observer path: serialized so callbacks never interleave.
        std::lock_guard<std::mutex> lock(_progressMutex);
        if (_progress)
            _progress(done, _total);
        return;
    }

    // Default reporter: silent for quick sweeps, then a line roughly
    // every two seconds so long benches never look hung. Fast path is
    // one relaxed load + one clock read and NO mutex — the previous
    // version serialized every run completion on _progressMutex,
    // which showed up once runs got cheap and jobs high.
    const double now = monotonicSeconds();
    if (done != _total &&
        now < _nextPrintSeconds.load(std::memory_order_relaxed))
        return;
    if (now - _startSeconds < progressQuietSeconds)
        return;

    std::lock_guard<std::mutex> lock(_progressMutex);
    // Recheck under the lock: a racing worker may have just printed.
    if (done != _total &&
        now < _nextPrintSeconds.load(std::memory_order_relaxed))
        return;
    _nextPrintSeconds.store(now + progressQuietSeconds,
                            std::memory_order_relaxed);
    std::fprintf(stderr, "[sweep] %zu/%zu runs (%.0fs, %u jobs)\n",
                 done, _total, now - _startSeconds,
                 _executor->jobs());
}

SweepRunner &
sharedRunner()
{
    static SweepRunner *runner = []() {
        if (const ShardPlan *plan = processShardPlan())
            return new SweepRunner(
                std::make_unique<ShardExecutor>(*plan));
        return new SweepRunner();
    }();

    if (std::string(runner->executorName()) == "local") {
        // The pool width was pinned when the first caller constructed
        // the runner: a later CG_JOBS change (setenv from test or
        // bench code) silently does not apply, so surface the
        // mismatch once.
        const unsigned wanted = ThreadPool::defaultJobs();
        if (wanted != runner->jobs()) {
            static std::atomic<bool> warned{false};
            if (!warned.exchange(true)) {
                warn("sharedRunner: pool width pinned at " +
                     std::to_string(runner->jobs()) +
                     " jobs at first use; current CG_JOBS asks for " +
                     std::to_string(wanted) +
                     " — construct a private SweepRunner for that");
            }
        }
    }
    return *runner;
}

} // namespace commguard::sim
