#include "sim/sweep_runner.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "common/logging.hh"
#include "sim/env_options.hh"
#include "sim/run_export.hh"
#include "sim/trace_export.hh"

namespace commguard::sim
{

namespace
{

double
monotonicSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

/** Silence threshold before the default printer starts reporting. */
constexpr double progressQuietSeconds = 2.0;

} // namespace

streamit::LoadOptions
sweepOptions(streamit::ProtectionMode mode, bool inject_errors,
             double mtbe, int seed_index, Count frame_scale)
{
    streamit::LoadOptions options;
    options.mode = mode;
    options.injectErrors = inject_errors;
    options.mtbe = mtbe;
    options.seed =
        static_cast<std::uint64_t>(seed_index + 1) * 1000003;
    options.frameScale = frame_scale;
    return options;
}

SweepRunner::SweepRunner(unsigned jobs)
    : _pool(jobs == 0 ? ThreadPool::defaultJobs() : jobs)
{
}

std::size_t
SweepRunner::enqueue(const apps::App &app,
                     const streamit::LoadOptions &options)
{
    return enqueue(RunDescriptor{&app, options});
}

std::size_t
SweepRunner::enqueue(RunDescriptor descriptor)
{
    _queued.push_back(std::move(descriptor));
    return _queued.size() - 1;
}

std::vector<RunOutcome>
SweepRunner::runAll()
{
    std::vector<RunDescriptor> batch;
    batch.swap(_queued);

    _total = batch.size();
    _completed.store(0, std::memory_order_relaxed);
    _startSeconds = monotonicSeconds();
    _lastPrintSeconds = _startSeconds;

    std::vector<RunOutcome> outcomes(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const RunDescriptor &descriptor = batch[i];
        _pool.submit([this, &descriptor, &outcomes, i] {
            outcomes[i] = runOnce(*descriptor.app, descriptor.options);
            const std::size_t done =
                _completed.fetch_add(1, std::memory_order_relaxed) + 1;
            reportProgress(done);
        });
    }
    _pool.wait();

    // Per-run JSONL export (CG_JSONL=<path>): written after the batch
    // in submission order, so file content is independent of CG_JOBS.
    const std::string &jsonl_path = EnvOptions::get().jsonlPath;
    if (!jsonl_path.empty() && !batch.empty()) {
        std::vector<Json> records;
        records.reserve(batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i)
            records.push_back(runRecordJson(batch[i], outcomes[i]));
        appendJsonl(jsonl_path, records);
    }

    // Per-run Perfetto trace files (CG_TRACE_EVENTS=1): also written
    // post-batch in submission order, with a process-wide sequence
    // number so successive batches never collide.
    const EnvOptions &env = EnvOptions::get();
    if (env.traceEvents && !batch.empty()) {
        static std::atomic<Count> trace_serial{0};
        std::error_code ec;
        std::filesystem::create_directories(env.traceOut, ec);
        if (ec) {
            warn("sweep_runner: cannot create trace directory '" +
                 env.traceOut + "': " + ec.message());
        } else {
            for (std::size_t i = 0; i < batch.size(); ++i) {
                if (outcomes[i].eventTrace == nullptr)
                    continue;
                const Count n = trace_serial.fetch_add(
                    1, std::memory_order_relaxed);
                const std::string path =
                    env.traceOut + "/trace_" + std::to_string(n) +
                    "_" + batch[i].app->name + "_" +
                    streamit::protectionModeName(
                        batch[i].options.mode) +
                    "_seed" +
                    std::to_string(batch[i].options.seed) + ".json";
                writeTraceFile(path, *outcomes[i].eventTrace);
            }
        }
    }
    return outcomes;
}

void
SweepRunner::reportProgress(std::size_t done)
{
    std::lock_guard<std::mutex> lock(_progressMutex);
    if (_progress) {
        _progress(done, _total);
        return;
    }
    // Default reporter: silent for quick sweeps, then a line roughly
    // every two seconds so long benches never look hung.
    const double now = monotonicSeconds();
    if (done != _total && now - _lastPrintSeconds < progressQuietSeconds)
        return;
    if (now - _startSeconds < progressQuietSeconds)
        return;
    _lastPrintSeconds = now;
    std::fprintf(stderr, "[sweep] %zu/%zu runs (%.0fs, %u jobs)\n",
                 done, _total, now - _startSeconds, _pool.jobs());
}

SweepRunner &
sharedRunner()
{
    static SweepRunner runner;
    return runner;
}

} // namespace commguard::sim
