/**
 * @file
 * One place for every CG_* environment knob the benches and the
 * experiment engine honor. Each knob is parsed once (first access) with
 * a documented default; bench mains and helpers read the struct instead
 * of re-parsing getenv() with ad-hoc rules.
 *
 * Knobs:
 *   CG_QUICK         flag, default off  reduced sweeps (fewer seeds /
 *                                       points)
 *   CG_JOBS          int,  default 0    host threads for sweeps; 0 =
 *                                       number of hardware threads;
 *                                       1 = sequential
 *   CG_CSV           flag, default off  also print tables as CSV
 *   CG_JSON          flag, default off  write BENCH_<name>.json per
 *                                       table
 *   CG_JSONL         path, default ""   append one JSON record per
 *                                       sweep run to this file
 *                                       ("" disables)
 *   CG_TRACE_EVENTS  flag, default off  record the frame-lifecycle
 *                                       event trace per run and write
 *                                       one Perfetto JSON file per run
 *                                       (docs/TRACING.md)
 *   CG_TRACE_OUT     dir,  default      directory for the per-run
 *                         "bench_out"   trace files; only meaningful
 *                                       with CG_TRACE_EVENTS
 *   CG_MODE          name, default ""   restrict scenario mode axes to
 *                                       one registered protection mode
 *                                       ("" = all modes); unknown
 *                                       names are rejected via fatal()
 *                                       with the registered-name list
 *
 * Flag semantics (common/env.hh): set and neither "" nor "0" means on.
 * Invalid combinations (CG_TRACE_OUT without CG_TRACE_EVENTS, an empty
 * CG_TRACE_OUT) are rejected via fatal() at parse time.
 */

#ifndef COMMGUARD_SIM_ENV_OPTIONS_HH
#define COMMGUARD_SIM_ENV_OPTIONS_HH

#include <string>

namespace commguard::sim
{

/** Parsed CG_* environment options. */
struct EnvOptions
{
    bool quick = false;        //!< CG_QUICK
    unsigned jobs = 0;         //!< CG_JOBS (0 = hardware threads)
    bool csv = false;          //!< CG_CSV
    bool json = false;         //!< CG_JSON
    std::string jsonlPath;     //!< CG_JSONL ("" = disabled)
    bool traceEvents = false;  //!< CG_TRACE_EVENTS
    std::string traceOut = "bench_out"; //!< CG_TRACE_OUT
    std::string modeFilter;    //!< CG_MODE ("" = all registered modes)

    /** The process's options, parsed once on first call. */
    static const EnvOptions &get();
};

/**
 * Parse the CG_* environment right now (no caching). Validation
 * failures exit via fatal(). Exposed separately from EnvOptions::get()
 * so tests can exercise parsing (including the fatal paths, in death
 * tests) without disturbing the process-wide cached options.
 */
EnvOptions parseEnvOptions();

} // namespace commguard::sim

#endif // COMMGUARD_SIM_ENV_OPTIONS_HH
