/**
 * @file
 * One place for every CG_* environment knob the benches and the
 * experiment engine honor. Each knob is parsed once (first access) with
 * a documented default; bench mains and helpers read the struct instead
 * of re-parsing getenv() with ad-hoc rules.
 *
 * Knobs:
 *   CG_QUICK         flag, default off  reduced sweeps (fewer seeds /
 *                                       points)
 *   CG_JOBS          int,  default 0    host threads for sweeps; 0 =
 *                                       number of hardware threads;
 *                                       1 = sequential
 *   CG_CSV           flag, default off  also print tables as CSV
 *   CG_JSON          flag, default off  write BENCH_<name>.json per
 *                                       table
 *   CG_JSONL         path, default ""   append one JSON record per
 *                                       sweep run to this file
 *                                       ("" disables)
 *   CG_TRACE_EVENTS  flag, default off  record the frame-lifecycle
 *                                       event trace per run and write
 *                                       one Perfetto JSON file per run
 *                                       (docs/TRACING.md)
 *   CG_TRACE_OUT     dir,  default      directory for the per-run
 *                         "bench_out"   trace files; only meaningful
 *                                       with CG_TRACE_EVENTS
 *   CG_MODE          name, default ""   restrict scenario mode axes to
 *                                       one registered protection mode
 *                                       ("" = all modes); unknown
 *                                       names are rejected via fatal()
 *                                       with the registered-name list
 *   CG_TELEMETRY_SLICES
 *                    int,  default 0    sample every run's metric
 *                                       registry every N scheduler
 *                                       rounds (docs/TELEMETRY.md);
 *                                       0 disables sampling
 *   CG_TELEMETRY_OUT path, default ""   append one telemetry record
 *                                       per sample to this JSONL file
 *                                       and write the HTML run report
 *                                       next to it; only meaningful
 *                                       with CG_TELEMETRY_SLICES
 *   CG_BOARD         flag, default auto force the sweep health board
 *                                       on (1) or off (0); unset = on
 *                                       when stderr is a TTY
 *
 * Flag semantics (common/env.hh): set and neither "" nor "0" means on.
 * Invalid combinations (CG_TRACE_OUT without CG_TRACE_EVENTS, an empty
 * CG_TRACE_OUT, CG_TELEMETRY_OUT without CG_TELEMETRY_SLICES) are
 * rejected via fatal() at parse time — and so is any CG_* variable
 * that is not a known knob, so typos like CG_TELEMTRY_OUT die at
 * startup instead of silently no-opping. Tools with their own knobs
 * register them via allowEnvKey() before the first parse:
 * cg_fuzz's CG_FUZZ_BUDGET, and cg_bench's sharding/caching pair
 * (docs/SHARDING.md) —
 *   CG_SHARDS     int,  default unset  worker-process count for
 *                                      `cg_bench run` (same strict
 *                                      parse as --shards; the flag
 *                                      wins when both are given)
 *   CG_CACHE_DIR  dir,  default unset  result-cache directory; the
 *                                      tools probe writability up
 *                                      front and exit 2 on an
 *                                      unusable path
 * and cg_bench's service-mode trio (docs/SERVICE.md), honored by
 * `cg_bench serve-run` as defaults its flags override —
 *   CG_SERVICE_FRAMES          int  total frames to stream
 *   CG_SERVICE_SNAPSHOT_FRAMES int  snapshot record cadence (frames)
 *   CG_SERVICE_WINDOW          int  rolling forensics ring capacity
 */

#ifndef COMMGUARD_SIM_ENV_OPTIONS_HH
#define COMMGUARD_SIM_ENV_OPTIONS_HH

#include <string>

#include "common/types.hh"

namespace commguard::sim
{

/** Parsed CG_* environment options. */
struct EnvOptions
{
    bool quick = false;        //!< CG_QUICK
    unsigned jobs = 0;         //!< CG_JOBS (0 = hardware threads)
    bool csv = false;          //!< CG_CSV
    bool json = false;         //!< CG_JSON
    std::string jsonlPath;     //!< CG_JSONL ("" = disabled)
    bool traceEvents = false;  //!< CG_TRACE_EVENTS
    std::string traceOut = "bench_out"; //!< CG_TRACE_OUT
    std::string modeFilter;    //!< CG_MODE ("" = all registered modes)
    Count telemetrySlices = 0; //!< CG_TELEMETRY_SLICES (0 = disabled)
    std::string telemetryOut;  //!< CG_TELEMETRY_OUT ("" = disabled)
    int healthBoard = -1;      //!< CG_BOARD (-1 = auto: stderr TTY)

    /** The process's options, parsed once on first call. */
    static const EnvOptions &get();
};

/**
 * Parse the CG_* environment right now (no caching). Validation
 * failures exit via fatal(). Exposed separately from EnvOptions::get()
 * so tests can exercise parsing (including the fatal paths, in death
 * tests) without disturbing the process-wide cached options.
 */
EnvOptions parseEnvOptions();

/**
 * Register @p key as a known CG_* environment variable so the
 * unknown-knob scan in parseEnvOptions() accepts it. For tools that
 * layer their own knobs on top of the shared set (cg_fuzz's
 * CG_FUZZ_BUDGET); call before the first EnvOptions::get() /
 * parseEnvOptions(). Idempotent.
 */
void allowEnvKey(const std::string &key);

/** Whether @p key is a built-in knob or was registered via
 *  allowEnvKey(). */
bool isKnownEnvKey(const std::string &key);

} // namespace commguard::sim

#endif // COMMGUARD_SIM_ENV_OPTIONS_HH
