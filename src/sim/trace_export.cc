#include "sim/trace_export.hh"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <map>
#include <unordered_map>

#include "common/logging.hh"
#include "queue/queue_word.hh"

namespace commguard::sim
{

namespace
{

const char *
amStateName(std::uint8_t state)
{
    static const char *const names[] = {"RcvCmp", "ExpHdr", "DiscFr",
                                        "Disc", "Pdg"};
    if (state < 5)
        return names[state];
    return "?";
}

constexpr std::uint8_t kAmRcvCmp = 0;
constexpr std::uint8_t kAmPdg = 4;

std::string
queueName(const trace::EventTrace &trace, std::uint16_t id)
{
    if (id < trace.queueNames().size())
        return trace.queueNames()[id];
    return "queue" + std::to_string(id);
}

/** All retained events over all tracks, tagged with their track. */
struct TaggedEvent
{
    trace::Event event;
    std::size_t track;
};

std::vector<TaggedEvent>
mergedEvents(const trace::EventTrace &trace)
{
    std::vector<TaggedEvent> merged;
    for (std::size_t i = 0; i < trace.numTracks(); ++i)
        for (const trace::Event &event : trace.track(i).events())
            merged.push_back({event, i});
    std::sort(merged.begin(), merged.end(),
              [](const TaggedEvent &a, const TaggedEvent &b) {
                  return a.event.seq < b.event.seq;
              });
    return merged;
}

/** Distribution of one per-repair quantity as {max, mean, histogram}. */
Json
distributionJson(const std::vector<Count> &samples)
{
    Json dist = Json::object();
    Count max = 0;
    double sum = 0.0;
    std::map<Count, Count> histogram;
    for (Count sample : samples) {
        max = std::max(max, sample);
        sum += static_cast<double>(sample);
        ++histogram[sample];
    }
    dist["count"] = static_cast<Count>(samples.size());
    dist["max"] = max;
    dist["mean"] =
        samples.empty() ? 0.0 : sum / static_cast<double>(samples.size());
    Json bins = Json::array();
    for (const auto &[value, count] : histogram) {
        Json bin = Json::array();
        bin.push(value);
        bin.push(count);
        bins.push(bin);
    }
    dist["histogram"] = bins;
    return dist;
}

} // namespace

Json
perfettoTraceJson(const trace::EventTrace &trace)
{
    Json events = Json::array();

    // Metadata: one process, one named thread per track.
    {
        Json meta = Json::object();
        meta["name"] = "process_name";
        meta["ph"] = "M";
        meta["pid"] = 1;
        Json args = Json::object();
        args["name"] = "commguard";
        meta["args"] = args;
        events.push(meta);
    }
    for (std::size_t i = 0; i < trace.numTracks(); ++i) {
        Json meta = Json::object();
        meta["name"] = "thread_name";
        meta["ph"] = "M";
        meta["pid"] = 1;
        meta["tid"] = static_cast<Count>(i + 1);
        Json args = Json::object();
        args["name"] = trace.track(i).name();
        meta["args"] = args;
        events.push(meta);
    }

    for (std::size_t i = 0; i < trace.numTracks(); ++i) {
        for (const trace::Event &event : trace.track(i).events()) {
            if (event.kind == trace::EventKind::QueueDepth) {
                // Queue depths render as Perfetto counter tracks, not
                // instants: one series per queue.
                Json counter = Json::object();
                counter["name"] = "queue:" + queueName(trace, event.b);
                counter["ph"] = "C";
                counter["ts"] = event.seq;
                counter["pid"] = 1;
                counter["tid"] = static_cast<Count>(i + 1);
                Json args = Json::object();
                args["depth"] = static_cast<Count>(event.value);
                counter["args"] = args;
                events.push(counter);
                continue;
            }

            Json instant = Json::object();
            instant["name"] = trace::eventKindName(event.kind);
            instant["ph"] = "i";
            instant["s"] = "t";
            // Global seq is the only clock comparable across tracks;
            // the core's cycle stamp rides in args.
            instant["ts"] = event.seq;
            instant["pid"] = 1;
            instant["tid"] = static_cast<Count>(i + 1);

            Json args = Json::object();
            args["cycle"] = event.time;
            args["slice"] = event.slice;
            switch (event.kind) {
            case trace::EventKind::ErrorInjected:
                args["reg"] = static_cast<Count>(event.a);
                args["bit"] = static_cast<Count>(event.b);
                break;
            case trace::EventKind::QueueCorrupt:
                args["queue"] = queueName(trace, event.b);
                break;
            case trace::EventKind::HeaderInsert:
                args["port"] = static_cast<Count>(event.a);
                args["queue"] = queueName(trace, event.b);
                args["frame"] = static_cast<Count>(event.value);
                break;
            case trace::EventKind::AmTransition:
                args["port"] = static_cast<Count>(event.a);
                args["from"] = amStateName(
                    static_cast<std::uint8_t>(event.b >> 8));
                args["to"] = amStateName(
                    static_cast<std::uint8_t>(event.b & 0xff));
                args["info"] = static_cast<Count>(event.value);
                break;
            case trace::EventKind::WatchdogTrip:
                args["nested"] = event.a != 0;
                break;
            case trace::EventKind::QueueBlock:
            case trace::EventKind::QueueUnblock:
                args["port"] = static_cast<Count>(event.a);
                args["pop"] = event.b != 0;
                break;
            case trace::EventKind::InvocationStart:
            case trace::EventKind::QmTimeout:
            case trace::EventKind::DeadlockBreak:
                args["value"] = static_cast<Count>(event.value);
                break;
            default:
                args["port"] = static_cast<Count>(event.a);
                break;
            }
            instant["args"] = args;
            events.push(instant);
        }
    }

    // Sidecar block: exact counts (drop-proof) plus track/queue shape,
    // so checkers need not re-derive anything from the event stream.
    Json counts = Json::object();
    for (std::size_t k = 0; k < trace::numEventKinds; ++k) {
        const auto kind = static_cast<trace::EventKind>(k);
        counts[trace::eventKindName(kind)] = trace.count(kind);
    }
    Json tracks = Json::array();
    for (std::size_t i = 0; i < trace.numTracks(); ++i) {
        Json entry = Json::object();
        entry["name"] = trace.track(i).name();
        entry["recorded"] = trace.track(i).recorded();
        entry["dropped"] = trace.track(i).dropped();
        tracks.push(entry);
    }
    Json queues = Json::array();
    for (const std::string &name : trace.queueNames())
        queues.push(name);

    Json sidecar = Json::object();
    sidecar["schema_version"] = metrics::kSchemaVersion;
    sidecar["event_counts"] = counts;
    sidecar["recorded"] = trace.recorded();
    sidecar["dropped"] = trace.dropped();
    sidecar["tracks"] = tracks;
    sidecar["queues"] = queues;

    Json doc = Json::object();
    doc["traceEvents"] = events;
    doc["displayTimeUnit"] = "ms";
    doc["commguard"] = sidecar;
    return doc;
}

Json
forensicsJson(const trace::EventTrace &trace)
{
    const std::vector<TaggedEvent> merged = mergedEvents(trace);

    // A repair episode: one contiguous burst of AM repair actions on
    // one (track, port) key, closed by the AM transitioning back to
    // RcvCmp. Episodes never closed by a transition (e.g. timeout pads
    // issued while the AM already sits in RcvCmp) end at their last
    // repair action.
    struct Episode
    {
        Count startSeq = 0;
        Count startSlice = 0;
        Count endSeq = 0;
        Count endSlice = 0;
        Count pads = 0;
        Count itemsDiscarded = 0;
        Count headersDiscarded = 0;
    };
    struct Repair
    {
        Count seq;
        std::size_t episode;
    };
    struct Injection
    {
        Count seq;
        Count slice;
    };

    std::vector<Episode> episodes;
    std::vector<Repair> repairs;       // seq-sorted by construction
    std::vector<Injection> injections; // seq-sorted by construction
    std::unordered_map<std::uint32_t, std::size_t> open;
    std::unordered_map<std::uint32_t, bool> eocMode;
    Count eocPads = 0;
    Count queueCorruptions = 0;

    const auto keyOf = [](const TaggedEvent &e) {
        return static_cast<std::uint32_t>(e.track << 8) |
               static_cast<std::uint32_t>(e.event.a);
    };
    const auto repairAction = [&](const TaggedEvent &e) {
        const std::uint32_t key = keyOf(e);
        auto it = open.find(key);
        if (it == open.end()) {
            Episode episode;
            episode.startSeq = e.event.seq;
            episode.startSlice = e.event.slice;
            episodes.push_back(episode);
            it = open.emplace(key, episodes.size() - 1).first;
        }
        Episode &episode = episodes[it->second];
        episode.endSeq = e.event.seq;
        episode.endSlice = e.event.slice;
        repairs.push_back({e.event.seq, it->second});
        return it->second;
    };

    for (const TaggedEvent &e : merged) {
        switch (e.event.kind) {
        case trace::EventKind::ErrorInjected:
            injections.push_back({e.event.seq, e.event.slice});
            break;
        case trace::EventKind::QueueCorrupt:
            injections.push_back({e.event.seq, e.event.slice});
            ++queueCorruptions;
            break;
        case trace::EventKind::AmPad:
            // End-of-computation padding is the AM draining after its
            // producer finished — normal shutdown, not a repair.
            if (eocMode[keyOf(e)])
                ++eocPads;
            else
                episodes[repairAction(e)].pads += 1;
            break;
        case trace::EventKind::AmDiscardItem:
            episodes[repairAction(e)].itemsDiscarded += 1;
            break;
        case trace::EventKind::AmDiscardHeader:
            episodes[repairAction(e)].headersDiscarded += 1;
            break;
        case trace::EventKind::AmTransition: {
            const std::uint32_t key = keyOf(e);
            const auto to = static_cast<std::uint8_t>(e.event.b & 0xff);
            eocMode[key] =
                to == kAmPdg && e.event.value == endOfComputationId;
            if (to == kAmRcvCmp) {
                auto it = open.find(key);
                if (it != open.end()) {
                    episodes[it->second].endSeq = e.event.seq;
                    episodes[it->second].endSlice = e.event.slice;
                    open.erase(it);
                }
            }
            break;
        }
        default:
            break;
        }
    }

    // Join every injection to the first repair action after it; the
    // repair's whole episode is the error's realignment cost.
    std::vector<Count> ttrSlices;
    std::vector<Count> itemsPadded;
    std::vector<Count> itemsDiscarded;
    Count repaired = 0;
    for (const Injection &injection : injections) {
        const auto it = std::upper_bound(
            repairs.begin(), repairs.end(), injection.seq,
            [](Count seq, const Repair &r) { return seq < r.seq; });
        if (it == repairs.end())
            continue;
        ++repaired;
        const Episode &episode = episodes[it->episode];
        ttrSlices.push_back(episode.endSlice >= injection.slice
                                ? episode.endSlice - injection.slice
                                : 0);
        itemsPadded.push_back(episode.pads);
        itemsDiscarded.push_back(episode.itemsDiscarded +
                                 episode.headersDiscarded);
    }

    Json forensics = Json::object();
    forensics["errors_injected"] =
        trace.count(trace::EventKind::ErrorInjected);
    forensics["queue_corruptions"] =
        trace.count(trace::EventKind::QueueCorrupt);
    forensics["repaired"] = repaired;
    forensics["unrepaired"] =
        static_cast<Count>(injections.size()) - repaired;
    forensics["repair_episodes"] = static_cast<Count>(episodes.size());
    forensics["eoc_pads"] = eocPads;
    forensics["events_dropped"] = trace.dropped();
    forensics["ttr_slices"] = distributionJson(ttrSlices);
    forensics["items_padded"] = distributionJson(itemsPadded);
    forensics["items_discarded"] = distributionJson(itemsDiscarded);
    return forensics;
}

std::vector<std::string>
traceConservationErrors(const trace::EventTrace &trace,
                        const metrics::MetricSnapshot &snapshot)
{
    std::vector<std::string> errors;
    const auto check = [&](trace::EventKind kind, Count counters) {
        const Count events = trace.count(kind);
        if (events != counters) {
            errors.push_back(std::string(trace::eventKindName(kind)) +
                             ": events " + std::to_string(events) +
                             " != counters " + std::to_string(counters));
        }
    };

    using trace::EventKind;
    check(EventKind::InvocationStart, snapshot.total("invocations"));
    check(EventKind::ErrorInjected, snapshot.total("registerFlips"));
    check(EventKind::QueuePush, snapshot.total("queuePushes"));
    check(EventKind::QueuePop, snapshot.total("queuePops"));
    check(EventKind::PopTimeout, snapshot.total("popTimeouts"));
    check(EventKind::PushTimeout, snapshot.total("pushTimeouts"));
    check(EventKind::WatchdogTrip,
          snapshot.total("scopeWatchdogTrips") +
              snapshot.total("nestedScopeTrips"));
    check(EventKind::AmPad, snapshot.total("paddedItems"));
    check(EventKind::AmDiscardItem, snapshot.total("discardedItems"));
    check(EventKind::AmDiscardHeader,
          snapshot.total("discardedHeaders"));
    check(EventKind::HeaderInsert, snapshot.total("headerStores"));
    check(EventKind::HeaderDropped,
          snapshot.total("headerDropsOnTimeout"));
    check(EventKind::QueueCorrupt,
          snapshot.total("headCorruptions") +
              snapshot.total("tailCorruptions") +
              snapshot.total("itemCorruptions"));
    check(EventKind::QmTimeout, snapshot.get("machine/timeoutsFired"));
    check(EventKind::DeadlockBreak,
          snapshot.get("machine/deadlockBreaks"));
    return errors;
}

void
writeTraceFile(const std::string &path, const trace::EventTrace &trace)
{
    std::ofstream out(path);
    if (!out) {
        warn("trace_export: cannot open " + path + " for writing");
        return;
    }
    perfettoTraceJson(trace).write(out);
    out << '\n';
}

void
writeTraceFile(const std::string &path, const std::string &serialized)
{
    std::ofstream out(path);
    if (!out) {
        warn("trace_export: cannot open " + path + " for writing");
        return;
    }
    out << serialized << '\n';
}

} // namespace commguard::sim
