/**
 * @file
 * Canonical wire format for runs crossing a process boundary.
 *
 * Three consumers share these encodings (docs/SHARDING.md):
 *
 *  - the shard protocol (sim/shard.hh): `cg_bench serve` ships each
 *    RunDescriptor to a worker process as canonical JSON and receives
 *    the run record + output stream back;
 *  - the result cache (sim/result_cache.hh): the descriptor JSON is
 *    the content address — its bytes, plus the metric schema version
 *    and the library build stamp, hash into the cache key;
 *  - ExperimentConfig::cacheKey(), the user-facing form of the same.
 *
 * The descriptor encoding covers exactly the LoadOptions fields that
 * can change a run's outcome. Observability knobs (event tracing,
 * telemetry sampling) are deliberately excluded: runs carrying them
 * are neither shipped nor cached (runShippable()), because a trace or
 * telemetry ring cannot cross the process boundary or be replayed
 * from a cache entry.
 *
 * STABILITY: descriptorJson() output is pinned by a golden-bytes test
 * (tests/experiment_config_test.cc). Any key change silently
 * invalidates every existing cache entry and breaks mixed-version
 * serve/worker pairs — change it only together with that test and a
 * schema-version discussion in docs/SHARDING.md.
 */

#ifndef COMMGUARD_SIM_RUN_CODEC_HH
#define COMMGUARD_SIM_RUN_CODEC_HH

#include <map>
#include <string>
#include <vector>

#include "common/json.hh"
#include "sim/run_executor.hh"

namespace commguard::sim
{

/**
 * Canonical JSON encoding of @p descriptor: the app recipe
 * (App::spec, parsed) plus every outcome-affecting LoadOptions and
 * MachineConfig field, with sorted keys so equal descriptors are
 * byte-equal. fatal() when the app carries no spec — callers gate on
 * runShippable() first.
 */
Json descriptorJson(const RunDescriptor &descriptor);

/**
 * Per-process cache of reconstructed apps, keyed by spec text: a
 * worker process sees the same handful of specs thousands of times
 * and App construction (graph assembly, reference codecs) dwarfs a
 * map lookup. Not thread-safe; one per worker loop. Map nodes are
 * stable, so returned App pointers stay valid for the cache lifetime.
 */
class AppCache
{
  public:
    /** The app for @p spec, built on first use via makeAppFromSpec. */
    const apps::App &fromSpec(const std::string &spec);

  private:
    std::map<std::string, apps::App> _bySpec;
};

/**
 * Rebuild a descriptor from descriptorJson() output. Returns false
 * (setting @p error) on missing/mistyped fields; the app pointer
 * references @p apps, which must outlive the descriptor.
 */
bool descriptorFromJson(const Json &json, AppCache &apps,
                        RunDescriptor *out, std::string *error);

/**
 * Whether @p descriptor may leave this process (shard worker) or
 * outlive it (cache entry): the app must carry a reconstruction spec
 * and the run must not request an event trace or telemetry sampling.
 */
bool runShippable(const RunDescriptor &descriptor);

/** Lowercase hex encoding of an output stream, 8 chars per word. */
std::string encodeWords(const std::vector<Word> &words);

/** Decode encodeWords() output; false on odd length or non-hex. */
bool decodeWords(const std::string &hex, std::vector<Word> *out);

/**
 * Rebuild a RunOutcome from its JSONL run record (runRecordJson
 * output — the snapshot round-trips exactly) plus the separately
 * shipped output stream. The trace and telemetry handles are null by
 * construction: shippable runs never carry them.
 */
RunOutcome outcomeFromRecord(const Json &record,
                             std::vector<Word> output);

/**
 * Build stamp of the sim library (compile date/time of this
 * translation unit): part of every cache key and of the shard hello
 * handshake, so entries and workers from a different build are
 * rejected instead of trusted.
 */
const std::string &buildStamp();

} // namespace commguard::sim

#endif // COMMGUARD_SIM_RUN_CODEC_HH
