/**
 * @file
 * Event-trace exporters: Perfetto/Chrome trace-event JSON and the
 * per-error realignment forensics pass.
 *
 * Three consumers of one trace::EventTrace:
 *
 *  - perfettoTraceJson(): a Chrome trace-event document (one instant-
 *    event thread per track, counter tracks for queue depths) loadable
 *    directly in ui.perfetto.dev or chrome://tracing. Timestamps are
 *    the global seq numbers (per-core cycle clocks are not comparable
 *    across cores); the real cycle and slice stamps ride in each
 *    event's args. Exact per-kind counts — including events the
 *    bounded rings had to drop — are embedded under the top-level
 *    "commguard" object.
 *
 *  - forensicsJson(): joins each injected error (register flip or
 *    software-queue corruption) to its first downstream AM repair and
 *    reports the time-to-realign distribution (scheduler slices,
 *    items padded/discarded per repair episode). End-of-computation
 *    padding (the AM draining after a producer finished, a normal
 *    shutdown behavior) is recognized via the pending-header stamp on
 *    transitions into Pdg and excluded from repair episodes.
 *
 *  - traceConservationErrors(): cross-checks every conservation-mapped
 *    event count against the run's metric counters (docs/TRACING.md
 *    lists the mapping). An empty result is the proof that the trace
 *    and the PR 2 metrics registry saw the same run.
 */

#ifndef COMMGUARD_SIM_TRACE_EXPORT_HH
#define COMMGUARD_SIM_TRACE_EXPORT_HH

#include <string>
#include <vector>

#include "common/event_trace.hh"
#include "common/json.hh"
#include "common/metrics.hh"

namespace commguard::sim
{

/** Chrome/Perfetto trace-event document for @p trace. */
Json perfettoTraceJson(const trace::EventTrace &trace);

/**
 * Per-error realignment forensics of @p trace (see file comment).
 * Exact when trace.dropped() == 0; the record carries the drop count
 * so consumers can tell.
 */
Json forensicsJson(const trace::EventTrace &trace);

/**
 * Event-count/metric-counter conservation check. Returns one message
 * per mismatch; empty means every mapped pair agreed exactly.
 */
std::vector<std::string>
traceConservationErrors(const trace::EventTrace &trace,
                        const metrics::MetricSnapshot &snapshot);

/** Write perfettoTraceJson(trace) to @p path (warn on I/O failure). */
void writeTraceFile(const std::string &path,
                    const trace::EventTrace &trace);

/**
 * Write an already-serialized trace document (sweep hot path: workers
 * dump() the Perfetto JSON off the main thread, the barrier just does
 * file I/O). @p serialized must be perfettoTraceJson(...).dump(),
 * which is byte-identical to what the EventTrace overload writes.
 */
void writeTraceFile(const std::string &path,
                    const std::string &serialized);

} // namespace commguard::sim

#endif // COMMGUARD_SIM_TRACE_EXPORT_HH
