/**
 * @file
 * Content-addressed on-disk cache of sweep run results.
 *
 * Point CG_CACHE_DIR at a directory and every cacheable run the sweep
 * engine executes is stored there; re-running the same sweep (same
 * descriptors, same metric schema, same build) replays results from
 * disk instead of simulating. The merged artifact bytes are identical
 * either way — a warm rerun is `cmp`-equal to the cold run, which
 * scripts/check.sh gates on.
 *
 * Key = FNV-1a 64 over the canonical descriptor JSON bytes, the
 * metric schema version, and the library build stamp (docs/SHARDING.md
 * defines the exact preimage). Entries self-describe: each stores the
 * full descriptor JSON it was keyed from, and lookup() re-compares it
 * against the request, so even a 64-bit hash collision degrades to a
 * miss rather than a wrong result.
 *
 * Entry format (one canonical-JSON document per file, named
 * <key>.json): {"descriptor": ..., "output": "<hex words>",
 * "record": {<runRecordJson object>}, "schema_version": N}. Stores
 * write to a temp file and rename() into place, so concurrent sweeps
 * sharing a directory see only complete entries.
 */

#ifndef COMMGUARD_SIM_RESULT_CACHE_HH
#define COMMGUARD_SIM_RESULT_CACHE_HH

#include <atomic>
#include <string>

#include "sim/run_executor.hh"

namespace commguard::sim
{

/** Process-wide cache traffic counters (sweep health board). */
struct ResultCacheStats
{
    std::atomic<Count> hits{0};     //!< lookup() served from disk.
    std::atomic<Count> misses{0};   //!< No (valid) entry on disk.
    std::atomic<Count> stores{0};   //!< Entries written.
    std::atomic<Count> invalid{0};  //!< Entries rejected on lookup.
    std::atomic<Count> orphansSwept{0}; //!< Stale *.tmp.* deleted.
};

/** A directory of cached run results. Thread-safe (stateless aside
 *  from the shared stats; the filesystem provides atomicity). */
class ResultCache
{
  public:
    explicit ResultCache(std::string directory);

    /**
     * The content address of @p descriptor: 16 lowercase hex digits of
     * FNV-1a 64 over descriptorJson(descriptor).dump() + "\n" +
     * metrics::kSchemaVersion + "\n" + buildStamp(). fatal() when the
     * descriptor is not shippable (no App::spec).
     */
    static std::string keyFor(const RunDescriptor &descriptor);

    /**
     * Replay the cached result of @p descriptor into @p out (outcome +
     * recordLine; shippable runs have no trace/telemetry artifacts).
     * False on a missing, unreadable, mismatched or malformed entry —
     * the caller executes the run as if the cache did not exist.
     */
    bool lookup(const RunDescriptor &descriptor, ExecutedRun *out);

    /**
     * Persist an executed run. @p recordLine must be the run's
     * runRecordJson(...).dump() bytes; replaying the entry hands the
     * very same bytes back, keeping JSONL output independent of
     * hit/miss history. Failures warn and drop the entry (the cache
     * is an accelerator, never a correctness dependency).
     */
    void store(const RunDescriptor &descriptor,
               const ExecutedRun &run);

    const std::string &directory() const { return _directory; }

    /**
     * Delete orphaned temp files (`<key>.json.tmp.<pid>`) left behind
     * by writers killed mid-store(), e.g. a shard worker dying between
     * the temp write and the rename. Only files whose mtime is at
     * least @p grace_seconds old are removed, so temp files of live
     * concurrent writers survive. Returns the number deleted (also
     * added to stats().orphansSwept). Called automatically when the
     * process() singleton opens.
     */
    Count sweepOrphans(double grace_seconds = 60.0);

    /** Counters shared by every ResultCache in the process. */
    static ResultCacheStats &stats();

    /**
     * The process cache configured by CG_CACHE_DIR, or nullptr when
     * the variable is unset/empty. Constructed on first use; the tools
     * probe writability up front (exit 2 on an unusable directory).
     */
    static ResultCache *process();

  private:
    std::string _directory;
};

/**
 * Whether @p descriptor's result may be served from or stored to a
 * cache: exactly runShippable() — the app must be reconstructable and
 * the run must carry no trace/telemetry request (those artifacts are
 * not cached, and serving a hit would silently drop them).
 */
bool runCacheable(const RunDescriptor &descriptor);

} // namespace commguard::sim

#endif // COMMGUARD_SIM_RESULT_CACHE_HH
