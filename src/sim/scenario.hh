/**
 * @file
 * Data-driven experiment layer: every reproduced figure, ablation and
 * micro suite is a registered Scenario instead of a one-off binary.
 *
 * A Scenario bundles the metadata the catalogue needs (name,
 * description, paper reference, tags) with a run function that drives
 * the experiment engine and publishes sim::Table results through a
 * ScenarioContext. Scenario definition files live in bench/scenarios/
 * and self-register through a static ScenarioRegistrar, so adding a
 * workload is exactly one new .cc file: no driver or CMake-logic
 * changes (docs/SCENARIOS.md).
 *
 * The single driver binary tools/cg_bench lists and runs scenarios;
 * tests/scenario_registry_test.cc smoke-runs every registered scenario
 * in quick mode, so a scenario cannot land without end-to-end
 * coverage.
 */

#ifndef COMMGUARD_SIM_SCENARIO_HH
#define COMMGUARD_SIM_SCENARIO_HH

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hh"
#include "sim/experiment.hh"
#include "sim/sweep_runner.hh"
#include "sim/table.hh"

namespace commguard::sim
{

/**
 * The sweep dimensions shared by the paper's methodology (§6) with
 * their quick-mode (CG_QUICK) thinning in one place: seeds per
 * configuration, the MTBE axis, and the §5.4 frame-scale axis.
 * Scenarios and tests both derive their loops from this instead of
 * re-implementing the quick/full split.
 */
struct SweepAxes
{
    int seeds = seedsPerPoint;       //!< Seeds per configuration.
    std::vector<Count> mtbe;         //!< MTBE axis points (insts).
    std::vector<Count> frameScales;  //!< §5.4 frame-size sweep.
};

/** The canonical axes: full paper sweep, or thinned when @p quick. */
SweepAxes sweepAxes(bool quick);

/**
 * Everything a scenario run needs from its caller: the quick/full
 * switch, output toggles, and the table publication channel. The
 * driver builds one from the CG_* environment (fromEnv()); the smoke
 * test builds a quiet quick-mode one directly, so scenarios never
 * read the environment themselves.
 */
class ScenarioContext
{
  public:
    struct Options
    {
        bool quick = false;    //!< Thinned sweeps (CG_QUICK).
        bool csv = false;      //!< Print CSV after each table (CG_CSV).
        bool writeJson = false;  //!< Write BENCH_<name>.json (CG_JSON).
        std::string artifactDir = "bench_out";  //!< Images/audio/traces.

        /**
         * Restrict protection-mode axes to these modes (CG_MODE /
         * --mode). Empty = every registered mode. Scenarios that sweep
         * modes must loop over modesToRun(), not the registry.
         */
        std::vector<streamit::ProtectionMode> modeFilter;
    };

    explicit ScenarioContext(Options options);

    /** Context configured from the process's CG_* environment. */
    static ScenarioContext fromEnv();

    /**
     * The CG_* environment as an Options struct, for callers (the
     * driver's --mode flag) that adjust it before construction.
     */
    static Options optionsFromEnv();

    bool quick() const { return _options.quick; }

    /**
     * The protection modes a mode-sweeping scenario should cover: the
     * modeFilter when set, otherwise every registered mode in registry
     * (id) order.
     */
    std::vector<streamit::ProtectionMode> modesToRun() const;

    /** Sweep dimensions for this context's quick/full setting. */
    const SweepAxes &axes() const { return _axes; }
    int seeds() const { return _axes.seeds; }
    const std::vector<Count> &mtbeAxis() const { return _axes.mtbe; }
    const std::vector<Count> &frameScales() const
    {
        return _axes.frameScales;
    }

    /**
     * Directory where scenarios drop images/audio, created on demand.
     * Creation failure is a configuration error: exits via fatal()
     * with the path and OS error instead of silently returning a
     * directory that does not exist.
     */
    std::string outputDir() const;

    /**
     * Publish a finished table under @p name: print the human-readable
     * form (CSV after it when enabled), capture the schema-versioned
     * BENCH document in memory, and write BENCH_<name>.json when
     * writeJson is set. Names become BENCH_<name>.json filenames, so
     * they must stay stable across refactors.
     */
    void publishTable(const std::string &name, const Table &table);

    /**
     * Run every descriptor through the shared parallel runner
     * (CG_JOBS host threads); outcomes in submission order regardless
     * of job count. Per-run JSONL records and trace files are emitted
     * by the runner itself when CG_JSONL/CG_TRACE_EVENTS are set.
     */
    std::vector<RunOutcome>
    runSweep(const std::vector<RunDescriptor> &descriptors) const;

    /** One-descriptor convenience form of runSweep(). */
    RunOutcome runOne(const RunDescriptor &descriptor) const;

    /**
     * Run @p app over seeds() canonical sweep seeds and return the
     * quality samples (fanned out like runSweep()).
     */
    std::vector<double>
    qualitySamples(const apps::App &app, streamit::ProtectionMode mode,
                   bool inject, double mtbe,
                   Count frame_scale = 1) const;

    // ------------------------------------------------------------------
    // Post-run introspection (driver summary, smoke tests).
    // ------------------------------------------------------------------

    /** Tables published so far. */
    std::size_t publishedTables() const { return _documents.size(); }

    /** Total rows across every published table. */
    std::size_t publishedRows() const { return _rows; }

    /** Captured (name, BENCH document) pairs, publication order. */
    const std::vector<std::pair<std::string, Json>> &
    benchDocuments() const
    {
        return _documents;
    }

  private:
    Options _options;
    SweepAxes _axes;
    std::size_t _rows = 0;
    std::vector<std::pair<std::string, Json>> _documents;
};

/**
 * One registered experiment: a figure, an ablation, or a micro suite.
 */
struct Scenario
{
    std::string name;         //!< Registry key; BENCH_<name> prefix.
    std::string description;  //!< One-line catalogue entry.
    std::string paperRef;     //!< e.g. "Fig. 9" or "DESIGN.md §7".
    std::vector<std::string> tags;  //!< e.g. {"figure", "quality"}.
    std::function<void(ScenarioContext &)> run;
};

/**
 * Process-wide scenario catalogue. Keyed and iterated in name order,
 * so every listing and --all sweep is deterministic regardless of
 * link order of the definition files.
 */
class ScenarioRegistry
{
  public:
    static ScenarioRegistry &instance();

    /**
     * Register @p scenario. An empty name, a missing run function or
     * a duplicate name is a programming error in the definition file
     * and exits via fatal().
     */
    void add(Scenario scenario);

    /** Look up by exact name; nullptr when absent. */
    const Scenario *find(const std::string &name) const;

    /** Every scenario, name-sorted. */
    std::vector<const Scenario *> all() const;

    /** Name-sorted subset carrying @p tag. */
    std::vector<const Scenario *>
    withTag(const std::string &tag) const;

    /** Sorted names (catalogue listings, tests). */
    std::vector<std::string> names() const;

  private:
    ScenarioRegistry() = default;
    std::map<std::string, Scenario> _scenarios;
};

/**
 * Static registrar: file-scope `static const ScenarioRegistrar r({...})`
 * in a definition file adds the scenario before main() runs.
 */
class ScenarioRegistrar
{
  public:
    explicit ScenarioRegistrar(Scenario scenario)
    {
        ScenarioRegistry::instance().add(std::move(scenario));
    }
};

/**
 * The machine-readable catalogue (`cg_bench list --json`):
 * {"schema_version": ..., "scenarios": [{"name", "description",
 * "paper_ref", "tags"}, ...]} in name order. Validated by
 * `jsonl_check --scenarios`.
 */
Json scenarioListJson();

} // namespace commguard::sim

#endif // COMMGUARD_SIM_SCENARIO_HH
