/**
 * @file
 * Small table/CSV printers used by the figure-reproduction benches.
 */

#ifndef COMMGUARD_SIM_TABLE_HH
#define COMMGUARD_SIM_TABLE_HH

#include <iostream>
#include <string>
#include <vector>

#include "common/json.hh"

namespace commguard::sim
{

/**
 * Column-aligned text table writer for figure output.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a row (stringified cells). */
    void addRow(std::vector<std::string> cells);

    /** Print with aligned columns. */
    void print(std::ostream &os = std::cout) const;

    /** Print as CSV (for plotting). */
    void printCsv(std::ostream &os = std::cout) const;

    /** As {"headers": [...], "rows": [[...], ...]} (BENCH export). */
    Json toJson() const;

    /** Rows added so far. */
    std::size_t rowCount() const { return _rows.size(); }

  private:
    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows;
};

/** Format a double with fixed precision. */
std::string fmt(double value, int precision = 2);

/** Format "mean +- stddev". */
std::string fmtMeanDev(double mean, double dev, int precision = 2);

} // namespace commguard::sim

#endif // COMMGUARD_SIM_TABLE_HH
