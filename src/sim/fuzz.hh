/**
 * @file
 * Deterministic stress-fuzz harness for the experiment engine
 * (docs/FUZZING.md).
 *
 * A FuzzCase is a seeded point in the configuration space the sweeps
 * actually exercise: a random StreamIt graph shape, a protection
 * mode, MTBE / frame-scale / queue-capacity axes, and a thread-pool
 * width. checkFuzzCase() runs the case through SweepRunner twice —
 * sequentially and with `jobs` workers — and checks every
 * machine-checkable invariant the rest of the toolchain relies on:
 *
 *  - progress: every run completes (the paper's liveness requirement);
 *  - exactness: error-free runs forward exactly the expected item
 *    count;
 *  - determinism: jobs=1 and jobs=N produce bitwise-identical
 *    RunOutcomes AND byte-identical JSONL records;
 *  - conservation: traceConservationErrors() finds no event/counter
 *    mismatch on any run;
 *  - schema: every JSONL record round-trips through
 *    metrics::snapshotFromJson() canonically.
 *
 * Everything derives from FuzzCase::caseSeed, so a failure is
 * replayable from a tiny JSON repro bundle: shrinkFuzzCase() greedily
 * simplifies the failing case axis by axis, writeReproBundle() emits
 * the bundle, and `cg_bench replay <bundle>` / `cg_fuzz replay
 * <bundle>` re-run it. `jsonl_check --repro` validates the bundle
 * format.
 *
 * The breakInvariant field is a test hook: it deliberately corrupts
 * one checked artifact ("counter", "determinism", "schema") so the
 * harness's failure→shrink→bundle path itself stays tested.
 */

#ifndef COMMGUARD_SIM_FUZZ_HH
#define COMMGUARD_SIM_FUZZ_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "streamit/loader.hh"

namespace commguard::sim
{

/** One seeded point in the fuzzed configuration space. */
struct FuzzCase
{
    std::uint64_t caseSeed = 1;   //!< Identifies the case.
    std::uint64_t graphSeed = 1;  //!< Random-graph shape seed.
    int stages = 3;               //!< Pipeline stages.
    int maxGranularity = 6;       //!< Max items per firing.
    bool allowSplitJoin = true;   //!< Split-join sandwiches allowed.
    streamit::ProtectionMode mode = streamit::ProtectionMode::CommGuard;
    bool injectErrors = true;
    double mtbe = 64'000.0;       //!< Mean insts between errors.
    Count frameScale = 1;         //!< §5.4 frame-size knob.
    std::size_t queueCapacityWords = 1u << 12;
    Count iterations = 8;         //!< Steady iterations per run.
    unsigned jobs = 2;            //!< Parallel width checked vs jobs=1.
    int sweepSeeds = 2;           //!< Seed indices in the batch.
    std::string breakInvariant;   //!< Test hook; "" in real fuzzing.

    bool operator==(const FuzzCase &other) const = default;
};

/** Derive every axis of a case from @p case_seed (replayable). */
FuzzCase randomFuzzCase(std::uint64_t case_seed);

/** Canonical JSON of a case (snake_case keys, mode by name). */
Json fuzzCaseJson(const FuzzCase &fuzz_case);

/**
 * Parse fuzzCaseJson() output. Returns false (setting @p error when
 * given) on missing fields, unknown mode names, or non-positive axes.
 */
bool fuzzCaseFromJson(const Json &json, FuzzCase &out,
                      std::string *error = nullptr);

/** Outcome of one checked case. */
struct FuzzVerdict
{
    std::vector<std::string> failures;  //!< Empty means all good.
    std::size_t runs = 0;               //!< Sweep runs executed.

    bool ok() const { return failures.empty(); }
};

/** Execute @p fuzz_case and check every invariant (file comment). */
FuzzVerdict checkFuzzCase(const FuzzCase &fuzz_case);

/**
 * Greedy minimization: walk the axes (sweep seeds, graph shape,
 * iterations, frame scale, queue capacity, error injection, mode,
 * jobs), try the simplest value for each, and keep any substitution
 * under which checkFuzzCase() still fails. Runs at most
 * @p max_checks re-executions; returns the smallest still-failing
 * case found (the input itself in the worst case).
 */
FuzzCase shrinkFuzzCase(const FuzzCase &failing, int max_checks = 48);

/**
 * The repro bundle document:
 * {"schema_version": ..., "kind": "fuzz_repro", "case": {...},
 *  "failures": ["...", ...]}.
 */
Json reproBundleJson(const FuzzCase &fuzz_case,
                     const std::vector<std::string> &failures);

/** Parse a repro bundle; extracts the embedded case. */
bool reproBundleFromJson(const Json &json, FuzzCase &out,
                         std::string *error = nullptr);

/** Write reproBundleJson() to @p path (fatal on I/O failure). */
void writeReproBundle(const std::string &path,
                      const FuzzCase &fuzz_case,
                      const std::vector<std::string> &failures);

/**
 * Wall-clock deadlock watchdog: arm() starts a countdown; if
 * disarm() is not called within the budget the process is killed via
 * std::_Exit(kFuzzWatchdogExitCode) after printing @p context (the
 * repro info) to stderr — a hung sweep must fail the gate, not wedge
 * it. One watchdog may be armed and disarmed repeatedly.
 */
class FuzzWatchdog
{
  public:
    FuzzWatchdog();
    ~FuzzWatchdog();

    FuzzWatchdog(const FuzzWatchdog &) = delete;
    FuzzWatchdog &operator=(const FuzzWatchdog &) = delete;

    /** Start (or restart) the countdown of @p budget_seconds. */
    void arm(double budget_seconds, std::string context);

    /** Cancel the countdown. */
    void disarm();

  private:
    void monitorLoop();

    std::mutex _mutex;
    std::condition_variable _changed;
    std::thread _monitor;
    std::chrono::steady_clock::time_point _deadline;
    std::string _context;
    std::uint64_t _generation = 0;  //!< Bumped by arm()/disarm().
    bool _armed = false;
    bool _stopping = false;
};

/** Exit code of a watchdog kill (distinct from fatal()'s 1). */
inline constexpr int kFuzzWatchdogExitCode = 4;

} // namespace commguard::sim

#endif // COMMGUARD_SIM_FUZZ_HH
