#include "sim/run_export.hh"

#include <fstream>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "sim/trace_export.hh"

namespace commguard::sim
{

Json
runRecordJson(const RunDescriptor &descriptor,
              const RunOutcome &outcome)
{
    Json record = metrics::snapshotToJson(outcome.snapshot);
    record["app"] = Json(descriptor.app->name);
    record["protection_mode"] =
        Json(streamit::protectionModeName(descriptor.options.mode));
    record["inject_errors"] = Json(descriptor.options.injectErrors);
    record["mtbe"] = Json(descriptor.options.mtbe);
    record["seed"] = Json(Count{descriptor.options.seed});
    record["frame_scale"] = Json(descriptor.options.frameScale);

    // Traced runs carry their realignment forensics and the event/
    // counter conservation verdict inline. snapshotFromJson() ignores
    // unknown keys, so untraced consumers are unaffected.
    if (outcome.eventTrace != nullptr) {
        Json forensics = forensicsJson(*outcome.eventTrace);
        Json errors = Json::array();
        for (const std::string &message : traceConservationErrors(
                 *outcome.eventTrace, outcome.snapshot))
            errors.push(message);
        forensics["conservation_errors"] = errors;
        record["forensics"] = forensics;
    }
    return record;
}

void
appendJsonl(const std::string &path, const std::vector<Json> &records)
{
    std::ofstream out(path, std::ios::app);
    if (!out) {
        warn("run_export: cannot open '" + path +
             "' for appending");
        return;
    }
    for (const Json &record : records) {
        record.write(out);
        out << '\n';
    }
}

void
appendJsonl(const std::string &path,
            const std::vector<std::string> &lines)
{
    std::ofstream out(path, std::ios::app);
    if (!out) {
        warn("run_export: cannot open '" + path +
             "' for appending");
        return;
    }
    for (const std::string &line : lines) {
        if (line.empty())
            continue;
        out << line << '\n';
    }
}

Json
benchDocument(const std::string &name, const Json &data)
{
    Json document = Json::object();
    document["schema_version"] = Json(metrics::kSchemaVersion);
    document["bench"] = Json(name);
    document["data"] = data;
    return document;
}

void
writeBenchJson(const std::string &name, const Json &data)
{
    const Json document = benchDocument(name, data);
    const std::string path = "BENCH_" + name + ".json";
    std::ofstream out(path);
    if (!out) {
        warn("run_export: cannot write '" + path + "'");
        return;
    }
    document.write(out);
    out << '\n';
}

} // namespace commguard::sim
