/**
 * @file
 * Validating fluent builder for experiment runs.
 *
 * Replaces raw streamit::LoadOptions construction in benches, examples
 * and tests:
 *
 *     const sim::RunOutcome outcome =
 *         sim::ExperimentConfig::app(jpeg)
 *             .mode(streamit::ProtectionMode::CommGuard)
 *             .mtbe(256'000)
 *             .seedIndex(0)
 *             .run();
 *
 * Nonsense configurations (mtbe <= 0, a zero frame scale, a per-node
 * frame-scale vector whose length does not match the graph) are
 * rejected with std::invalid_argument when the option is set — before
 * any machine is built — instead of surfacing as a mid-run fatal() or
 * a silently meaningless sweep.
 */

#ifndef COMMGUARD_SIM_EXPERIMENT_CONFIG_HH
#define COMMGUARD_SIM_EXPERIMENT_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/protection.hh"
#include "sim/sweep_runner.hh"

namespace commguard::sim
{

/**
 * A validated (app, LoadOptions) pair under construction. All setters
 * return *this for chaining; terminal operations are options(),
 * descriptor() and run().
 */
class ExperimentConfig
{
  public:
    /** Start a configuration for @p app (not owned; must outlive it). */
    static ExperimentConfig
    app(const apps::App &application)
    {
        return ExperimentConfig(application);
    }

    /** Protection configuration (paper Fig. 3). */
    ExperimentConfig &
    mode(streamit::ProtectionMode value)
    {
        _options.mode = value;
        return *this;
    }

    /**
     * Protection mode by registered name ("raw", "commguard",
     * "replicate", ...). fatal() with the registered-name list on an
     * unknown name.
     */
    ExperimentConfig &
    mode(const std::string &name)
    {
        _options.mode = protection::parseProtectionMode(name);
        return *this;
    }

    /** Executions per firing for replicating modes; must be >= 2. */
    ExperimentConfig &replicas(int value);

    /** Mean instructions between errors; must be positive. */
    ExperimentConfig &mtbe(double value);

    /**
     * Heterogeneous error rates (docs/SERVICE.md): one MTBE per node
     * in graph node order. The vector length must equal the app
     * graph's node count and every entry must be positive. An empty
     * vector restores the uniform mtbe().
     */
    ExperimentConfig &perCoreMtbe(std::vector<double> mtbes);

    /** Disable error injection (error-free / overhead runs). */
    ExperimentConfig &
    noErrors()
    {
        _options.injectErrors = false;
        return *this;
    }

    ExperimentConfig &
    injectErrors(bool value)
    {
        _options.injectErrors = value;
        return *this;
    }

    /** Raw base RNG seed. */
    ExperimentConfig &
    seed(std::uint64_t value)
    {
        _options.seed = value;
        return *this;
    }

    /**
     * Canonical sweep seed for 0-based @p index — the same derivation
     * sweepOptions() uses, so builder-made runs join sweep batches
     * bit-identically.
     */
    ExperimentConfig &seedIndex(int index);

    /** Uniform frame scale (§5.4); must be nonzero. */
    ExperimentConfig &frameScale(Count value);

    /**
     * Per-node frame scales (§5.4); the vector length must equal the
     * app graph's node count and every entry must be nonzero. An empty
     * vector restores the uniform frameScale.
     */
    ExperimentConfig &perNodeFrameScale(std::vector<Count> scales);

    ExperimentConfig &
    flipAllRegisters(bool value)
    {
        _options.flipAllRegisters = value;
        return *this;
    }

    ExperimentConfig &
    guardSourceEdge(bool value)
    {
        _options.guardSourceEdge = value;
        return *this;
    }

    ExperimentConfig &
    frameAlignedOutput(bool value)
    {
        _options.frameAlignedOutput = value;
        return *this;
    }

    /** Minimum queue capacity in words; must be nonzero. */
    ExperimentConfig &queueCapacityWords(std::size_t words);

    ExperimentConfig &
    machine(const MachineConfig &config)
    {
        _options.machine = config;
        return *this;
    }

    /** Record the frame-lifecycle event trace (docs/TRACING.md). */
    ExperimentConfig &
    traceEvents(bool value)
    {
        _options.machine.traceEvents = value;
        return *this;
    }

    /**
     * Sample the metric registry every @p sample_slices scheduler
     * rounds into the run's TelemetryRecorder, retaining at most
     * @p ring_capacity interval samples (docs/TELEMETRY.md). 0 slices
     * disables sampling.
     */
    ExperimentConfig &
    telemetry(Count sample_slices, std::size_t ring_capacity = 512)
    {
        _options.machine.telemetrySlices = sample_slices;
        _options.machine.telemetryRingCapacity = ring_capacity;
        return *this;
    }

    // ------------------------------------------------------------------
    // Terminal operations.
    // ------------------------------------------------------------------

    /** The validated loader options. */
    const streamit::LoadOptions &options() const { return _options; }

    /** The app this configuration targets. */
    const apps::App &targetApp() const { return *_app; }

    /** As a sweep-queue entry. */
    RunDescriptor
    descriptor() const
    {
        return RunDescriptor{_app, _options};
    }

    /** Build the machine and run to completion. */
    RunOutcome run() const;

    /**
     * The run's content address in the CG_CACHE_DIR result cache: 16
     * hex digits hashing the canonical descriptor JSON, the metric
     * schema version, and the build stamp (docs/SHARDING.md). Requires
     * a spec-carrying app (every factory-built app); fatal otherwise.
     */
    std::string cacheKey() const;

  private:
    explicit ExperimentConfig(const apps::App &application)
        : _app(&application)
    {}

    const apps::App *_app;
    streamit::LoadOptions _options;
};

} // namespace commguard::sim

#endif // COMMGUARD_SIM_EXPERIMENT_CONFIG_HH
