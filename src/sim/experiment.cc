#include "sim/experiment.hh"

#include <cmath>

#include "sim/env_options.hh"
#include "sim/sweep_runner.hh"

namespace commguard::sim
{

RunOutcome
runOnce(const apps::App &app, const streamit::LoadOptions &options,
        RunScratch *scratch)
{
    streamit::LoadOptions effective = options;
    if (EnvOptions::get().traceEvents)
        effective.machine.traceEvents = true;
    if (effective.machine.telemetrySlices == 0)
        effective.machine.telemetrySlices =
            EnvOptions::get().telemetrySlices;

    streamit::LoadedApp loaded = streamit::loadGraph(
        app.graph, app.input, app.steadyIterations, effective,
        scratch != nullptr ? &scratch->loader : nullptr);

    const MachineRunResult machine_result = loaded.run();

    RunOutcome outcome;
    outcome.completed = machine_result.completed;
    outcome.output = loaded.collector->takeItems();
    outcome.qualityDb = app.quality(outcome.output);

    // The machine's registry already holds every component counter;
    // append the harness-level observables so the snapshot is the
    // run's complete record.
    outcome.snapshot = loaded.machine->metrics().snapshot();
    outcome.snapshot.setCounter("run/completed",
                                machine_result.completed ? 1 : 0);
    outcome.snapshot.setCounter("run/outputItems",
                                outcome.output.size());
    outcome.snapshot.setGauge("run/qualityDb", outcome.qualityDb);
    outcome.eventTrace = loaded.machine->eventTrace();
    outcome.telemetry = loaded.machine->telemetryRecorder();
    return outcome;
}

SampleStats
summarize(const std::vector<double> &samples)
{
    SampleStats stats;
    if (samples.empty())
        return stats;

    double sum = 0.0;
    stats.min = samples.front();
    stats.max = samples.front();
    for (double s : samples) {
        sum += s;
        stats.min = std::min(stats.min, s);
        stats.max = std::max(stats.max, s);
    }
    stats.mean = sum / static_cast<double>(samples.size());

    // One sample has no spread, and a non-finite mean (error-free
    // runs report +inf dB) would make the variance inf - inf = NaN.
    if (samples.size() == 1 || !std::isfinite(stats.mean)) {
        stats.stddev = 0.0;
        return stats;
    }

    double var = 0.0;
    for (double s : samples)
        var += (s - stats.mean) * (s - stats.mean);
    var /= static_cast<double>(samples.size());
    stats.stddev = var > 0.0 ? std::sqrt(var) : 0.0;
    return stats;
}

const std::vector<Count> &
mtbeAxis()
{
    static const std::vector<Count> axis = {
        64'000,   128'000,  256'000,  512'000,
        1'024'000, 2'048'000, 4'096'000, 8'192'000,
    };
    return axis;
}

SampleStats
qualitySweep(const apps::App &app, double mtbe,
             streamit::ProtectionMode mode, Count frame_scale)
{
    SweepRunner &runner = sharedRunner();
    for (int seed = 0; seed < seedsPerPoint; ++seed)
        runner.enqueue(app, sweepOptions(mode, true, mtbe, seed,
                                         frame_scale));

    std::vector<double> qualities;
    qualities.reserve(seedsPerPoint);
    for (const RunOutcome &outcome : runner.runAll())
        qualities.push_back(outcome.qualityDb);
    return summarize(qualities);
}

} // namespace commguard::sim
