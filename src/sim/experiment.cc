#include "sim/experiment.hh"

#include <cmath>

#include "queue/working_set_queue.hh"
#include "sim/sweep_runner.hh"

namespace commguard::sim
{

RunOutcome
runOnce(const apps::App &app, const streamit::LoadOptions &options)
{
    streamit::LoadedApp loaded = streamit::loadGraph(
        app.graph, app.input, app.steadyIterations, options);

    const MachineRunResult machine_result = loaded.run();

    RunOutcome outcome;
    outcome.completed = machine_result.completed;
    outcome.totalInstructions = machine_result.totalInstructions;
    outcome.totalCycles = machine_result.totalCycles;
    outcome.timeoutsFired = machine_result.timeoutsFired;
    outcome.deadlockBreaks = machine_result.deadlockBreaks;

    for (const auto &core : loaded.machine->cores()) {
        const CoreCounters &c = core->counters();
        outcome.coreLoads += c.loads;
        outcome.coreStores += c.stores;
        outcome.watchdogTrips += c.scopeWatchdogTrips;
        outcome.invocations += c.invocations;
        outcome.errorsInjected += core->injector().errorsInjected();
    }

    for (const CommGuardBackend *backend : loaded.cgBackends) {
        const CgCounters &c = backend->counters();
        outcome.paddedItems += c.paddedItems;
        outcome.discardedItems += c.discardedItems;
        outcome.discardedHeaders += c.discardedHeaders;
        outcome.acceptedItems += c.acceptedItems;
        outcome.headerLoads += c.headerLoads;
        outcome.headerStores += c.headerStores;
        outcome.dataLoads += c.dataLoads;
        outcome.dataStores += c.dataStores;
        outcome.fsmCounterOps += c.fsmCounterOps();
        outcome.eccOps += c.eccOps();
        outcome.headerBitOps += c.headerBitOps;
        outcome.totalCgOps += c.totalOps();
    }

    for (const auto &queue : loaded.machine->queues())
        outcome.worksetEccOps += queue->counters().worksetEccOps;
    outcome.eccOps += outcome.worksetEccOps;
    outcome.totalCgOps += outcome.worksetEccOps;

    outcome.output = loaded.collector->items();
    outcome.qualityDb = app.quality(outcome.output);
    return outcome;
}

SampleStats
summarize(const std::vector<double> &samples)
{
    SampleStats stats;
    if (samples.empty())
        return stats;

    double sum = 0.0;
    stats.min = samples.front();
    stats.max = samples.front();
    for (double s : samples) {
        sum += s;
        stats.min = std::min(stats.min, s);
        stats.max = std::max(stats.max, s);
    }
    stats.mean = sum / static_cast<double>(samples.size());

    double var = 0.0;
    for (double s : samples)
        var += (s - stats.mean) * (s - stats.mean);
    stats.stddev =
        std::sqrt(var / static_cast<double>(samples.size()));
    return stats;
}

const std::vector<Count> &
mtbeAxis()
{
    static const std::vector<Count> axis = {
        64'000,   128'000,  256'000,  512'000,
        1'024'000, 2'048'000, 4'096'000, 8'192'000,
    };
    return axis;
}

SampleStats
qualitySweep(const apps::App &app, double mtbe,
             streamit::ProtectionMode mode, Count frame_scale)
{
    SweepRunner &runner = sharedRunner();
    for (int seed = 0; seed < seedsPerPoint; ++seed)
        runner.enqueue(app, sweepOptions(mode, true, mtbe, seed,
                                         frame_scale));

    std::vector<double> qualities;
    qualities.reserve(seedsPerPoint);
    for (const RunOutcome &outcome : runner.runAll())
        qualities.push_back(outcome.qualityDb);
    return summarize(qualities);
}

} // namespace commguard::sim
