#include "sim/run_codec.hh"

#include <utility>

#include "apps/app.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "sim/protection.hh"

namespace commguard::sim
{

namespace
{

/** Strict helpers mirroring apps::makeAppFromSpec's: a wire
 *  descriptor with a missing or mistyped field is a protocol error,
 *  reported through descriptorFromJson's (false, *error) channel. */
const Json *
findField(const Json &object, const std::string &key,
          std::string *error)
{
    const Json *value = object.find(key);
    if (value == nullptr)
        *error = "descriptor lacks '" + key + "'";
    return value;
}

bool
fieldCount(const Json &object, const std::string &key, Count *out,
           std::string *error)
{
    const Json *value = findField(object, key, error);
    if (value == nullptr || !value->isNumber()) {
        *error = "descriptor field '" + key + "' is not a number";
        return false;
    }
    *out = value->counter();
    return true;
}

bool
fieldDouble(const Json &object, const std::string &key, double *out,
            std::string *error)
{
    const Json *value = findField(object, key, error);
    if (value == nullptr || !value->isNumber()) {
        *error = "descriptor field '" + key + "' is not a number";
        return false;
    }
    *out = value->number();
    return true;
}

bool
fieldBool(const Json &object, const std::string &key, bool *out,
          std::string *error)
{
    const Json *value = findField(object, key, error);
    if (value == nullptr || !value->isBool()) {
        *error = "descriptor field '" + key + "' is not a boolean";
        return false;
    }
    *out = value->boolean();
    return true;
}

bool
fieldString(const Json &object, const std::string &key,
            std::string *out, std::string *error)
{
    const Json *value = findField(object, key, error);
    if (value == nullptr || !value->isString()) {
        *error = "descriptor field '" + key + "' is not a string";
        return false;
    }
    *out = value->str();
    return true;
}

int
hexNibble(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    return -1;
}

} // namespace

Json
descriptorJson(const RunDescriptor &descriptor)
{
    const apps::App &app = *descriptor.app;
    if (app.spec.empty())
        fatal("descriptorJson: app '" + app.name +
              "' carries no spec (gate on runShippable() first)");
    Json app_spec;
    std::string error;
    if (!Json::parse(app.spec, app_spec, &error))
        fatal("descriptorJson: unparseable App::spec '" + app.spec +
              "': " + error);

    const streamit::LoadOptions &o = descriptor.options;
    const MachineConfig &m = o.machine;

    Json per_node = Json::array();
    for (Count scale : o.perNodeFrameScale)
        per_node.push(Json(scale));

    Json per_core = Json::array();
    for (double m_core : o.perCoreMtbe)
        per_core.push(Json(m_core));

    Json timing = Json::object();
    timing["frame_flush_cycles"] = Json(Count{m.timing.frameFlushCycles});
    timing["mem_extra_cycles"] = Json(Count{m.timing.memExtraCycles});
    timing["queue_op_cycles"] = Json(Count{m.timing.queueOpCycles});

    Json ppu = Json::object();
    ppu["default_scope_budget"] = Json(m.ppu.defaultScopeBudget);
    ppu["enforce_nested_scopes"] = Json(m.ppu.enforceNestedScopes);
    ppu["max_scope_budget"] = Json(m.ppu.maxScopeBudget);
    ppu["max_scope_depth"] =
        Json(static_cast<std::int64_t>(m.ppu.maxScopeDepth));
    ppu["watchdog_multiplier"] = Json(m.ppu.watchdogMultiplier);

    Json machine = Json::object();
    machine["global_watchdog_insts"] = Json(m.globalWatchdogInsts);
    machine["ppu"] = std::move(ppu);
    machine["slice_instructions"] = Json(m.sliceInstructions);
    machine["timeout_rounds"] = Json(m.timeoutRounds);
    machine["timing"] = std::move(timing);

    Json json = Json::object();
    json["app"] = Json(app.name);
    json["app_spec"] = std::move(app_spec);
    json["flip_all_registers"] = Json(o.flipAllRegisters);
    json["frame_aligned_output"] = Json(o.frameAlignedOutput);
    json["frame_scale"] = Json(o.frameScale);
    json["guard_source_edge"] = Json(o.guardSourceEdge);
    json["inject_errors"] = Json(o.injectErrors);
    json["machine"] = std::move(machine);
    json["mtbe"] = Json(o.mtbe);
    json["per_core_mtbe"] = std::move(per_core);
    json["per_node_frame_scale"] = std::move(per_node);
    json["protection_mode"] = Json(protection::protectionModeName(o.mode));
    json["queue_capacity_words"] = Json(Count{o.queueCapacityWords});
    json["replicas"] = Json(static_cast<std::int64_t>(o.replicas));
    json["seed"] = Json(Count{o.seed});
    return json;
}

const apps::App &
AppCache::fromSpec(const std::string &spec)
{
    auto it = _bySpec.find(spec);
    if (it == _bySpec.end())
        it = _bySpec.emplace(spec, apps::makeAppFromSpec(spec)).first;
    return it->second;
}

bool
descriptorFromJson(const Json &json, AppCache &apps,
                   RunDescriptor *out, std::string *error)
{
    if (!json.isObject()) {
        *error = "descriptor is not a JSON object";
        return false;
    }

    const Json *app_spec = json.find("app_spec");
    if (app_spec == nullptr || !app_spec->isObject()) {
        *error = "descriptor field 'app_spec' is not an object";
        return false;
    }
    const apps::App &app = apps.fromSpec(app_spec->dump());

    std::string app_name;
    if (!fieldString(json, "app", &app_name, error))
        return false;
    if (app_name != app.name) {
        *error = "descriptor app '" + app_name +
                 "' does not match spec-built app '" + app.name + "'";
        return false;
    }

    streamit::LoadOptions o;
    std::string mode_name;
    if (!fieldString(json, "protection_mode", &mode_name, error))
        return false;
    if (!protection::tryParseProtectionMode(mode_name, &o.mode)) {
        *error = "unknown protection mode '" + mode_name + "'";
        return false;
    }

    Count count = 0;
    if (!fieldBool(json, "inject_errors", &o.injectErrors, error) ||
        !fieldDouble(json, "mtbe", &o.mtbe, error) ||
        !fieldCount(json, "seed", &count, error))
        return false;
    o.seed = count;
    if (!fieldBool(json, "flip_all_registers", &o.flipAllRegisters,
                   error) ||
        !fieldCount(json, "frame_scale", &o.frameScale, error) ||
        !fieldBool(json, "guard_source_edge", &o.guardSourceEdge,
                   error) ||
        !fieldBool(json, "frame_aligned_output", &o.frameAlignedOutput,
                   error))
        return false;

    const Json *per_core = json.find("per_core_mtbe");
    if (per_core == nullptr || !per_core->isArray()) {
        *error = "descriptor field 'per_core_mtbe' is not an array";
        return false;
    }
    o.perCoreMtbe.clear();
    for (const Json &m_core : per_core->arr()) {
        if (!m_core.isNumber()) {
            *error = "per_core_mtbe entry is not a number";
            return false;
        }
        o.perCoreMtbe.push_back(m_core.number());
    }

    const Json *per_node = json.find("per_node_frame_scale");
    if (per_node == nullptr || !per_node->isArray()) {
        *error = "descriptor field 'per_node_frame_scale' is not an "
                 "array";
        return false;
    }
    o.perNodeFrameScale.clear();
    for (const Json &scale : per_node->arr()) {
        if (!scale.isNumber()) {
            *error = "per_node_frame_scale entry is not a number";
            return false;
        }
        o.perNodeFrameScale.push_back(scale.counter());
    }

    double replicas = 0.0;
    if (!fieldDouble(json, "replicas", &replicas, error))
        return false;
    o.replicas = static_cast<int>(replicas);
    if (!fieldCount(json, "queue_capacity_words", &count, error))
        return false;
    o.queueCapacityWords = static_cast<std::size_t>(count);

    const Json *machine = json.find("machine");
    if (machine == nullptr || !machine->isObject()) {
        *error = "descriptor field 'machine' is not an object";
        return false;
    }
    MachineConfig &m = o.machine;
    if (!fieldCount(*machine, "slice_instructions",
                    &m.sliceInstructions, error) ||
        !fieldCount(*machine, "timeout_rounds", &m.timeoutRounds,
                    error) ||
        !fieldCount(*machine, "global_watchdog_insts",
                    &m.globalWatchdogInsts, error))
        return false;

    const Json *timing = machine->find("timing");
    if (timing == nullptr || !timing->isObject()) {
        *error = "descriptor field 'machine.timing' is not an object";
        return false;
    }
    if (!fieldCount(*timing, "mem_extra_cycles", &count, error))
        return false;
    m.timing.memExtraCycles = count;
    if (!fieldCount(*timing, "queue_op_cycles", &count, error))
        return false;
    m.timing.queueOpCycles = count;
    if (!fieldCount(*timing, "frame_flush_cycles", &count, error))
        return false;
    m.timing.frameFlushCycles = count;

    const Json *ppu = machine->find("ppu");
    if (ppu == nullptr || !ppu->isObject()) {
        *error = "descriptor field 'machine.ppu' is not an object";
        return false;
    }
    if (!fieldCount(*ppu, "watchdog_multiplier",
                    &m.ppu.watchdogMultiplier, error) ||
        !fieldCount(*ppu, "default_scope_budget",
                    &m.ppu.defaultScopeBudget, error) ||
        !fieldCount(*ppu, "max_scope_budget", &m.ppu.maxScopeBudget,
                    error) ||
        !fieldBool(*ppu, "enforce_nested_scopes",
                   &m.ppu.enforceNestedScopes, error))
        return false;
    double depth = 0.0;
    if (!fieldDouble(*ppu, "max_scope_depth", &depth, error))
        return false;
    m.ppu.maxScopeDepth = static_cast<int>(depth);

    out->app = &app;
    out->options = std::move(o);
    return true;
}

bool
runShippable(const RunDescriptor &descriptor)
{
    return !descriptor.app->spec.empty() &&
           !descriptor.options.machine.traceEvents &&
           descriptor.options.machine.telemetrySlices == 0;
}

std::string
encodeWords(const std::vector<Word> &words)
{
    static const char digits[] = "0123456789abcdef";
    std::string hex;
    hex.reserve(words.size() * 8);
    for (Word word : words)
        for (int shift = 28; shift >= 0; shift -= 4)
            hex.push_back(digits[(word >> shift) & 0xF]);
    return hex;
}

bool
decodeWords(const std::string &hex, std::vector<Word> *out)
{
    if (hex.size() % 8 != 0)
        return false;
    out->clear();
    out->reserve(hex.size() / 8);
    for (std::size_t i = 0; i < hex.size(); i += 8) {
        Word word = 0;
        for (std::size_t j = 0; j < 8; ++j) {
            const int nibble = hexNibble(hex[i + j]);
            if (nibble < 0)
                return false;
            word = (word << 4) | static_cast<Word>(nibble);
        }
        out->push_back(word);
    }
    return true;
}

RunOutcome
outcomeFromRecord(const Json &record, std::vector<Word> output)
{
    RunOutcome outcome;
    outcome.snapshot = metrics::snapshotFromJson(record);
    outcome.completed = outcome.snapshot.get("run/completed") != 0;
    outcome.qualityDb = outcome.snapshot.gauge("run/qualityDb");
    outcome.output = std::move(output);
    return outcome;
}

const std::string &
buildStamp()
{
    // __DATE__/__TIME__ of the sim library build: every binary linking
    // cg_sim (cg_bench, cg_tests, ...) shares one stamp, so a serve
    // process accepts workers spawned from any same-build binary.
    static const std::string stamp = __DATE__ " " __TIME__;
    return stamp;
}

} // namespace commguard::sim
