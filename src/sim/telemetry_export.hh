/**
 * @file
 * Consumers of the in-run telemetry series (docs/TELEMETRY.md):
 *
 *  - The telemetry JSONL stream (CG_TELEMETRY_OUT): one canonical-JSON
 *    record per sample, serialized on the worker that ran the run and
 *    appended by SweepRunner after the batch in submission order —
 *    like the per-run JSONL path, bytes are independent of CG_JOBS.
 *
 *  - The self-contained HTML run report, written next to the stream
 *    (<CG_TELEMETRY_OUT>.html): quality vs. injected-error-rate curves
 *    per protection mode, per-mode stage-profile stacked areas over
 *    simulated time, and a host pool-utilization strip. The report is
 *    a host-side artifact (it includes ThreadPool::Stats), so unlike
 *    the stream it is NOT byte-stable across job counts.
 *
 *  - The sweep health board: a rate-limited TTY status line over a
 *    running sweep (runs/sec, ETA, pool-stat deltas, per-mode repair
 *    rates), attachable to any SweepRunner; plus the small StatusLine
 *    primitive cg_fuzz reuses for its case loop.
 */

#ifndef COMMGUARD_SIM_TELEMETRY_EXPORT_HH
#define COMMGUARD_SIM_TELEMETRY_EXPORT_HH

#include <map>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/thread_pool.hh"
#include "sim/sweep_runner.hh"

namespace commguard::sim
{

/**
 * The telemetry records of one run, one per retained sample, in sample
 * order. Each record carries telemetry_schema_version, the identifying
 * descriptor fields (app, protection_mode, inject_errors, mtbe, seed,
 * frame_scale), @p run_index (the run's position in the stream), the
 * sample coordinates (sample, slice, cycles, final) and a sparse
 * "deltas" object of per-interval counter increments. The final record
 * additionally carries samples_taken, samples_dropped and the full
 * nonzero "cumulative" totals, which reconcile 1:1 with the run's
 * MetricSnapshot (conservation). Empty when the outcome has no
 * recorder.
 */
std::vector<Json> telemetryRecordsJson(const RunDescriptor &descriptor,
                                       const RunOutcome &outcome,
                                       Count run_index);

/**
 * telemetryRecordsJson() as newline-joined canonical-JSON lines (no
 * trailing newline): the sweep hot path's pre-serialized chunk for one
 * run. "" when the outcome has no recorder.
 */
std::string telemetryLines(const RunDescriptor &descriptor,
                           const RunOutcome &outcome, Count run_index);

/**
 * Fold one finished batch into the process-wide HTML report state
 * (thread-safe; SweepRunner calls it after each barrier).
 */
void telemetryReportAdd(const std::vector<RunDescriptor> &batch,
                        const std::vector<RunOutcome> &outcomes,
                        const ThreadPool::Stats &pool_stats,
                        unsigned jobs, double elapsed_seconds);

/**
 * Write the accumulated report state as a self-contained HTML document
 * (inline JSON + inline JS drawing SVG; no external assets) to
 * @p path. Rewritten after every batch so the report is live during a
 * sweep and complete at the end.
 */
void writeTelemetryReport(const std::string &path);

/**
 * Whether @p name is a repair-action counter leaf (paddedItems,
 * discardedItems, votedCorrections, correctedItems) — the
 * pareto_protection "repaired items" definition shared by the health
 * board, the HTML report and the service driver's forensics join.
 */
bool telemetryRepairLeaf(const std::string &name);

/**
 * The health board's "rate / ETA" fragment, e.g. "12.3/s  eta 40s".
 * Degenerate inputs — no completions yet, an implausibly small elapsed
 * window (instant cache replays), or a non-finite rate — render as
 * "--/s  eta --" instead of inf/garbage. Exposed for tests.
 */
std::string formatRateEta(std::size_t done, std::size_t total,
                          double elapsed_seconds);

/**
 * Rate-limited single-line TTY status: update() rewrites one \r line
 * on stderr at most every quarter second; finish() commits the last
 * text with a newline. All output is suppressed when constructed
 * disabled, so callers can drive it unconditionally.
 *
 * While a line is showing, the StatusLine registers itself with the
 * logging pre-emit hook: a warn()/inform() emitted concurrently first
 * blanks the in-place line so the log message lands on its own clean
 * row, and the status text repaints on the next update() instead of
 * being spliced mid-line.
 */
class StatusLine
{
  public:
    explicit StatusLine(bool enabled) : _enabled(enabled) {}
    ~StatusLine();

    StatusLine(const StatusLine &) = delete;
    StatusLine &operator=(const StatusLine &) = delete;

    void update(const std::string &text);
    void finish(const std::string &text);

    bool enabled() const { return _enabled; }

    /**
     * Blank the currently showing status line, if any (the logging
     * pre-emit hook body; also callable from tests). The owner's next
     * update() repaints immediately.
     */
    static void clearActiveLine();

  private:
    bool _enabled;
    bool _dirty = false;       //!< An uncommitted \r line is showing.
    double _nextPrint = 0.0;
    std::size_t _lastWidth = 0;
};

/**
 * The sweep health board: attach() replaces a SweepRunner's default
 * progress printer with a live status line aggregating runs/sec, ETA,
 * ThreadPool::Stats deltas since the batch started, and per-mode
 * repair rates (padded + discarded + voted + corrected items per
 * run). The board must outlive the runner's sweeps.
 */
class SweepHealthBoard
{
  public:
    /**
     * Whether the board should run: CG_BOARD=1 forces it on, CG_BOARD=0
     * off; unset enables it exactly when stderr is a TTY (so piped /
     * CI output stays clean).
     */
    static bool enabledFromEnv();

    /** Install on @p runner (which must outlive this board's use). */
    void attach(SweepRunner &runner);

  private:
    void observe(std::size_t done, std::size_t total,
                 const RunDescriptor &descriptor,
                 const RunOutcome &outcome);

    struct ModeAggregate
    {
        Count runs = 0;
        Count repairs = 0;
    };

    SweepRunner *_runner = nullptr;
    StatusLine _line{true};
    double _batchStart = 0.0;
    std::size_t _lastDone = 0;
    ThreadPool::Stats _batchBaseStats{};
    std::map<std::string, ModeAggregate> _modes;
};

} // namespace commguard::sim

#endif // COMMGUARD_SIM_TELEMETRY_EXPORT_HH
