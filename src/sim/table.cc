#include "sim/table.hh"

#include <iomanip>
#include <sstream>

namespace commguard::sim
{

Table::Table(std::vector<std::string> headers)
    : _headers(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    _rows.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(_headers.size(), 0);
    for (std::size_t c = 0; c < _headers.size(); ++c)
        widths[c] = _headers[c].size();
    for (const auto &row : _rows)
        for (std::size_t c = 0; c < row.size() && c < widths.size();
             ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c] + 2))
               << row[c];
        }
        os << "\n";
    };

    print_row(_headers);
    std::string rule;
    for (std::size_t c = 0; c < _headers.size(); ++c)
        rule += std::string(widths[c], '-') + "  ";
    os << rule << "\n";
    for (const auto &row : _rows)
        print_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ",";
            os << row[c];
        }
        os << "\n";
    };
    print_row(_headers);
    for (const auto &row : _rows)
        print_row(row);
}

Json
Table::toJson() const
{
    Json headers = Json::array();
    for (const std::string &header : _headers)
        headers.push(Json(header));

    Json rows = Json::array();
    for (const auto &row : _rows) {
        Json cells = Json::array();
        for (const std::string &cell : row)
            cells.push(Json(cell));
        rows.push(std::move(cells));
    }

    Json table = Json::object();
    table["headers"] = std::move(headers);
    table["rows"] = std::move(rows);
    return table;
}

std::string
fmt(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
fmtMeanDev(double mean, double dev, int precision)
{
    return fmt(mean, precision) + " +- " + fmt(dev, precision);
}

} // namespace commguard::sim
