#include "sim/result_cache.hh"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <unistd.h>
#include <utility>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "sim/run_codec.hh"

namespace commguard::sim
{

namespace
{

std::string
fnv1a64Hex(const std::string &bytes)
{
    std::uint64_t hash = 1469598103934665603ull;
    for (unsigned char c : bytes) {
        hash ^= c;
        hash *= 1099511628211ull;
    }
    static const char digits[] = "0123456789abcdef";
    std::string hex(16, '0');
    for (int i = 15; i >= 0; --i) {
        hex[static_cast<std::size_t>(i)] = digits[hash & 0xF];
        hash >>= 4;
    }
    return hex;
}

} // namespace

ResultCache::ResultCache(std::string directory)
    : _directory(std::move(directory))
{
}

std::string
ResultCache::keyFor(const RunDescriptor &descriptor)
{
    std::string preimage = descriptorJson(descriptor).dump();
    preimage += '\n';
    preimage += std::to_string(metrics::kSchemaVersion);
    preimage += '\n';
    preimage += buildStamp();
    return fnv1a64Hex(preimage);
}

bool
ResultCache::lookup(const RunDescriptor &descriptor, ExecutedRun *out)
{
    const std::string path =
        _directory + "/" + keyFor(descriptor) + ".json";
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        stats().misses.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();

    // Anything structurally wrong from here on counts as `invalid`:
    // the entry exists but cannot be trusted, so it degrades to a
    // miss and the run executes normally (overwriting the entry).
    const auto reject = [&](const std::string &why) {
        warn("result_cache: ignoring entry '" + path + "': " + why);
        stats().invalid.fetch_add(1, std::memory_order_relaxed);
        stats().misses.fetch_add(1, std::memory_order_relaxed);
        return false;
    };

    Json entry;
    std::string error;
    if (!Json::parse(text.str(), entry, &error) || !entry.isObject())
        return reject("unparseable: " + error);

    const Json *schema = entry.find("schema_version");
    if (schema == nullptr || !schema->isNumber() ||
        schema->counter() != Count{metrics::kSchemaVersion})
        return reject("schema version mismatch");

    // Collision guard: the stored descriptor must be byte-equal to
    // the requested one, not merely hash-equal.
    const Json *stored = entry.find("descriptor");
    if (stored == nullptr ||
        stored->dump() != descriptorJson(descriptor).dump())
        return reject("descriptor mismatch");

    const Json *record = entry.find("record");
    const Json *output = entry.find("output");
    if (record == nullptr || !record->isObject() ||
        output == nullptr || !output->isString())
        return reject("missing record/output");

    std::vector<Word> words;
    if (!decodeWords(output->str(), &words))
        return reject("corrupt output encoding");

    try {
        out->outcome = outcomeFromRecord(*record, std::move(words));
    } catch (const std::exception &e) {
        return reject(std::string("corrupt record: ") + e.what());
    }
    out->recordLine = record->dump();
    out->traceDoc.clear();
    out->telemetryChunk.clear();
    stats().hits.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
ResultCache::store(const RunDescriptor &descriptor,
                   const ExecutedRun &run)
{
    Json record;
    std::string error;
    if (!Json::parse(run.recordLine, record, &error)) {
        warn("result_cache: run record unparseable, not storing: " +
             error);
        return;
    }

    Json entry = Json::object();
    entry["descriptor"] = descriptorJson(descriptor);
    entry["output"] = Json(encodeWords(run.outcome.output));
    entry["record"] = std::move(record);
    entry["schema_version"] = Json(metrics::kSchemaVersion);

    const std::string path =
        _directory + "/" + keyFor(descriptor) + ".json";
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream outFile(tmp, std::ios::binary | std::ios::trunc);
        if (!outFile) {
            warn("result_cache: cannot write '" + tmp + "'");
            return;
        }
        entry.write(outFile);
        outFile << '\n';
        if (!outFile) {
            warn("result_cache: short write to '" + tmp + "'");
            outFile.close();
            std::remove(tmp.c_str());
            return;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("result_cache: cannot publish '" + path + "'");
        std::remove(tmp.c_str());
        return;
    }
    stats().stores.fetch_add(1, std::memory_order_relaxed);
}

Count
ResultCache::sweepOrphans(double grace_seconds)
{
    namespace fs = std::filesystem;
    // A store() temp file is "<16 hex>.json.tmp.<pid>"; anything
    // matching "*.tmp.*" in the cache directory is ours. The grace
    // window keeps temp files a live concurrent writer is still
    // filling; an orphan's mtime only ever gets older.
    Count swept = 0;
    std::error_code ec;
    const auto now = fs::file_time_type::clock::now();
    const auto grace = std::chrono::duration_cast<
        fs::file_time_type::duration>(
        std::chrono::duration<double>(grace_seconds));
    for (const fs::directory_entry &entry :
         fs::directory_iterator(_directory, ec)) {
        if (ec)
            break;
        if (!entry.is_regular_file(ec))
            continue;
        const std::string name = entry.path().filename().string();
        const std::size_t tmp_at = name.find(".tmp.");
        if (tmp_at == std::string::npos ||
            tmp_at + 5 >= name.size())
            continue;
        const auto mtime = entry.last_write_time(ec);
        if (ec || now - mtime < grace)
            continue;
        if (fs::remove(entry.path(), ec) && !ec)
            ++swept;
    }
    if (swept > 0) {
        stats().orphansSwept.fetch_add(swept,
                                       std::memory_order_relaxed);
        inform("result_cache: swept " + std::to_string(swept) +
               " orphaned temp file(s) from '" + _directory + "'");
    }
    return swept;
}

ResultCacheStats &
ResultCache::stats()
{
    static ResultCacheStats instance;
    return instance;
}

ResultCache *
ResultCache::process()
{
    static ResultCache *instance = []() -> ResultCache * {
        const char *dir = std::getenv("CG_CACHE_DIR");
        if (dir == nullptr || *dir == '\0')
            return nullptr;
        auto *cache = new ResultCache(dir);
        // Writers killed mid-store() (a dead shard worker, a ^C'd
        // sweep) leave "<key>.json.tmp.<pid>" files behind forever;
        // reclaim stale ones whenever the shared cache opens.
        cache->sweepOrphans();
        return cache;
    }();
    return instance;
}

bool
runCacheable(const RunDescriptor &descriptor)
{
    return runShippable(descriptor);
}

} // namespace commguard::sim
