/**
 * @file
 * Multi-process sharded sweep execution (docs/SHARDING.md).
 *
 * A ShardExecutor partitions a sweep batch across OS worker processes
 * (`cg_bench worker`) connected by pipes. Each frame on the wire is a
 * 4-byte little-endian length prefix followed by one canonical-JSON
 * document:
 *
 *   worker -> serve   {"type":"hello", "protocol_version", ...}
 *   serve  -> worker  {"type":"run", "id", "descriptor"}
 *   worker -> serve   {"type":"result", "id", "record", "output"}
 *   serve  -> worker  {"type":"exit"}
 *
 * Scheduling is self-balancing: every worker holds at most one
 * in-flight run and is handed the next pending one when its result
 * arrives (the depth-1 discipline also makes pipe deadlock impossible
 * — the serve side only writes to a worker that is idle and reading).
 * A worker death is detected by its pipe closing; its in-flight run is
 * reassigned, each run surviving at most ShardPlan::maxAttempts
 * assignments before the sweep aborts. Descriptors that cannot cross a
 * process boundary (runShippable() false: no App::spec, or tracing/
 * telemetry requested) execute inline on the serve side.
 *
 * Determinism: results land in ExecutedRun slots by submission index,
 * so the merged artifact bytes are independent of the shard count,
 * worker scheduling, and any deaths/reassignments along the way —
 * byte-identical to LocalExecutor output for the same batch.
 */

#ifndef COMMGUARD_SIM_SHARD_HH
#define COMMGUARD_SIM_SHARD_HH

#include <atomic>
#include <deque>
#include <string>
#include <sys/types.h>
#include <vector>

#include "sim/run_executor.hh"

namespace commguard::sim
{

/** Bumped on any wire-format change; hello frames must match. */
constexpr int kShardProtocolVersion = 1;

/**
 * Write one length-prefixed frame to @p fd (blocking, EINTR-safe).
 * False on any write failure (e.g. EPIPE after a peer death).
 */
bool writeFrame(int fd, const std::string &payload);

/**
 * Read one length-prefixed frame from @p fd (blocking, EINTR-safe).
 * False on EOF before a complete frame or an oversized length.
 */
bool readFrame(int fd, std::string *payload);

/** Process-wide shard traffic counters (sweep health board). */
struct ShardStats
{
    std::atomic<Count> workersSpawned{0};
    std::atomic<Count> workersLost{0};      //!< Deaths detected.
    std::atomic<Count> runsAssigned{0};     //!< Run frames sent.
    std::atomic<Count> runsReassigned{0};   //!< Re-sent after a death.
    std::atomic<Count> resultFrames{0};     //!< Results received.
    std::atomic<Count> localFallbackRuns{0};//!< Ran inline (unshippable).
};

/** The process-wide counters every ShardExecutor reports into. */
ShardStats &shardStats();

/** How `cg_bench run --shards=N` configures its ShardExecutor. */
struct ShardPlan
{
    /** Worker-process count (>= 1). */
    unsigned shards = 1;

    /** Worker command line, e.g. {"/path/to/cg_bench", "worker"}. */
    std::vector<std::string> workerArgv;

    /** Assignment attempts per run before the sweep aborts. */
    int maxAttempts = 3;

    /** Replacement workers spawned when the pool would go empty. */
    unsigned maxRespawns = 4;

    /**
     * Test hook: SIGKILL one live worker once this many runs have
     * been assigned (0 = never). Exercises the death-detection and
     * reassignment path deterministically; never set in production.
     */
    Count testKillAfterAssignments = 0;
};

/**
 * Install/read the process shard plan. sharedRunner() builds a
 * ShardExecutor-backed engine when a plan is set (cg_bench does so
 * while parsing --shards) and the default local engine otherwise.
 */
void setProcessShardPlan(ShardPlan plan);
const ShardPlan *processShardPlan();

/**
 * The `cg_bench worker` body: speak the protocol over @p in_fd /
 * @p out_fd until an exit frame or EOF. Returns a process exit code
 * (0 on a clean exit; 1 on a protocol violation, which the serve side
 * observes as a worker death).
 */
int shardWorkerLoop(int in_fd, int out_fd);

/**
 * The serve-side executor: spawns ShardPlan::shards worker processes
 * on first use, keeps them across batches (their app caches and run
 * scratches stay warm), and dispatches each batch per the protocol
 * above. fatal() when a run exhausts maxAttempts or the worker pool
 * cannot be refilled.
 */
class ShardExecutor : public RunExecutor
{
  public:
    explicit ShardExecutor(ShardPlan plan);
    ~ShardExecutor() override;

    ShardExecutor(const ShardExecutor &) = delete;
    ShardExecutor &operator=(const ShardExecutor &) = delete;

    const char *name() const override { return "shard"; }
    unsigned jobs() const override { return _plan.shards; }

    void execute(const std::vector<RunDescriptor> &batch,
                 const ExecutionRequest &request,
                 std::vector<ExecutedRun> &out) override;

  private:
    struct Worker
    {
        pid_t pid = -1;
        int toWorker = -1;    //!< Serve writes run/exit frames here.
        int fromWorker = -1;  //!< Serve reads hello/result frames.
        bool live = false;
        int inflight = -1;    //!< Batch index in flight, -1 if idle.
    };

    void spawnWorker();
    void retireWorker(Worker &worker);

    /** Handle a detected death: reassign, respawn, or fatal. */
    void onWorkerDeath(Worker &worker,
                       std::deque<std::size_t> &pending,
                       std::vector<int> &attempts);

    /** Run one unshippable descriptor on the serve side. */
    void runInline(std::size_t index, const RunDescriptor &descriptor,
                   const ExecutionRequest &request, ExecutedRun &run);

    ShardPlan _plan;
    std::vector<Worker> _workers;
    unsigned _respawns = 0;
    Count _assignedTotal = 0;
    bool _testKillDone = false;

    /** Scratch for inline (unshippable) runs. */
    RunScratch _inlineScratch;
};

} // namespace commguard::sim

#endif // COMMGUARD_SIM_SHARD_HH
