/**
 * @file
 * Experiment harness: single runs, seed sweeps, and MTBE axes
 * reproducing the paper's methodology (§6): for every MTBE the
 * application runs 5 times with different random seeds and the mean and
 * deviation of output quality are reported.
 *
 * A run's complete observability record is its MetricSnapshot: every
 * counter any component registered during the run, flattened under the
 * stable names documented in docs/METRICS.md. RunOutcome is a thin
 * typed view over that snapshot — the named accessors below are the
 * aggregations the figures need, each computed by summing one metric
 * leaf across all components, so no per-field hand-copying exists
 * between the machine and the reporting layers.
 */

#ifndef COMMGUARD_SIM_EXPERIMENT_HH
#define COMMGUARD_SIM_EXPERIMENT_HH

#include <memory>
#include <string>
#include <vector>

#include "apps/app.hh"
#include "common/event_trace.hh"
#include "common/metrics.hh"
#include "common/telemetry.hh"
#include "streamit/loader.hh"

namespace commguard::sim
{

/**
 * Observables of one run: the full metric snapshot plus the bulk
 * output stream, with typed accessors for the figure-level aggregates.
 */
struct RunOutcome
{
    /**
     * Every metric the machine registered during the run, plus the
     * harness-level run entries (run/completed, run/outputItems and
     * the run/qualityDb gauge). Single source for every accessor
     * below and for the JSONL/BENCH export layers.
     */
    metrics::MetricSnapshot snapshot;

    double qualityDb = 0.0;
    bool completed = false;

    /** The collected output stream (moved from the collector). */
    std::vector<Word> output;

    /**
     * The run's frame-lifecycle event trace (docs/TRACING.md); nullptr
     * unless tracing was enabled via MachineConfig::traceEvents or
     * CG_TRACE_EVENTS. Kept alive past the machine so the export
     * layers (Perfetto file, forensics record) can consume it.
     */
    std::shared_ptr<trace::EventTrace> eventTrace;

    /**
     * The run's in-run metric time series (docs/TELEMETRY.md); nullptr
     * unless sampling was enabled via MachineConfig::telemetrySlices
     * or CG_TELEMETRY_SLICES. Like the trace, kept alive past the
     * machine so the export layers can serialize it.
     */
    std::shared_ptr<telemetry::TelemetryRecorder> telemetry;

    // ------------------------------------------------------------------
    // Machine-level aggregates.
    // ------------------------------------------------------------------

    Count totalInstructions() const
    {
        return snapshot.total("committedInsts");
    }
    Cycle totalCycles() const { return snapshot.total("cycles"); }
    Count timeoutsFired() const
    {
        return snapshot.get("machine/timeoutsFired");
    }
    Count deadlockBreaks() const
    {
        return snapshot.get("machine/deadlockBreaks");
    }

    // ------------------------------------------------------------------
    // Core aggregates (summed over all nodes).
    // ------------------------------------------------------------------

    Count coreLoads() const { return snapshot.total("loads"); }
    Count coreStores() const { return snapshot.total("stores"); }
    Count errorsInjected() const
    {
        return snapshot.total("errorsInjected");
    }
    Count watchdogTrips() const
    {
        return snapshot.total("scopeWatchdogTrips");
    }
    Count invocations() const { return snapshot.total("invocations"); }

    /** Scheduler slices spent fully blocked on queues (stage profile). */
    Count blockedSlices() const
    {
        return snapshot.total("blockedSlices");
    }

    // ------------------------------------------------------------------
    // CommGuard aggregates (zero unless mode == CommGuard).
    // ------------------------------------------------------------------

    Count paddedItems() const { return snapshot.total("paddedItems"); }
    Count discardedItems() const
    {
        return snapshot.total("discardedItems");
    }
    Count discardedHeaders() const
    {
        return snapshot.total("discardedHeaders");
    }
    Count acceptedItems() const
    {
        return snapshot.total("acceptedItems");
    }
    Count headerLoads() const { return snapshot.total("headerLoads"); }
    Count headerStores() const
    {
        return snapshot.total("headerStores");
    }
    Count dataLoads() const { return snapshot.total("dataLoads"); }
    Count dataStores() const { return snapshot.total("dataStores"); }
    Count headerBitOps() const
    {
        return snapshot.total("headerBitOps");
    }
    Count worksetEccOps() const
    {
        return snapshot.total("worksetEccOps");
    }

    /** FSM transitions + active-fc counter updates (Table 2). */
    Count fsmCounterOps() const
    {
        return snapshot.total("fsmOps") + snapshot.total("counterOps");
    }

    /** ECC checks + recomputations, including working-set ECC. */
    Count eccOps() const
    {
        return snapshot.total("eccChecks") +
               snapshot.total("eccComputes") + worksetEccOps();
    }

    /** All CommGuard suboperations (Fig. 14's total). */
    Count totalCgOps() const
    {
        return fsmCounterOps() + eccOps() + headerBitOps() +
               snapshot.total("prepareHeaderOps");
    }

    /** Paper Fig. 8 metric: (padded + discarded) / accepted. */
    double
    dataLossRatio() const
    {
        const Count accepted = acceptedItems();
        if (accepted == 0)
            return 0.0;
        return static_cast<double>(paddedItems() + discardedItems()) /
               static_cast<double>(accepted);
    }
};

/**
 * Reusable per-worker run state (sweep hot path). Wraps the loader's
 * scratch; one per worker thread, never shared. Call beginBatch() at
 * the start of each batch of runs (it invalidates caches keyed by
 * graph addresses that may have been reused).
 */
struct RunScratch
{
    streamit::LoaderScratch loader;

    void beginBatch() { loader.beginBatch(); }
};

/**
 * Run one application once under the given options.
 *
 * @param scratch Optional reusable state; passing one does not change
 * the outcome (buffers are re-zeroed and caches copied pristine), it
 * only removes repeated large allocations from the hot path.
 */
RunOutcome runOnce(const apps::App &app,
                   const streamit::LoadOptions &options,
                   RunScratch *scratch = nullptr);

/** Mean / deviation summary of a sample set. */
struct SampleStats
{
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
};

/**
 * Population mean/stddev/min/max of @p samples. Well-defined on the
 * degenerate inputs the sweeps produce: an empty set is all zeros, a
 * single sample has zero deviation, and a non-finite mean (error-free
 * runs report +inf dB) yields zero deviation instead of NaN.
 */
SampleStats summarize(const std::vector<double> &samples);

/** The paper's MTBE axis: {64, 128, 256, ..., 8192} * 1000 insts. */
const std::vector<Count> &mtbeAxis();

/** Paper methodology: five seeds per configuration. */
constexpr int seedsPerPoint = 5;

/**
 * Sweep helper: run @p app at one MTBE over seedsPerPoint seeds and
 * summarize the quality.
 */
SampleStats qualitySweep(const apps::App &app, double mtbe,
                         streamit::ProtectionMode mode,
                         Count frame_scale = 1);

} // namespace commguard::sim

#endif // COMMGUARD_SIM_EXPERIMENT_HH
