/**
 * @file
 * Experiment harness: single runs, seed sweeps, and MTBE axes
 * reproducing the paper's methodology (§6): for every MTBE the
 * application runs 5 times with different random seeds and the mean and
 * deviation of output quality are reported.
 */

#ifndef COMMGUARD_SIM_EXPERIMENT_HH
#define COMMGUARD_SIM_EXPERIMENT_HH

#include <string>
#include <vector>

#include "apps/app.hh"
#include "streamit/loader.hh"

namespace commguard::sim
{

/** Aggregated observables of one run. */
struct RunOutcome
{
    double qualityDb = 0.0;
    bool completed = false;

    Count totalInstructions = 0;
    Cycle totalCycles = 0;
    Count timeoutsFired = 0;
    Count deadlockBreaks = 0;

    // Core aggregates.
    Count coreLoads = 0;
    Count coreStores = 0;
    Count errorsInjected = 0;
    Count watchdogTrips = 0;
    Count invocations = 0;

    // CommGuard aggregates (zero unless mode == CommGuard).
    Count paddedItems = 0;
    Count discardedItems = 0;
    Count discardedHeaders = 0;
    Count acceptedItems = 0;
    Count headerLoads = 0;
    Count headerStores = 0;
    Count dataLoads = 0;
    Count dataStores = 0;
    Count fsmCounterOps = 0;
    Count eccOps = 0;
    Count headerBitOps = 0;
    Count totalCgOps = 0;
    Count worksetEccOps = 0;

    /** Paper Fig. 8 metric: (padded + discarded) / accepted. */
    double
    dataLossRatio() const
    {
        if (acceptedItems == 0)
            return 0.0;
        return static_cast<double>(paddedItems + discardedItems) /
               static_cast<double>(acceptedItems);
    }

    /** The collected output stream (moved from the collector). */
    std::vector<Word> output;
};

/** Run one application once under the given options. */
RunOutcome runOnce(const apps::App &app,
                   const streamit::LoadOptions &options);

/** Mean / deviation summary of a sample set. */
struct SampleStats
{
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
};

SampleStats summarize(const std::vector<double> &samples);

/** The paper's MTBE axis: {64, 128, 256, ..., 8192} * 1000 insts. */
const std::vector<Count> &mtbeAxis();

/** Paper methodology: five seeds per configuration. */
constexpr int seedsPerPoint = 5;

/**
 * Sweep helper: run @p app at one MTBE over seedsPerPoint seeds and
 * summarize the quality.
 */
SampleStats qualitySweep(const apps::App &app, double mtbe,
                         streamit::ProtectionMode mode,
                         Count frame_scale = 1);

} // namespace commguard::sim

#endif // COMMGUARD_SIM_EXPERIMENT_HH
