#include "sim/protection.hh"

#include <utility>

#include "common/logging.hh"
#include "machine/abft_backend.hh"
#include "machine/backends.hh"
#include "machine/replicate_backend.hh"
#include "queue/reliable_queue.hh"
#include "queue/software_queue.hh"
#include "queue/working_set_queue.hh"

namespace commguard::protection
{

namespace
{

/** Registered ids fit the uint8 ProtectionMode space. */
constexpr std::size_t kMaxModes = 256;

std::unique_ptr<QueueBase>
makeSoftwareQueue(const std::string &name, std::size_t capacity,
                  RecyclePool<QueueWord> *recycle)
{
    return std::make_unique<SoftwareQueue>(name, capacity, recycle);
}

std::unique_ptr<QueueBase>
makeReliableQueue(const std::string &name, std::size_t capacity,
                  RecyclePool<QueueWord> *recycle)
{
    return std::make_unique<ReliableQueue>(name, capacity, recycle);
}

} // namespace

ProtectionRegistry &
ProtectionRegistry::instance()
{
    static ProtectionRegistry registry;
    return registry;
}

ProtectionRegistry::ProtectionRegistry()
{
    {
        ModeDescriptor raw;
        raw.name = "raw";
        raw.description =
            "Unprotected StreamIt software queues (error-prone "
            "communication, PPU-protected cores only)";
        raw.paperRef = "Paper §3, Fig. 3b";
        raw.aliases = {"ppu-only"};
        raw.sourceFraming = SourceFraming::Plain;
        raw.makeEdgeQueue = makeSoftwareQueue;
        raw.makeBackend = [](const BackendSpec &spec) {
            return std::make_unique<RawBackend>(spec.ins, spec.outs);
        };
        add(std::move(raw));
    }
    {
        ModeDescriptor reliable;
        reliable.name = "reliable-queue";
        reliable.description =
            "Reliable hardware queues without alignment protection "
            "(queue state safe, stream alignment exposed)";
        reliable.paperRef = "Paper §3, Fig. 3c";
        reliable.sourceFraming = SourceFraming::Plain;
        reliable.makeEdgeQueue = makeReliableQueue;
        reliable.makeBackend = [](const BackendSpec &spec) {
            return std::make_unique<RawBackend>(spec.ins, spec.outs);
        };
        add(std::move(reliable));
    }
    {
        ModeDescriptor commguard;
        commguard.name = "commguard";
        commguard.description =
            "Full CommGuard: header inserters, alignment managers, and "
            "reliable queue managers per core";
        commguard.paperRef = "Paper §4-5, Fig. 3d";
        commguard.sourceFraming = SourceFraming::Headers;
        commguard.makeEdgeQueue =
            [](const std::string &name, std::size_t capacity,
               RecyclePool<QueueWord> *recycle) {
                return std::make_unique<WorkingSetQueue>(name, capacity,
                                                         8, recycle);
            };
        commguard.makeBackend = [](const BackendSpec &spec) {
            return std::make_unique<CommGuardBackend>(
                spec.ins, spec.outs, spec.inScales, spec.outScales,
                spec.inGuarded);
        };
        add(std::move(commguard));
    }
    {
        ModeDescriptor replicate;
        replicate.name = "replicate";
        replicate.description =
            "N-modular filter-firing replication with output voting "
            "over reliable queues (protects computation, not "
            "communication)";
        replicate.paperRef =
            "PAPERS.md: task-replication futures (Fernandes de Oliveira "
            "et al.)";
        replicate.sourceFraming = SourceFraming::Plain;
        replicate.makeEdgeQueue = makeReliableQueue;
        replicate.makeBackend = [](const BackendSpec &spec) {
            return std::make_unique<ReplicateBackend>(
                spec.ins, spec.outs, spec.replicas);
        };
        replicate.costScalesWithReplicas = true;
        add(std::move(replicate));
    }
    {
        ModeDescriptor abft;
        abft.name = "abft";
        abft.description =
            "ABFT checksum-augmented streams over corruptible software "
            "queues (detects and corrects value corruption per block)";
        abft.paperRef =
            "Huang & Abraham ABFT; PAPERS.md FT-GEMM checksum methods";
        abft.sourceFraming = SourceFraming::Checksums;
        abft.makeEdgeQueue = makeSoftwareQueue;
        abft.makeBackend = [](const BackendSpec &spec) {
            return std::make_unique<AbftBackend>(
                spec.ins, spec.outs, spec.inGuarded, spec.inBlockItems,
                spec.outBlockItems, spec.inTotalItems,
                spec.outTotalItems);
        };
        abft.consumerBuffersBlocks = true;
        add(std::move(abft));
    }
}

ProtectionMode
ProtectionRegistry::add(ModeDescriptor descriptor)
{
    if (descriptor.name.empty())
        fatal("protection registry: mode name must not be empty");
    if (!descriptor.makeEdgeQueue)
        fatal("protection mode '" + descriptor.name +
              "': missing edge-queue factory");
    if (!descriptor.makeBackend)
        fatal("protection mode '" + descriptor.name +
              "': missing backend factory");
    for (const ModeDescriptor &existing : _descriptors) {
        auto clashes = [&](const std::string &name) {
            if (name == existing.name)
                return true;
            for (const std::string &alias : existing.aliases)
                if (name == alias)
                    return true;
            return false;
        };
        if (clashes(descriptor.name))
            fatal("protection mode '" + descriptor.name +
                  "': name already registered");
        for (const std::string &alias : descriptor.aliases)
            if (clashes(alias))
                fatal("protection mode '" + descriptor.name +
                      "': alias '" + alias + "' already registered");
    }
    if (_descriptors.size() >= kMaxModes)
        fatal("protection registry: mode table full");

    descriptor.mode =
        static_cast<ProtectionMode>(_descriptors.size());
    _descriptors.push_back(std::move(descriptor));
    return _descriptors.back().mode;
}

const ModeDescriptor &
ProtectionRegistry::describe(ProtectionMode mode) const
{
    const std::size_t index = static_cast<std::size_t>(mode);
    if (index >= _descriptors.size())
        fatal("protection registry: unregistered mode id " +
              std::to_string(index));
    return _descriptors[index];
}

bool
ProtectionRegistry::tryParse(const std::string &name,
                             ProtectionMode *out) const
{
    for (const ModeDescriptor &descriptor : _descriptors) {
        if (descriptor.name == name) {
            *out = descriptor.mode;
            return true;
        }
        for (const std::string &alias : descriptor.aliases) {
            if (alias == name) {
                *out = descriptor.mode;
                return true;
            }
        }
    }
    return false;
}

std::vector<ProtectionMode>
ProtectionRegistry::modes() const
{
    std::vector<ProtectionMode> result;
    result.reserve(_descriptors.size());
    for (const ModeDescriptor &descriptor : _descriptors)
        result.push_back(descriptor.mode);
    return result;
}

std::vector<std::string>
ProtectionRegistry::names() const
{
    std::vector<std::string> result;
    result.reserve(_descriptors.size());
    for (const ModeDescriptor &descriptor : _descriptors)
        result.push_back(descriptor.name);
    return result;
}

std::string
ProtectionRegistry::nameList() const
{
    std::string result;
    for (const ModeDescriptor &descriptor : _descriptors) {
        if (!result.empty())
            result += ", ";
        result += descriptor.name;
    }
    return result;
}

const char *
protectionModeName(ProtectionMode mode)
{
    return ProtectionRegistry::instance().describe(mode).name.c_str();
}

ProtectionMode
parseProtectionMode(const std::string &name)
{
    ProtectionMode mode{};
    if (!ProtectionRegistry::instance().tryParse(name, &mode))
        fatal("unknown protection mode '" + name +
              "' (registered modes: " +
              ProtectionRegistry::instance().nameList() + ")");
    return mode;
}

bool
tryParseProtectionMode(const std::string &name, ProtectionMode *out)
{
    return ProtectionRegistry::instance().tryParse(name, out);
}

} // namespace commguard::protection
