/**
 * @file
 * The unit of inter-core communication: a tagged word.
 *
 * CommGuard transmits frame headers in-band with data items. Hardware
 * distinguishes them with a header tag bit (paper Table 3: "is-header:
 * Check header-bit"); headers additionally carry a SECDED codeword
 * because they are end-to-end ECC protected (paper §6: "Headers are not
 * error-prone because we assume they are end-to-end ECC protected and
 * account for their overhead").
 */

#ifndef COMMGUARD_QUEUE_QUEUE_WORD_HH
#define COMMGUARD_QUEUE_QUEUE_WORD_HH

#include "common/ecc.hh"
#include "common/types.hh"

namespace commguard
{

/** One queue slot: a data item or an ECC-protected frame header. */
struct QueueWord
{
    /** Item value, or the frame ID for headers. */
    Word value = 0;

    /** Header tag bit. */
    bool isHeader = false;

    /** SECDED codeword of the frame ID; valid only for headers. */
    EccWord ecc = 0;
};

/** Make a plain data item. */
inline QueueWord
makeItem(Word value)
{
    return QueueWord{value, false, 0};
}

/** Make an ECC-protected frame header carrying @p frame_id. */
inline QueueWord
makeHeader(FrameId frame_id)
{
    return QueueWord{frame_id, true, eccEncode(frame_id)};
}

/** Frame ID marking the end of a thread's computation (paper §4.1). */
constexpr FrameId endOfComputationId = 0xffffffffu;

} // namespace commguard

#endif // COMMGUARD_QUEUE_QUEUE_WORD_HH
