/**
 * @file
 * Reliable I/O endpoints: the input stream source and output collector.
 *
 * The paper requires that error-tolerant execution "not crash, hang, or
 * corrupt I/O devices" (§2.1.1); I/O devices themselves are reliable.
 * SourceQueue models the input side (a file reader / sensor feeding the
 * first filter): it is pre-filled with the whole input stream and, when
 * CommGuard is enabled, with a frame header before each frame's worth of
 * items — equivalent to a header inserter at the reliable I/O producer.
 * If erroneous consumer control flow over-pops it past the end it
 * delivers zero items instead of deadlocking. CollectorQueue models the
 * output device: an unbounded, always-accepting sink that records
 * everything pushed to it (stripping and counting headers).
 */

#ifndef COMMGUARD_QUEUE_IO_QUEUE_HH
#define COMMGUARD_QUEUE_IO_QUEUE_HH

#include <utility>
#include <vector>

#include "common/recycle_pool.hh"
#include "queue/queue_base.hh"

namespace commguard
{

/**
 * Pre-filled, pop-only input stream.
 */
class SourceQueue : public QueueBase
{
  public:
    /**
     * @param recycle Optional freelist the contents buffer is retired
     * to on destruction (sweep hot path; must outlive the queue).
     * Pair it with building @p contents in a buffer acquired from the
     * same pool so the stream storage is reused run over run.
     */
    SourceQueue(std::string name, std::vector<QueueWord> contents,
                RecyclePool<QueueWord> *recycle = nullptr)
        : QueueBase(std::move(name)), _recycle(recycle),
          _contents(std::move(contents))
    {}

    ~SourceQueue() override
    {
        if (_recycle != nullptr)
            _recycle->release(std::move(_contents));
    }

    /** Input devices are never pushed to by the computation. */
    QueueOpStatus
    tryPush(const QueueWord &word) override
    {
        (void)word;
        ++_counters.illegalPushes;
        return QueueOpStatus::Ok;  // Swallow; never corrupt the device.
    }

    QueueOpStatus
    tryPop(QueueWord &word) override
    {
        if (_next < _contents.size()) {
            word = _contents[_next++];
            ++_counters.pops;
            return QueueOpStatus::Ok;
        }
        if (_streaming) {
            // Service mode: the stream is live and currently empty —
            // the consumer genuinely has to wait for the next arrival
            // burst, exactly like an empty inter-core queue.
            return QueueOpStatus::Blocked;
        }
        // Exhausted: deliver zero items so an over-popping consumer
        // cannot hang the system on its reliable input device.
        word = makeItem(0);
        ++_counters.underflowPops;
        return QueueOpStatus::Ok;
    }

    std::size_t size() const override { return _contents.size() - _next; }
    std::size_t capacity() const override { return _contents.size(); }

    /** Words remaining unread (for tests). */
    std::size_t remaining() const { return _contents.size() - _next; }

    /**
     * Switch the device to live-stream semantics (service mode): an
     * empty source means "no arrival yet" and pops return Blocked —
     * the consumer waits instead of fabricating zero items ahead of
     * the traffic. Batch mode (default) keeps the never-blocking
     * zero-item underflow contract.
     */
    void setStreaming(bool streaming) { _streaming = streaming; }

    /**
     * Stream more words into the device (service mode): the reliable
     * input producer appending newly-arrived frames while the machine
     * runs. The consumed prefix is compacted away once it dominates
     * the buffer, so a long-lived source holds O(backlog) words, not
     * O(total stream).
     */
    void
    append(const QueueWord *words, std::size_t count)
    {
        if (_next > kCompactThresholdWords &&
            _next >= _contents.size() - _next) {
            _contents.erase(_contents.begin(),
                            _contents.begin() +
                                static_cast<std::ptrdiff_t>(_next));
            _next = 0;
        }
        _contents.insert(_contents.end(), words, words + count);
    }

  private:
    static constexpr std::size_t kCompactThresholdWords = 4096;

    RecyclePool<QueueWord> *_recycle;  //!< Not owned; may be null.
    std::vector<QueueWord> _contents;
    std::size_t _next = 0;
    bool _streaming = false;
};

/**
 * Unbounded, always-accepting output recorder.
 */
class CollectorQueue : public QueueBase
{
  public:
    explicit CollectorQueue(std::string name) : QueueBase(std::move(name))
    {}

    QueueOpStatus
    tryPush(const QueueWord &word) override
    {
        if (word.isHeader) {
            ++_counters.headersCollected;
        } else {
            _items.push_back(word.value);
            ++_counters.pushes;
        }
        return QueueOpStatus::Ok;
    }

    /** Output devices are never popped by the computation. */
    QueueOpStatus
    tryPop(QueueWord &word) override
    {
        word = makeItem(0);
        ++_counters.illegalPops;
        return QueueOpStatus::Ok;
    }

    std::size_t size() const override { return _items.size(); }
    std::size_t capacity() const override { return ~std::size_t{0}; }

    /** Everything the computation emitted, headers stripped. */
    const std::vector<Word> &items() const { return _items; }

    /**
     * Move the collected output out of the device (the collector is
     * left empty). The run harness consumes the output exactly once;
     * moving avoids deep-copying the full stream per sweep run.
     */
    std::vector<Word> takeItems() { return std::move(_items); }

  protected:
    std::vector<Word> _items;
};

/**
 * Frame-aligned output recorder: uses the frame headers CommGuard's
 * header inserter stamps onto the collector edge to place each
 * frame's items at that frame's offset in the output stream, the way
 * a reliable output device writing fixed-size records would. A sink
 * thread that over- or under-pushes within a frame then corrupts only
 * that frame's region instead of shifting the whole remaining output.
 */
class FrameAlignedCollector : public CollectorQueue
{
  public:
    /**
     * @param items_per_frame Output items each frame contributes.
     * @param max_frames      Sanity cap on header IDs (records beyond
     *                        it are treated as overflow).
     */
    FrameAlignedCollector(std::string name, Count items_per_frame,
                          Count max_frames)
        : CollectorQueue(std::move(name)),
          _itemsPerFrame(items_per_frame ? items_per_frame : 1),
          _maxFrames(max_frames)
    {}

    QueueOpStatus
    tryPush(const QueueWord &word) override
    {
        if (word.isHeader) {
            ++_counters.headersCollected;
            if (word.value == endOfComputationId)
                return QueueOpStatus::Ok;
            if (word.value >= 1 && word.value <= _maxFrames) {
                _cursor = static_cast<std::size_t>(word.value - 1) *
                          _itemsPerFrame;
                _frameEnd = _cursor + _itemsPerFrame;
                if (_items.size() < _frameEnd)
                    _items.resize(_frameEnd, 0);
            }
            return QueueOpStatus::Ok;
        }

        ++_counters.pushes;
        if (_cursor < _frameEnd) {
            _items[_cursor++] = word.value;
        } else {
            // Extra items past the frame's record: the device drops
            // them (they would realign at the next header anyway).
            ++_counters.overflowDrops;
        }
        return QueueOpStatus::Ok;
    }

  private:
    Count _itemsPerFrame;
    Count _maxFrames;
    std::size_t _cursor = 0;
    std::size_t _frameEnd = 0;
};

} // namespace commguard

#endif // COMMGUARD_QUEUE_IO_QUEUE_HH
