/**
 * @file
 * CommGuard queue manager storage with working-set sub-regions (§5.1).
 *
 * "The QM follows the StreamIt implementation for a parallel queue; a
 * 320KB memory region divided to 8 sub-regions to avoid per-item access
 * to the head/tail pointers." Producers and consumers operate on local
 * working sets; only when a working set fills/drains does the QM touch
 * the ECC-protected shared pointers (Table 3: "QM-get-new-workset: 10
 * check/compute-ECC operations for shared pointer access through QM").
 *
 * Functionally this is still a reliable FIFO; the sub-region structure
 * matters for the overhead accounting the evaluation reports (Figs. 12
 * and 14), which this class records.
 */

#ifndef COMMGUARD_QUEUE_WORKING_SET_QUEUE_HH
#define COMMGUARD_QUEUE_WORKING_SET_QUEUE_HH

#include "queue/ring_queue.hh"

namespace commguard
{

/**
 * Reliable queue with working-set accounting.
 */
class WorkingSetQueue : public RingQueue
{
  public:
    /** ECC operations per shared-pointer working-set switch (Table 3). */
    static constexpr Count eccOpsPerWorksetSwitch = 10;

    /**
     * @param capacity Queue capacity in words.
     * @param sub_regions Number of working-set sub-regions (paper: 8).
     * @param recycle Optional backing-store freelist (see RingQueue).
     */
    WorkingSetQueue(std::string name, std::size_t capacity,
                    unsigned sub_regions = 8,
                    RecyclePool<QueueWord> *recycle = nullptr);

    QueueOpStatus tryPush(const QueueWord &word) override;
    QueueOpStatus tryPop(QueueWord &word) override;

    /** Words per working-set sub-region. */
    std::size_t worksetWords() const { return _worksetWords; }

    /** Total ECC operations charged to working-set pointer accesses. */
    Count worksetEccOps() const { return _counters.worksetEccOps; }

  private:
    std::size_t _worksetWords;
    std::size_t _pushesInWorkset = 0;
    std::size_t _popsInWorkset = 0;
};

} // namespace commguard

#endif // COMMGUARD_QUEUE_WORKING_SET_QUEUE_HH
