#include "queue/working_set_queue.hh"

namespace commguard
{

WorkingSetQueue::WorkingSetQueue(std::string name, std::size_t capacity,
                                 unsigned sub_regions,
                                 RecyclePool<QueueWord> *recycle)
    : RingQueue(std::move(name), capacity, recycle),
      _worksetWords(this->capacity() / (sub_regions ? sub_regions : 1))
{
    if (_worksetWords == 0)
        _worksetWords = 1;
}

QueueOpStatus
WorkingSetQueue::tryPush(const QueueWord &word)
{
    const QueueOpStatus status = RingQueue::tryPush(word);
    if (status == QueueOpStatus::Ok) {
        if (++_pushesInWorkset >= _worksetWords) {
            _pushesInWorkset = 0;
            ++_counters.worksetSwitches;
            _counters.worksetEccOps += eccOpsPerWorksetSwitch;
        }
    }
    return status;
}

QueueOpStatus
WorkingSetQueue::tryPop(QueueWord &word)
{
    const QueueOpStatus status = RingQueue::tryPop(word);
    if (status == QueueOpStatus::Ok) {
        if (++_popsInWorkset >= _worksetWords) {
            _popsInWorkset = 0;
            ++_counters.worksetSwitches;
            _counters.worksetEccOps += eccOpsPerWorksetSwitch;
        }
    }
    return status;
}

} // namespace commguard
