#include "queue/ring_queue.hh"

namespace commguard
{

namespace
{

std::size_t
roundUpPow2(std::size_t x)
{
    std::size_t p = 2;
    while (p < x)
        p <<= 1;
    return p;
}

} // namespace

RingQueue::RingQueue(std::string name, std::size_t capacity,
                     RecyclePool<QueueWord> *recycle)
    : QueueBase(std::move(name)),
      _capacity(capacity < 1 ? 1 : capacity),
      _recycle(recycle),
      _buffer(recycle != nullptr
                  ? recycle->acquire(roundUpPow2(_capacity))
                  : std::vector<QueueWord>(roundUpPow2(_capacity))),
      _mask(static_cast<Word>(_buffer.size() - 1))
{
}

RingQueue::~RingQueue()
{
    if (_recycle != nullptr)
        _recycle->release(std::move(_buffer));
}

QueueOpStatus
RingQueue::tryPush(const QueueWord &word)
{
    if (size() >= _capacity) {
        ++_counters.pushBlocked;
        return QueueOpStatus::Blocked;
    }
    _buffer[_tail & _mask] = word;
    ++_tail;
    ++_counters.pushes;
    return QueueOpStatus::Ok;
}

QueueOpStatus
RingQueue::tryPop(QueueWord &word)
{
    if (size() == 0) {
        ++_counters.popBlocked;
        return QueueOpStatus::Blocked;
    }
    word = _buffer[_head & _mask];
    ++_head;
    ++_counters.pops;
    return QueueOpStatus::Ok;
}

} // namespace commguard
