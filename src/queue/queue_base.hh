/**
 * @file
 * Abstract interface for inter-core communication queues.
 *
 * Three implementations model the paper's three communication substrates
 * (Fig. 3):
 *  - SoftwareQueue: the StreamIt software queue whose head/tail pointer
 *    updates pass through the error-prone register file (Fig. 3b);
 *  - ReliableQueue: an error-protected queue with correct pointers but
 *    no alignment checking (Fig. 3c);
 *  - WorkingSetQueue: the CommGuard queue manager's storage with
 *    working-set sub-regions and ECC-protected shared pointers (§5.1).
 */

#ifndef COMMGUARD_QUEUE_QUEUE_BASE_HH
#define COMMGUARD_QUEUE_QUEUE_BASE_HH

#include <cstddef>
#include <string>

#include "common/rng.hh"
#include "queue/queue_counters.hh"
#include "queue/queue_word.hh"

namespace commguard
{

/** Outcome of a non-blocking queue attempt. */
enum class QueueOpStatus
{
    Ok,       //!< Operation completed.
    Blocked,  //!< Queue full (push) or empty (pop); retry later.
};

/**
 * FIFO of QueueWords with bounded capacity and blocking semantics.
 */
class QueueBase
{
  public:
    explicit QueueBase(std::string name) : _name(std::move(name)) {}
    virtual ~QueueBase() = default;

    QueueBase(const QueueBase &) = delete;
    QueueBase &operator=(const QueueBase &) = delete;

    /** Try to append a word; Blocked when the queue appears full. */
    virtual QueueOpStatus tryPush(const QueueWord &word) = 0;

    /** Try to remove the oldest word; Blocked when it appears empty. */
    virtual QueueOpStatus tryPop(QueueWord &word) = 0;

    /** Apparent number of queued words (may be garbage if corrupted). */
    virtual std::size_t size() const = 0;

    /** Maximum number of words the queue can hold. */
    virtual std::size_t capacity() const = 0;

    /**
     * Model one architectural error landing in this queue's management
     * state while a queue routine had it in registers (queue management
     * errors, paper §3 "QME"). Reliable queues ignore this.
     */
    virtual void corrupt(Rng &rng) { (void)rng; }

    /**
     * Extra committed instructions one push/pop costs on the issuing
     * core (software queues execute a routine; hardware queues are
     * single ISA operations).
     */
    virtual Count opCost() const { return 0; }

    const std::string &name() const { return _name; }

    /** Per-queue statistics (pushes, pops, corruptions, ...). */
    QueueCounters &counters() { return _counters; }
    const QueueCounters &counters() const { return _counters; }

  protected:
    std::string _name;
    QueueCounters _counters;
};

} // namespace commguard

#endif // COMMGUARD_QUEUE_QUEUE_BASE_HH
