#include "queue/software_queue.hh"

namespace commguard
{

void
SoftwareQueue::corrupt(Rng &rng)
{
    const Word bit = Word{1} << rng.below(32);
    // The queue routine holds three word-sized values in registers:
    // the head pointer, the tail pointer, and the item being moved.
    switch (rng.below(3)) {
      case 0:
        setHead(head() ^ bit);
        ++_counters.headCorruptions;
        break;
      case 1:
        setTail(tail() ^ bit);
        ++_counters.tailCorruptions;
        break;
      default:
        // Corrupt the most recently pushed slot (the in-flight item).
        slot(tail() - 1).value ^= bit;
        ++_counters.itemCorruptions;
        break;
    }
}

} // namespace commguard
