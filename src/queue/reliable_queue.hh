/**
 * @file
 * Fully-reliable hardware queue without alignment checking (Fig. 3c).
 *
 * Pointer state is never corrupted and push/pop are single ISA
 * operations (zero extra instruction cost). This substrate eliminates
 * queue management errors but, as the paper shows, still fails under
 * alignment errors: producers/consumers with perturbed control flow
 * transfer the wrong *number* of items and the streams shift
 * permanently.
 */

#ifndef COMMGUARD_QUEUE_RELIABLE_QUEUE_HH
#define COMMGUARD_QUEUE_RELIABLE_QUEUE_HH

#include "queue/ring_queue.hh"

namespace commguard
{

/**
 * Error-free queue with hardware push/pop.
 */
class ReliableQueue : public RingQueue
{
  public:
    ReliableQueue(std::string name, std::size_t capacity,
                  RecyclePool<QueueWord> *recycle = nullptr)
        : RingQueue(std::move(name), capacity, recycle)
    {}

    // corrupt() deliberately inherits the no-op default: this queue's
    // management state is protected hardware.
};

} // namespace commguard

#endif // COMMGUARD_QUEUE_RELIABLE_QUEUE_HH
