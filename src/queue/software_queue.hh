/**
 * @file
 * The unprotected StreamIt software queue (paper Fig. 3b baseline).
 *
 * In the paper, each push/pop executes a library routine whose head/tail
 * pointer values transit the error-prone register file; a register bit
 * flip during that window corrupts the queue management state (queue
 * management errors, §3). We model the same exposure: the queue reports
 * an opCost() of several virtual instructions, and when the machine's
 * error injector fires inside such a window it calls corrupt(), which
 * flips one bit of the head pointer, the tail pointer, or an in-flight
 * item — the three register-resident values of the routine.
 */

#ifndef COMMGUARD_QUEUE_SOFTWARE_QUEUE_HH
#define COMMGUARD_QUEUE_SOFTWARE_QUEUE_HH

#include "queue/ring_queue.hh"

namespace commguard
{

/**
 * Corruptible software queue.
 */
class SoftwareQueue : public RingQueue
{
  public:
    /** Instructions one push/pop routine costs (paper §2.3 notes a
     *  communication event as often as every 7 compute instructions;
     *  the StreamIt routine is on the order of a dozen operations). */
    static constexpr Count softwareOpCost = 12;

    SoftwareQueue(std::string name, std::size_t capacity,
                  RecyclePool<QueueWord> *recycle = nullptr)
        : RingQueue(std::move(name), capacity, recycle)
    {}

    Count opCost() const override { return softwareOpCost; }

    void corrupt(Rng &rng) override;
};

} // namespace commguard

#endif // COMMGUARD_QUEUE_SOFTWARE_QUEUE_HH
