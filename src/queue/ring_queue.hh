/**
 * @file
 * Shared ring-buffer machinery for the concrete queue implementations.
 *
 * The buffer index is always masked, so even corrupted head/tail
 * pointers can never produce out-of-bounds accesses — corruption
 * produces *wrong data* (stale or skipped slots, bogus occupancy),
 * never a simulator fault, mirroring how a PPU system fails.
 */

#ifndef COMMGUARD_QUEUE_RING_QUEUE_HH
#define COMMGUARD_QUEUE_RING_QUEUE_HH

#include <vector>

#include "common/logging.hh"
#include "common/recycle_pool.hh"
#include "queue/queue_base.hh"

namespace commguard
{

/**
 * Bounded FIFO over a power-of-two ring with absolute head/tail
 * counters (the StreamIt head/tail pointer pair, paper §2.2).
 */
class RingQueue : public QueueBase
{
  public:
    /**
     * @param capacity Enforced exactly as requested (minimum 1): a
     * queue built for 48 words blocks the 49th push. Backing storage
     * is rounded up to a power of two for mask-based indexing only —
     * a swept capacity axis must mean what it says, so the slack
     * slots are never made available.
     * @param recycle Optional buffer freelist the backing store is
     * acquired from and retired to (sweep hot path; must outlive the
     * queue). Recycled storage is re-zeroed, so behavior is bitwise
     * identical to a fresh allocation.
     */
    RingQueue(std::string name, std::size_t capacity,
              RecyclePool<QueueWord> *recycle = nullptr);

    ~RingQueue() override;

    QueueOpStatus tryPush(const QueueWord &word) override;
    QueueOpStatus tryPop(QueueWord &word) override;

    std::size_t
    size() const override
    {
        // Unsigned wraparound: garbage (possibly > capacity) when the
        // pointers have been corrupted, which is exactly the paper's
        // inconsistent full/empty view failure mode.
        return static_cast<Word>(_tail - _head);
    }

    /** The requested capacity, enforced exactly by tryPush(). */
    std::size_t capacity() const override { return _capacity; }

    /** Pow2 backing-store size (>= capacity); mask-indexed slots. */
    std::size_t bufferWords() const { return _buffer.size(); }

    /** Raw pointer access for corruption modeling and tests. */
    Word head() const { return _head; }
    Word tail() const { return _tail; }
    void setHead(Word head) { _head = head; }
    void setTail(Word tail) { _tail = tail; }

    /** Direct slot access for corruption modeling and tests. */
    QueueWord &slot(std::size_t index)
    {
        return _buffer[index & _mask];
    }

  private:
    std::size_t _capacity;  //!< Requested capacity, gated by tryPush.
    RecyclePool<QueueWord> *_recycle;  //!< Not owned; may be null.
    std::vector<QueueWord> _buffer;
    Word _mask;
    Word _head = 0;  //!< Absolute count of completed pops.
    Word _tail = 0;  //!< Absolute count of completed pushes.
};

} // namespace commguard

#endif // COMMGUARD_QUEUE_RING_QUEUE_HH
