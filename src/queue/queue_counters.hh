/**
 * @file
 * Hot-path statistics counters for queue implementations.
 *
 * Queue pushes/pops happen tens of millions of times per run, so these
 * are plain struct members; exportTo() publishes them into the named
 * StatGroup hierarchy for reporting.
 */

#ifndef COMMGUARD_QUEUE_QUEUE_COUNTERS_HH
#define COMMGUARD_QUEUE_QUEUE_COUNTERS_HH

#include "common/stats.hh"
#include "common/types.hh"

namespace commguard
{

/** Per-queue event counters. */
struct QueueCounters
{
    Count pushes = 0;
    Count pops = 0;
    Count pushBlocked = 0;
    Count popBlocked = 0;

    // SoftwareQueue corruption events (paper §3, QME).
    Count headCorruptions = 0;
    Count tailCorruptions = 0;
    Count itemCorruptions = 0;

    // WorkingSetQueue shared-pointer accounting (paper §5.1, Table 3).
    Count worksetSwitches = 0;
    Count worksetEccOps = 0;

    // I/O endpoint events.
    Count underflowPops = 0;
    Count headersCollected = 0;
    Count overflowDrops = 0;
    Count illegalPushes = 0;
    Count illegalPops = 0;

    /** Publish all counters into @p group. */
    void
    exportTo(StatGroup &group) const
    {
        group.set("pushes", pushes);
        group.set("pops", pops);
        group.set("pushBlocked", pushBlocked);
        group.set("popBlocked", popBlocked);
        group.set("headCorruptions", headCorruptions);
        group.set("tailCorruptions", tailCorruptions);
        group.set("itemCorruptions", itemCorruptions);
        group.set("worksetSwitches", worksetSwitches);
        group.set("worksetEccOps", worksetEccOps);
        group.set("underflowPops", underflowPops);
        group.set("headersCollected", headersCollected);
        group.set("overflowDrops", overflowDrops);
        group.set("illegalPushes", illegalPushes);
        group.set("illegalPops", illegalPops);
    }
};

} // namespace commguard

#endif // COMMGUARD_QUEUE_QUEUE_COUNTERS_HH
