/**
 * @file
 * Hot-path statistics counters for queue implementations.
 *
 * Queue pushes/pops happen tens of millions of times per run, so these
 * are plain embedded metrics::Counter members; linkTo() publishes them
 * into the per-run metrics registry and exportTo() into the named
 * StatGroup hierarchy for debug dumps.
 */

#ifndef COMMGUARD_QUEUE_QUEUE_COUNTERS_HH
#define COMMGUARD_QUEUE_QUEUE_COUNTERS_HH

#include "common/metrics.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace commguard
{

/** Per-queue event counters. */
struct QueueCounters
{
    using Counter = metrics::Counter;

    Counter pushes;
    Counter pops;
    Counter pushBlocked;
    Counter popBlocked;

    // SoftwareQueue corruption events (paper §3, QME).
    Counter headCorruptions;
    Counter tailCorruptions;
    Counter itemCorruptions;

    // WorkingSetQueue shared-pointer accounting (paper §5.1, Table 3).
    Counter worksetSwitches;
    Counter worksetEccOps;

    // I/O endpoint events.
    Counter underflowPops;
    Counter headersCollected;
    Counter overflowDrops;
    Counter illegalPushes;
    Counter illegalPops;

    /** Register every counter in @p registry under @p prefix. */
    void
    linkTo(metrics::Registry &registry,
           const std::string &prefix) const
    {
        registry.link(prefix + "/pushes", pushes);
        registry.link(prefix + "/pops", pops);
        registry.link(prefix + "/pushBlocked", pushBlocked);
        registry.link(prefix + "/popBlocked", popBlocked);
        registry.link(prefix + "/headCorruptions", headCorruptions);
        registry.link(prefix + "/tailCorruptions", tailCorruptions);
        registry.link(prefix + "/itemCorruptions", itemCorruptions);
        registry.link(prefix + "/worksetSwitches", worksetSwitches);
        registry.link(prefix + "/worksetEccOps", worksetEccOps);
        registry.link(prefix + "/underflowPops", underflowPops);
        registry.link(prefix + "/headersCollected", headersCollected);
        registry.link(prefix + "/overflowDrops", overflowDrops);
        registry.link(prefix + "/illegalPushes", illegalPushes);
        registry.link(prefix + "/illegalPops", illegalPops);
    }

    /** Publish all counters into @p group. */
    void
    exportTo(StatGroup &group) const
    {
        group.set("pushes", pushes);
        group.set("pops", pops);
        group.set("pushBlocked", pushBlocked);
        group.set("popBlocked", popBlocked);
        group.set("headCorruptions", headCorruptions);
        group.set("tailCorruptions", tailCorruptions);
        group.set("itemCorruptions", itemCorruptions);
        group.set("worksetSwitches", worksetSwitches);
        group.set("worksetEccOps", worksetEccOps);
        group.set("underflowPops", underflowPops);
        group.set("headersCollected", headersCollected);
        group.set("overflowDrops", overflowDrops);
        group.set("illegalPushes", illegalPushes);
        group.set("illegalPops", illegalPops);
    }
};

} // namespace commguard

#endif // COMMGUARD_QUEUE_QUEUE_COUNTERS_HH
