#include "streamit/loader.hh"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/logging.hh"
#include "queue/reliable_queue.hh"
#include "queue/software_queue.hh"
#include "queue/working_set_queue.hh"

namespace commguard::streamit
{

const char *
protectionModeName(ProtectionMode mode)
{
    switch (mode) {
      case ProtectionMode::PpuOnly: return "ppu-only";
      case ProtectionMode::ReliableQueue: return "reliable-queue";
      case ProtectionMode::CommGuard: return "commguard";
      default: return "???";
    }
}

namespace
{

/** Derive an independent per-core injector seed (paper §6). */
std::uint64_t
coreSeed(std::uint64_t base, int core)
{
    std::uint64_t x =
        base + 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(
                                           core + 1);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::unique_ptr<QueueBase>
makeEdgeQueue(ProtectionMode mode, const std::string &name,
              std::size_t capacity, RecyclePool<QueueWord> *recycle)
{
    switch (mode) {
      case ProtectionMode::PpuOnly:
        return std::make_unique<SoftwareQueue>(name, capacity, recycle);
      case ProtectionMode::ReliableQueue:
        return std::make_unique<ReliableQueue>(name, capacity, recycle);
      case ProtectionMode::CommGuard:
      default:
        return std::make_unique<WorkingSetQueue>(name, capacity, 8,
                                                 recycle);
    }
}

} // namespace

LoadedApp
loadGraph(const StreamGraph &graph, const std::vector<Word> &input,
          Count steady_iterations, const LoadOptions &options,
          LoaderScratch *scratch)
{
    const std::string structure_error = graph.validateStructure();
    if (!structure_error.empty())
        fatal("loadGraph: " + structure_error);

    const RepetitionVector reps = solveRepetitions(graph);
    if (!reps.ok)
        fatal("loadGraph: " + reps.error);

    LoadedApp app;
    app.frames = analyzeFrames(graph, reps);
    app.steadyIterations = steady_iterations;
    app.machine = std::make_unique<Multicore>(options.machine);
    Multicore &machine = *app.machine;
    RecyclePool<QueueWord> *queue_pool =
        scratch != nullptr ? &scratch->queueWords : nullptr;
    machine.setCoreMemoryPool(
        scratch != nullptr ? &scratch->coreMemory : nullptr);

    const int num_nodes = graph.numNodes();
    const bool guarded = options.mode == ProtectionMode::CommGuard;
    const Count frame_scale = options.frameScale ? options.frameScale : 1;

    // Per-node frame domains (SS5.4); uniform by default.
    if (!options.perNodeFrameScale.empty() &&
        options.perNodeFrameScale.size() !=
            static_cast<std::size_t>(num_nodes)) {
        fatal("loadGraph: perNodeFrameScale must have one entry per "
              "node");
    }
    auto node_scale = [&](int node) -> Count {
        if (options.perNodeFrameScale.empty())
            return frame_scale;
        const Count s = options.perNodeFrameScale[node];
        return s ? s : 1;
    };
    const Count source_scale = node_scale(graph.externalInput().node);

    // ------------------------------------------------------------------
    // Input device: pre-filled source stream, framed when guarded.
    // ------------------------------------------------------------------
    const Count items_per_inv = app.frames.inputItemsPerFrame;
    const Count needed = items_per_inv * steady_iterations;
    std::vector<Word> local_padded;
    std::vector<Word> &padded_input =
        scratch != nullptr ? scratch->paddedInput : local_padded;
    padded_input.assign(input.begin(), input.end());
    if (padded_input.size() != needed) {
        if (padded_input.size() < needed) {
            warn("loadGraph: input shorter than schedule needs; "
                 "zero-padding");
        }
        padded_input.resize(needed, 0);
    }

    std::vector<QueueWord> source_words =
        queue_pool != nullptr ? queue_pool->acquire(0)
                              : std::vector<QueueWord>();
    source_words.reserve(needed + steady_iterations + 1);
    std::size_t cursor = 0;
    for (Count inv = 0; inv < steady_iterations; ++inv) {
        if (guarded && options.guardSourceEdge &&
            inv % source_scale == 0) {
            const FrameId id =
                static_cast<FrameId>(inv / source_scale + 1);
            source_words.push_back(makeHeader(id));
        }
        for (Count i = 0; i < items_per_inv; ++i)
            source_words.push_back(makeItem(padded_input[cursor++]));
    }
    if (guarded && options.guardSourceEdge)
        source_words.push_back(makeHeader(endOfComputationId));

    auto source = std::make_unique<SourceQueue>(
        "source", std::move(source_words), queue_pool);
    app.source = source.get();
    machine.addQueue(std::move(source));

    std::unique_ptr<CollectorQueue> collector;
    if (guarded && options.frameAlignedOutput) {
        const Count out_scale =
            node_scale(graph.externalOutput().node);
        const Count frames =
            (steady_iterations + out_scale - 1) / out_scale;
        collector = std::make_unique<FrameAlignedCollector>(
            "collector",
            app.frames.outputItemsPerFrame * out_scale, frames);
    } else {
        collector = std::make_unique<CollectorQueue>("collector");
    }
    app.collector = collector.get();
    machine.addQueue(std::move(collector));

    // ------------------------------------------------------------------
    // Edge queues.
    // ------------------------------------------------------------------
    std::vector<QueueBase *> edge_queues;
    edge_queues.reserve(graph.edges().size());
    for (std::size_t e = 0; e < graph.edges().size(); ++e) {
        const Edge &edge = graph.edges()[e];
        std::ostringstream name;
        name << "edge_" << graph.filters()[edge.producer].name << "."
             << edge.outPort << "->"
             << graph.filters()[edge.consumer].name << "."
             << edge.inPort;
        const std::size_t capacity = std::max<std::size_t>(
            options.queueCapacityWords,
            2 * app.frames.edgeItemsPerFrame[e] + 64);
        edge_queues.push_back(&machine.addQueue(makeEdgeQueue(
            options.mode, name.str(), capacity, queue_pool)));
    }

    // ------------------------------------------------------------------
    // Per-node port tables.
    // ------------------------------------------------------------------
    std::vector<std::vector<QueueBase *>> ins(num_nodes);
    std::vector<std::vector<QueueBase *>> outs(num_nodes);
    for (int n = 0; n < num_nodes; ++n) {
        ins[n].assign(graph.filters()[n].popRates.size(), nullptr);
        outs[n].assign(graph.filters()[n].pushRates.size(), nullptr);
    }
    for (std::size_t e = 0; e < graph.edges().size(); ++e) {
        const Edge &edge = graph.edges()[e];
        outs[edge.producer][edge.outPort] = edge_queues[e];
        ins[edge.consumer][edge.inPort] = edge_queues[e];
    }
    ins[graph.externalInput().node][graph.externalInput().port] =
        app.source;
    outs[graph.externalOutput().node][graph.externalOutput().port] =
        app.collector;

    // ------------------------------------------------------------------
    // Cores, backends, runtimes.
    // ------------------------------------------------------------------
    Count estimated_total = 0;
    for (int n = 0; n < num_nodes; ++n) {
        const FilterSpec &spec = graph.filters()[n];
        Core &core = machine.addCore(spec.name);

        // Filter programs are pure functions of (graph, node): reuse
        // the assembled form across a batch of runs. The copy below is
        // required — queue-cost folding mutates the estimate, and the
        // op costs depend on the run's protection mode.
        isa::Program program;
        if (scratch != nullptr) {
            const auto key = std::make_pair(&graph, n);
            auto it = scratch->programs.find(key);
            if (it == scratch->programs.end()) {
                it = scratch->programs
                         .emplace(key,
                                  spec.buildProgram(static_cast<int>(
                                      reps.firings[n])))
                         .first;
            }
            program = it->second;
        } else {
            program = spec.buildProgram(
                static_cast<int>(reps.firings[n]));
        }

        // Software-queue routines charge opCost() virtual instructions
        // per queue op inside the scope (and they count against the
        // PPU watchdog budget), so fold the exact per-invocation queue
        // cost into the estimate the budget is derived from.
        if (program.estimatedInstsPerInvocation > 0) {
            Count queue_insts = 0;
            for (std::size_t p = 0; p < ins[n].size(); ++p)
                queue_insts += ins[n][p]->opCost() *
                               spec.popRates[p] * reps.firings[n];
            for (std::size_t p = 0; p < outs[n].size(); ++p)
                queue_insts += outs[n][p]->opCost() *
                               spec.pushRates[p] * reps.firings[n];
            program.estimatedInstsPerInvocation += queue_insts;
        }

        estimated_total +=
            program.estimatedInstsPerInvocation * steady_iterations;
        core.setProgram(std::move(program));

        ErrorInjector::Config injector;
        injector.enabled = options.injectErrors;
        injector.mtbe = options.mtbe;
        injector.seed = coreSeed(options.seed, n);
        injector.flipAllRegisters = options.flipAllRegisters;
        core.configureInjector(injector);

        std::unique_ptr<CommBackend> backend;
        if (guarded) {
            // Per-edge frame scales: an internal edge is guarded at
            // the coarser (lcm) of its endpoints' domains; external
            // edges use the attached node's domain.
            auto edge_scale = [&](QueueBase *queue,
                                  int self) -> Count {
                if (queue == app.source || queue == app.collector)
                    return node_scale(self);
                for (std::size_t e = 0; e < graph.edges().size();
                     ++e) {
                    if (edge_queues[e] != queue)
                        continue;
                    const Edge &edge = graph.edges()[e];
                    return std::lcm(node_scale(edge.producer),
                                    node_scale(edge.consumer));
                }
                return node_scale(self);
            };
            std::vector<Count> in_scales;
            for (QueueBase *queue : ins[n])
                in_scales.push_back(edge_scale(queue, n));
            std::vector<Count> out_scales;
            for (QueueBase *queue : outs[n])
                out_scales.push_back(edge_scale(queue, n));
            std::vector<bool> in_guarded;
            for (QueueBase *queue : ins[n]) {
                in_guarded.push_back(queue != app.source ||
                                     options.guardSourceEdge);
            }
            auto cg = std::make_unique<CommGuardBackend>(
                ins[n], outs[n], std::move(in_scales),
                std::move(out_scales), std::move(in_guarded));
            app.cgBackends.push_back(cg.get());
            backend = std::move(cg);
        } else {
            backend = std::make_unique<RawBackend>(ins[n], outs[n]);
        }
        CommBackend &bound = machine.addBackend(std::move(backend));
        machine.addRuntime(core, bound, steady_iterations);
    }

    // Safety net: abort runaway (corrupted) executions well past any
    // plausible completion point.
    machine.config().globalWatchdogInsts = std::max<Count>(
        200'000'000ull, estimated_total * 50);

    return app;
}

} // namespace commguard::streamit
