#include "streamit/loader.hh"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/logging.hh"

namespace commguard::streamit
{

namespace
{

/** Derive an independent per-core injector seed (paper §6). */
std::uint64_t
coreSeed(std::uint64_t base, int core)
{
    std::uint64_t x =
        base + 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(
                                           core + 1);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

LoadedApp
loadGraph(const StreamGraph &graph, const std::vector<Word> &input,
          Count steady_iterations, const LoadOptions &options,
          LoaderScratch *scratch)
{
    const std::string structure_error = graph.validateStructure();
    if (!structure_error.empty())
        fatal("loadGraph: " + structure_error);

    const RepetitionVector reps = solveRepetitions(graph);
    if (!reps.ok)
        fatal("loadGraph: " + reps.error);

    // Everything mode-dependent comes from the registry descriptor:
    // the edge-queue substrate, the backend factory, the source
    // framing, and the loader cost/capacity hooks.
    const protection::ModeDescriptor &desc =
        protection::ProtectionRegistry::instance().describe(
            options.mode);
    const int replicas = std::max(options.replicas, 2);

    LoadedApp app;
    app.frames = analyzeFrames(graph, reps);
    app.steadyIterations = steady_iterations;
    app.machine = std::make_unique<Multicore>(options.machine);
    Multicore &machine = *app.machine;
    RecyclePool<QueueWord> *queue_pool =
        scratch != nullptr ? &scratch->queueWords : nullptr;
    machine.setCoreMemoryPool(
        scratch != nullptr ? &scratch->coreMemory : nullptr);

    const int num_nodes = graph.numNodes();
    const Count frame_scale = options.frameScale ? options.frameScale : 1;

    // Per-node frame domains (SS5.4); uniform by default.
    if (!options.perNodeFrameScale.empty() &&
        options.perNodeFrameScale.size() !=
            static_cast<std::size_t>(num_nodes)) {
        fatal("loadGraph: perNodeFrameScale must have one entry per "
              "node");
    }
    auto node_scale = [&](int node) -> Count {
        if (options.perNodeFrameScale.empty())
            return frame_scale;
        const Count s = options.perNodeFrameScale[node];
        return s ? s : 1;
    };

    // Heterogeneous error rates (docs/SERVICE.md); uniform by default.
    if (!options.perCoreMtbe.empty() &&
        options.perCoreMtbe.size() !=
            static_cast<std::size_t>(num_nodes)) {
        fatal("loadGraph: perCoreMtbe must have one entry per node");
    }
    auto node_mtbe = [&](int node) -> double {
        if (options.perCoreMtbe.empty())
            return options.mtbe;
        const double m = options.perCoreMtbe[node];
        if (!(m > 0.0))
            fatal("loadGraph: perCoreMtbe entries must be positive");
        return m;
    };
    const Count source_scale = node_scale(graph.externalInput().node);

    // The source edge is framed only when it is guarded at all.
    const protection::SourceFraming framing =
        options.guardSourceEdge ? desc.sourceFraming
                                : protection::SourceFraming::Plain;

    // ------------------------------------------------------------------
    // Input device: pre-filled source stream, framed per the mode.
    // ------------------------------------------------------------------
    const Count items_per_inv = app.frames.inputItemsPerFrame;
    const Count needed = items_per_inv * steady_iterations;
    std::vector<QueueWord> source_words =
        queue_pool != nullptr ? queue_pool->acquire(0)
                              : std::vector<QueueWord>();
    if (!options.streamingSource) {
        std::vector<Word> local_padded;
        std::vector<Word> &padded_input =
            scratch != nullptr ? scratch->paddedInput : local_padded;
        padded_input.assign(input.begin(), input.end());
        if (padded_input.size() != needed) {
            if (padded_input.size() < needed) {
                warn("loadGraph: input shorter than schedule needs; "
                     "zero-padding");
            }
            padded_input.resize(needed, 0);
        }

        source_words.reserve(needed + 2 * steady_iterations + 2);
        const Count source_block = items_per_inv * source_scale;
        Word source_s = 0;
        Word source_w = 0;
        Count source_count = 0;
        std::size_t cursor = 0;
        for (Count inv = 0; inv < steady_iterations; ++inv) {
            if (framing == protection::SourceFraming::Headers &&
                inv % source_scale == 0) {
                const FrameId id =
                    static_cast<FrameId>(inv / source_scale + 1);
                source_words.push_back(makeHeader(id));
            }
            for (Count i = 0; i < items_per_inv; ++i) {
                const Word value = padded_input[cursor++];
                source_words.push_back(makeItem(value));
                if (framing == protection::SourceFraming::Checksums) {
                    source_s += value;
                    source_w +=
                        static_cast<Word>(source_count + 1) * value;
                    ++source_count;
                    if (source_count == source_block) {
                        source_words.push_back(makeHeader(
                            static_cast<FrameId>(source_s)));
                        source_words.push_back(makeHeader(
                            static_cast<FrameId>(source_w)));
                        source_s = 0;
                        source_w = 0;
                        source_count = 0;
                    }
                }
            }
        }
        if (framing == protection::SourceFraming::Headers) {
            source_words.push_back(makeHeader(endOfComputationId));
        } else if (framing == protection::SourceFraming::Checksums &&
                   source_count > 0) {
            source_words.push_back(
                makeHeader(static_cast<FrameId>(source_s)));
            source_words.push_back(
                makeHeader(static_cast<FrameId>(source_w)));
        }
    }

    auto source = std::make_unique<SourceQueue>(
        "source", std::move(source_words), queue_pool);
    source->setStreaming(options.streamingSource);
    app.source = source.get();
    machine.addQueue(std::move(source));

    std::unique_ptr<CollectorQueue> collector;
    if (framing == protection::SourceFraming::Headers &&
        options.frameAlignedOutput) {
        const Count out_scale =
            node_scale(graph.externalOutput().node);
        const Count frames =
            (steady_iterations + out_scale - 1) / out_scale;
        collector = std::make_unique<FrameAlignedCollector>(
            "collector",
            app.frames.outputItemsPerFrame * out_scale, frames);
    } else {
        collector = std::make_unique<CollectorQueue>("collector");
    }
    app.collector = collector.get();
    machine.addQueue(std::move(collector));

    // ------------------------------------------------------------------
    // Edge queues.
    // ------------------------------------------------------------------
    // Per-edge frame/block scale: an internal edge is guarded at the
    // coarser (lcm) of its endpoints' domains (§5.4).
    auto edge_scale_of = [&](std::size_t e) -> Count {
        const Edge &edge = graph.edges()[e];
        return std::lcm(node_scale(edge.producer),
                        node_scale(edge.consumer));
    };

    std::vector<QueueBase *> edge_queues;
    edge_queues.reserve(graph.edges().size());
    for (std::size_t e = 0; e < graph.edges().size(); ++e) {
        const Edge &edge = graph.edges()[e];
        std::ostringstream name;
        name << "edge_" << graph.filters()[edge.producer].name << "."
             << edge.outPort << "->"
             << graph.filters()[edge.consumer].name << "."
             << edge.inPort;
        std::size_t capacity = std::max<std::size_t>(
            options.queueCapacityWords,
            2 * app.frames.edgeItemsPerFrame[e] + 64);
        if (desc.consumerBuffersBlocks) {
            // The consumer holds back a whole protection block (plus
            // its checksum words) before serving it; the queue must
            // fit two such blocks or producer and consumer ratchet
            // into permanent timeout recovery.
            const std::size_t block =
                app.frames.edgeItemsPerFrame[e] * edge_scale_of(e);
            capacity =
                std::max<std::size_t>(capacity, 2 * (block + 2) + 64);
        }
        edge_queues.push_back(&machine.addQueue(
            desc.makeEdgeQueue(name.str(), capacity, queue_pool)));
    }

    // ------------------------------------------------------------------
    // Per-node port tables.
    // ------------------------------------------------------------------
    std::vector<std::vector<QueueBase *>> ins(num_nodes);
    std::vector<std::vector<QueueBase *>> outs(num_nodes);
    for (int n = 0; n < num_nodes; ++n) {
        ins[n].assign(graph.filters()[n].popRates.size(), nullptr);
        outs[n].assign(graph.filters()[n].pushRates.size(), nullptr);
    }
    for (std::size_t e = 0; e < graph.edges().size(); ++e) {
        const Edge &edge = graph.edges()[e];
        outs[edge.producer][edge.outPort] = edge_queues[e];
        ins[edge.consumer][edge.inPort] = edge_queues[e];
    }
    ins[graph.externalInput().node][graph.externalInput().port] =
        app.source;
    outs[graph.externalOutput().node][graph.externalOutput().port] =
        app.collector;

    // Per-port metadata for the backend spec: the owning edge's frame
    // scale and its per-(scaled-)frame item count.
    auto port_scale = [&](QueueBase *queue, int self) -> Count {
        for (std::size_t e = 0; e < graph.edges().size(); ++e)
            if (edge_queues[e] == queue)
                return edge_scale_of(e);
        return node_scale(self);
    };
    auto port_frame_items = [&](QueueBase *queue) -> Count {
        if (queue == app.source)
            return app.frames.inputItemsPerFrame;
        if (queue == app.collector)
            return app.frames.outputItemsPerFrame;
        for (std::size_t e = 0; e < graph.edges().size(); ++e)
            if (edge_queues[e] == queue)
                return app.frames.edgeItemsPerFrame[e];
        return 0;
    };

    // ------------------------------------------------------------------
    // Cores, backends, runtimes.
    // ------------------------------------------------------------------
    Count estimated_total = 0;
    for (int n = 0; n < num_nodes; ++n) {
        const FilterSpec &spec = graph.filters()[n];
        Core &core = machine.addCore(spec.name);

        // Filter programs are pure functions of (graph, node): reuse
        // the assembled form across a batch of runs. The copy below is
        // required — queue-cost folding mutates the estimate, and the
        // op costs depend on the run's protection mode.
        isa::Program program;
        if (scratch != nullptr) {
            const auto key = std::make_pair(&graph, n);
            auto it = scratch->programs.find(key);
            if (it == scratch->programs.end()) {
                it = scratch->programs
                         .emplace(key,
                                  spec.buildProgram(static_cast<int>(
                                      reps.firings[n])))
                         .first;
            }
            program = it->second;
        } else {
            program = spec.buildProgram(
                static_cast<int>(reps.firings[n]));
        }

        // Software-queue routines charge opCost() virtual instructions
        // per queue op inside the scope (and they count against the
        // PPU watchdog budget), so fold the exact per-invocation queue
        // cost into the estimate the budget is derived from. The same
        // cost has to reach the *nested* scope budgets: each kernel's
        // declared scope wraps one firing, whose pops/pushes charge
        // the same op cost against the nested deadline — without the
        // fold, error-free fft/jpeg/mp3 runs on software queues
        // collapse into watchdog-timeout thrash.
        if (program.estimatedInstsPerInvocation > 0) {
            Count per_firing_insts = 0;
            for (std::size_t p = 0; p < ins[n].size(); ++p)
                per_firing_insts +=
                    ins[n][p]->opCost() * spec.popRates[p];
            for (std::size_t p = 0; p < outs[n].size(); ++p)
                per_firing_insts +=
                    outs[n][p]->opCost() * spec.pushRates[p];
            program.estimatedInstsPerInvocation +=
                per_firing_insts * reps.firings[n];
            for (isa::ScopeInfo &scope : program.scopes) {
                if (scope.estimatedInsts > 0)
                    scope.estimatedInsts += per_firing_insts;
            }
        }

        estimated_total +=
            program.estimatedInstsPerInvocation * steady_iterations;
        core.setProgram(std::move(program));

        ErrorInjector::Config injector;
        injector.enabled = options.injectErrors;
        injector.mtbe = node_mtbe(n);
        injector.seed = coreSeed(options.seed, n);
        injector.flipAllRegisters = options.flipAllRegisters;
        core.configureInjector(injector);

        protection::BackendSpec backend_spec;
        backend_spec.ins = ins[n];
        backend_spec.outs = outs[n];
        backend_spec.replicas = replicas;
        for (QueueBase *queue : ins[n]) {
            const Count scale = port_scale(queue, n);
            backend_spec.inScales.push_back(scale);
            backend_spec.inGuarded.push_back(
                queue != app.source || options.guardSourceEdge);
            backend_spec.inBlockItems.push_back(
                port_frame_items(queue) * scale);
            backend_spec.inTotalItems.push_back(
                port_frame_items(queue) * steady_iterations);
        }
        for (QueueBase *queue : outs[n]) {
            const Count scale = port_scale(queue, n);
            backend_spec.outScales.push_back(scale);
            backend_spec.outBlockItems.push_back(
                port_frame_items(queue) * scale);
            backend_spec.outTotalItems.push_back(
                port_frame_items(queue) * steady_iterations);
        }

        std::unique_ptr<CommBackend> backend =
            desc.makeBackend(backend_spec);
        if (auto *cg = dynamic_cast<CommGuardBackend *>(backend.get()))
            app.cgBackends.push_back(cg);
        CommBackend &bound = machine.addBackend(std::move(backend));
        machine.addRuntime(core, bound, steady_iterations);
    }

    if (desc.costScalesWithReplicas)
        estimated_total *= static_cast<Count>(replicas);

    // Safety net: abort runaway (corrupted) executions well past any
    // plausible completion point.
    machine.config().globalWatchdogInsts = std::max<Count>(
        200'000'000ull, estimated_total * 50);

    return app;
}

} // namespace commguard::streamit
