/**
 * @file
 * Stream computation graph: filters connected by producer-consumer
 * edges, with one external input and one external output (the reliable
 * I/O devices).
 *
 * Pipelines and split-joins (paper Fig. 1) are built by connecting
 * multi-port filters; there are no separate splitter/joiner node kinds —
 * a splitter is a filter with several output ports, a joiner one with
 * several input ports, matching how the StreamIt cluster backend fuses
 * them into threads.
 */

#ifndef COMMGUARD_STREAMIT_GRAPH_HH
#define COMMGUARD_STREAMIT_GRAPH_HH

#include <string>
#include <vector>

#include "streamit/filter.hh"

namespace commguard::streamit
{

/** Index of a filter within its graph. */
using NodeId = int;

/** A producer-consumer connection. */
struct Edge
{
    NodeId producer;
    int outPort;
    NodeId consumer;
    int inPort;
};

/** Attachment point of an external I/O device. */
struct ExternalPort
{
    NodeId node = -1;
    int port = -1;
    bool valid() const { return node >= 0; }
};

/**
 * The application graph.
 */
class StreamGraph
{
  public:
    /** Add a filter; returns its node ID. */
    NodeId
    addFilter(FilterSpec spec)
    {
        _filters.push_back(std::move(spec));
        return static_cast<NodeId>(_filters.size() - 1);
    }

    /** Connect producer output port to consumer input port. */
    void
    connect(NodeId producer, int out_port, NodeId consumer, int in_port)
    {
        _edges.push_back(Edge{producer, out_port, consumer, in_port});
    }

    /** Declare where the input stream enters the graph. */
    void
    setExternalInput(NodeId node, int in_port)
    {
        _input = ExternalPort{node, in_port};
    }

    /** Declare where the output stream leaves the graph. */
    void
    setExternalOutput(NodeId node, int out_port)
    {
        _output = ExternalPort{node, out_port};
    }

    const std::vector<FilterSpec> &filters() const { return _filters; }
    const std::vector<Edge> &edges() const { return _edges; }
    const ExternalPort &externalInput() const { return _input; }
    const ExternalPort &externalOutput() const { return _output; }

    int numNodes() const { return static_cast<int>(_filters.size()); }

    /**
     * Check structural sanity: every declared port connected exactly
     * once (edges plus external attachments), rates positive, external
     * ports declared. Returns an empty string when valid, else a
     * diagnostic.
     */
    std::string validateStructure() const;

  private:
    std::vector<FilterSpec> _filters;
    std::vector<Edge> _edges;
    ExternalPort _input;
    ExternalPort _output;
};

} // namespace commguard::streamit

#endif // COMMGUARD_STREAMIT_GRAPH_HH
