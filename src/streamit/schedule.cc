#include "streamit/schedule.hh"

#include <numeric>
#include <queue>

namespace commguard::streamit
{

namespace
{

/** Exact rational with small helpers; components kept reduced. */
struct Rational
{
    long long num = 0;
    long long den = 1;

    void
    reduce()
    {
        const long long g = std::gcd(num < 0 ? -num : num, den);
        if (g > 1) {
            num /= g;
            den /= g;
        }
    }

    static Rational
    make(long long num, long long den)
    {
        Rational r{num, den};
        r.reduce();
        return r;
    }

    Rational
    times(long long mul_num, long long mul_den) const
    {
        // Reduce eagerly to keep the products small.
        Rational a = make(num, mul_den);
        Rational b = make(mul_num, den);
        return make(a.num * b.num, a.den * b.den);
    }

    bool
    equals(const Rational &other) const
    {
        return num == other.num && den == other.den;
    }
};

} // namespace

RepetitionVector
solveRepetitions(const StreamGraph &graph)
{
    RepetitionVector result;
    const int n = graph.numNodes();
    if (n == 0) {
        result.error = "empty graph";
        return result;
    }

    // Adjacency over edges (both directions).
    struct Link
    {
        int other;
        long long my_rate;     //!< Items I transfer per firing.
        long long other_rate;  //!< Items the other side transfers.
    };
    std::vector<std::vector<Link>> adj(n);
    for (const Edge &edge : graph.edges()) {
        const long long push =
            graph.filters()[edge.producer].pushRates[edge.outPort];
        const long long pop =
            graph.filters()[edge.consumer].popRates[edge.inPort];
        adj[edge.producer].push_back(Link{edge.consumer, push, pop});
        adj[edge.consumer].push_back(Link{edge.producer, pop, push});
    }

    // Propagate rationals from node 0 (BFS).
    std::vector<Rational> rate(n);
    std::vector<bool> seen(n, false);
    std::queue<int> work;
    rate[0] = Rational{1, 1};
    seen[0] = true;
    work.push(0);
    while (!work.empty()) {
        const int node = work.front();
        work.pop();
        for (const Link &link : adj[node]) {
            // rep[me]*my_rate = rep[other]*other_rate.
            const Rational implied =
                rate[node].times(link.my_rate, link.other_rate);
            if (!seen[link.other]) {
                rate[link.other] = implied;
                seen[link.other] = true;
                work.push(link.other);
            } else if (!rate[link.other].equals(implied)) {
                result.error = "inconsistent rates between " +
                               graph.filters()[node].name + " and " +
                               graph.filters()[link.other].name;
                return result;
            }
        }
    }

    for (int i = 0; i < n; ++i) {
        if (!seen[i]) {
            result.error =
                "graph is disconnected at " + graph.filters()[i].name;
            return result;
        }
    }

    // Scale to the smallest integer vector.
    long long lcm_den = 1;
    for (const Rational &r : rate)
        lcm_den = std::lcm(lcm_den, r.den);
    std::vector<long long> firings(n);
    long long gcd_all = 0;
    for (int i = 0; i < n; ++i) {
        firings[i] = rate[i].num * (lcm_den / rate[i].den);
        gcd_all = std::gcd(gcd_all, firings[i]);
    }
    if (gcd_all == 0)
        gcd_all = 1;

    result.firings.resize(n);
    for (int i = 0; i < n; ++i) {
        const long long f = firings[i] / gcd_all;
        if (f <= 0) {
            result.error = "non-positive repetition for " +
                           graph.filters()[i].name;
            return result;
        }
        result.firings[i] = static_cast<Count>(f);
    }
    result.ok = true;
    return result;
}

FrameAnalysis
analyzeFrames(const StreamGraph &graph, const RepetitionVector &reps)
{
    FrameAnalysis analysis;
    analysis.firingsPerFrame = reps.firings;

    analysis.edgeItemsPerFrame.reserve(graph.edges().size());
    for (const Edge &edge : graph.edges()) {
        const Count push = static_cast<Count>(
            graph.filters()[edge.producer].pushRates[edge.outPort]);
        analysis.edgeItemsPerFrame.push_back(
            reps.firings[edge.producer] * push);
    }

    const ExternalPort &in = graph.externalInput();
    if (in.valid()) {
        const Count pop = static_cast<Count>(
            graph.filters()[in.node].popRates[in.port]);
        analysis.inputItemsPerFrame = reps.firings[in.node] * pop;
    }
    const ExternalPort &out = graph.externalOutput();
    if (out.valid()) {
        const Count push = static_cast<Count>(
            graph.filters()[out.node].pushRates[out.port]);
        analysis.outputItemsPerFrame = reps.firings[out.node] * push;
    }
    return analysis;
}

} // namespace commguard::streamit
