/**
 * @file
 * Graph loader: instantiates a stream graph onto a simulated multicore
 * under a chosen protection configuration (paper Fig. 3).
 *
 * One filter maps to one core (the paper's cluster backend pins one
 * thread per processor). Each edge becomes a queue whose implementation
 * is chosen by the protection mode's registry descriptor; the external
 * input becomes a reliable pre-filled SourceQueue (framed with headers
 * or checksums when the mode's consumers expect them — the reliable
 * input device acts as a framing producer) and the external output
 * becomes a CollectorQueue.
 */

#ifndef COMMGUARD_STREAMIT_LOADER_HH
#define COMMGUARD_STREAMIT_LOADER_HH

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/recycle_pool.hh"
#include "machine/backends.hh"
#include "machine/multicore.hh"
#include "queue/io_queue.hh"
#include "sim/protection.hh"
#include "streamit/schedule.hh"

namespace commguard::streamit
{

/**
 * Deprecated aliases (one PR): ProtectionMode now lives in
 * sim/protection.hh and is minted by the ProtectionRegistry. Existing
 * `streamit::ProtectionMode::CommGuard` spellings keep compiling.
 */
using ProtectionMode = protection::ProtectionMode;
using protection::protectionModeName;

/** Loader options. */
struct LoadOptions
{
    ProtectionMode mode = ProtectionMode::CommGuard;

    /** False models fully error-free cores (Fig. 3a / overhead runs). */
    bool injectErrors = true;

    /** Per-core mean instructions between register-file bit flips. */
    double mtbe = 1e6;

    /**
     * Heterogeneous error rates (docs/SERVICE.md): one MTBE per node
     * in graph node order. Empty means uniform (mtbe). When set, the
     * size must equal the node count; every entry must be positive.
     */
    std::vector<double> perCoreMtbe;

    /** Base RNG seed; per-core injector seeds derive from it. */
    std::uint64_t seed = 1;

    /** Ablation: flip all 31 registers instead of the live set. */
    bool flipAllRegisters = false;

    /** Frame-size knob (§5.4): steady iterations per CommGuard frame. */
    Count frameScale = 1;

    /**
     * Varying frame definitions across the application (§5.4): one
     * frame scale per node. Empty means uniform (frameScale). Each
     * edge is guarded at the coarser granularity of its two endpoint
     * domains (their least common multiple), implemented with a
     * redundant active-fc counter per frame domain.
     */
    std::vector<Count> perNodeFrameScale;

    /**
     * Guard the external input edge (frame headers or checksums,
     * depending on the mode's source framing): the reliable input
     * device acts as a framing producer, letting the first filter's
     * protection repair its own input reads. Disable to quantify that
     * modeling decision (`bench/ablation_source_guard`).
     */
    bool guardSourceEdge = true;

    /**
     * Use a frame-aligned output device (CommGuard mode only): the
     * collector places each frame's items at the offset named by its
     * header, so sink-side miscounts corrupt one frame's record
     * instead of shifting the rest of the output stream.
     */
    bool frameAlignedOutput = false;

    /** Executions per firing for replicating modes (>= 2). */
    int replicas = 2;

    /** Minimum queue capacity in words. */
    std::size_t queueCapacityWords = 1u << 12;

    /**
     * Service mode (docs/SERVICE.md): leave the external source empty
     * at load time; the service driver appends framed arrivals while
     * the machine runs. Totals (steady iterations, end-of-computation
     * framing expectations) are still sized from steady_iterations.
     * Driver-internal — not part of the run descriptor.
     */
    bool streamingSource = false;

    MachineConfig machine;
};

/** A graph instantiated on a machine, ready to run. */
struct LoadedApp
{
    std::unique_ptr<Multicore> machine;
    SourceQueue *source = nullptr;
    CollectorQueue *collector = nullptr;

    /** Per-core CommGuard backends (empty unless mode == CommGuard). */
    std::vector<CommGuardBackend *> cgBackends;

    FrameAnalysis frames;
    Count steadyIterations = 0;

    /** Run to completion and return the collected output stream. */
    MachineRunResult run() { return machine->run(); }

    /** Output items recorded by the collector. */
    const std::vector<Word> &output() const
    {
        return collector->items();
    }
};

/**
 * Reusable per-worker loader state (sweep hot path).
 *
 * A sweep loads the same handful of graphs thousands of times; without
 * reuse every load allocates fresh core-local memories (512 KiB per
 * core), queue rings, and the framed source stream — large enough that
 * malloc serves them with mmap, and the resulting mmap/munmap churn
 * serializes parallel workers on the kernel's address-space lock. A
 * LoaderScratch owns freelists those buffers are drawn from and retired
 * to, plus caches of pure loader intermediates.
 *
 * NOT thread-safe: one LoaderScratch per worker thread.
 *
 * Determinism: recycled buffers are re-zeroed on acquisition
 * (RecyclePool contract) and cached programs are copied pristine before
 * any per-load mutation, so a load with a scratch is bit-identical to a
 * load without one.
 */
struct LoaderScratch
{
    /** Freelist for core-local memories (the dominant allocation). */
    RecyclePool<Word> coreMemory;

    /** Freelist for edge rings and the framed source stream. */
    RecyclePool<QueueWord> queueWords;

    /** Reused zero-padding staging buffer for the input stream. */
    std::vector<Word> paddedInput;

    /**
     * Pristine per-(graph, node) programs, assembled once and copied
     * per load (loadGraph folds mode-dependent queue op costs into the
     * copy, never the cached original). Keyed by graph address: valid
     * only while the keyed graphs are alive, so call beginBatch() at
     * the start of each batch of runs to drop entries whose graph
     * address could be reused by a newer graph.
     */
    std::map<std::pair<const StreamGraph *, int>, isa::Program> programs;

    /** Invalidate graph-address-keyed caches (call once per batch). */
    void beginBatch() { programs.clear(); }
};

/**
 * Instantiate @p graph for @p steady_iterations steady-state
 * iterations over the given input stream.
 *
 * The input must contain steady_iterations * inputItemsPerFrame words;
 * shorter inputs are zero-padded with a warning.
 *
 * @param scratch Optional reusable loader state; must outlive the
 * returned app (its machine retires buffers back into the scratch on
 * destruction). Passing one does not change the loaded app's behavior.
 */
LoadedApp loadGraph(const StreamGraph &graph,
                    const std::vector<Word> &input,
                    Count steady_iterations, const LoadOptions &options,
                    LoaderScratch *scratch = nullptr);

} // namespace commguard::streamit

#endif // COMMGUARD_STREAMIT_LOADER_HH
