#include "streamit/graph.hh"

#include <sstream>

namespace commguard::streamit
{

std::string
StreamGraph::validateStructure() const
{
    std::ostringstream os;

    if (_filters.empty())
        return "graph has no filters";
    if (!_input.valid())
        return "graph has no external input";
    if (!_output.valid())
        return "graph has no external output";

    // Count connections per port.
    std::vector<std::vector<int>> in_uses(_filters.size());
    std::vector<std::vector<int>> out_uses(_filters.size());
    for (std::size_t n = 0; n < _filters.size(); ++n) {
        in_uses[n].assign(_filters[n].popRates.size(), 0);
        out_uses[n].assign(_filters[n].pushRates.size(), 0);
        for (int rate : _filters[n].popRates) {
            if (rate <= 0) {
                os << _filters[n].name << ": non-positive pop rate";
                return os.str();
            }
        }
        for (int rate : _filters[n].pushRates) {
            if (rate <= 0) {
                os << _filters[n].name << ": non-positive push rate";
                return os.str();
            }
        }
        if (!_filters[n].buildProgram) {
            os << _filters[n].name << ": missing program builder";
            return os.str();
        }
    }

    auto check_node = [&](NodeId node, const char *what) {
        if (node < 0 || node >= numNodes()) {
            os << what << " references invalid node " << node;
            return false;
        }
        return true;
    };

    for (const Edge &edge : _edges) {
        if (!check_node(edge.producer, "edge") ||
            !check_node(edge.consumer, "edge"))
            return os.str();
        if (edge.outPort < 0 ||
            edge.outPort >=
                static_cast<int>(out_uses[edge.producer].size())) {
            os << _filters[edge.producer].name
               << ": edge uses undeclared output port " << edge.outPort;
            return os.str();
        }
        if (edge.inPort < 0 ||
            edge.inPort >=
                static_cast<int>(in_uses[edge.consumer].size())) {
            os << _filters[edge.consumer].name
               << ": edge uses undeclared input port " << edge.inPort;
            return os.str();
        }
        ++out_uses[edge.producer][edge.outPort];
        ++in_uses[edge.consumer][edge.inPort];
    }

    if (!check_node(_input.node, "external input"))
        return os.str();
    if (!check_node(_output.node, "external output"))
        return os.str();
    if (_input.port < 0 ||
        _input.port >= static_cast<int>(in_uses[_input.node].size()))
        return "external input attached to undeclared port";
    if (_output.port < 0 ||
        _output.port >= static_cast<int>(out_uses[_output.node].size()))
        return "external output attached to undeclared port";
    ++in_uses[_input.node][_input.port];
    ++out_uses[_output.node][_output.port];

    for (std::size_t n = 0; n < _filters.size(); ++n) {
        for (std::size_t p = 0; p < in_uses[n].size(); ++p) {
            if (in_uses[n][p] != 1) {
                os << _filters[n].name << ": input port " << p
                   << " has " << in_uses[n][p]
                   << " connections (want 1)";
                return os.str();
            }
        }
        for (std::size_t p = 0; p < out_uses[n].size(); ++p) {
            if (out_uses[n][p] != 1) {
                os << _filters[n].name << ": output port " << p
                   << " has " << out_uses[n][p]
                   << " connections (want 1)";
                return os.str();
            }
        }
    }

    return "";
}

} // namespace commguard::streamit
