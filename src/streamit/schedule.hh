/**
 * @file
 * Steady-state scheduling: the repetition vector and frame analysis.
 *
 * Solving the synchronous-dataflow balance equations gives, for each
 * filter, the number of firings per steady-state iteration such that
 * every edge transfers a consistent number of items. The paper's frame
 * analysis (§2.2, Fig. 2) builds exactly on this: one steady-state
 * iteration is the natural application-wide frame — a group of firings
 * on each thread linked to a group of items on each edge ("15360 items
 * correspond to exact multiples of firings in both filters").
 */

#ifndef COMMGUARD_STREAMIT_SCHEDULE_HH
#define COMMGUARD_STREAMIT_SCHEDULE_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "streamit/graph.hh"

namespace commguard::streamit
{

/** Result of the balance-equation solve. */
struct RepetitionVector
{
    bool ok = false;
    std::string error;

    /** Firings per steady-state iteration, indexed by node. */
    std::vector<Count> firings;
};

/**
 * Solve the balance equations rep[p]*push = rep[c]*pop over all edges.
 * Fails on inconsistent rates or a disconnected graph.
 */
RepetitionVector solveRepetitions(const StreamGraph &graph);

/** Per-frame item/firing linkage (paper Fig. 2). */
struct FrameAnalysis
{
    /** Firings per frame computation, indexed by node (= repetition
     *  vector: one steady-state iteration per frame computation). */
    std::vector<Count> firingsPerFrame;

    /** Items per frame on each internal edge, indexed like edges(). */
    std::vector<Count> edgeItemsPerFrame;

    /** Items consumed from the external input per frame computation. */
    Count inputItemsPerFrame = 0;

    /** Items pushed to the external output per frame computation. */
    Count outputItemsPerFrame = 0;
};

/** Derive the frame linkage from a solved repetition vector. */
FrameAnalysis analyzeFrames(const StreamGraph &graph,
                            const RepetitionVector &reps);

} // namespace commguard::streamit

#endif // COMMGUARD_STREAMIT_SCHEDULE_HH
