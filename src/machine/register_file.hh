/**
 * @file
 * Architectural register file of a simulated core.
 *
 * Thirty-two 32-bit registers; R0 is hardwired to zero (reads as zero,
 * ignores writes, and is never targeted by the error injector — a
 * hardwired zero has no storage to flip).
 */

#ifndef COMMGUARD_MACHINE_REGISTER_FILE_HH
#define COMMGUARD_MACHINE_REGISTER_FILE_HH

#include <array>

#include "common/types.hh"
#include "isa/inst.hh"

namespace commguard
{

/**
 * The error-prone architectural register file.
 */
class RegisterFile
{
  public:
    /** Read a register; R0 reads as zero. */
    Word
    read(isa::Reg reg) const
    {
        return _regs[reg];
    }

    /** Write a register; writes to R0 are dropped. */
    void
    write(isa::Reg reg, Word value)
    {
        if (reg != 0)
            _regs[reg] = value;
    }

    /** Flip one bit of a register (error injection). No effect on R0. */
    void
    flipBit(isa::Reg reg, int bit)
    {
        if (reg != 0)
            _regs[reg] ^= Word{1} << bit;
    }

    /** Zero every register (invocation start). */
    void
    clear()
    {
        _regs.fill(0);
    }

  private:
    std::array<Word, isa::numRegs> _regs{};
};

} // namespace commguard

#endif // COMMGUARD_MACHINE_REGISTER_FILE_HH
