#include "machine/multicore.hh"

#include "common/logging.hh"

namespace commguard
{

void
Multicore::enableEventTrace()
{
    if (_eventTrace != nullptr)
        return;
    _eventTrace = std::make_shared<trace::EventTrace>(
        _config.traceCapacityPerTrack);
    _machineTrack = &_eventTrace->addTrack("machine");
    // Retro-wire components added before tracing was enabled.
    for (const auto &queue : _queues)
        _eventTrace->registerQueue(queue.get(), queue->name());
    for (const auto &core : _cores) {
        _tracers.push_back(std::make_unique<EventTracer>(
            *_eventTrace, _eventTrace->addTrack(core->name())));
        core->addTraceSink(_tracers.back().get());
    }
}

void
Multicore::enableTelemetry()
{
    if (_telemetry != nullptr)
        return;
    if (_config.telemetrySlices == 0)
        _config.telemetrySlices = 1;
    _telemetry = std::make_shared<telemetry::TelemetryRecorder>(
        telemetry::TelemetryConfig{_config.telemetrySlices,
                                   _config.telemetryRingCapacity});
}

Core &
Multicore::addCore(const std::string &name)
{
    const CoreId id = static_cast<CoreId>(_cores.size());
    _cores.push_back(std::make_unique<Core>(id, name));
    Core &core = *_cores.back();
    core.setMemoryPool(_coreMemoryPool);
    core.setTiming(_config.timing);
    core.setPpu(_config.ppu);
    core.counters().linkTo(_metrics, "node/" + name);
    _metrics.link("node/" + name + "/errorsInjected",
                  core.injector().errorsInjectedCounter());
    if (_eventTrace != nullptr) {
        _tracers.push_back(std::make_unique<EventTracer>(
            *_eventTrace, _eventTrace->addTrack(name)));
        core.addTraceSink(_tracers.back().get());
    }
    return core;
}

QueueBase &
Multicore::addQueue(std::unique_ptr<QueueBase> queue)
{
    _queues.push_back(std::move(queue));
    _queues.back()->counters().linkTo(
        _metrics, "queue/" + _queues.back()->name());
    if (_eventTrace != nullptr)
        _eventTrace->registerQueue(_queues.back().get(),
                                   _queues.back()->name());
    return *_queues.back();
}

CommBackend &
Multicore::addBackend(std::unique_ptr<CommBackend> backend)
{
    _backends.push_back(std::move(backend));
    return *_backends.back();
}

CoreRuntime &
Multicore::addRuntime(Core &core, CommBackend &backend,
                      Count total_frames)
{
    core.setBackend(&backend);
    // Each backend prepends its own namespace ("cg/", "repl/", ...).
    backend.linkMetrics(_metrics, core.name());
    _runtimes.push_back(std::make_unique<CoreRuntime>(
        core, backend, total_frames, _config.timing));
    return *_runtimes.back();
}

Multicore::RoundStatus
Multicore::stepRound()
{
    if (_blockedRounds.size() != _runtimes.size())
        _blockedRounds.resize(_runtimes.size(), 0);

    bool all_finished = true;
    bool any_progress = false;
    if (_eventTrace != nullptr)
        _eventTrace->beginSlice(_round);
    // Simulated-time sampling cadence: keyed on the deterministic
    // round counter so the series is independent of CG_JOBS.
    if (_telemetry != nullptr && _round > 0 &&
        _round % _config.telemetrySlices == 0) {
        _telemetry->sample(_metrics, _round, totalCycles());
    }
    ++_round;

    for (std::size_t i = 0; i < _runtimes.size(); ++i) {
        CoreRuntime &runtime = *_runtimes[i];
        if (runtime.finished())
            continue;
        all_finished = false;

        const CoreRuntime::StepResult step =
            runtime.step(_config.sliceInstructions);
        if (step.progressed) {
            any_progress = true;
            _blockedRounds[i] = 0;
        } else if (step.blocked) {
            ++runtime.core().counters().blockedSlices;
            if (++_blockedRounds[i] >= _config.timeoutRounds) {
                // Queue-manager timeout (paper §5.1). Recording at
                // this one site makes the event count equal
                // machine/timeoutsFired by construction.
                if (_eventTrace != nullptr) {
                    _eventTrace->record(
                        *_machineTrack, runtime.core().cycles(),
                        trace::EventKind::QmTimeout, 0,
                        static_cast<std::uint16_t>(i),
                        static_cast<Word>(runtime.core().id()));
                }
                runtime.forceTimeout();
                ++_timeoutsFired;
                _blockedRounds[i] = 0;
            }
        }
        if (runtime.finished())
            any_progress = true;
    }

    if (all_finished)
        return RoundStatus::AllFinished;

    if (!any_progress) {
        // System-wide deadlock (e.g., corrupted full/empty views,
        // Fig. 3b): break it by timing out every stuck thread.
        ++_deadlockBreaks;
        if (_eventTrace != nullptr) {
            _eventTrace->record(*_machineTrack, 0,
                                trace::EventKind::DeadlockBreak);
        }
        for (auto &runtime : _runtimes) {
            if (!runtime->finished()) {
                if (_eventTrace != nullptr) {
                    _eventTrace->record(
                        *_machineTrack, runtime->core().cycles(),
                        trace::EventKind::QmTimeout, 1, 0,
                        static_cast<Word>(runtime->core().id()));
                }
                runtime->forceTimeout();
                ++_timeoutsFired;
            }
        }
    }

    if (totalCommittedInsts() > _config.globalWatchdogInsts) {
        warn("multicore: global instruction watchdog tripped; "
             "aborting run");
        return RoundStatus::WatchdogAbort;
    }
    return RoundStatus::Running;
}

MachineRunResult
Multicore::finish()
{
    // End-of-run sample: makes the recorder's cumulative view
    // reconcile 1:1 with the run's MetricSnapshot.
    if (_telemetry != nullptr)
        _telemetry->sample(_metrics, _round, totalCycles(), true);

    MachineRunResult result;
    result.completed = allRuntimesFinished();
    result.totalInstructions = totalCommittedInsts();
    result.totalCycles = totalCycles();
    result.timeoutsFired = _timeoutsFired;
    result.deadlockBreaks = _deadlockBreaks;
    return result;
}

MachineRunResult
Multicore::run()
{
    while (stepRound() == RoundStatus::Running) {
    }
    return finish();
}

bool
Multicore::allRuntimesFinished() const
{
    for (const auto &runtime : _runtimes)
        if (!runtime->finished())
            return false;
    return true;
}

Count
Multicore::totalCommittedInsts() const
{
    Count total = 0;
    for (const auto &core : _cores)
        total += core->counters().committedInsts;
    return total;
}

Cycle
Multicore::totalCycles() const
{
    Cycle total = 0;
    for (const auto &core : _cores)
        total += core->cycles();
    return total;
}

StatGroup
Multicore::collectStats() const
{
    StatGroup root("machine");
    for (std::size_t i = 0; i < _cores.size(); ++i) {
        StatGroup &group = root.child(_cores[i]->name());
        _cores[i]->counters().exportTo(group);
        group.set("cycles", _cores[i]->cycles());
        group.set("errorsInjected",
                  _cores[i]->injector().errorsInjected());
    }
    for (const auto &runtime : _runtimes) {
        runtime->backend().exportStats(
            root.child(runtime->core().name()));
    }
    StatGroup &queues = root.child("queues");
    for (const auto &queue : _queues)
        queue->counters().exportTo(queues.child(queue->name()));
    return root;
}

} // namespace commguard
