/**
 * @file
 * Interface between a core and its communication substrate.
 *
 * The core's ISA-visible PUSH/POP operations and the reliable runtime's
 * frame-computation events are routed through a per-core CommBackend.
 * Implementations model protection configurations: RawBackend (direct
 * queue access, Figs. 3b/3c), CommGuardBackend (HI + AM + QM,
 * Fig. 3d), ReplicateBackend (N-modular firing replication with output
 * voting), and AbftBackend (checksum-augmented streams). The registry
 * in sim/protection.hh maps mode names to backend factories.
 */

#ifndef COMMGUARD_MACHINE_COMM_BACKEND_HH
#define COMMGUARD_MACHINE_COMM_BACKEND_HH

#include <string>

#include "common/metrics.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "queue/queue_base.hh"

namespace commguard
{

class Core;

/** Outcome of a pop routed through a backend. */
struct BackendPopResult
{
    bool blocked = false;
    Word value = 0;
};

/** Backend verdict when an invocation's work program completes. */
enum class InvocationVerdict
{
    Commit,   //!< Frame computation done; advance to the next frame.
    Replay,   //!< Re-execute the same invocation (replication).
    Blocked,  //!< Commit stalled on a queue; retry invocationDone().
};

/**
 * Per-core communication endpoint.
 */
class CommBackend
{
  public:
    virtual ~CommBackend() = default;

    /**
     * Attach the owning core (used for charging costs and exposure).
     * Overrides must call the base: backends that need core services
     * beyond cost charging (store journaling for replication rollback)
     * enable them here.
     */
    virtual void bindCore(Core *core) { _core = core; }

    /** Core-issued push on a filter-local output port. */
    virtual QueueOpStatus push(int port, Word value) = 0;

    /** Core-issued pop on a filter-local input port. */
    virtual BackendPopResult pop(int port) = 0;

    /**
     * Reliable-runtime event: a new frame computation is starting.
     * Idempotent under retries: a Blocked result (header insertion
     * stalled on a full queue) must be retried with no re-counting.
     */
    virtual QueueOpStatus newFrameComputation() = 0;

    /** Reliable-runtime event: the thread finished its last frame. */
    virtual QueueOpStatus endOfComputation() = 0;

    /**
     * Reliable-runtime event: the work program of the current
     * invocation completed (Halt or watchdog). The backend may demand
     * a replay (replication), report a stalled commit (buffered output
     * flushing into a full queue; the runtime retries), or commit.
     * Must be resumable across Blocked retries.
     */
    virtual InvocationVerdict
    invocationDone()
    {
        return InvocationVerdict::Commit;
    }

    /**
     * Timeout recovery for a pop blocked too long (paper §5.1: "the QM
     * needs timeout mechanisms to avoid indefinite blocking"). Returns
     * the value to deliver in place of the stuck pop.
     */
    virtual Word
    timeoutPop(int port)
    {
        (void)port;
        return 0;
    }

    /** Timeout recovery for a push blocked too long: drop the item. */
    virtual void
    timeoutPush(int port)
    {
        (void)port;
    }

    /** Timeout recovery for a stalled frame event (header insertion). */
    virtual void timeoutFrameEvent() {}

    /**
     * True when frame computation boundaries serialize the pipeline
     * (CommGuard's header/active-fc dependency, §5.3); the runtime then
     * charges the flush penalty at every frame start.
     */
    virtual bool serializesFrames() const { return false; }

    /** Publish backend statistics (CommGuard suboperations) if any. */
    virtual void
    exportStats(StatGroup &group) const
    {
        (void)group;
    }

    /** Register backend counters with the machine's metric registry. */
    virtual void
    linkMetrics(metrics::Registry &registry, const std::string &prefix)
    {
        (void)registry;
        (void)prefix;
    }

  protected:
    Core *_core = nullptr;
};

} // namespace commguard

#endif // COMMGUARD_MACHINE_COMM_BACKEND_HH
