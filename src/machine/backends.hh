/**
 * @file
 * Concrete communication backends for the protection configurations.
 *
 * RawBackend wires PUSH/POP straight to the underlying queues; used for
 * the unprotected software-queue baseline (Fig. 3b, with SoftwareQueue)
 * and the reliable-queue baseline (Fig. 3c, with ReliableQueue).
 *
 * CommGuardBackend assembles the paper's per-core modules (Fig. 4): the
 * active-fc counters driven by the PPU protection module, header
 * inserters over the outgoing queue managers, and one alignment manager
 * per incoming queue, all sharing the core's Queue Information Table
 * (here: the per-port module state) and suboperation counters.
 *
 * Frame domains (§5.4): every edge carries its own frame granularity
 * (program frame computations per CommGuard frame). "CommGuard can
 * also support varying frame definitions across an application. This
 * requires a redundant active-fc counter per frame domain" — hence one
 * ActiveFcCounter per port; with a uniform scale they all tick in
 * lockstep, degenerating to the paper's default design.
 */

#ifndef COMMGUARD_MACHINE_BACKENDS_HH
#define COMMGUARD_MACHINE_BACKENDS_HH

#include <memory>
#include <vector>

#include "commguard/active_fc.hh"
#include "commguard/alignment_manager.hh"
#include "commguard/counters.hh"
#include "commguard/header_inserter.hh"
#include "commguard/queue_manager.hh"
#include "machine/comm_backend.hh"

namespace commguard
{

/**
 * Direct queue access without CommGuard.
 */
class RawBackend : public CommBackend
{
  public:
    RawBackend(std::vector<QueueBase *> ins,
               std::vector<QueueBase *> outs)
        : _ins(std::move(ins)), _outs(std::move(outs))
    {}

    QueueOpStatus push(int port, Word value) override;
    BackendPopResult pop(int port) override;

    QueueOpStatus
    newFrameComputation() override
    {
        return QueueOpStatus::Ok;
    }

    QueueOpStatus
    endOfComputation() override
    {
        return QueueOpStatus::Ok;
    }

  private:
    std::vector<QueueBase *> _ins;
    std::vector<QueueBase *> _outs;
};

/**
 * Full CommGuard protection: HI + AM + QM per core.
 */
class CommGuardBackend : public CommBackend
{
  public:
    /**
     * Uniform frame definition (the paper's default): every edge uses
     * @p frame_downscale program frame computations per CommGuard
     * frame.
     *
     * @param ins  Incoming queues (paper: at most ~4 per thread).
     * @param outs Outgoing queues.
     */
    CommGuardBackend(std::vector<QueueBase *> ins,
                     std::vector<QueueBase *> outs,
                     Count frame_downscale = 1);

    /**
     * Varying frame definitions (§5.4): per-edge frame granularities.
     * Both endpoints of an edge must use the same scale for that edge
     * (the loader picks the coarser of the two nodes' domains).
     *
     * @param in_guarded Per-input-edge flag: false bypasses the
     *        alignment manager for that edge (an unguarded stream —
     *        the ablation of the guarded-source-edge decision). Empty
     *        means all guarded.
     */
    CommGuardBackend(std::vector<QueueBase *> ins,
                     std::vector<QueueBase *> outs,
                     std::vector<Count> in_scales,
                     std::vector<Count> out_scales,
                     std::vector<bool> in_guarded = {});

    QueueOpStatus push(int port, Word value) override;
    BackendPopResult pop(int port) override;
    QueueOpStatus newFrameComputation() override;
    QueueOpStatus endOfComputation() override;

    Word timeoutPop(int port) override;
    void timeoutFrameEvent() override;

    bool serializesFrames() const override { return true; }

    CgCounters &counters() { return _counters; }
    const CgCounters &counters() const { return _counters; }
    AlignmentManager &am(int port) { return _ams[port]; }

    /** Frame counter of output edge @p port (its frame domain). */
    ActiveFcCounter &outFc(int port) { return _outFcs[port]; }

    /** Frame counter of input edge @p port (its frame domain). */
    ActiveFcCounter &inFc(int port) { return _inFcs[port]; }

    /**
     * The first output edge's counter (input edge 0 for pure sinks) —
     * the thread's frame progress under the default uniform frame
     * definition, kept for the common case and tests.
     */
    ActiveFcCounter &activeFc();

    void exportStats(StatGroup &group) const;

    void
    linkMetrics(metrics::Registry &registry,
                const std::string &prefix) override
    {
        _counters.linkTo(registry, "cg/" + prefix);
    }

  private:
    CgCounters _counters;
    std::vector<QueueManager> _inQms;
    std::vector<QueueManager> _outQms;
    std::vector<AlignmentManager> _ams;
    std::vector<bool> _inGuarded;

    // Redundant active-fc counters, one per frame domain touched by
    // this core (here: one per port; uniform scales tick in lockstep).
    std::vector<ActiveFcCounter> _inFcs;
    std::vector<ActiveFcCounter> _outFcs;

    // One header inserter per outgoing edge so edges in different
    // frame domains insert independently (each is resumable).
    std::vector<std::unique_ptr<HeaderInserter>> _his;

    // Frame-event latching so Blocked retries are idempotent.
    bool _framePending = false;
    std::vector<bool> _outNeedsHeader;
    std::size_t _nextHeaderEdge = 0;

    // End-of-computation progress (resumable across Blocked retries).
    std::size_t _eocEdge = 0;

    // Fallback counter for cores with no ports at all.
    ActiveFcCounter _fallbackFc;
};

} // namespace commguard

#endif // COMMGUARD_MACHINE_BACKENDS_HH
