/**
 * @file
 * Execution tracing hooks for debugging simulated programs.
 *
 * A TraceSink observes a core's committed instructions, invocation
 * boundaries, and injected errors — the simulator-side equivalent of
 * gem5's trace-based debugging. Tracing is off by default and costs
 * one pointer test per commit when enabled.
 */

#ifndef COMMGUARD_MACHINE_TRACE_HH
#define COMMGUARD_MACHINE_TRACE_HH

#include <ostream>

#include "common/types.hh"
#include "isa/inst.hh"

namespace commguard
{

class Core;

/**
 * Observer interface for core execution events.
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** An instruction at @p pc committed on @p core. */
    virtual void
    onCommit(const Core &core, Count pc, const isa::Inst &inst)
    {
        (void)core;
        (void)pc;
        (void)inst;
    }

    /** A new frame-computation invocation began. */
    virtual void
    onInvocationStart(const Core &core)
    {
        (void)core;
    }

    /** The injector flipped @p bit of @p reg. */
    virtual void
    onErrorInjected(const Core &core, isa::Reg reg, int bit)
    {
        (void)core;
        (void)reg;
        (void)bit;
    }
};

/**
 * Human-readable trace writer with a line budget (trailing activity is
 * summarized as a count so a runaway program cannot flood the log).
 */
class TextTracer : public TraceSink
{
  public:
    /**
     * @param os        Destination stream (not owned).
     * @param max_lines Instruction lines to print before going quiet.
     */
    explicit TextTracer(std::ostream &os, Count max_lines = 200)
        : _os(os), _maxLines(max_lines)
    {}

    void onCommit(const Core &core, Count pc,
                  const isa::Inst &inst) override;
    void onInvocationStart(const Core &core) override;
    void onErrorInjected(const Core &core, isa::Reg reg,
                         int bit) override;

    Count commitsSeen() const { return _commits; }
    Count errorsSeen() const { return _errors; }

  private:
    std::ostream &_os;
    Count _maxLines;
    Count _commits = 0;
    Count _errors = 0;
};

} // namespace commguard

#endif // COMMGUARD_MACHINE_TRACE_HH
