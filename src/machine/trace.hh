/**
 * @file
 * Execution tracing hooks for debugging and observing simulated
 * programs.
 *
 * A TraceSink observes a core's committed instructions, invocation
 * boundaries, queue activity, CommGuard frame-lifecycle actions, and
 * injected errors — the simulator-side equivalent of gem5's
 * trace-based debugging. Tracing is off by default and costs one
 * pointer test per observed event when enabled.
 *
 * This is the single dispatch point for every observer: the
 * human-readable TextTracer, the binary EventTracer, and any test
 * double all implement TraceSink; FanOutSink composes several sinks
 * behind one core-side pointer so no second hook mechanism exists.
 */

#ifndef COMMGUARD_MACHINE_TRACE_HH
#define COMMGUARD_MACHINE_TRACE_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "common/event_trace.hh"
#include "common/types.hh"
#include "isa/inst.hh"

namespace commguard
{

class Core;
class QueueBase;

/**
 * Observer interface for core execution events. Every hook has an
 * empty default so sinks override only what they need.
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** An instruction at @p pc committed on @p core. */
    virtual void
    onCommit(const Core &core, Count pc, const isa::Inst &inst)
    {
        (void)core;
        (void)pc;
        (void)inst;
    }

    /** A new frame-computation invocation began. */
    virtual void
    onInvocationStart(const Core &core)
    {
        (void)core;
    }

    /** The injector flipped @p bit of @p reg. */
    virtual void
    onErrorInjected(const Core &core, isa::Reg reg, int bit)
    {
        (void)core;
        (void)reg;
        (void)bit;
    }

    // ------------------------------------------------------------------
    // Queue activity (emitted by the core's interpreter).
    // ------------------------------------------------------------------

    /** A push on output @p port committed. */
    virtual void
    onQueuePush(const Core &core, int port)
    {
        (void)core;
        (void)port;
    }

    /** A pop on input @p port committed. */
    virtual void
    onQueuePop(const Core &core, int port)
    {
        (void)core;
        (void)port;
    }

    /** A queue op on @p port blocked (first blocked attempt only). */
    virtual void
    onQueueBlock(const Core &core, int port, bool is_pop)
    {
        (void)core;
        (void)port;
        (void)is_pop;
    }

    /** The blocked op on @p port resumed (success or timeout). */
    virtual void
    onQueueUnblock(const Core &core, int port, bool is_pop)
    {
        (void)core;
        (void)port;
        (void)is_pop;
    }

    /** A software-queue routine's state was corrupted (QME). */
    virtual void
    onQueueCorrupt(const Core &core, const QueueBase &queue)
    {
        (void)core;
        (void)queue;
    }

    /** Post-operation depth sample of @p queue. */
    virtual void
    onQueueDepth(const Core &core, const QueueBase &queue,
                 std::size_t depth)
    {
        (void)core;
        (void)queue;
        (void)depth;
    }

    /** A QM timeout force-resolved the blocked pop on @p port. */
    virtual void
    onPopTimeout(const Core &core, int port)
    {
        (void)core;
        (void)port;
    }

    /** A QM timeout force-resolved the blocked push on @p port. */
    virtual void
    onPushTimeout(const Core &core, int port)
    {
        (void)core;
        (void)port;
    }

    /** The PPU watchdog force-completed a scope (@p nested level). */
    virtual void
    onWatchdogTrip(const Core &core, bool nested)
    {
        (void)core;
        (void)nested;
    }

    // ------------------------------------------------------------------
    // CommGuard frame lifecycle (emitted by the backend).
    // ------------------------------------------------------------------

    /** The HI stored frame header @p frame into @p queue. */
    virtual void
    onHeaderInsert(const Core &core, int port, const QueueBase &queue,
                   FrameId frame)
    {
        (void)core;
        (void)port;
        (void)queue;
        (void)frame;
    }

    /** The HI gave up on a blocked header insertion (QM timeout). */
    virtual void
    onHeaderDropped(const Core &core, int port)
    {
        (void)core;
        (void)port;
    }

    /**
     * The AM for input @p port moved @p from -> @p to (AmState codes).
     * Intermediate states inside one AM evaluation are compressed to
     * the before/after pair. @p info is the frame id driving the move
     * (the pending header when entering the padding state).
     */
    virtual void
    onAmTransition(const Core &core, int port, std::uint8_t from,
                   std::uint8_t to, Word info)
    {
        (void)core;
        (void)port;
        (void)from;
        (void)to;
        (void)info;
    }

    /** The AM padded one pop response on @p port. */
    virtual void
    onAmPad(const Core &core, int port)
    {
        (void)core;
        (void)port;
    }

    /** The AM discarded one queued item on @p port. */
    virtual void
    onAmDiscardItem(const Core &core, int port)
    {
        (void)core;
        (void)port;
    }

    /** The AM discarded one queued header on @p port. */
    virtual void
    onAmDiscardHeader(const Core &core, int port)
    {
        (void)core;
        (void)port;
    }
};

/**
 * Composes several sinks behind the core's single observer pointer.
 * Sinks are not owned and are invoked in registration order.
 */
class FanOutSink : public TraceSink
{
  public:
    void addSink(TraceSink *sink);

    void onCommit(const Core &core, Count pc,
                  const isa::Inst &inst) override;
    void onInvocationStart(const Core &core) override;
    void onErrorInjected(const Core &core, isa::Reg reg,
                         int bit) override;
    void onQueuePush(const Core &core, int port) override;
    void onQueuePop(const Core &core, int port) override;
    void onQueueBlock(const Core &core, int port, bool is_pop) override;
    void onQueueUnblock(const Core &core, int port,
                        bool is_pop) override;
    void onQueueCorrupt(const Core &core,
                        const QueueBase &queue) override;
    void onQueueDepth(const Core &core, const QueueBase &queue,
                      std::size_t depth) override;
    void onPopTimeout(const Core &core, int port) override;
    void onPushTimeout(const Core &core, int port) override;
    void onWatchdogTrip(const Core &core, bool nested) override;
    void onHeaderInsert(const Core &core, int port,
                        const QueueBase &queue, FrameId frame) override;
    void onHeaderDropped(const Core &core, int port) override;
    void onAmTransition(const Core &core, int port, std::uint8_t from,
                        std::uint8_t to, Word info) override;
    void onAmPad(const Core &core, int port) override;
    void onAmDiscardItem(const Core &core, int port) override;
    void onAmDiscardHeader(const Core &core, int port) override;

  private:
    std::vector<TraceSink *> _sinks;
};

/**
 * Human-readable trace writer with a line budget (trailing activity is
 * summarized as a count so a runaway program cannot flood the log).
 */
class TextTracer : public TraceSink
{
  public:
    /**
     * @param os        Destination stream (not owned).
     * @param max_lines Instruction lines to print before going quiet.
     */
    explicit TextTracer(std::ostream &os, Count max_lines = 200)
        : _os(os), _maxLines(max_lines)
    {}

    void onCommit(const Core &core, Count pc,
                  const isa::Inst &inst) override;
    void onInvocationStart(const Core &core) override;
    void onErrorInjected(const Core &core, isa::Reg reg,
                         int bit) override;

    Count commitsSeen() const { return _commits; }
    Count errorsSeen() const { return _errors; }

  private:
    std::ostream &_os;
    Count _maxLines;
    Count _commits = 0;
    Count _errors = 0;
};

/**
 * Binary event tracer: renders every frame-lifecycle hook into one
 * trace::EventTrace track. Instruction commits are deliberately not
 * recorded (they would drown the ring; instruction-level inspection
 * stays with TextTracer). Timestamps are the observed core's cycle
 * clock; the shared seq stamp provides cross-track order.
 */
class EventTracer : public TraceSink
{
  public:
    EventTracer(trace::EventTrace &trace, trace::EventBuffer &track)
        : _trace(trace), _track(track)
    {}

    void onInvocationStart(const Core &core) override;
    void onErrorInjected(const Core &core, isa::Reg reg,
                         int bit) override;
    void onQueuePush(const Core &core, int port) override;
    void onQueuePop(const Core &core, int port) override;
    void onQueueBlock(const Core &core, int port, bool is_pop) override;
    void onQueueUnblock(const Core &core, int port,
                        bool is_pop) override;
    void onQueueCorrupt(const Core &core,
                        const QueueBase &queue) override;
    void onQueueDepth(const Core &core, const QueueBase &queue,
                      std::size_t depth) override;
    void onPopTimeout(const Core &core, int port) override;
    void onPushTimeout(const Core &core, int port) override;
    void onWatchdogTrip(const Core &core, bool nested) override;
    void onHeaderInsert(const Core &core, int port,
                        const QueueBase &queue, FrameId frame) override;
    void onHeaderDropped(const Core &core, int port) override;
    void onAmTransition(const Core &core, int port, std::uint8_t from,
                        std::uint8_t to, Word info) override;
    void onAmPad(const Core &core, int port) override;
    void onAmDiscardItem(const Core &core, int port) override;
    void onAmDiscardHeader(const Core &core, int port) override;

  private:
    trace::EventTrace &_trace;
    trace::EventBuffer &_track;
};

} // namespace commguard

#endif // COMMGUARD_MACHINE_TRACE_HH
