/**
 * @file
 * A partially-protected processor core (PPU, paper §2.1 and [32]).
 *
 * The core functionally executes one filter's frame-computation program
 * with error injection into its register file. The PPU protection
 * contract is enforced here: control-flow and memory-addressing errors
 * never crash or hang the core —
 *  - memory addresses wrap inside core-local memory,
 *  - arithmetic traps (divide-by-zero, bad float conversion) produce
 *    benign values,
 *  - a per-scope watchdog bounds the dynamic instructions of one frame
 *    computation, force-completing runaway invocations.
 *
 * Execution is resumable: a PUSH on a full queue or POP on an empty
 * queue returns Blocked without committing, and a later run() retries
 * the same instruction.
 */

#ifndef COMMGUARD_MACHINE_CORE_HH
#define COMMGUARD_MACHINE_CORE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.hh"
#include "common/recycle_pool.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "isa/program.hh"
#include "machine/comm_backend.hh"
#include "machine/error_injector.hh"
#include "machine/register_file.hh"
#include "machine/timing.hh"
#include "machine/trace.hh"

namespace commguard
{

/** PPU protection parameters. */
struct PpuConfig
{
    /**
     * Watchdog budget = multiplier x program's estimated insts. The
     * paper's PPU substrate [32] enforces tight per-scope bounds; a
     * small margin keeps corrupted loops from flooding queues with
     * garbage items before the scope is force-completed.
     */
    Count watchdogMultiplier = 2;

    /** Budget when the program carries no estimate. */
    Count defaultScopeBudget = 1'000'000;

    /** Absolute upper bound on any scope budget. */
    Count maxScopeBudget = 64'000'000;

    /**
     * Enforce nested ScopeEnter/ScopeExit budgets (paper SS4.4). When
     * false the scope instructions are no-ops and only the
     * per-invocation watchdog protects against runaway loops
     * (ablation knob).
     */
    bool enforceNestedScopes = true;

    /** Maximum tracked nesting depth (deeper scopes are unguarded). */
    int maxScopeDepth = 8;
};

/** Why a run() slice ended. */
enum class RunStatus
{
    Done,        //!< Invocation completed (Halt or watchdog).
    Blocked,     //!< Stuck on a queue operation; retry later.
    OutOfSteps,  //!< Slice exhausted; more work remains.
};

/** Result of a run() slice. */
struct RunResult
{
    RunStatus status;
    Count executed;  //!< Instructions committed during the slice.
};

/** Hot-path per-core event counters. */
struct CoreCounters
{
    using Counter = metrics::Counter;

    Counter committedInsts;
    Counter cycles;
    Counter loads;
    Counter stores;
    Counter queuePushes;
    Counter queuePops;
    Counter registerFlips;
    Counter scopeWatchdogTrips;
    Counter nestedScopeTrips;
    Counter popTimeouts;
    Counter pushTimeouts;
    Counter invocations;

    /**
     * Scheduling slices this core spent fully blocked on a queue
     * operation (counted by the scheduler): the per-node queue-stall
     * share of the stage-profiling view.
     */
    Counter blockedSlices;

    /** Register every counter in @p registry under @p prefix. */
    void
    linkTo(metrics::Registry &registry,
           const std::string &prefix) const
    {
        registry.link(prefix + "/committedInsts", committedInsts);
        registry.link(prefix + "/cycles", cycles);
        registry.link(prefix + "/loads", loads);
        registry.link(prefix + "/stores", stores);
        registry.link(prefix + "/queuePushes", queuePushes);
        registry.link(prefix + "/queuePops", queuePops);
        registry.link(prefix + "/registerFlips", registerFlips);
        registry.link(prefix + "/scopeWatchdogTrips",
                      scopeWatchdogTrips);
        registry.link(prefix + "/nestedScopeTrips", nestedScopeTrips);
        registry.link(prefix + "/popTimeouts", popTimeouts);
        registry.link(prefix + "/pushTimeouts", pushTimeouts);
        registry.link(prefix + "/invocations", invocations);
        registry.link(prefix + "/blockedSlices", blockedSlices);
    }

    void
    exportTo(StatGroup &group) const
    {
        group.set("committedInsts", committedInsts);
        group.set("loads", loads);
        group.set("stores", stores);
        group.set("queuePushes", queuePushes);
        group.set("queuePops", queuePops);
        group.set("registerFlips", registerFlips);
        group.set("scopeWatchdogTrips", scopeWatchdogTrips);
        group.set("nestedScopeTrips", nestedScopeTrips);
        group.set("popTimeouts", popTimeouts);
        group.set("pushTimeouts", pushTimeouts);
        group.set("invocations", invocations);
        group.set("blockedSlices", blockedSlices);
    }
};

/**
 * One simulated PPU core.
 */
class Core
{
  public:
    Core(CoreId id, std::string name);

    /** Retires the core-local memory to the recycle pool, if bound. */
    ~Core();

    // ------------------------------------------------------------------
    // Configuration (done once by the loader).
    // ------------------------------------------------------------------

    /**
     * Bind the freelist core-local memory is acquired from and retired
     * to (sweep hot path; must outlive the core). Call before
     * setProgram(); null keeps plain allocation.
     */
    void setMemoryPool(RecyclePool<Word> *pool) { _memoryPool = pool; }

    /** Load the filter program; copies the data segment into memory. */
    void setProgram(isa::Program program);

    /** Attach the communication backend (not owned). */
    void setBackend(CommBackend *backend);

    void configureInjector(const ErrorInjector::Config &config);
    void setTiming(const TimingConfig &timing) { _timing = timing; }
    void setPpu(const PpuConfig &ppu);

    /** Attach an execution observer (not owned; nullptr disables). */
    void
    setTraceSink(TraceSink *sink)
    {
        _fanOut.reset();
        _trace = sink;
    }

    /**
     * Attach an additional observer: with one sink attached the core
     * dispatches to it directly; a second sink transparently installs
     * an owned FanOutSink so all observers share the one hook pointer.
     */
    void addTraceSink(TraceSink *sink);

    /** The active observer (a FanOutSink when several are attached). */
    TraceSink *traceSink() const { return _trace; }

    // ------------------------------------------------------------------
    // Execution.
    // ------------------------------------------------------------------

    /** Begin a new frame-computation invocation (registers cleared). */
    void startInvocation();

    /** Execute up to @p max_steps instructions. */
    RunResult run(Count max_steps);

    // ------------------------------------------------------------------
    // Blocked-operation recovery (timeout path, paper §5.1).
    // ------------------------------------------------------------------

    bool blocked() const { return _blocked; }
    bool blockedOnPop() const { return _blockedIsPop; }
    int blockedPort() const { return _blockedPort; }

    /** Commit the stuck pop with @p value (QM timeout). */
    void resolveBlockedPop(Word value);

    /** Commit the stuck push, dropping its item (QM timeout). */
    void resolveBlockedPush();

    // ------------------------------------------------------------------
    // Services for backends.
    // ------------------------------------------------------------------

    /**
     * Charge @p insts virtual instructions during which @p queue's
     * management state is register-resident (software queue routines).
     * Scheduled errors in the window corrupt the queue or the register
     * file with equal probability.
     */
    void exposeQueueWindow(Count insts, QueueBase &queue);

    /** Charge raw cycles (frame-boundary serialization, ...). */
    void addCycles(Cycle cycles) { _counters.cycles += cycles; }

    /** Charge the memory-subsystem cost of one queue word transfer. */
    void
    chargeQueueTransfer()
    {
        _counters.cycles += _timing.queueOpCycles;
    }

    /**
     * Charge @p insts instructions of *reliable* protection-runtime
     * work (checksum updates, output voting): counted and cycled like
     * committed work so overhead comparisons see it, but never exposed
     * to error injection and never charged against the PPU scope
     * budget — it runs on the reliable substrate, not inside the
     * error-prone scope.
     */
    void
    chargeReliableOps(Count insts)
    {
        _counters.committedInsts += insts;
        _counters.cycles += insts;
    }

    /**
     * Record (address, old value) for every store of an invocation so
     * a replicating backend can roll the memory image back before a
     * replay. Off by default: the journal append sits on the
     * interpreter's store path.
     */
    void setStoreJournaling(bool enabled)
    {
        _journalStores = enabled;
    }

    /**
     * Undo this invocation's stores in reverse order and clear the
     * journal. No-op unless journaling is enabled.
     */
    void rollbackInvocationStores();

    // ------------------------------------------------------------------
    // Introspection.
    // ------------------------------------------------------------------

    CoreId id() const { return _id; }
    const std::string &name() const { return _name; }
    RegisterFile &regs() { return _regs; }
    std::vector<Word> &memory() { return _memory; }
    ErrorInjector &injector() { return _injector; }
    CoreCounters &counters() { return _counters; }
    const CoreCounters &counters() const { return _counters; }
    Cycle cycles() const { return _counters.cycles; }
    Count pc() const { return _pc; }
    const isa::Program &program() const { return _program; }

    /** Flip a random bit of a random live architectural register. */
    void flipRandomRegisterBit();

    /** Registers the loaded program references (injection targets). */
    const std::vector<isa::Reg> &usedRegs() const { return _usedRegs; }

  private:
    /** Commit the instruction at _pc: count, cycle, inject, advance. */
    void commit(Cycle extra_cycles, Count next_pc);

    /**
     * Fast-path bookkeeping for scheduled errors: the cached integer
     * countdown hit zero, so exactly _errorCountdownReload commits
     * have elapsed since the last injector sync. Push them into the
     * injector (firing the due flips) and recache the countdown.
     */
    void syncScheduledErrors();

    /** Recache the injector's integer countdown. */
    void reloadErrorCountdown()
    {
        _errorCountdown = _errorCountdownReload = _injector.countdown();
    }

    CoreId _id;
    std::string _name;

    isa::Program _program;
    RecyclePool<Word> *_memoryPool = nullptr;  //!< Not owned; may be null.
    std::vector<Word> _memory;
    RegisterFile _regs;
    ErrorInjector _injector;
    TimingConfig _timing;
    PpuConfig _ppu;
    CommBackend *_backend = nullptr;
    TraceSink *_trace = nullptr;

    /** Created on demand when a second trace sink is attached. */
    std::unique_ptr<FanOutSink> _fanOut;

    /**
     * Registers referenced by the loaded program (excluding the
     * hardwired R0). The error injector targets only these: the
     * paper's x86 cores have a small register file that is essentially
     * fully live, and flipping architecturally dead registers would
     * artificially dilute the modeled error rate.
     */
    std::vector<isa::Reg> _usedRegs;

    /** One tracked nested scope activation. */
    struct ScopeFrame
    {
        Word id;         //!< Scope table index (matches ScopeExit).
        std::int32_t exitPc;
        Count deadline;  //!< instsThisInvocation limit.
    };

    Count _pc = 0;
    Count _instsThisInvocation = 0;
    Count _scopeBudget = 0;

    /**
     * Commits left before the injector must be resynced (see
     * ErrorInjector::countdown()). The pair of counters replaces a
     * per-commit floating-point advance with one predictable integer
     * decrement on the interpreter's hot path.
     */
    Count _errorCountdown = ErrorInjector::noErrorScheduled;
    Count _errorCountdownReload = ErrorInjector::noErrorScheduled;
    std::vector<ScopeFrame> _scopeStack;

    bool _blocked = false;
    bool _blockedIsPop = false;
    int _blockedPort = 0;

    /** Store journal for replication rollback (see setStoreJournaling). */
    bool _journalStores = false;
    std::vector<std::pair<std::uint32_t, Word>> _storeJournal;

    CoreCounters _counters;
};

} // namespace commguard

#endif // COMMGUARD_MACHINE_CORE_HH
