#include "machine/replicate_backend.hh"

#include <algorithm>

#include "common/logging.hh"
#include "machine/core.hh"

namespace commguard
{

ReplicateBackend::ReplicateBackend(std::vector<QueueBase *> ins,
                                   std::vector<QueueBase *> outs,
                                   int replicas)
    : _ins(std::move(ins)), _outs(std::move(outs)), _replicas(replicas)
{
    if (_replicas < 2)
        panic("ReplicateBackend: needs at least 2 replicas");
    _inLog.resize(_ins.size());
    _inCursor.assign(_ins.size(), 0);
    _outBuf.assign(static_cast<std::size_t>(_replicas),
                   std::vector<std::vector<Word>>(_outs.size()));
    _voted.resize(_outs.size());
}

void
ReplicateBackend::bindCore(Core *core)
{
    CommBackend::bindCore(core);
    core->setStoreJournaling(true);
}

QueueOpStatus
ReplicateBackend::push(int port, Word value)
{
    // Outputs never touch the queue until the replicas agree: buffer
    // them per replica and flush the voted words in invocationDone().
    _outBuf[static_cast<std::size_t>(_replica)][port].push_back(value);
    return QueueOpStatus::Ok;
}

BackendPopResult
ReplicateBackend::pop(int port)
{
    if (_replica == 0) {
        // Recording execution: real pop, logged for replay.
        QueueBase &queue = *_ins[port];
        QueueWord word;
        if (queue.tryPop(word) == QueueOpStatus::Blocked)
            return {true, 0};
        if (queue.opCost() > 0)
            _core->exposeQueueWindow(queue.opCost(), queue);
        if (TraceSink *t = _core->traceSink()) [[unlikely]]
            t->onQueueDepth(*_core, queue, queue.size());
        _inLog[port].push_back(word.value);
        return {false, word.value};
    }

    // Replay execution: serve the logged value. An error during a
    // replay can perturb its pop count past the recording's; pad with
    // zeros rather than touching the real queue so replicas stay
    // input-aligned.
    std::size_t &cursor = _inCursor[port];
    if (cursor >= _inLog[port].size()) {
        ++_counters.replayUnderflows;
        return {false, 0};
    }
    return {false, _inLog[port][cursor++]};
}

Word
ReplicateBackend::timeoutPop(int port)
{
    // The QM pad must be replayed identically to later replicas.
    if (_replica == 0)
        _inLog[port].push_back(0);
    else if (_inCursor[port] < _inLog[port].size())
        ++_inCursor[port];
    return 0;
}

void
ReplicateBackend::voteOutputs()
{
    const std::size_t replicas = static_cast<std::size_t>(_replicas);
    Count reliable_insts = 0;

    for (std::size_t port = 0; port < _outs.size(); ++port) {
        // Majority output length first (a corrupted replica may have
        // pushed a different count); replica 0 wins ties.
        std::size_t best_len = _outBuf[0][port].size();
        std::size_t best_votes = 0;
        for (std::size_t r = 0; r < replicas; ++r) {
            const std::size_t len = _outBuf[r][port].size();
            std::size_t votes = 0;
            for (std::size_t s = 0; s < replicas; ++s)
                votes += _outBuf[s][port].size() == len;
            if (votes > best_votes) {
                best_votes = votes;
                best_len = len;
            }
        }

        std::vector<Word> &voted = _voted[port];
        voted.clear();
        voted.reserve(best_len);
        for (std::size_t i = 0; i < best_len; ++i) {
            Word best_value = 0;
            std::size_t value_votes = 0;
            std::size_t present = 0;
            for (std::size_t r = 0; r < replicas; ++r) {
                if (i >= _outBuf[r][port].size())
                    continue;
                const Word value = _outBuf[r][port][i];
                ++present;
                std::size_t votes = 0;
                for (std::size_t s = 0; s < replicas; ++s) {
                    votes += i < _outBuf[s][port].size() &&
                             _outBuf[s][port][i] == value;
                }
                // First maximum wins, so replica 0 breaks ties.
                if (votes > value_votes) {
                    value_votes = votes;
                    best_value = value;
                }
            }
            if (value_votes < present)
                ++_counters.voteMismatches;
            if (i < _outBuf[0][port].size() &&
                _outBuf[0][port][i] != best_value)
                ++_counters.votedCorrections;
            voted.push_back(best_value);
        }
        // One reliable compare-op per word per extra replica.
        reliable_insts +=
            static_cast<Count>(best_len) * (replicas - 1);
    }
    if (reliable_insts > 0)
        _core->chargeReliableOps(reliable_insts);
}

InvocationVerdict
ReplicateBackend::invocationDone()
{
    if (!_flushing) {
        if (_replica + 1 < _replicas) {
            // Rewind memory and inputs, run the next replica.
            _core->rollbackInvocationStores();
            ++_replica;
            ++_counters.replays;
            std::fill(_inCursor.begin(), _inCursor.end(), 0);
            return InvocationVerdict::Replay;
        }
        voteOutputs();
        _flushing = true;
        _flushPort = 0;
        _flushIndex = 0;
    }

    // Flush the voted outputs (resumable: a full queue reports Blocked
    // and a later retry resumes at _flushPort/_flushIndex).
    for (; _flushPort < _outs.size(); ++_flushPort, _flushIndex = 0) {
        QueueBase &queue = *_outs[_flushPort];
        const std::vector<Word> &voted = _voted[_flushPort];
        while (_flushIndex < voted.size()) {
            if (queue.tryPush(makeItem(voted[_flushIndex])) ==
                QueueOpStatus::Blocked)
                return InvocationVerdict::Blocked;
            ++_flushIndex;
            ++_counters.votedWords;
            _core->chargeQueueTransfer();
            if (queue.opCost() > 0)
                _core->exposeQueueWindow(queue.opCost(), queue);
            if (TraceSink *t = _core->traceSink()) [[unlikely]]
                t->onQueueDepth(*_core, queue, queue.size());
        }
    }

    // Invocation committed: reset for the next frame computation.
    _replica = 0;
    _flushing = false;
    _flushPort = 0;
    _flushIndex = 0;
    for (std::vector<Word> &log : _inLog)
        log.clear();
    std::fill(_inCursor.begin(), _inCursor.end(), 0);
    for (auto &replica_bufs : _outBuf)
        for (std::vector<Word> &buf : replica_bufs)
            buf.clear();
    return InvocationVerdict::Commit;
}

void
ReplicateBackend::timeoutFrameEvent()
{
    // A voted-output flush stalled past the QM timeout: drop the stuck
    // word so the pipeline keeps moving (mirrors the raw push drop).
    if (_flushing && _flushPort < _outs.size() &&
        _flushIndex < _voted[_flushPort].size()) {
        ++_flushIndex;
        ++_counters.flushDrops;
    }
}

void
ReplicateBackend::exportStats(StatGroup &group) const
{
    _counters.exportTo(group.child("replicate"));
}

} // namespace commguard
