#include "machine/trace.hh"

#include "isa/program.hh"
#include "machine/core.hh"

namespace commguard
{

void
TextTracer::onCommit(const Core &core, Count pc, const isa::Inst &inst)
{
    ++_commits;
    if (_commits > _maxLines) {
        if (_commits == _maxLines + 1)
            _os << core.name() << ": ... (trace line budget reached; "
                << "counting silently)\n";
        return;
    }
    _os << core.name() << " [" << pc << "] "
        << isa::disassemble(inst) << "\n";
}

void
TextTracer::onInvocationStart(const Core &core)
{
    if (_commits <= _maxLines) {
        _os << core.name() << " ---- invocation "
            << core.counters().invocations << " ----\n";
    }
}

void
TextTracer::onErrorInjected(const Core &core, isa::Reg reg, int bit)
{
    ++_errors;
    if (_commits <= _maxLines) {
        _os << core.name() << " !!!! bit flip r"
            << static_cast<int>(reg) << " bit " << bit << "\n";
    }
}

} // namespace commguard
