#include "machine/trace.hh"

#include "isa/program.hh"
#include "machine/core.hh"
#include "queue/queue_base.hh"

namespace commguard
{

// ---------------------------------------------------------------------
// FanOutSink
// ---------------------------------------------------------------------

void
FanOutSink::addSink(TraceSink *sink)
{
    if (sink != nullptr)
        _sinks.push_back(sink);
}

void
FanOutSink::onCommit(const Core &core, Count pc, const isa::Inst &inst)
{
    for (TraceSink *sink : _sinks)
        sink->onCommit(core, pc, inst);
}

void
FanOutSink::onInvocationStart(const Core &core)
{
    for (TraceSink *sink : _sinks)
        sink->onInvocationStart(core);
}

void
FanOutSink::onErrorInjected(const Core &core, isa::Reg reg, int bit)
{
    for (TraceSink *sink : _sinks)
        sink->onErrorInjected(core, reg, bit);
}

void
FanOutSink::onQueuePush(const Core &core, int port)
{
    for (TraceSink *sink : _sinks)
        sink->onQueuePush(core, port);
}

void
FanOutSink::onQueuePop(const Core &core, int port)
{
    for (TraceSink *sink : _sinks)
        sink->onQueuePop(core, port);
}

void
FanOutSink::onQueueBlock(const Core &core, int port, bool is_pop)
{
    for (TraceSink *sink : _sinks)
        sink->onQueueBlock(core, port, is_pop);
}

void
FanOutSink::onQueueUnblock(const Core &core, int port, bool is_pop)
{
    for (TraceSink *sink : _sinks)
        sink->onQueueUnblock(core, port, is_pop);
}

void
FanOutSink::onQueueCorrupt(const Core &core, const QueueBase &queue)
{
    for (TraceSink *sink : _sinks)
        sink->onQueueCorrupt(core, queue);
}

void
FanOutSink::onQueueDepth(const Core &core, const QueueBase &queue,
                         std::size_t depth)
{
    for (TraceSink *sink : _sinks)
        sink->onQueueDepth(core, queue, depth);
}

void
FanOutSink::onPopTimeout(const Core &core, int port)
{
    for (TraceSink *sink : _sinks)
        sink->onPopTimeout(core, port);
}

void
FanOutSink::onPushTimeout(const Core &core, int port)
{
    for (TraceSink *sink : _sinks)
        sink->onPushTimeout(core, port);
}

void
FanOutSink::onWatchdogTrip(const Core &core, bool nested)
{
    for (TraceSink *sink : _sinks)
        sink->onWatchdogTrip(core, nested);
}

void
FanOutSink::onHeaderInsert(const Core &core, int port,
                           const QueueBase &queue, FrameId frame)
{
    for (TraceSink *sink : _sinks)
        sink->onHeaderInsert(core, port, queue, frame);
}

void
FanOutSink::onHeaderDropped(const Core &core, int port)
{
    for (TraceSink *sink : _sinks)
        sink->onHeaderDropped(core, port);
}

void
FanOutSink::onAmTransition(const Core &core, int port,
                           std::uint8_t from, std::uint8_t to,
                           Word info)
{
    for (TraceSink *sink : _sinks)
        sink->onAmTransition(core, port, from, to, info);
}

void
FanOutSink::onAmPad(const Core &core, int port)
{
    for (TraceSink *sink : _sinks)
        sink->onAmPad(core, port);
}

void
FanOutSink::onAmDiscardItem(const Core &core, int port)
{
    for (TraceSink *sink : _sinks)
        sink->onAmDiscardItem(core, port);
}

void
FanOutSink::onAmDiscardHeader(const Core &core, int port)
{
    for (TraceSink *sink : _sinks)
        sink->onAmDiscardHeader(core, port);
}

// ---------------------------------------------------------------------
// TextTracer
// ---------------------------------------------------------------------

void
TextTracer::onCommit(const Core &core, Count pc, const isa::Inst &inst)
{
    ++_commits;
    if (_commits > _maxLines) {
        if (_commits == _maxLines + 1)
            _os << core.name() << ": ... (trace line budget reached; "
                << "counting silently)\n";
        return;
    }
    _os << core.name() << " [" << pc << "] "
        << isa::disassemble(inst) << "\n";
}

void
TextTracer::onInvocationStart(const Core &core)
{
    if (_commits <= _maxLines) {
        _os << core.name() << " ---- invocation "
            << core.counters().invocations << " ----\n";
    }
}

void
TextTracer::onErrorInjected(const Core &core, isa::Reg reg, int bit)
{
    ++_errors;
    if (_commits <= _maxLines) {
        _os << core.name() << " !!!! bit flip r"
            << static_cast<int>(reg) << " bit " << bit << "\n";
    }
}

// ---------------------------------------------------------------------
// EventTracer
// ---------------------------------------------------------------------

using trace::EventKind;

void
EventTracer::onInvocationStart(const Core &core)
{
    _trace.record(_track, core.cycles(), EventKind::InvocationStart, 0,
                  0,
                  static_cast<Word>(core.counters().invocations));
}

void
EventTracer::onErrorInjected(const Core &core, isa::Reg reg, int bit)
{
    _trace.record(_track, core.cycles(), EventKind::ErrorInjected,
                  static_cast<std::uint8_t>(reg),
                  static_cast<std::uint16_t>(bit));
}

void
EventTracer::onQueuePush(const Core &core, int port)
{
    _trace.record(_track, core.cycles(), EventKind::QueuePush,
                  static_cast<std::uint8_t>(port));
}

void
EventTracer::onQueuePop(const Core &core, int port)
{
    _trace.record(_track, core.cycles(), EventKind::QueuePop,
                  static_cast<std::uint8_t>(port));
}

void
EventTracer::onQueueBlock(const Core &core, int port, bool is_pop)
{
    _trace.record(_track, core.cycles(), EventKind::QueueBlock,
                  static_cast<std::uint8_t>(port), is_pop ? 1 : 0);
}

void
EventTracer::onQueueUnblock(const Core &core, int port, bool is_pop)
{
    _trace.record(_track, core.cycles(), EventKind::QueueUnblock,
                  static_cast<std::uint8_t>(port), is_pop ? 1 : 0);
}

void
EventTracer::onQueueCorrupt(const Core &core, const QueueBase &queue)
{
    _trace.record(_track, core.cycles(), EventKind::QueueCorrupt, 0,
                  _trace.queueId(&queue));
}

void
EventTracer::onQueueDepth(const Core &core, const QueueBase &queue,
                          std::size_t depth)
{
    _trace.record(_track, core.cycles(), EventKind::QueueDepth, 0,
                  _trace.queueId(&queue), static_cast<Word>(depth));
}

void
EventTracer::onPopTimeout(const Core &core, int port)
{
    _trace.record(_track, core.cycles(), EventKind::PopTimeout,
                  static_cast<std::uint8_t>(port));
}

void
EventTracer::onPushTimeout(const Core &core, int port)
{
    _trace.record(_track, core.cycles(), EventKind::PushTimeout,
                  static_cast<std::uint8_t>(port));
}

void
EventTracer::onWatchdogTrip(const Core &core, bool nested)
{
    _trace.record(_track, core.cycles(), EventKind::WatchdogTrip,
                  nested ? 1 : 0);
}

void
EventTracer::onHeaderInsert(const Core &core, int port,
                            const QueueBase &queue, FrameId frame)
{
    _trace.record(_track, core.cycles(), EventKind::HeaderInsert,
                  static_cast<std::uint8_t>(port),
                  _trace.queueId(&queue), static_cast<Word>(frame));
}

void
EventTracer::onHeaderDropped(const Core &core, int port)
{
    _trace.record(_track, core.cycles(), EventKind::HeaderDropped,
                  static_cast<std::uint8_t>(port));
}

void
EventTracer::onAmTransition(const Core &core, int port,
                            std::uint8_t from, std::uint8_t to,
                            Word info)
{
    const std::uint16_t packed = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(from) << 8) | to);
    _trace.record(_track, core.cycles(), EventKind::AmTransition,
                  static_cast<std::uint8_t>(port), packed, info);
}

void
EventTracer::onAmPad(const Core &core, int port)
{
    _trace.record(_track, core.cycles(), EventKind::AmPad,
                  static_cast<std::uint8_t>(port));
}

void
EventTracer::onAmDiscardItem(const Core &core, int port)
{
    _trace.record(_track, core.cycles(), EventKind::AmDiscardItem,
                  static_cast<std::uint8_t>(port));
}

void
EventTracer::onAmDiscardHeader(const Core &core, int port)
{
    _trace.record(_track, core.cycles(), EventKind::AmDiscardHeader,
                  static_cast<std::uint8_t>(port));
}

} // namespace commguard
