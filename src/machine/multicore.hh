/**
 * @file
 * The simulated multicore system: cores, queues, backends, runtimes,
 * and the cooperative scheduler.
 *
 * Mirrors the paper's experimental platform (§6): N cores, each running
 * one streaming thread, communicating through queues. The scheduler is
 * a round-robin interleaver with per-thread slices; blocked threads are
 * revisited, and the queue-manager timeout mechanism (§5.1) plus a
 * global deadlock breaker guarantee that even catastrophically
 * corrupted configurations keep making progress — the paper's first
 * operational requirement (no crash, no hang).
 */

#ifndef COMMGUARD_MACHINE_MULTICORE_HH
#define COMMGUARD_MACHINE_MULTICORE_HH

#include <memory>
#include <vector>

#include "common/metrics.hh"
#include "common/recycle_pool.hh"
#include "common/stats.hh"
#include "common/telemetry.hh"
#include "machine/core.hh"
#include "machine/core_runtime.hh"
#include "queue/queue_base.hh"

namespace commguard
{

/** System-level configuration. */
struct MachineConfig
{
    /** Instructions per scheduling slice per thread. */
    Count sliceInstructions = 50'000;

    /** Consecutive fully-blocked slices before a QM timeout fires. */
    Count timeoutRounds = 2'000;

    /** Abort threshold on total committed instructions (safety net). */
    Count globalWatchdogInsts = 50'000'000'000ull;

    TimingConfig timing;
    PpuConfig ppu;

    /**
     * Record the frame-lifecycle event trace (docs/TRACING.md). Off by
     * default; one EventBuffer per core plus a machine track.
     */
    bool traceEvents = false;

    /** Ring capacity (events) of each trace track when enabled. */
    std::size_t traceCapacityPerTrack = 1u << 16;

    /**
     * Sample the metric registry every N scheduler rounds into the
     * run's TelemetryRecorder (docs/TELEMETRY.md). 0 disables
     * sampling. The cadence is simulated time, so the recorded series
     * is independent of host scheduling and CG_JOBS.
     */
    Count telemetrySlices = 0;

    /** Retained interval samples per run before the delta ring folds
     *  the oldest into its base (bounded memory). */
    std::size_t telemetryRingCapacity = 512;
};

/** Result of driving a system to completion. */
struct MachineRunResult
{
    bool completed = false;      //!< All threads finished.
    Count totalInstructions = 0;
    Cycle totalCycles = 0;
    Count timeoutsFired = 0;
    Count deadlockBreaks = 0;
};

/**
 * Owner of all simulated components and the scheduler.
 */
class Multicore
{
  public:
    explicit Multicore(MachineConfig config = {})
        : _config(config),
          _timeoutsFired(_metrics.counter("machine/timeoutsFired")),
          _deadlockBreaks(_metrics.counter("machine/deadlockBreaks"))
    {
        if (_config.traceEvents)
            enableEventTrace();
        if (_config.telemetrySlices > 0)
            enableTelemetry();
    }

    /**
     * Bind the freelist cores acquire their local memory from (sweep
     * hot path; not owned, must outlive the machine). Call before the
     * first addCore(); null keeps plain allocation.
     */
    void setCoreMemoryPool(RecyclePool<Word> *pool)
    {
        _coreMemoryPool = pool;
    }

    /** Create a new core (owned by the machine). */
    Core &addCore(const std::string &name);

    /** Transfer ownership of a queue to the machine. */
    QueueBase &addQueue(std::unique_ptr<QueueBase> queue);

    /** Transfer ownership of a backend to the machine. */
    CommBackend &addBackend(std::unique_ptr<CommBackend> backend);

    /** Register a runtime driving @p core through @p total_frames. */
    CoreRuntime &addRuntime(Core &core, CommBackend &backend,
                            Count total_frames);

    /** What one incremental scheduler round observed. */
    enum class RoundStatus
    {
        Running,       //!< At least one thread still has work.
        AllFinished,   //!< Every thread has finished.
        WatchdogAbort, //!< Global instruction watchdog tripped.
    };

    /**
     * Execute one scheduler round: give every unfinished thread a
     * slice, apply the QM-timeout and deadlock-break policies, sample
     * telemetry on the round cadence. The machine keeps all scheduling
     * state (round counter, per-thread blocked-round tallies) across
     * calls, so a caller may pause between rounds, reconfigure live
     * components (error injectors, programs), and resume — the service
     * driver's pause/reconfigure/resume lifecycle (docs/SERVICE.md).
     */
    RoundStatus stepRound();

    /**
     * Close out an incremental run: take the final telemetry sample
     * and assemble the run result. run() == stepRound() until not
     * Running, then finish().
     */
    MachineRunResult finish();

    /** Drive every thread to completion. */
    MachineRunResult run();

    /** Scheduler rounds executed so far (the telemetry slice clock). */
    Count schedulerRound() const { return _round; }

    /** Whether every registered runtime has finished. */
    bool allRuntimesFinished() const;

    /** Sum of committed instructions over all cores. */
    Count totalCommittedInsts() const;

    /** Sum of cycles over all cores. */
    Cycle totalCycles() const;

    /** Export the full statistics tree (cores, backends, queues). */
    StatGroup collectStats() const;

    /**
     * Per-run metric directory: every component registered its
     * counters here when it was added to the machine. snapshot() it
     * after run() for the run's complete observability record.
     */
    metrics::Registry &metrics() { return _metrics; }
    const metrics::Registry &metrics() const { return _metrics; }

    /**
     * Start recording the frame-lifecycle event trace: one track per
     * core (existing cores are wired retroactively; later addCore()
     * calls attach automatically) plus a machine track for scheduler
     * events. Idempotent.
     */
    void enableEventTrace();

    /**
     * The run's event trace; nullptr when tracing is off. Shared so a
     * caller can keep the trace alive past the machine's lifetime.
     */
    std::shared_ptr<trace::EventTrace> eventTrace() const
    {
        return _eventTrace;
    }

    /**
     * Start in-run metric sampling (docs/TELEMETRY.md): the scheduler
     * loop snapshots the registry every config().telemetrySlices
     * rounds into a bounded delta ring, plus one final end-of-run
     * sample. Idempotent.
     */
    void enableTelemetry();

    /**
     * The run's telemetry recorder; nullptr when sampling is off.
     * Shared so a caller can keep the series alive past the machine's
     * lifetime (same contract as eventTrace()).
     */
    std::shared_ptr<telemetry::TelemetryRecorder>
    telemetryRecorder() const
    {
        return _telemetry;
    }

    MachineConfig &config() { return _config; }
    std::vector<std::unique_ptr<Core>> &cores() { return _cores; }
    std::vector<std::unique_ptr<QueueBase>> &queues() { return _queues; }
    std::vector<std::unique_ptr<CoreRuntime>> &runtimes()
    {
        return _runtimes;
    }

  private:
    MachineConfig _config;
    metrics::Registry _metrics;
    RecyclePool<Word> *_coreMemoryPool = nullptr;  //!< Not owned.

    // Scheduler-level counters (owned by the registry).
    metrics::Counter &_timeoutsFired;
    metrics::Counter &_deadlockBreaks;

    std::vector<std::unique_ptr<Core>> _cores;
    std::vector<std::unique_ptr<QueueBase>> _queues;
    std::vector<std::unique_ptr<CommBackend>> _backends;
    std::vector<std::unique_ptr<CoreRuntime>> _runtimes;

    // Incremental-scheduler state (stepRound()): the round counter
    // doubles as the telemetry slice clock, so it must survive pauses.
    Count _round = 0;
    std::vector<Count> _blockedRounds;

    // Event tracing (null when off). The tracers are the per-core
    // TraceSink adapters; _machineTrack records scheduler events.
    std::shared_ptr<trace::EventTrace> _eventTrace;
    trace::EventBuffer *_machineTrack = nullptr;
    std::vector<std::unique_ptr<EventTracer>> _tracers;

    // In-run metric sampling (null when off).
    std::shared_ptr<telemetry::TelemetryRecorder> _telemetry;
};

} // namespace commguard

#endif // COMMGUARD_MACHINE_MULTICORE_HH
