/**
 * @file
 * N-modular firing replication with output voting.
 *
 * ReplicateBackend protects the *computation* of each filter firing
 * rather than the communication substrate: every frame-computation
 * invocation is executed R times (default 2) against the same inputs,
 * the replicas' outputs are compared word-by-word by the reliable
 * runtime, and only the voted result is pushed downstream. Inputs are
 * popped once (by replica 0), logged, and replayed to later replicas;
 * the core's store journal rolls the memory image back between
 * replicas so every replica starts from the same state.
 *
 * The backend rides the reliable-queue substrate (the registry pairs
 * it with ReliableQueue edges), so its failure model is pure compute
 * errors — the dual of CommGuard, which protects the queues and leaves
 * the computation exposed. Voting work is charged via
 * Core::chargeReliableOps so overhead comparisons see the replication
 * cost without exposing it to error injection.
 */

#ifndef COMMGUARD_MACHINE_REPLICATE_BACKEND_HH
#define COMMGUARD_MACHINE_REPLICATE_BACKEND_HH

#include <cstddef>
#include <string>
#include <vector>

#include "machine/comm_backend.hh"

namespace commguard
{

/** Hot-path counters of the replication runtime. */
struct ReplCounters
{
    using Counter = metrics::Counter;

    Counter replays;           //!< Extra (non-first) replica executions.
    Counter votedWords;        //!< Output words flushed after voting.
    Counter voteMismatches;    //!< Output positions where replicas split.
    Counter votedCorrections;  //!< Positions where replica 0 was outvoted.
    Counter replayUnderflows;  //!< Replayed pops past the input log.
    Counter flushDrops;        //!< Voted words dropped on flush timeout.

    void
    linkTo(metrics::Registry &registry, const std::string &prefix) const
    {
        registry.link(prefix + "/replays", replays);
        registry.link(prefix + "/votedWords", votedWords);
        registry.link(prefix + "/voteMismatches", voteMismatches);
        registry.link(prefix + "/votedCorrections", votedCorrections);
        registry.link(prefix + "/replayUnderflows", replayUnderflows);
        registry.link(prefix + "/flushDrops", flushDrops);
    }

    void
    exportTo(StatGroup &group) const
    {
        group.set("replays", replays);
        group.set("votedWords", votedWords);
        group.set("voteMismatches", voteMismatches);
        group.set("votedCorrections", votedCorrections);
        group.set("replayUnderflows", replayUnderflows);
        group.set("flushDrops", flushDrops);
    }
};

/**
 * Per-core replication endpoint: record/replay inputs, buffer and vote
 * outputs, demand invocation replays from the runtime.
 */
class ReplicateBackend : public CommBackend
{
  public:
    /**
     * @param ins      Incoming queues.
     * @param outs     Outgoing queues.
     * @param replicas Executions per invocation (>= 2).
     */
    ReplicateBackend(std::vector<QueueBase *> ins,
                     std::vector<QueueBase *> outs, int replicas = 2);

    /** Enables store journaling on the core for replay rollback. */
    void bindCore(Core *core) override;

    QueueOpStatus push(int port, Word value) override;
    BackendPopResult pop(int port) override;

    QueueOpStatus
    newFrameComputation() override
    {
        return QueueOpStatus::Ok;
    }

    QueueOpStatus
    endOfComputation() override
    {
        return QueueOpStatus::Ok;
    }

    InvocationVerdict invocationDone() override;

    Word timeoutPop(int port) override;
    void timeoutFrameEvent() override;

    void exportStats(StatGroup &group) const override;

    void
    linkMetrics(metrics::Registry &registry,
                const std::string &prefix) override
    {
        _counters.linkTo(registry, "repl/" + prefix);
    }

    int replicas() const { return _replicas; }
    ReplCounters &counters() { return _counters; }
    const ReplCounters &counters() const { return _counters; }

  private:
    /** Majority-vote the buffered replica outputs into _voted. */
    void voteOutputs();

    std::vector<QueueBase *> _ins;
    std::vector<QueueBase *> _outs;
    int _replicas;

    ReplCounters _counters;

    /** Values replica 0 popped, replayed to later replicas. */
    std::vector<std::vector<Word>> _inLog;
    std::vector<std::size_t> _inCursor;

    /** Per-replica, per-port buffered outputs. */
    std::vector<std::vector<std::vector<Word>>> _outBuf;

    /** Current replica index (0 = the recording execution). */
    int _replica = 0;

    /** Voted outputs being flushed (resumable across Blocked). */
    bool _flushing = false;
    std::vector<std::vector<Word>> _voted;
    std::size_t _flushPort = 0;
    std::size_t _flushIndex = 0;
};

} // namespace commguard

#endif // COMMGUARD_MACHINE_REPLICATE_BACKEND_HH
