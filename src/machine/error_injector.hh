/**
 * @file
 * Architectural error injection (paper §6, "Simulation").
 *
 * "Every core in our simulator implements an error injection module that
 * randomly flips bits in the register file. Each error injector picks a
 * random target cycle in the future following the mean error rate, and
 * flips a random bit in the register file when the simulation reaches
 * the target cycle." Inter-arrival times are exponentially distributed
 * with mean MTBE (in committed instructions); each core's injector is
 * independent with its own RNG.
 */

#ifndef COMMGUARD_MACHINE_ERROR_INJECTOR_HH
#define COMMGUARD_MACHINE_ERROR_INJECTOR_HH

#include <cmath>
#include <functional>

#include "common/metrics.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace commguard
{

/**
 * Per-core exponential error process over committed instructions.
 */
class ErrorInjector
{
  public:
    struct Config
    {
        bool enabled = false;
        double mtbe = 1e6;        //!< Mean instructions between errors.
        std::uint64_t seed = 1;

        /**
         * When false (default), flips target only the registers the
         * loaded program references — modeling the paper's small,
         * fully-live x86 register file. When true, flips target all
         * 31 architectural registers uniformly (ablation knob).
         */
        bool flipAllRegisters = false;
    };

    ErrorInjector() = default;

    /** (Re)configure and restart the error process. */
    void
    configure(const Config &config)
    {
        _config = config;
        _rng.seed(config.seed);
        _untilNext = _config.enabled
            ? _rng.exponential(_config.mtbe) : 0.0;
    }

    /**
     * Advance the process by @p insts committed instructions, invoking
     * @p on_error once per scheduled error in the window.
     */
    template <typename F>
    void
    advance(Count insts, F &&on_error)
    {
        if (!_config.enabled)
            return;
        _untilNext -= static_cast<double>(insts);
        while (_untilNext <= 0.0) {
            on_error();
            ++_errorsInjected;
            _untilNext += _rng.exponential(_config.mtbe);
        }
    }

    /** Countdown value meaning "no error will ever fire" (disabled). */
    static constexpr Count noErrorScheduled = ~Count{0};

    /**
     * Integer commits until the next scheduled error: advancing by
     * countdown() instructions fires at least one error, while any
     * smaller advance fires none. Never 0 while enabled (an error due
     * "now" fires on the next commit, exactly like advance(1) on the
     * continuous process); noErrorScheduled when disabled.
     *
     * This is the interpreter's fast path: Core caches this value and
     * batch-decrements a plain integer per commit instead of paying a
     * double subtract + compare, resyncing through advance() only when
     * the cached countdown reaches zero — the same error schedule,
     * bit for bit.
     */
    Count
    countdown() const
    {
        if (!_config.enabled)
            return noErrorScheduled;
        const double next = std::ceil(_untilNext);
        return next < 1.0 ? 1 : static_cast<Count>(next);
    }

    /** RNG used to pick flip targets (shared with the error process). */
    Rng &rng() { return _rng; }

    bool enabled() const { return _config.enabled; }
    double mtbe() const { return _config.mtbe; }
    bool flipAllRegisters() const { return _config.flipAllRegisters; }
    Count errorsInjected() const { return _errorsInjected; }

    /** Counter handle for metrics-registry linking. */
    const metrics::Counter &
    errorsInjectedCounter() const
    {
        return _errorsInjected;
    }

  private:
    Config _config;
    Rng _rng;
    double _untilNext = 0.0;
    metrics::Counter _errorsInjected;
};

} // namespace commguard

#endif // COMMGUARD_MACHINE_ERROR_INJECTOR_HH
