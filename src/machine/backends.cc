#include "machine/backends.hh"

#include "common/logging.hh"
#include "machine/core.hh"

namespace commguard
{

// ---------------------------------------------------------------------
// RawBackend
// ---------------------------------------------------------------------

QueueOpStatus
RawBackend::push(int port, Word value)
{
    QueueBase &queue = *_outs[port];
    const QueueOpStatus status = queue.tryPush(makeItem(value));
    if (status == QueueOpStatus::Ok && queue.opCost() > 0) {
        // Software queue routine: its pointer state is register-
        // resident for the duration of the routine (QME exposure).
        _core->exposeQueueWindow(queue.opCost(), queue);
    }
    if (status == QueueOpStatus::Ok) {
        if (TraceSink *t = _core->traceSink()) [[unlikely]]
            t->onQueueDepth(*_core, queue, queue.size());
    }
    return status;
}

BackendPopResult
RawBackend::pop(int port)
{
    QueueBase &queue = *_ins[port];
    QueueWord word;
    if (queue.tryPop(word) == QueueOpStatus::Blocked)
        return {true, 0};
    if (queue.opCost() > 0)
        _core->exposeQueueWindow(queue.opCost(), queue);
    if (TraceSink *t = _core->traceSink()) [[unlikely]]
        t->onQueueDepth(*_core, queue, queue.size());
    // Headers never reach raw configurations; if one does (miswired
    // test), its raw value passes through as a data item.
    return {false, word.value};
}

// ---------------------------------------------------------------------
// CommGuardBackend
// ---------------------------------------------------------------------

CommGuardBackend::CommGuardBackend(std::vector<QueueBase *> ins,
                                   std::vector<QueueBase *> outs,
                                   Count frame_downscale)
    : CommGuardBackend(
          ins, outs,
          std::vector<Count>(ins.size(), frame_downscale),
          std::vector<Count>(outs.size(), frame_downscale))
{
}

CommGuardBackend::CommGuardBackend(std::vector<QueueBase *> ins,
                                   std::vector<QueueBase *> outs,
                                   std::vector<Count> in_scales,
                                   std::vector<Count> out_scales,
                                   std::vector<bool> in_guarded)
    : _inGuarded(std::move(in_guarded)), _fallbackFc(1, &_counters)
{
    if (in_scales.size() != ins.size() ||
        out_scales.size() != outs.size())
        panic("CommGuardBackend: per-edge scale count mismatch");
    if (_inGuarded.empty())
        _inGuarded.assign(ins.size(), true);
    if (_inGuarded.size() != ins.size())
        panic("CommGuardBackend: per-edge guard count mismatch");

    _inQms.reserve(ins.size());
    _ams.reserve(ins.size());
    _inFcs.reserve(ins.size());
    for (std::size_t i = 0; i < ins.size(); ++i) {
        _inQms.emplace_back(*ins[i], _counters);
        _ams.emplace_back(_counters);
        _inFcs.emplace_back(in_scales[i], &_counters);
    }

    _outQms.reserve(outs.size());
    _outFcs.reserve(outs.size());
    for (std::size_t i = 0; i < outs.size(); ++i) {
        _outQms.emplace_back(*outs[i], _counters);
        _outFcs.emplace_back(out_scales[i], &_counters);
    }
    // Separate loop: _outQms is fully built, so pointers are stable.
    for (QueueManager &qm : _outQms) {
        _his.push_back(std::make_unique<HeaderInserter>(
            std::vector<QueueManager *>{&qm}, _counters));
    }
    _outNeedsHeader.assign(outs.size(), false);
}

ActiveFcCounter &
CommGuardBackend::activeFc()
{
    if (!_outFcs.empty())
        return _outFcs.front();
    if (!_inFcs.empty())
        return _inFcs.front();
    return _fallbackFc;
}

QueueOpStatus
CommGuardBackend::push(int port, Word value)
{
    const QueueOpStatus status = _outQms[port].pushItem(value);
    if (status == QueueOpStatus::Ok) {
        if (TraceSink *t = _core->traceSink()) [[unlikely]] {
            QueueBase &queue = _outQms[port].queue();
            t->onQueueDepth(*_core, queue, queue.size());
        }
    }
    return status;
}

BackendPopResult
CommGuardBackend::pop(int port)
{
    if (!_inGuarded[port]) {
        // Unguarded edge (ablation): plain QM pop, no alignment.
        QueueWord word;
        if (_inQms[port].pop(word) == QueueOpStatus::Blocked)
            return {true, 0};
        ++_counters.acceptedItems;
        if (TraceSink *t = _core->traceSink()) [[unlikely]] {
            QueueBase &queue = _inQms[port].queue();
            t->onQueueDepth(*_core, queue, queue.size());
        }
        return {false, word.value};
    }

    // Snapshot the AM-visible state so an attached tracer can replay
    // what this evaluation did as per-unit events (counter diffing:
    // the AM itself stays trace-free).
    const AmState am_before = _ams[port].state();
    const Count pads_before = _counters.paddedItems;
    const Count items_before = _counters.discardedItems;
    const Count headers_before = _counters.discardedHeaders;

    const Count before = _counters.dataLoads + _counters.headerLoads;
    const AmPopResult result =
        _ams[port].onPop(_inQms[port], _inFcs[port].value());
    // Charge memory-subsystem cycles for queue words consumed beyond
    // the one the core's own pop commit accounts for (discarded items
    // and header pops).
    const Count consumed =
        _counters.dataLoads + _counters.headerLoads - before;
    for (Count i = 1; i < consumed; ++i)
        _core->chargeQueueTransfer();

    if (TraceSink *t = _core->traceSink()) [[unlikely]] {
        for (Count k = _counters.discardedItems - items_before; k > 0;
             --k)
            t->onAmDiscardItem(*_core, port);
        for (Count k = _counters.discardedHeaders - headers_before;
             k > 0; --k)
            t->onAmDiscardHeader(*_core, port);
        for (Count k = _counters.paddedItems - pads_before; k > 0; --k)
            t->onAmPad(*_core, port);
        const AmState am_after = _ams[port].state();
        if (am_after != am_before) {
            // Repairs precede the transition so a realignment episode
            // closes after its pads/discards (forensics join order).
            const Word info =
                am_after == AmState::Pdg
                    ? static_cast<Word>(_ams[port].pendingHeader())
                    : static_cast<Word>(_inFcs[port].value());
            t->onAmTransition(*_core, port,
                              static_cast<std::uint8_t>(am_before),
                              static_cast<std::uint8_t>(am_after),
                              info);
        }
        if (result.kind != AmPopResult::Kind::Blocked) {
            QueueBase &queue = _inQms[port].queue();
            t->onQueueDepth(*_core, queue, queue.size());
        }
    }

    if (result.kind == AmPopResult::Kind::Blocked)
        return {true, 0};
    return {false, result.value};
}

QueueOpStatus
CommGuardBackend::newFrameComputation()
{
    TraceSink *t = _core->traceSink();
    if (!_framePending) {
        _framePending = true;

        // The PPU module ticks every frame domain's redundant
        // active-fc counter once per frame computation (§5.4).
        for (std::size_t i = 0; i < _inFcs.size(); ++i) {
            const ActiveFcCounter::Tick tick =
                _inFcs[i].onFrameComputation();
            if (tick.newFrame) {
                const AmState am_before = _ams[i].state();
                _ams[i].onNewFrameComputation(tick.id);
                if (t != nullptr &&
                    _ams[i].state() != am_before) [[unlikely]] {
                    t->onAmTransition(
                        *_core, static_cast<int>(i),
                        static_cast<std::uint8_t>(am_before),
                        static_cast<std::uint8_t>(_ams[i].state()),
                        static_cast<Word>(tick.id));
                }
            }
        }
        for (std::size_t i = 0; i < _outFcs.size(); ++i) {
            const ActiveFcCounter::Tick tick =
                _outFcs[i].onFrameComputation();
            _outNeedsHeader[i] = tick.newFrame;
        }
        _nextHeaderEdge = 0;
    }

    for (; _nextHeaderEdge < _outQms.size(); ++_nextHeaderEdge) {
        if (!_outNeedsHeader[_nextHeaderEdge])
            continue;
        // A retry that resumes past a skipped (timed-out) port
        // completes without storing a header, so the event must track
        // the counter, not the call.
        const Count stores_before = _counters.headerStores;
        if (_his[_nextHeaderEdge]->insert(
                _outFcs[_nextHeaderEdge].value()) ==
            QueueOpStatus::Blocked) {
            return QueueOpStatus::Blocked;
        }
        if (t != nullptr &&
            _counters.headerStores != stores_before) [[unlikely]] {
            QueueBase &queue = _outQms[_nextHeaderEdge].queue();
            t->onHeaderInsert(*_core,
                              static_cast<int>(_nextHeaderEdge), queue,
                              _outFcs[_nextHeaderEdge].value());
            t->onQueueDepth(*_core, queue, queue.size());
        }
        // Header pushes are extra memory traffic on the producer core.
        _core->chargeQueueTransfer();
    }

    _framePending = false;
    return QueueOpStatus::Ok;
}

QueueOpStatus
CommGuardBackend::endOfComputation()
{
    for (; _eocEdge < _his.size(); ++_eocEdge) {
        const Count stores_before = _counters.headerStores;
        if (_his[_eocEdge]->insertEndOfComputation() ==
            QueueOpStatus::Blocked) {
            return QueueOpStatus::Blocked;
        }
        if (TraceSink *t = _core->traceSink();
            t != nullptr && _counters.headerStores != stores_before)
            [[unlikely]] {
            QueueBase &queue = _outQms[_eocEdge].queue();
            t->onHeaderInsert(*_core, static_cast<int>(_eocEdge),
                              queue, endOfComputationId);
            t->onQueueDepth(*_core, queue, queue.size());
        }
    }
    return QueueOpStatus::Ok;
}

Word
CommGuardBackend::timeoutPop(int port)
{
    // Paper §5.1: "A timeout may cause incorrect data to be transmitted
    // but frame checking would still ensure alignment at the frame
    // boundaries." Deliver a benign zero; the AM state is untouched and
    // realigns on the next header.
    ++_counters.paddedItems;
    if (TraceSink *t = _core->traceSink()) [[unlikely]]
        t->onAmPad(*_core, port);
    return 0;
}

void
CommGuardBackend::timeoutFrameEvent()
{
    const Count drops_before = _counters.headerDropsOnTimeout;
    std::size_t edge = 0;
    // Give up on whichever header insertion is currently stalled.
    if (_framePending && _nextHeaderEdge < _his.size()) {
        edge = _nextHeaderEdge;
        _his[_nextHeaderEdge]->skipBlockedPort();
    } else if (_eocEdge < _his.size()) {
        edge = _eocEdge;
        _his[_eocEdge]->skipBlockedPort();
    }
    if (TraceSink *t = _core->traceSink();
        t != nullptr &&
        _counters.headerDropsOnTimeout != drops_before) [[unlikely]] {
        t->onHeaderDropped(*_core, static_cast<int>(edge));
    }
}

void
CommGuardBackend::exportStats(StatGroup &group) const
{
    _counters.exportTo(group.child("commguard"));
}

} // namespace commguard
