#include "machine/core_runtime.hh"

namespace commguard
{

CoreRuntime::StepResult
CoreRuntime::step(Count max_steps)
{
    StepResult result;
    Count remaining = max_steps;

    while (true) {
        switch (_phase) {
          case Phase::FrameStart: {
            if (_framesCompleted >= _totalFrames) {
                // Degenerate zero-frame threads.
                _phase = Phase::Ending;
                continue;
            }
            if (_backend.newFrameComputation() ==
                QueueOpStatus::Blocked) {
                result.blocked = true;
                return result;
            }
            // Frame computation invocations serialize push/pop (paper
            // §5.3): charge the pipeline flush when CommGuard is
            // active.
            if (_backend.serializesFrames())
                _core.addCycles(_timing.frameFlushCycles);
            _core.startInvocation();
            _phase = Phase::Running;
            result.progressed = true;
            continue;
          }

          case Phase::Running: {
            if (remaining == 0)
                return result;
            const RunResult run = _core.run(remaining);
            result.executed += run.executed;
            remaining -= run.executed;
            if (run.executed > 0)
                result.progressed = true;

            if (run.status == RunStatus::Done) {
                result.progressed = true;
                _phase = Phase::Committing;
                continue;
            }
            if (run.status == RunStatus::Blocked) {
                result.blocked = true;
                return result;
            }
            // OutOfSteps: slice exhausted.
            return result;
          }

          case Phase::Committing: {
            // The backend rules on the completed invocation: replicate
            // backends demand replays until every replica has run, and
            // buffered-output backends may stall flushing voted words
            // into a full queue.
            const InvocationVerdict verdict = _backend.invocationDone();
            if (verdict == InvocationVerdict::Blocked) {
                result.blocked = true;
                return result;
            }
            if (verdict == InvocationVerdict::Replay) {
                _core.startInvocation();
                _phase = Phase::Running;
                result.progressed = true;
                continue;
            }
            ++_framesCompleted;
            result.progressed = true;
            _phase = _framesCompleted >= _totalFrames
                         ? Phase::Ending
                         : Phase::FrameStart;
            continue;
          }

          case Phase::Ending: {
            if (_backend.endOfComputation() == QueueOpStatus::Blocked) {
                result.blocked = true;
                return result;
            }
            _phase = Phase::Finished;
            result.progressed = true;
            continue;
          }

          case Phase::Finished:
            result.finished = true;
            return result;
        }
    }
}

void
CoreRuntime::forceTimeout()
{
    if (_phase == Phase::Running && _core.blocked()) {
        if (_core.blockedOnPop()) {
            const Word value = _backend.timeoutPop(_core.blockedPort());
            _core.resolveBlockedPop(value);
        } else {
            _backend.timeoutPush(_core.blockedPort());
            _core.resolveBlockedPush();
        }
    } else if (_phase == Phase::FrameStart || _phase == Phase::Ending ||
               _phase == Phase::Committing) {
        _backend.timeoutFrameEvent();
    }
}

} // namespace commguard
