/**
 * @file
 * The reliable per-core runtime (the PPU protection module's sequencing
 * role, paper §4.4).
 *
 * The runtime guarantees coarse-grained forward progress: it sequences
 * the thread from one frame computation (scope) to the next, signals
 * CommGuard at each boundary, invokes the error-prone work program, and
 * after the final frame emits the end-of-computation event. It is built
 * from reliable hardware, so its own control state is never corrupted —
 * only the work inside an invocation is error-prone.
 */

#ifndef COMMGUARD_MACHINE_CORE_RUNTIME_HH
#define COMMGUARD_MACHINE_CORE_RUNTIME_HH

#include "machine/core.hh"

namespace commguard
{

/**
 * Drives one core through its fixed number of frame computations.
 */
class CoreRuntime
{
  public:
    /** Lifecycle of a thread. */
    enum class Phase
    {
        FrameStart,  //!< Signalling the next frame computation.
        Running,     //!< Executing the work program.
        Committing,  //!< Asking the backend for its invocation verdict.
        Ending,      //!< Emitting the end-of-computation markers.
        Finished,    //!< Thread complete.
    };

    /** Outcome of one scheduling slice. */
    struct StepResult
    {
        Count executed = 0;     //!< Instructions committed.
        bool progressed = false;//!< Any forward progress (incl. phase).
        bool blocked = false;   //!< Stuck on a queue operation.
        bool finished = false;  //!< Thread complete.
    };

    /**
     * @param core         The driven core.
     * @param backend      Its communication backend.
     * @param total_frames Frame computations the thread executes.
     * @param timing       Cycle-cost model (frame-boundary flushes).
     */
    CoreRuntime(Core &core, CommBackend &backend, Count total_frames,
                const TimingConfig &timing)
        : _core(core), _backend(backend), _totalFrames(total_frames),
          _timing(timing)
    {}

    /** Advance the thread by at most @p max_steps instructions. */
    StepResult step(Count max_steps);

    /**
     * Resolve whatever queue operation has been blocking this thread
     * (QM timeout, paper §5.1).
     */
    void forceTimeout();

    Phase phase() const { return _phase; }
    Count framesCompleted() const { return _framesCompleted; }
    Count totalFrames() const { return _totalFrames; }
    bool finished() const { return _phase == Phase::Finished; }
    Core &core() { return _core; }
    CommBackend &backend() { return _backend; }

  private:
    Core &_core;
    CommBackend &_backend;
    Count _totalFrames;
    TimingConfig _timing;

    Phase _phase = Phase::FrameStart;
    Count _framesCompleted = 0;
};

} // namespace commguard

#endif // COMMGUARD_MACHINE_CORE_RUNTIME_HH
