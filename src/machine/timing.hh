/**
 * @file
 * Analytic in-order timing model.
 *
 * The paper measures CommGuard's runtime overhead on real hardware by
 * serializing at frame boundaries with lfence and adding header
 * pushes/pops (§6, Fig. 13). Our functional simulator charges the same
 * two costs against a simple in-order cycle model: every instruction is
 * one cycle, memory operations cost extra cycles, queue operations cost
 * memory-subsystem cycles, and — when CommGuard is enabled — every frame
 * computation boundary flushes the pipeline ("Frame computation
 * invocations are serializing operations for push/pop instructions",
 * §5.3).
 */

#ifndef COMMGUARD_MACHINE_TIMING_HH
#define COMMGUARD_MACHINE_TIMING_HH

#include "common/types.hh"

namespace commguard
{

/**
 * Cycle costs of the in-order model.
 */
struct TimingConfig
{
    /** Extra cycles per Lw/Sw beyond the base cycle. */
    Cycle memExtraCycles = 1;

    /** Cycles per queue word transferred (push/pop memory traffic). */
    Cycle queueOpCycles = 2;

    /**
     * Pipeline-flush penalty charged at each frame computation start
     * when frame boundaries serialize (CommGuard enabled). A short
     * in-order front end drains in a few cycles; the paper's lfence
     * measurements likewise showed near-free serialization because
     * frame boundaries already follow draining queue operations.
     */
    Cycle frameFlushCycles = 4;
};

} // namespace commguard

#endif // COMMGUARD_MACHINE_TIMING_HH
