#include "machine/abft_backend.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "machine/core.hh"
#include "queue/queue_word.hh"

namespace commguard
{

AbftBackend::AbftBackend(std::vector<QueueBase *> ins,
                         std::vector<QueueBase *> outs,
                         std::vector<bool> in_guarded,
                         std::vector<Count> in_block_items,
                         std::vector<Count> out_block_items,
                         std::vector<Count> in_total_items,
                         std::vector<Count> out_total_items)
    : _ins(std::move(ins)), _outs(std::move(outs))
{
    if (in_guarded.size() != _ins.size() ||
        in_block_items.size() != _ins.size() ||
        in_total_items.size() != _ins.size())
        panic("AbftBackend: per-input vector count mismatch");
    if (out_block_items.size() != _outs.size() ||
        out_total_items.size() != _outs.size())
        panic("AbftBackend: per-output vector count mismatch");

    _in.resize(_ins.size());
    for (std::size_t i = 0; i < _ins.size(); ++i) {
        _in[i].guarded = in_guarded[i];
        _in[i].blockItems = in_block_items[i] > 0 ? in_block_items[i]
                                                  : Count(1);
        _in[i].totalItems = in_total_items[i];
    }
    _out.resize(_outs.size());
    for (std::size_t i = 0; i < _outs.size(); ++i) {
        _out[i].blockItems = out_block_items[i] > 0 ? out_block_items[i]
                                                    : Count(1);
        _out[i].totalItems = out_total_items[i];
    }
}

// ---------------------------------------------------------------------
// Producer side
// ---------------------------------------------------------------------

void
AbftBackend::sealBlock(OutState &out)
{
    out.pendS = out.runS;
    out.pendW = out.runW;
    out.pendLeft = 2;
    out.runS = 0;
    out.runW = 0;
    out.runCount = 0;
    ++_counters.checksumBlocks;
}

bool
AbftBackend::flushPending(int port, OutState &out)
{
    QueueBase &queue = *_outs[port];
    while (out.pendLeft > 0) {
        const Word checksum = out.pendLeft == 2 ? out.pendS : out.pendW;
        if (queue.tryPush(makeHeader(
                static_cast<FrameId>(checksum))) ==
            QueueOpStatus::Blocked)
            return false;
        --out.pendLeft;
        // Checksum words are extra memory traffic beyond the data
        // pushes the core's own commits account for. The reliable
        // ABFT module runs their queue routine, so the cost is
        // charged as reliable ops — never against the PPU scope
        // budget (whose loader estimate covers data rates only) and
        // never exposed to injection.
        _core->chargeQueueTransfer();
        _core->chargeReliableOps(queue.opCost());
        if (TraceSink *t = _core->traceSink()) [[unlikely]]
            t->onQueueDepth(*_core, queue, queue.size());
    }
    return true;
}

QueueOpStatus
AbftBackend::push(int port, Word value)
{
    OutState &out = _out[port];
    if (!flushPending(port, out))
        return QueueOpStatus::Blocked;

    QueueBase &queue = *_outs[port];
    if (queue.tryPush(makeItem(value)) == QueueOpStatus::Blocked)
        return QueueOpStatus::Blocked;
    if (queue.opCost() > 0)
        _core->exposeQueueWindow(queue.opCost(), queue);
    if (TraceSink *t = _core->traceSink()) [[unlikely]]
        t->onQueueDepth(*_core, queue, queue.size());

    out.runS += value;
    out.runW += static_cast<Word>(out.runCount + 1) * value;
    ++out.runCount;
    ++out.pushed;
    _core->chargeReliableOps(abftInstsPerItem);
    if (out.runCount >= out.blockItems)
        sealBlock(out);
    return QueueOpStatus::Ok;
}

QueueOpStatus
AbftBackend::endOfComputation()
{
    for (; _eocPort < _outs.size(); ++_eocPort) {
        OutState &out = _out[_eocPort];
        if (!flushPending(static_cast<int>(_eocPort), out))
            return QueueOpStatus::Blocked;
        if (out.runCount > 0) {
            // Seal the final partial block so its items stay covered.
            sealBlock(out);
            if (!flushPending(static_cast<int>(_eocPort), out))
                return QueueOpStatus::Blocked;
        }
    }
    return QueueOpStatus::Ok;
}

void
AbftBackend::timeoutPush(int port)
{
    // If the stall was a pending checksum word, give up on it so data
    // can flow again; the core drops the data item either way.
    OutState &out = _out[port];
    if (out.pendLeft > 0) {
        --out.pendLeft;
        ++_counters.droppedChecksums;
    }
}

void
AbftBackend::timeoutFrameEvent()
{
    // End-of-computation checksum flush stalled past the QM timeout.
    if (_eocPort < _outs.size() && _out[_eocPort].pendLeft > 0) {
        --_out[_eocPort].pendLeft;
        ++_counters.droppedChecksums;
    }
}

// ---------------------------------------------------------------------
// Consumer side
// ---------------------------------------------------------------------

void
AbftBackend::verifyBlock(InState &in, Count expected)
{
    _core->chargeReliableOps(abftInstsPerItem *
                                 static_cast<Count>(in.fill.size()) +
                             abftInstsPerBlockVerify);

    if (in.fill.size() != expected) {
        // Items were lost (push timeouts, underflow): pad with benign
        // zeros; the checksums cannot be trusted against a different
        // population, so no correction is attempted.
        ++_counters.shortBlocks;
        ++_counters.uncorrectableBlocks;
        in.fill.resize(expected, 0);
        return;
    }

    Word s = 0;
    Word w = 0;
    for (std::size_t i = 0; i < in.fill.size(); ++i) {
        s += in.fill[i];
        w += static_cast<Word>(i + 1) * in.fill[i];
    }
    const Word ds = in.chk[0] - s;
    const Word dw = in.chk[1] - w;
    if (ds == 0 && dw == 0)
        return;

    ++_counters.mismatchBlocks;
    if (ds != 0) {
        // A single corrupted item at position j satisfies
        // (j+1) * dS == dW (mod 2^32); a unique solution localizes it.
        std::size_t hit = in.fill.size();
        int hits = 0;
        for (std::size_t j = 0; j < in.fill.size(); ++j) {
            if (static_cast<Word>(j + 1) * ds == dw) {
                hit = j;
                ++hits;
            }
        }
        if (hits == 1) {
            in.fill[hit] += ds;
            ++_counters.correctedItems;
            return;
        }
    }
    // dS == 0 with dW != 0, or an ambiguous/absent position: more than
    // one error (or a lost checksum misaligned the block). Deliver the
    // block as-is rather than guessing.
    ++_counters.uncorrectableBlocks;
}

BackendPopResult
AbftBackend::pop(int port)
{
    InState &in = _in[port];
    QueueBase &queue = *_ins[port];

    if (!in.guarded) {
        // Unguarded stream (no checksums): plain passthrough.
        QueueWord word;
        if (queue.tryPop(word) == QueueOpStatus::Blocked)
            return {true, 0};
        if (queue.opCost() > 0)
            _core->exposeQueueWindow(queue.opCost(), queue);
        if (TraceSink *t = _core->traceSink()) [[unlikely]]
            t->onQueueDepth(*_core, queue, queue.size());
        return {false, word.value};
    }

    if (in.serveIx < in.data.size()) {
        // The error-prone pop routine is charged per item *served*,
        // not when the block is buffered: a block can span several
        // invocations, and bursting its whole queue cost into the
        // scope budget of the invocation that happens to receive it
        // would trip the watchdog even error-free. Per-serve charging
        // matches the loader's per-invocation estimate exactly.
        if (queue.opCost() > 0)
            _core->exposeQueueWindow(queue.opCost(), queue);
        return {false, in.data[in.serveIx++]};
    }

    const Count consumed = in.deliveredBlocks * in.blockItems;
    const Count expected =
        consumed >= in.totalItems
            ? Count(0)
            : std::min(in.blockItems, in.totalItems - consumed);
    if (expected == 0) {
        // Past the planned stream (padded extra pops): passthrough.
        QueueWord word;
        if (queue.tryPop(word) == QueueOpStatus::Blocked)
            return {true, 0};
        if (queue.opCost() > 0)
            _core->exposeQueueWindow(queue.opCost(), queue);
        if (TraceSink *t = _core->traceSink()) [[unlikely]]
            t->onQueueDepth(*_core, queue, queue.size());
        return {false, word.value};
    }

    // Receive the next block: data items followed by its two checksum
    // headers. Resumable: a Blocked pop leaves fill/chk intact.
    while (in.chkCount < 2) {
        QueueWord word;
        if (queue.tryPop(word) == QueueOpStatus::Blocked)
            return {true, 0};
        if (TraceSink *t = _core->traceSink()) [[unlikely]]
            t->onQueueDepth(*_core, queue, queue.size());
        if (word.isHeader) {
            in.chk[in.chkCount++] = word.value;
            in.strayRun = 0;
            // Checksum words are extra traffic beyond the one data
            // word this core pop accounts for; the reliable ABFT
            // module runs their queue routine (see flushPending).
            _core->chargeQueueTransfer();
            _core->chargeReliableOps(queue.opCost());
        } else if (in.fill.size() < expected) {
            // Charged when served (see above), not here.
            in.fill.push_back(word.value);
        } else {
            // A lost checksum upstream bled the next block into this
            // one; drop the overflow to resynchronize at the headers.
            ++_counters.strayItems;
            _core->chargeQueueTransfer();
            if (queue.opCost() > 0)
                _core->exposeQueueWindow(queue.opCost(), queue);
            if (++in.strayRun >= 4 * in.blockItems + abftResyncSlack) {
                // A pointer-corrupted queue can look non-empty forever
                // — give up on this block's checksums and deliver it
                // unverified so the consumer keeps firing.
                _counters.droppedChecksums +=
                    static_cast<Count>(2 - in.chkCount);
                ++_counters.uncorrectableBlocks;
                ++in.deliveredBlocks;
                in.data = std::move(in.fill);
                in.fill.clear();
                in.serveIx = 0;
                in.chkCount = 0;
                in.strayRun = 0;
                if (queue.opCost() > 0)
                    _core->exposeQueueWindow(queue.opCost(), queue);
                return {false, in.data[in.serveIx++]};
            }
        }
    }

    verifyBlock(in, expected);
    ++in.deliveredBlocks;
    in.data = std::move(in.fill);
    in.fill.clear();
    in.serveIx = 0;
    in.chkCount = 0;
    in.strayRun = 0;
    if (queue.opCost() > 0)
        _core->exposeQueueWindow(queue.opCost(), queue);
    return {false, in.data[in.serveIx++]};
}

Word
AbftBackend::timeoutPop(int port)
{
    // The QM gives up on a starved pop: deliver a benign zero. The
    // partially-filled block stays intact and resumes on the next pop.
    (void)port;
    ++_counters.timeoutPads;
    return 0;
}

void
AbftBackend::exportStats(StatGroup &group) const
{
    _counters.exportTo(group.child("abft"));
}

} // namespace commguard
