/**
 * @file
 * Algorithm-based fault tolerance over the communication streams.
 *
 * AbftBackend augments each stream with per-block dual checksums in
 * the style of Huang & Abraham's ABFT: for every block of B data items
 * the producer appends S = sum(x_i) and W = sum((i+1) * x_i) (mod
 * 2^32), transmitted as ECC-protected header words so the corruptible
 * queue substrate cannot silently damage them. The consumer buffers a
 * block, recomputes both sums, and from the residues (dS, dW) locates
 * a single corrupted item at position j = dW/dS - 1 and repairs it in
 * place; multi-error blocks are flagged uncorrectable and delivered
 * as-is.
 *
 * Unlike CommGuard (which protects alignment, not values) this mode
 * detects and corrects *value* corruption in the queues, at the cost
 * of per-item checksum arithmetic on both endpoints — charged via
 * Core::chargeReliableOps so overhead comparisons see it.
 */

#ifndef COMMGUARD_MACHINE_ABFT_BACKEND_HH
#define COMMGUARD_MACHINE_ABFT_BACKEND_HH

#include <cstddef>
#include <string>
#include <vector>

#include "machine/comm_backend.hh"

namespace commguard
{

/** Reliable instructions charged per item for checksum updates. */
constexpr Count abftInstsPerItem = 2;

/** Reliable instructions charged per block verification. */
constexpr Count abftInstsPerBlockVerify = 8;

/**
 * Extra stray items tolerated while resynchronizing on checksum
 * headers, on top of 4 block lengths. A pointer-corrupted software
 * queue can present unbounded garbage without ever blocking; past
 * this budget the consumer gives up on the block's checksums and
 * delivers it unverified so the filter keeps firing.
 */
constexpr Count abftResyncSlack = 64;

/** Hot-path counters of the ABFT runtime. */
struct AbftCounters
{
    using Counter = metrics::Counter;

    Counter checksumBlocks;      //!< Blocks sealed with checksums.
    Counter droppedChecksums;    //!< Checksum words lost to timeouts
                                 //!< or abandoned by resync give-up.
    Counter mismatchBlocks;      //!< Blocks whose residues were nonzero.
    Counter correctedItems;      //!< Single-error items repaired.
    Counter uncorrectableBlocks; //!< Blocks delivered without repair.
    Counter shortBlocks;         //!< Blocks that arrived under-length.
    Counter strayItems;          //!< Items past a block's expected size.
    Counter timeoutPads;         //!< Pops resolved by the QM timeout.

    void
    linkTo(metrics::Registry &registry, const std::string &prefix) const
    {
        registry.link(prefix + "/checksumBlocks", checksumBlocks);
        registry.link(prefix + "/droppedChecksums", droppedChecksums);
        registry.link(prefix + "/mismatchBlocks", mismatchBlocks);
        registry.link(prefix + "/correctedItems", correctedItems);
        registry.link(prefix + "/uncorrectableBlocks",
                      uncorrectableBlocks);
        registry.link(prefix + "/shortBlocks", shortBlocks);
        registry.link(prefix + "/strayItems", strayItems);
        registry.link(prefix + "/timeoutPads", timeoutPads);
    }

    void
    exportTo(StatGroup &group) const
    {
        group.set("checksumBlocks", checksumBlocks);
        group.set("droppedChecksums", droppedChecksums);
        group.set("mismatchBlocks", mismatchBlocks);
        group.set("correctedItems", correctedItems);
        group.set("uncorrectableBlocks", uncorrectableBlocks);
        group.set("shortBlocks", shortBlocks);
        group.set("strayItems", strayItems);
        group.set("timeoutPads", timeoutPads);
    }
};

/**
 * Per-core ABFT endpoint: checksum sealing on pushes, block buffering
 * plus verify/correct on pops.
 */
class AbftBackend : public CommBackend
{
  public:
    /**
     * @param ins             Incoming queues.
     * @param outs            Outgoing queues.
     * @param in_guarded      Per-input flag: false = plain passthrough
     *                        (an unguarded stream carries no checksums).
     * @param in_block_items  Items per checksummed block, per input.
     * @param out_block_items Items per checksummed block, per output.
     * @param in_total_items  Planned items over the whole run, per
     *                        input (bounds the final partial block).
     * @param out_total_items Planned items per output.
     */
    AbftBackend(std::vector<QueueBase *> ins,
                std::vector<QueueBase *> outs,
                std::vector<bool> in_guarded,
                std::vector<Count> in_block_items,
                std::vector<Count> out_block_items,
                std::vector<Count> in_total_items,
                std::vector<Count> out_total_items);

    QueueOpStatus push(int port, Word value) override;
    BackendPopResult pop(int port) override;

    QueueOpStatus
    newFrameComputation() override
    {
        return QueueOpStatus::Ok;
    }

    QueueOpStatus endOfComputation() override;

    Word timeoutPop(int port) override;
    void timeoutPush(int port) override;
    void timeoutFrameEvent() override;

    void exportStats(StatGroup &group) const override;

    void
    linkMetrics(metrics::Registry &registry,
                const std::string &prefix) override
    {
        _counters.linkTo(registry, "abft/" + prefix);
    }

    AbftCounters &counters() { return _counters; }
    const AbftCounters &counters() const { return _counters; }

  private:
    /** Producer-side per-output checksum state. */
    struct OutState
    {
        Count blockItems = 0;   //!< Block size B.
        Count totalItems = 0;   //!< Planned items over the run.
        Count pushed = 0;       //!< Data items pushed so far.
        Word runS = 0;          //!< Running sum checksum.
        Word runW = 0;          //!< Running weighted checksum.
        Count runCount = 0;     //!< Items in the open block.
        Word pendS = 0;         //!< Sealed checksums awaiting...
        Word pendW = 0;         //!< ...transmission.
        int pendLeft = 0;       //!< Pending checksum words (2, 1, 0).
    };

    /** Consumer-side per-input block buffer. */
    struct InState
    {
        bool guarded = true;
        Count blockItems = 0;
        Count totalItems = 0;
        Count deliveredBlocks = 0;  //!< Blocks verified and served.
        std::vector<Word> data;     //!< Verified block being served.
        std::size_t serveIx = 0;
        std::vector<Word> fill;     //!< Block being received.
        Word chk[2] = {0, 0};       //!< Received S and W checksums.
        int chkCount = 0;
        Count strayRun = 0;  //!< Strays since the last header/block.
    };

    /** Seal the open block: move running sums to pending. */
    void sealBlock(OutState &out);

    /** Transmit pending checksum words; false when Blocked. */
    bool flushPending(int port, OutState &out);

    /** Verify, maybe correct, and promote the filled block. */
    void verifyBlock(InState &in, Count expected);

    std::vector<QueueBase *> _ins;
    std::vector<QueueBase *> _outs;
    std::vector<InState> _in;
    std::vector<OutState> _out;
    AbftCounters _counters;

    /** End-of-computation progress (resumable across Blocked). */
    std::size_t _eocPort = 0;
};

} // namespace commguard

#endif // COMMGUARD_MACHINE_ABFT_BACKEND_HH
