#include "machine/core.hh"

#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace commguard
{

using isa::Inst;
using isa::Op;

Core::Core(CoreId id, std::string name) : _id(id), _name(std::move(name))
{
}

Core::~Core()
{
    if (_memoryPool != nullptr && _memory.capacity() != 0)
        _memoryPool->release(std::move(_memory));
}

void
Core::setProgram(isa::Program program)
{
    _program = std::move(program);
    // Core-local memory is the largest per-run allocation (512 KiB at
    // the default memWords); acquiring it from the per-worker pool
    // keeps parallel sweeps out of the allocator's mmap path. Either
    // way the memory starts fully zeroed.
    if (_memoryPool != nullptr && _memory.capacity() == 0)
        _memory = _memoryPool->acquire(_program.memWords);
    else
        _memory.assign(_program.memWords, 0);
    std::copy(_program.data.begin(), _program.data.end(),
              _memory.begin());

    // Collect the architectural registers this program references;
    // they are the live register file the injector targets.
    bool used[isa::numRegs] = {};
    for (const Inst &inst : _program.code) {
        used[inst.rd] = true;
        used[inst.rs1] = true;
        used[inst.rs2] = true;
    }
    _usedRegs.clear();
    for (int r = 1; r < isa::numRegs; ++r)
        if (used[r])
            _usedRegs.push_back(static_cast<isa::Reg>(r));
    if (_usedRegs.empty())
        _usedRegs.push_back(1);
}

void
Core::setBackend(CommBackend *backend)
{
    _backend = backend;
    if (backend)
        backend->bindCore(this);
}

void
Core::configureInjector(const ErrorInjector::Config &config)
{
    _injector.configure(config);
    reloadErrorCountdown();
}

void
Core::setPpu(const PpuConfig &ppu)
{
    _ppu = ppu;
}

void
Core::addTraceSink(TraceSink *sink)
{
    if (sink == nullptr)
        return;
    if (_trace == nullptr) {
        _trace = sink;
        return;
    }
    if (_fanOut == nullptr) {
        _fanOut = std::make_unique<FanOutSink>();
        _fanOut->addSink(_trace);
        _trace = _fanOut.get();
    }
    _fanOut->addSink(sink);
}

void
Core::startInvocation()
{
    _pc = 0;
    _instsThisInvocation = 0;
    _regs.clear();
    _blocked = false;
    _scopeStack.clear();
    _storeJournal.clear();
    ++_counters.invocations;
    if (_trace)
        _trace->onInvocationStart(*this);

    const Count est = _program.estimatedInstsPerInvocation;
    Count budget = est > 0 ? est * _ppu.watchdogMultiplier
                           : _ppu.defaultScopeBudget;
    if (budget < 1024)
        budget = 1024;
    if (budget > _ppu.maxScopeBudget)
        budget = _ppu.maxScopeBudget;
    _scopeBudget = budget;
}

void
Core::flipRandomRegisterBit()
{
    Rng &rng = _injector.rng();
    isa::Reg reg;
    if (_injector.flipAllRegisters()) {
        reg = static_cast<isa::Reg>(1 + rng.below(isa::numRegs - 1));
    } else {
        reg = _usedRegs[rng.below(
            static_cast<std::uint32_t>(_usedRegs.size()))];
    }
    const int bit = static_cast<int>(rng.below(32));
    _regs.flipBit(reg, bit);
    ++_counters.registerFlips;
    if (_trace)
        _trace->onErrorInjected(*this, reg, bit);
}

void
Core::commit(Cycle extra_cycles, Count next_pc)
{
    if (_trace != nullptr) [[unlikely]]
        _trace->onCommit(*this, _pc, _program.code[_pc]);
    _pc = next_pc;
    ++_counters.committedInsts;
    ++_instsThisInvocation;
    _counters.cycles += 1 + extra_cycles;
    if (--_errorCountdown == 0) [[unlikely]]
        syncScheduledErrors();
}

void
Core::syncScheduledErrors()
{
    _injector.advance(_errorCountdownReload,
                      [this] { flipRandomRegisterBit(); });
    reloadErrorCountdown();
}

void
Core::resolveBlockedPop(Word value)
{
    if (!_blocked || !_blockedIsPop)
        panic("resolveBlockedPop on a core not blocked on pop");
    const Inst &inst = _program.code[_pc];
    _regs.write(inst.rd, value);
    ++_counters.queuePops;
    ++_counters.popTimeouts;
    if (_trace != nullptr) [[unlikely]] {
        _trace->onQueueUnblock(*this, _blockedPort, true);
        _trace->onPopTimeout(*this, _blockedPort);
        _trace->onQueuePop(*this, _blockedPort);
    }
    _blocked = false;
    commit(_timing.queueOpCycles, _pc + 1);
}

void
Core::resolveBlockedPush()
{
    if (!_blocked || _blockedIsPop)
        panic("resolveBlockedPush on a core not blocked on push");
    ++_counters.queuePushes;
    ++_counters.pushTimeouts;
    if (_trace != nullptr) [[unlikely]] {
        _trace->onQueueUnblock(*this, _blockedPort, false);
        _trace->onPushTimeout(*this, _blockedPort);
        _trace->onQueuePush(*this, _blockedPort);
    }
    _blocked = false;
    commit(_timing.queueOpCycles, _pc + 1);
}

void
Core::rollbackInvocationStores()
{
    Word *const mem = _memory.data();
    for (auto it = _storeJournal.rbegin(); it != _storeJournal.rend();
         ++it)
        mem[it->first] = it->second;
    _storeJournal.clear();
}

void
Core::exposeQueueWindow(Count insts, QueueBase &queue)
{
    _counters.committedInsts += insts;
    _counters.cycles += insts;
    // The routine executes inside the current frame computation: its
    // virtual instructions count against the PPU scope budget, so a
    // long software-queue window cannot bypass watchdog accounting.
    _instsThisInvocation += insts;

    // Flush commits the fast-path countdown has absorbed since the
    // last sync; none of them is past the next scheduled error, so no
    // flip can fire here.
    _injector.advance(_errorCountdownReload - _errorCountdown,
                      [this] { flipRandomRegisterBit(); });
    _injector.advance(insts, [this, &queue] {
        Rng &rng = _injector.rng();
        // The software routine's live registers are roughly half
        // queue-management state (head/tail/item) and half other
        // thread state.
        if (rng.below(2) == 0) {
            queue.corrupt(rng);
            if (_trace != nullptr) [[unlikely]]
                _trace->onQueueCorrupt(*this, queue);
        } else {
            flipRandomRegisterBit();
        }
    });
    reloadErrorCountdown();
}

RunResult
Core::run(Count max_steps)
{
    if (_backend == nullptr)
        panic("core " + _name + " has no communication backend");

    // Hot-loop locals: the program, memory, and their sizes are fixed
    // for the whole slice, so keep them out of member-load territory.
    const Inst *const code = _program.code.data();
    Word *const mem = _memory.data();
    const std::size_t mem_words = _memory.size();
    Count executed = 0;

    while (executed < max_steps) {
        if (_instsThisInvocation >= _scopeBudget) {
            // PPU watchdog: the scope ran too long (e.g., a corrupted
            // loop counter); force the frame computation to complete.
            ++_counters.scopeWatchdogTrips;
            if (_trace != nullptr) [[unlikely]]
                _trace->onWatchdogTrip(*this, false);
            return {RunStatus::Done, executed};
        }

        // Nested scope watchdog (paper SS4.4): force the innermost
        // over-budget scope to its exit. The jump target is a static
        // ScopeExit instruction, so the stack unwinds naturally.
        if (!_scopeStack.empty() &&
            _instsThisInvocation >= _scopeStack.back().deadline) {
            ++_counters.nestedScopeTrips;
            if (_trace != nullptr) [[unlikely]] {
                _trace->onWatchdogTrip(*this, true);
                // A queue op blocked at the old PC is abandoned with
                // its scope.
                if (_blocked)
                    _trace->onQueueUnblock(*this, _blockedPort,
                                           _blockedIsPop);
            }
            _pc = static_cast<Count>(_scopeStack.back().exitPc);
            _blocked = false;
        }

        const Inst &inst = code[_pc];
        Count next_pc = _pc + 1;

        switch (inst.op) {
          case Op::Nop:
            break;

          case Op::Halt:
            commit(0, _pc);
            ++executed;
            return {RunStatus::Done, executed};

          case Op::Li:
            _regs.write(inst.rd, inst.imm);
            break;

          // ----------------------------------------------------------
          // Integer ALU.
          // ----------------------------------------------------------
          case Op::Add:
            _regs.write(inst.rd,
                        _regs.read(inst.rs1) + _regs.read(inst.rs2));
            break;
          case Op::Sub:
            _regs.write(inst.rd,
                        _regs.read(inst.rs1) - _regs.read(inst.rs2));
            break;
          case Op::Mul:
            _regs.write(inst.rd,
                        _regs.read(inst.rs1) * _regs.read(inst.rs2));
            break;
          case Op::Divu: {
            const Word den = _regs.read(inst.rs2);
            // PPU contract: divide-by-zero yields a benign 0.
            _regs.write(inst.rd,
                        den ? _regs.read(inst.rs1) / den : 0);
            break;
          }
          case Op::Divs: {
            const SWord num = static_cast<SWord>(_regs.read(inst.rs1));
            const SWord den = static_cast<SWord>(_regs.read(inst.rs2));
            SWord result = 0;
            if (den != 0) {
                // Avoid the INT_MIN / -1 overflow trap.
                result = static_cast<SWord>(
                    static_cast<std::int64_t>(num) / den);
            }
            _regs.write(inst.rd, static_cast<Word>(result));
            break;
          }
          case Op::Remu: {
            const Word den = _regs.read(inst.rs2);
            _regs.write(inst.rd,
                        den ? _regs.read(inst.rs1) % den : 0);
            break;
          }
          case Op::And:
            _regs.write(inst.rd,
                        _regs.read(inst.rs1) & _regs.read(inst.rs2));
            break;
          case Op::Or:
            _regs.write(inst.rd,
                        _regs.read(inst.rs1) | _regs.read(inst.rs2));
            break;
          case Op::Xor:
            _regs.write(inst.rd,
                        _regs.read(inst.rs1) ^ _regs.read(inst.rs2));
            break;
          case Op::Sll:
            _regs.write(inst.rd, _regs.read(inst.rs1)
                                     << (_regs.read(inst.rs2) & 31));
            break;
          case Op::Srl:
            _regs.write(inst.rd, _regs.read(inst.rs1) >>
                                     (_regs.read(inst.rs2) & 31));
            break;
          case Op::Sra:
            _regs.write(
                inst.rd,
                static_cast<Word>(
                    static_cast<SWord>(_regs.read(inst.rs1)) >>
                    (_regs.read(inst.rs2) & 31)));
            break;
          case Op::Slt:
            _regs.write(inst.rd,
                        static_cast<SWord>(_regs.read(inst.rs1)) <
                                static_cast<SWord>(_regs.read(inst.rs2))
                            ? 1
                            : 0);
            break;
          case Op::Sltu:
            _regs.write(inst.rd,
                        _regs.read(inst.rs1) < _regs.read(inst.rs2)
                            ? 1 : 0);
            break;

          case Op::Addi:
            _regs.write(inst.rd, _regs.read(inst.rs1) + inst.imm);
            break;
          case Op::Andi:
            _regs.write(inst.rd, _regs.read(inst.rs1) & inst.imm);
            break;
          case Op::Ori:
            _regs.write(inst.rd, _regs.read(inst.rs1) | inst.imm);
            break;
          case Op::Xori:
            _regs.write(inst.rd, _regs.read(inst.rs1) ^ inst.imm);
            break;
          case Op::Slli:
            _regs.write(inst.rd, _regs.read(inst.rs1)
                                     << (inst.imm & 31));
            break;
          case Op::Srli:
            _regs.write(inst.rd, _regs.read(inst.rs1) >>
                                     (inst.imm & 31));
            break;
          case Op::Srai:
            _regs.write(
                inst.rd,
                static_cast<Word>(
                    static_cast<SWord>(_regs.read(inst.rs1)) >>
                    (inst.imm & 31)));
            break;

          // ----------------------------------------------------------
          // Floating point.
          // ----------------------------------------------------------
          case Op::Fadd:
            _regs.write(inst.rd,
                        floatToWord(wordToFloat(_regs.read(inst.rs1)) +
                                    wordToFloat(_regs.read(inst.rs2))));
            break;
          case Op::Fsub:
            _regs.write(inst.rd,
                        floatToWord(wordToFloat(_regs.read(inst.rs1)) -
                                    wordToFloat(_regs.read(inst.rs2))));
            break;
          case Op::Fmul:
            _regs.write(inst.rd,
                        floatToWord(wordToFloat(_regs.read(inst.rs1)) *
                                    wordToFloat(_regs.read(inst.rs2))));
            break;
          case Op::Fdiv:
            _regs.write(inst.rd,
                        floatToWord(wordToFloat(_regs.read(inst.rs1)) /
                                    wordToFloat(_regs.read(inst.rs2))));
            break;
          case Op::Fsqrt: {
            const float x = wordToFloat(_regs.read(inst.rs1));
            // PPU contract: sqrt of a negative yields 0, not a trap.
            _regs.write(inst.rd,
                        floatToWord(x >= 0.0f ? std::sqrt(x) : 0.0f));
            break;
          }
          case Op::Fabs:
            _regs.write(inst.rd,
                        floatToWord(std::fabs(
                            wordToFloat(_regs.read(inst.rs1)))));
            break;
          case Op::Fneg:
            _regs.write(inst.rd,
                        floatToWord(-wordToFloat(_regs.read(inst.rs1))));
            break;
          case Op::Fmin:
            _regs.write(inst.rd,
                        floatToWord(isa::isaFmin(
                            wordToFloat(_regs.read(inst.rs1)),
                            wordToFloat(_regs.read(inst.rs2)))));
            break;
          case Op::Fmax:
            _regs.write(inst.rd,
                        floatToWord(isa::isaFmax(
                            wordToFloat(_regs.read(inst.rs1)),
                            wordToFloat(_regs.read(inst.rs2)))));
            break;
          case Op::Cvtif:
            _regs.write(inst.rd,
                        floatToWord(static_cast<float>(
                            static_cast<SWord>(_regs.read(inst.rs1)))));
            break;
          case Op::Cvtfi: {
            const float x = wordToFloat(_regs.read(inst.rs1));
            SWord result = 0;
            // PPU contract: invalid conversions yield a benign 0.
            if (std::isfinite(x) && x >= -2147483648.0f &&
                x <= 2147483520.0f) {
                result = static_cast<SWord>(x);
            }
            _regs.write(inst.rd, static_cast<Word>(result));
            break;
          }
          case Op::Feq:
            _regs.write(inst.rd,
                        wordToFloat(_regs.read(inst.rs1)) ==
                                wordToFloat(_regs.read(inst.rs2))
                            ? 1 : 0);
            break;
          case Op::Flt:
            _regs.write(inst.rd,
                        wordToFloat(_regs.read(inst.rs1)) <
                                wordToFloat(_regs.read(inst.rs2))
                            ? 1 : 0);
            break;
          case Op::Fle:
            _regs.write(inst.rd,
                        wordToFloat(_regs.read(inst.rs1)) <=
                                wordToFloat(_regs.read(inst.rs2))
                            ? 1 : 0);
            break;

          // ----------------------------------------------------------
          // Control flow.
          // ----------------------------------------------------------
          case Op::Jmp:
            next_pc = static_cast<Count>(inst.target);
            break;
          case Op::Beq:
            if (_regs.read(inst.rs1) == _regs.read(inst.rs2))
                next_pc = static_cast<Count>(inst.target);
            break;
          case Op::Bne:
            if (_regs.read(inst.rs1) != _regs.read(inst.rs2))
                next_pc = static_cast<Count>(inst.target);
            break;
          case Op::Blt:
            if (static_cast<SWord>(_regs.read(inst.rs1)) <
                static_cast<SWord>(_regs.read(inst.rs2)))
                next_pc = static_cast<Count>(inst.target);
            break;
          case Op::Bge:
            if (static_cast<SWord>(_regs.read(inst.rs1)) >=
                static_cast<SWord>(_regs.read(inst.rs2)))
                next_pc = static_cast<Count>(inst.target);
            break;
          case Op::Bltu:
            if (_regs.read(inst.rs1) < _regs.read(inst.rs2))
                next_pc = static_cast<Count>(inst.target);
            break;
          case Op::Bgeu:
            if (_regs.read(inst.rs1) >= _regs.read(inst.rs2))
                next_pc = static_cast<Count>(inst.target);
            break;

          // ----------------------------------------------------------
          // Memory (addresses wrap: the PPU never faults).
          // ----------------------------------------------------------
          case Op::Lw: {
            const std::size_t addr =
                (_regs.read(inst.rs1) + inst.imm) % mem_words;
            _regs.write(inst.rd, mem[addr]);
            ++_counters.loads;
            commit(_timing.memExtraCycles, next_pc);
            ++executed;
            continue;
          }
          case Op::Sw: {
            const std::size_t addr =
                (_regs.read(inst.rs1) + inst.imm) % mem_words;
            if (_journalStores) [[unlikely]]
                _storeJournal.emplace_back(
                    static_cast<std::uint32_t>(addr), mem[addr]);
            mem[addr] = _regs.read(inst.rs2);
            ++_counters.stores;
            commit(_timing.memExtraCycles, next_pc);
            ++executed;
            continue;
          }

          // ----------------------------------------------------------
          // Streaming communication.
          // ----------------------------------------------------------
          case Op::Push: {
            const int port = static_cast<int>(inst.imm);
            const QueueOpStatus status =
                _backend->push(port, _regs.read(inst.rs2));
            if (status == QueueOpStatus::Blocked) {
                if (_trace != nullptr && !_blocked) [[unlikely]]
                    _trace->onQueueBlock(*this, port, false);
                _blocked = true;
                _blockedIsPop = false;
                _blockedPort = port;
                return {RunStatus::Blocked, executed};
            }
            if (_trace != nullptr) [[unlikely]] {
                if (_blocked)
                    _trace->onQueueUnblock(*this, port, false);
                _trace->onQueuePush(*this, port);
            }
            _blocked = false;
            ++_counters.queuePushes;
            commit(_timing.queueOpCycles, next_pc);
            ++executed;
            continue;
          }
          case Op::ScopeEnter: {
            if (_ppu.enforceNestedScopes &&
                static_cast<int>(_scopeStack.size()) <
                    _ppu.maxScopeDepth) {
                const isa::ScopeInfo &info = _program.scopes[inst.imm];
                Count budget = info.estimatedInsts *
                               _ppu.watchdogMultiplier;
                if (budget < 64)
                    budget = 64;
                _scopeStack.push_back(ScopeFrame{
                    inst.imm, info.exitPc,
                    _instsThisInvocation + budget});
            }
            break;
          }
          case Op::ScopeExit:
            // Pop only the matching activation: exits of scopes that
            // were beyond the tracked depth fall through harmlessly.
            if (!_scopeStack.empty() &&
                _scopeStack.back().id == inst.imm) {
                _scopeStack.pop_back();
            }
            break;

          case Op::Pop: {
            const int port = static_cast<int>(inst.imm);
            const BackendPopResult result = _backend->pop(port);
            if (result.blocked) {
                if (_trace != nullptr && !_blocked) [[unlikely]]
                    _trace->onQueueBlock(*this, port, true);
                _blocked = true;
                _blockedIsPop = true;
                _blockedPort = port;
                return {RunStatus::Blocked, executed};
            }
            if (_trace != nullptr) [[unlikely]] {
                if (_blocked)
                    _trace->onQueueUnblock(*this, port, true);
                _trace->onQueuePop(*this, port);
            }
            _blocked = false;
            _regs.write(inst.rd, result.value);
            ++_counters.queuePops;
            commit(_timing.queueOpCycles, next_pc);
            ++executed;
            continue;
          }

          default:
            panic("core " + _name + ": invalid opcode");
        }

        commit(0, next_pc);
        ++executed;
    }

    return {RunStatus::OutOfSteps, executed};
}

} // namespace commguard
