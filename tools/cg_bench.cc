/**
 * @file
 * Unified experiment driver: one binary for the whole scenario
 * catalogue (docs/SCENARIOS.md).
 *
 *   cg_bench list [--json]          catalogue (human table or JSON)
 *   cg_bench run --all              run every scenario
 *   cg_bench run --tag=<tag>        run every scenario carrying <tag>
 *   cg_bench run <name> [<name>…]   run scenarios by name
 *   cg_bench run --mode=<mode> …    restrict mode-sweeping scenarios
 *                                   to one registered protection mode
 *   cg_bench replay <bundle.json>   re-run a fuzz repro bundle
 *                                   (docs/FUZZING.md)
 *
 * Behaviour knobs come from the environment, same as the rest of the
 * toolchain: CG_QUICK (thinned axes), CG_JOBS (sweep parallelism),
 * CG_CSV (CSV after each table), CG_JSON (BENCH_<name>.json files),
 * CG_JSONL (per-run records), CG_TRACE_EVENTS (Perfetto traces).
 *
 * Exit codes: 0 success, 1 runtime failure (fatal() inside a
 * scenario) or a replayed bundle reproducing its failure, 2 usage
 * error (unknown subcommand, scenario or tag, unreadable bundle).
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/env_options.hh"
#include "sim/fuzz.hh"
#include "sim/protection.hh"
#include "sim/scenario.hh"
#include "sim/telemetry_export.hh"

using namespace commguard;

namespace
{

int
usage(std::ostream &out, int code)
{
    out << "usage: cg_bench <command> [args]\n"
           "\n"
           "commands:\n"
           "  list [--json]            print the scenario catalogue\n"
           "  run --all                run every scenario\n"
           "  run --tag=<tag>          run scenarios carrying <tag>\n"
           "  run <name> [<name>...]   run scenarios by name\n"
           "  run --mode=<mode> ...    restrict protection-mode axes\n"
           "                           (registered modes: "
        << protection::ProtectionRegistry::instance().nameList()
        << ")\n"
           "  replay <bundle.json>     re-run a fuzz repro bundle\n"
           "\n"
           "environment: CG_QUICK CG_JOBS CG_CSV CG_JSON CG_JSONL "
           "CG_MODE CG_TRACE_EVENTS CG_TELEMETRY_SLICES "
           "CG_TELEMETRY_OUT CG_BOARD\n";
    return code;
}

void
listAvailable(std::ostream &out)
{
    out << "available scenarios:\n";
    for (const std::string &name : sim::ScenarioRegistry::instance().names())
        out << "  " << name << "\n";
}

int
cmdList(const std::vector<std::string> &args)
{
    bool json = false;
    for (const std::string &arg : args) {
        if (arg == "--json") {
            json = true;
        } else {
            std::cerr << "cg_bench list: unknown argument '" << arg
                      << "'\n";
            return usage(std::cerr, 2);
        }
    }

    if (json) {
        std::cout << sim::scenarioListJson().dump() << "\n";
        return 0;
    }

    const std::vector<const sim::Scenario *> scenarios =
        sim::ScenarioRegistry::instance().all();
    std::size_t name_width = 4;
    for (const sim::Scenario *scenario : scenarios)
        name_width = std::max(name_width, scenario->name.size());

    for (const sim::Scenario *scenario : scenarios) {
        std::string tags;
        for (const std::string &tag : scenario->tags)
            tags += (tags.empty() ? "" : ",") + tag;
        std::cout << scenario->name
                  << std::string(name_width - scenario->name.size() + 2,
                                 ' ')
                  << "[" << tags << "] " << scenario->description
                  << " (" << scenario->paperRef << ")\n";
    }
    std::cout << "\n" << scenarios.size() << " scenarios. Run with "
              << "'cg_bench run <name>' or 'cg_bench run --all'.\n";
    return 0;
}

int
cmdRun(const std::vector<std::string> &raw_args)
{
    // --mode=<name> may appear anywhere among the run arguments.
    std::vector<std::string> args;
    std::vector<streamit::ProtectionMode> mode_filter;
    for (const std::string &arg : raw_args) {
        if (arg.rfind("--mode=", 0) == 0) {
            const std::string name = arg.substr(7);
            streamit::ProtectionMode mode{};
            if (!protection::tryParseProtectionMode(name, &mode)) {
                std::cerr
                    << "cg_bench run: unknown protection mode '"
                    << name << "' (registered modes: "
                    << protection::ProtectionRegistry::instance()
                           .nameList()
                    << ")\n";
                return 2;
            }
            mode_filter.assign(1, mode);
        } else {
            args.push_back(arg);
        }
    }

    if (args.empty()) {
        std::cerr << "cg_bench run: expected --all, --tag=<tag> or "
                     "scenario names\n";
        return usage(std::cerr, 2);
    }

    const sim::ScenarioRegistry &registry =
        sim::ScenarioRegistry::instance();
    std::vector<const sim::Scenario *> selected;

    if (args[0] == "--all") {
        if (args.size() != 1) {
            std::cerr << "cg_bench run: --all takes no further "
                         "arguments\n";
            return usage(std::cerr, 2);
        }
        selected = registry.all();
    } else if (args[0].rfind("--tag=", 0) == 0) {
        if (args.size() != 1) {
            std::cerr << "cg_bench run: --tag takes no further "
                         "arguments\n";
            return usage(std::cerr, 2);
        }
        const std::string tag = args[0].substr(6);
        selected = registry.withTag(tag);
        if (selected.empty()) {
            std::cerr << "cg_bench run: no scenario carries tag '"
                      << tag << "'\n";
            listAvailable(std::cerr);
            return 2;
        }
    } else {
        for (const std::string &name : args) {
            const sim::Scenario *scenario = registry.find(name);
            if (scenario == nullptr) {
                std::cerr << "cg_bench run: unknown scenario '" << name
                          << "'\n";
                listAvailable(std::cerr);
                return 2;
            }
            selected.push_back(scenario);
        }
    }

    // Sweep health board (docs/TELEMETRY.md): live status line over
    // the shared runner's batches when stderr is a TTY (or CG_BOARD=1
    // forces it). Scenarios with private runners keep the default
    // progress reporter.
    sim::SweepHealthBoard board;
    if (sim::SweepHealthBoard::enabledFromEnv())
        board.attach(sim::sharedRunner());

    std::size_t tables = 0;
    std::size_t rows = 0;
    for (std::size_t i = 0; i < selected.size(); ++i) {
        const sim::Scenario &scenario = *selected[i];
        if (selected.size() > 1) {
            std::cout << "[" << (i + 1) << "/" << selected.size()
                      << "] " << scenario.name << "\n";
        }
        sim::ScenarioContext::Options options =
            sim::ScenarioContext::optionsFromEnv();
        if (!mode_filter.empty())
            options.modeFilter = mode_filter;
        sim::ScenarioContext ctx(std::move(options));
        scenario.run(ctx);
        tables += ctx.publishedTables();
        rows += ctx.publishedRows();
        if (i + 1 < selected.size())
            std::cout << "\n";
    }

    if (selected.size() > 1) {
        std::cout << "\nran " << selected.size() << " scenarios ("
                  << tables << " tables, " << rows << " rows)\n";
    }
    return 0;
}

int
cmdReplay(const std::vector<std::string> &args)
{
    if (args.size() != 1) {
        std::cerr << "cg_bench replay: expected exactly one bundle "
                     "path\n";
        return usage(std::cerr, 2);
    }

    std::ifstream in(args[0]);
    if (!in.good()) {
        std::cerr << "cg_bench replay: cannot open '" << args[0]
                  << "'\n";
        return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();

    Json bundle;
    std::string error;
    if (!Json::parse(buffer.str(), bundle, &error)) {
        std::cerr << "cg_bench replay: '" << args[0]
                  << "': parse error: " << error << "\n";
        return 2;
    }
    sim::FuzzCase fuzz_case;
    if (!sim::reproBundleFromJson(bundle, fuzz_case, &error)) {
        std::cerr << "cg_bench replay: '" << args[0]
                  << "': invalid bundle: " << error << "\n";
        return 2;
    }

    const sim::FuzzVerdict verdict = sim::checkFuzzCase(fuzz_case);
    if (!verdict.ok()) {
        std::cerr << "cg_bench replay: reproduced "
                  << verdict.failures.size()
                  << " invariant failure(s):\n";
        for (const std::string &failure : verdict.failures)
            std::cerr << "  " << failure << "\n";
        return 1;
    }
    std::cout << "cg_bench replay: bundle case is clean ("
              << verdict.runs << " sweep runs)\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Validate the CG_* environment up front so a typo'd knob is
    // fatal on every subcommand, not just the ones that read it.
    (void)sim::EnvOptions::get();

    const std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty())
        return usage(std::cerr, 2);
    if (args[0] == "--help" || args[0] == "-h" || args[0] == "help")
        return usage(std::cout, 0);

    const std::vector<std::string> rest(args.begin() + 1, args.end());
    if (args[0] == "list")
        return cmdList(rest);
    if (args[0] == "run")
        return cmdRun(rest);
    if (args[0] == "replay")
        return cmdReplay(rest);

    std::cerr << "cg_bench: unknown command '" << args[0] << "'\n";
    return usage(std::cerr, 2);
}
