/**
 * @file
 * Unified experiment driver: one binary for the whole scenario
 * catalogue (docs/SCENARIOS.md).
 *
 *   cg_bench list [--json]          catalogue (human table or JSON)
 *   cg_bench run --all              run every scenario
 *   cg_bench run --tag=<tag>        run every scenario carrying <tag>
 *   cg_bench run <name> [<name>…]   run scenarios by name
 *   cg_bench run --mode=<mode> …    restrict mode-sweeping scenarios
 *                                   to one registered protection mode
 *   cg_bench replay <bundle.json>   re-run a fuzz repro bundle
 *                                   (docs/FUZZING.md)
 *   cg_bench run --shards=<n> …     execute the sweeps across <n>
 *                                   worker processes (docs/SHARDING.md)
 *   cg_bench serve …                like run, with sharding on by
 *                                   default (CG_SHARDS or one worker
 *                                   per host core)
 *   cg_bench serve-run …            service mode (docs/SERVICE.md):
 *                                   one long-lived machine under an
 *                                   open-loop streaming traffic model
 *                                   with mid-run events; prints the
 *                                   deterministic summary record and
 *                                   optionally writes the full JSONL
 *                                   stream (`jsonl_check --service`)
 *   cg_bench worker                 internal: serve-spawned worker
 *                                   speaking the shard protocol on
 *                                   stdin/stdout
 *
 * Behaviour knobs come from the environment, same as the rest of the
 * toolchain: CG_QUICK (thinned axes), CG_JOBS (sweep parallelism),
 * CG_CSV (CSV after each table), CG_JSON (BENCH_<name>.json files),
 * CG_JSONL (per-run records), CG_TRACE_EVENTS (Perfetto traces),
 * CG_SHARDS (default worker-process count), CG_CACHE_DIR (result
 * cache directory).
 *
 * Exit codes: 0 success, 1 runtime failure (fatal() inside a
 * scenario) or a replayed bundle reproducing its failure, 2 usage
 * error (unknown subcommand, scenario or tag, unreadable bundle, bad
 * --shards value, unusable CG_CACHE_DIR).
 */

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/app.hh"
#include "common/thread_pool.hh"
#include "sim/env_options.hh"
#include "sim/fuzz.hh"
#include "sim/protection.hh"
#include "sim/scenario.hh"
#include "sim/service_driver.hh"
#include "sim/shard.hh"
#include "sim/sweep_runner.hh"
#include "sim/telemetry_export.hh"

using namespace commguard;

namespace
{

/** argv[0], for respawning ourselves as shard workers. */
std::string g_argv0 = "cg_bench";

/** The path workers are spawned from: /proc/self/exe when the kernel
 *  provides it (robust against PATH games and cwd changes), argv[0]
 *  otherwise. */
std::string
selfExePath()
{
    std::error_code ec;
    const std::filesystem::path exe =
        std::filesystem::read_symlink("/proc/self/exe", ec);
    if (!ec && !exe.empty())
        return exe.string();
    return g_argv0;
}

int
usage(std::ostream &out, int code)
{
    out << "usage: cg_bench <command> [args]\n"
           "\n"
           "commands:\n"
           "  list [--json]            print the scenario catalogue\n"
           "  run --all                run every scenario\n"
           "  run --tag=<tag>          run scenarios carrying <tag>\n"
           "  run <name> [<name>...]   run scenarios by name\n"
           "  run --mode=<mode> ...    restrict protection-mode axes\n"
           "                           (registered modes: "
        << protection::ProtectionRegistry::instance().nameList()
        << ")\n"
           "  run --shards=<n> ...     execute sweeps across <n> "
           "worker processes\n"
           "  serve ...                run with sharding on by "
           "default\n"
           "  serve-run [opts]         service mode: stream an "
           "open-loop traffic model\n"
           "                           through one long-lived machine "
           "(docs/SERVICE.md)\n"
           "    --app=<name>           application (default fft)\n"
           "    --mode=<mode>          protection mode (default "
           "commguard)\n"
           "    --frames=<n>           total frames (default 100000)\n"
           "    --seed=<n>             error-seed index (default 0)\n"
           "    --arrival-seed=<n>     traffic-model seed (default 1)\n"
           "    --mtbe=<f>             uniform MTBE in instructions\n"
           "    --per-core-mtbe=<f,..> per-core MTBE table\n"
           "    --burst=<n> --gap=<n>  mean burst frames / gap slices\n"
           "    --backlog=<n>          max in-flight frames\n"
           "    --snapshot-frames=<n>  snapshot cadence in frames\n"
           "    --window=<n>           rolling forensics window size\n"
           "    --degrade=<f>:<c>:<x>  at frame f, divide core c's "
           "MTBE by x\n"
           "    --remap=<f>:<r>        at frame f, rotate placement "
           "by r slots\n"
           "    --out=<path>           write the full JSONL stream "
           "here\n"
           "  worker                   internal: shard worker on "
           "stdin/stdout\n"
           "  replay <bundle.json>     re-run a fuzz repro bundle\n"
           "\n"
           "environment: CG_QUICK CG_JOBS CG_CSV CG_JSON CG_JSONL "
           "CG_MODE CG_TRACE_EVENTS CG_TELEMETRY_SLICES "
           "CG_TELEMETRY_OUT CG_BOARD CG_SHARDS CG_CACHE_DIR "
           "CG_SERVICE_FRAMES CG_SERVICE_SNAPSHOT_FRAMES "
           "CG_SERVICE_WINDOW\n";
    return code;
}

/**
 * Strict shard-count parse: decimal digits only, >= 1. The same rule
 * covers --shards=<n> and CG_SHARDS, so "--shards=0", "--shards=4x"
 * and friends are usage errors, never silent fallbacks.
 */
bool
parseShards(const std::string &text, unsigned *out)
{
    if (text.empty() || text.size() > 4)
        return false;
    unsigned value = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            return false;
        value = value * 10 + static_cast<unsigned>(c - '0');
    }
    if (value == 0)
        return false;
    *out = value;
    return true;
}

void
listAvailable(std::ostream &out)
{
    out << "available scenarios:\n";
    for (const std::string &name : sim::ScenarioRegistry::instance().names())
        out << "  " << name << "\n";
}

int
cmdList(const std::vector<std::string> &args)
{
    bool json = false;
    for (const std::string &arg : args) {
        if (arg == "--json") {
            json = true;
        } else {
            std::cerr << "cg_bench list: unknown argument '" << arg
                      << "'\n";
            return usage(std::cerr, 2);
        }
    }

    if (json) {
        std::cout << sim::scenarioListJson().dump() << "\n";
        return 0;
    }

    const std::vector<const sim::Scenario *> scenarios =
        sim::ScenarioRegistry::instance().all();
    std::size_t name_width = 4;
    for (const sim::Scenario *scenario : scenarios)
        name_width = std::max(name_width, scenario->name.size());

    for (const sim::Scenario *scenario : scenarios) {
        std::string tags;
        for (const std::string &tag : scenario->tags)
            tags += (tags.empty() ? "" : ",") + tag;
        std::cout << scenario->name
                  << std::string(name_width - scenario->name.size() + 2,
                                 ' ')
                  << "[" << tags << "] " << scenario->description
                  << " (" << scenario->paperRef << ")\n";
    }
    std::cout << "\n" << scenarios.size() << " scenarios. Run with "
              << "'cg_bench run <name>' or 'cg_bench run --all'.\n";
    return 0;
}

int
cmdRun(const std::vector<std::string> &raw_args, bool serve)
{
    // --mode=<name> and --shards=<n> may appear anywhere among the
    // run arguments.
    std::vector<std::string> args;
    std::vector<streamit::ProtectionMode> mode_filter;
    unsigned shards = 0;  // 0 = not requested via flag.
    for (const std::string &arg : raw_args) {
        if (arg.rfind("--shards=", 0) == 0) {
            const std::string value = arg.substr(9);
            if (!parseShards(value, &shards)) {
                std::cerr << "cg_bench run: invalid shard count '"
                          << value
                          << "' (expected a decimal integer >= 1)\n";
                return usage(std::cerr, 2);
            }
        } else if (arg.rfind("--mode=", 0) == 0) {
            const std::string name = arg.substr(7);
            streamit::ProtectionMode mode{};
            if (!protection::tryParseProtectionMode(name, &mode)) {
                std::cerr
                    << "cg_bench run: unknown protection mode '"
                    << name << "' (registered modes: "
                    << protection::ProtectionRegistry::instance()
                           .nameList()
                    << ")\n";
                return 2;
            }
            mode_filter.assign(1, mode);
        } else {
            args.push_back(arg);
        }
    }

    if (args.empty()) {
        std::cerr << "cg_bench run: expected --all, --tag=<tag> or "
                     "scenario names\n";
        return usage(std::cerr, 2);
    }

    const sim::ScenarioRegistry &registry =
        sim::ScenarioRegistry::instance();
    std::vector<const sim::Scenario *> selected;

    if (args[0] == "--all") {
        if (args.size() != 1) {
            std::cerr << "cg_bench run: --all takes no further "
                         "arguments\n";
            return usage(std::cerr, 2);
        }
        selected = registry.all();
    } else if (args[0].rfind("--tag=", 0) == 0) {
        if (args.size() != 1) {
            std::cerr << "cg_bench run: --tag takes no further "
                         "arguments\n";
            return usage(std::cerr, 2);
        }
        const std::string tag = args[0].substr(6);
        selected = registry.withTag(tag);
        if (selected.empty()) {
            std::cerr << "cg_bench run: no scenario carries tag '"
                      << tag << "'\n";
            listAvailable(std::cerr);
            return 2;
        }
    } else {
        for (const std::string &name : args) {
            const sim::Scenario *scenario = registry.find(name);
            if (scenario == nullptr) {
                std::cerr << "cg_bench run: unknown scenario '" << name
                          << "'\n";
                listAvailable(std::cerr);
                return 2;
            }
            selected.push_back(scenario);
        }
    }

    // Sharding (docs/SHARDING.md): --shards=<n> wins; otherwise
    // CG_SHARDS; `serve` without either defaults to one worker per
    // host core. Installed before the first sharedRunner() touch so
    // the shared engine is built on a ShardExecutor.
    if (shards == 0) {
        if (const char *env_shards = std::getenv("CG_SHARDS");
            env_shards != nullptr && *env_shards != '\0') {
            if (!parseShards(env_shards, &shards)) {
                std::cerr << "cg_bench run: invalid CG_SHARDS value '"
                          << env_shards
                          << "' (expected a decimal integer >= 1)\n";
                return usage(std::cerr, 2);
            }
        } else if (serve) {
            shards = ThreadPool::defaultJobs();
        }
    }
    if (shards > 0) {
        const sim::EnvOptions &env = sim::EnvOptions::get();
        if (env.traceEvents || env.telemetrySlices > 0) {
            std::cerr
                << "cg_bench run: --shards is incompatible with "
                   "CG_TRACE_EVENTS / CG_TELEMETRY_SLICES (traces "
                   "and telemetry rings cannot cross the worker "
                   "process boundary)\n";
            return usage(std::cerr, 2);
        }
        sim::ShardPlan plan;
        plan.shards = shards;
        plan.workerArgv = {selfExePath(), "worker"};
        sim::setProcessShardPlan(std::move(plan));
    }

    // Sweep health board (docs/TELEMETRY.md): live status line over
    // the shared runner's batches when stderr is a TTY (or CG_BOARD=1
    // forces it). Scenarios with private runners keep the default
    // progress reporter.
    sim::SweepHealthBoard board;
    if (sim::SweepHealthBoard::enabledFromEnv())
        board.attach(sim::sharedRunner());

    std::size_t tables = 0;
    std::size_t rows = 0;
    for (std::size_t i = 0; i < selected.size(); ++i) {
        const sim::Scenario &scenario = *selected[i];
        if (selected.size() > 1) {
            std::cout << "[" << (i + 1) << "/" << selected.size()
                      << "] " << scenario.name << "\n";
        }
        sim::ScenarioContext::Options options =
            sim::ScenarioContext::optionsFromEnv();
        if (!mode_filter.empty())
            options.modeFilter = mode_filter;
        sim::ScenarioContext ctx(std::move(options));
        scenario.run(ctx);
        tables += ctx.publishedTables();
        rows += ctx.publishedRows();
        if (i + 1 < selected.size())
            std::cout << "\n";
    }

    if (selected.size() > 1) {
        std::cout << "\nran " << selected.size() << " scenarios ("
                  << tables << " tables, " << rows << " rows)\n";
    }
    return 0;
}

/** Strict decimal Count parse for serve-run flags and CG_SERVICE_*. */
bool
parseCount(const std::string &text, Count *out)
{
    if (text.empty() || text.size() > 12)
        return false;
    Count value = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            return false;
        value = value * 10 + static_cast<Count>(c - '0');
    }
    *out = value;
    return true;
}

/** Strict positive double parse (--mtbe, --per-core-mtbe entries). */
bool
parsePositiveDouble(const std::string &text, double *out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size() || !(value > 0.0))
        return false;
    *out = value;
    return true;
}

int
cmdServeRun(const std::vector<std::string> &args)
{
    const auto bad = [](const std::string &why) {
        std::cerr << "cg_bench serve-run: " << why << "\n";
        return usage(std::cerr, 2);
    };

    std::string app_name = "fft";
    streamit::ProtectionMode mode = streamit::ProtectionMode::CommGuard;
    Count frames = 100'000;
    Count seed_index = 0;
    sim::ServiceConfig config;
    double mtbe = 128'000.0;
    std::vector<double> per_core_mtbe;
    std::string out_path;

    // Environment defaults first (docs/SERVICE.md); flags override.
    const auto env_count = [&bad](const char *key, Count *out) {
        const char *value = std::getenv(key);
        if (value == nullptr || *value == '\0')
            return 0;
        if (!parseCount(value, out) || *out == 0)
            return bad(std::string("invalid ") + key + " value '" +
                       value + "' (expected a decimal integer >= 1)");
        return 0;
    };
    if (int code = env_count("CG_SERVICE_FRAMES", &frames); code != 0)
        return code;
    if (int code = env_count("CG_SERVICE_SNAPSHOT_FRAMES",
                             &config.snapshotEveryFrames);
        code != 0)
        return code;
    Count window = 0;
    if (int code = env_count("CG_SERVICE_WINDOW", &window); code != 0)
        return code;
    if (window > 0)
        config.forensicsWindow = static_cast<std::size_t>(window);

    for (const std::string &arg : args) {
        const auto value_of = [&arg](const char *prefix) {
            return arg.substr(std::strlen(prefix));
        };
        if (arg.rfind("--app=", 0) == 0) {
            app_name = value_of("--app=");
        } else if (arg.rfind("--mode=", 0) == 0) {
            const std::string name = value_of("--mode=");
            if (!protection::tryParseProtectionMode(name, &mode))
                return bad("unknown protection mode '" + name +
                           "' (registered modes: " +
                           protection::ProtectionRegistry::instance()
                               .nameList() +
                           ")");
        } else if (arg.rfind("--frames=", 0) == 0) {
            if (!parseCount(value_of("--frames="), &frames) ||
                frames == 0)
                return bad("invalid --frames value");
        } else if (arg.rfind("--seed=", 0) == 0) {
            if (!parseCount(value_of("--seed="), &seed_index))
                return bad("invalid --seed value");
        } else if (arg.rfind("--arrival-seed=", 0) == 0) {
            Count arrival = 0;
            if (!parseCount(value_of("--arrival-seed="), &arrival))
                return bad("invalid --arrival-seed value");
            config.arrivalSeed = arrival;
        } else if (arg.rfind("--mtbe=", 0) == 0) {
            if (!parsePositiveDouble(value_of("--mtbe="), &mtbe))
                return bad("invalid --mtbe value");
        } else if (arg.rfind("--per-core-mtbe=", 0) == 0) {
            per_core_mtbe.clear();
            std::istringstream list(value_of("--per-core-mtbe="));
            std::string entry;
            while (std::getline(list, entry, ',')) {
                double value = 0.0;
                if (!parsePositiveDouble(entry, &value))
                    return bad("invalid --per-core-mtbe entry '" +
                               entry + "'");
                per_core_mtbe.push_back(value);
            }
            if (per_core_mtbe.empty())
                return bad("--per-core-mtbe needs at least one entry");
        } else if (arg.rfind("--burst=", 0) == 0) {
            if (!parseCount(value_of("--burst="),
                            &config.meanBurstFrames) ||
                config.meanBurstFrames == 0)
                return bad("invalid --burst value");
        } else if (arg.rfind("--gap=", 0) == 0) {
            if (!parseCount(value_of("--gap="),
                            &config.meanGapSlices) ||
                config.meanGapSlices == 0)
                return bad("invalid --gap value");
        } else if (arg.rfind("--backlog=", 0) == 0) {
            if (!parseCount(value_of("--backlog="),
                            &config.maxBacklogFrames) ||
                config.maxBacklogFrames == 0)
                return bad("invalid --backlog value");
        } else if (arg.rfind("--snapshot-frames=", 0) == 0) {
            if (!parseCount(value_of("--snapshot-frames="),
                            &config.snapshotEveryFrames) ||
                config.snapshotEveryFrames == 0)
                return bad("invalid --snapshot-frames value");
        } else if (arg.rfind("--window=", 0) == 0) {
            if (!parseCount(value_of("--window="), &window) ||
                window == 0)
                return bad("invalid --window value");
            config.forensicsWindow = static_cast<std::size_t>(window);
        } else if (arg.rfind("--degrade=", 0) == 0) {
            // --degrade=<frame>:<core>:<factor>
            const std::string spec = value_of("--degrade=");
            const std::size_t first = spec.find(':');
            const std::size_t second =
                first == std::string::npos ? std::string::npos
                                           : spec.find(':', first + 1);
            sim::ServiceEvent event;
            event.kind = sim::ServiceEvent::Kind::MtbeDegrade;
            Count core = 0;
            if (second == std::string::npos ||
                !parseCount(spec.substr(0, first), &event.atFrame) ||
                !parseCount(spec.substr(first + 1, second - first - 1),
                            &core) ||
                !parsePositiveDouble(spec.substr(second + 1),
                                     &event.factor))
                return bad("invalid --degrade spec '" + spec +
                           "' (expected <frame>:<core>:<factor>)");
            event.core = static_cast<int>(core);
            config.events.push_back(event);
        } else if (arg.rfind("--remap=", 0) == 0) {
            // --remap=<frame>:<rotation>
            const std::string spec = value_of("--remap=");
            const std::size_t colon = spec.find(':');
            sim::ServiceEvent event;
            event.kind = sim::ServiceEvent::Kind::Remap;
            Count rotation = 0;
            if (colon == std::string::npos ||
                !parseCount(spec.substr(0, colon), &event.atFrame) ||
                !parseCount(spec.substr(colon + 1), &rotation) ||
                rotation == 0)
                return bad("invalid --remap spec '" + spec +
                           "' (expected <frame>:<rotation>)");
            event.rotation = static_cast<int>(rotation);
            config.events.push_back(event);
        } else if (arg.rfind("--out=", 0) == 0) {
            out_path = value_of("--out=");
            if (out_path.empty())
                return bad("--out needs a path");
        } else {
            return bad("unknown argument '" + arg + "'");
        }
    }

    const apps::App app = apps::makeAppByName(app_name);
    config.app = &app;
    config.load = sim::sweepOptions(mode, true, mtbe,
                                    static_cast<int>(seed_index));
    if (!per_core_mtbe.empty()) {
        if (per_core_mtbe.size() !=
            static_cast<std::size_t>(app.graph.numNodes()))
            return bad("--per-core-mtbe has " +
                       std::to_string(per_core_mtbe.size()) +
                       " entries; app '" + app_name + "' has " +
                       std::to_string(app.graph.numNodes()) +
                       " nodes");
        config.load.perCoreMtbe = per_core_mtbe;
    }
    config.totalFrames = frames;

    sim::ServiceDriver driver(std::move(config));
    const sim::ServiceOutcome outcome = driver.run();

    if (!out_path.empty()) {
        std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
        out << outcome.jsonl;
        if (!out) {
            std::cerr << "cg_bench serve-run: cannot write '"
                      << out_path << "'\n";
            return 1;
        }
    }
    std::cout << outcome.summary.dump() << "\n";
    return outcome.completed ? 0 : 1;
}

int
cmdReplay(const std::vector<std::string> &args)
{
    if (args.size() != 1) {
        std::cerr << "cg_bench replay: expected exactly one bundle "
                     "path\n";
        return usage(std::cerr, 2);
    }

    std::ifstream in(args[0]);
    if (!in.good()) {
        std::cerr << "cg_bench replay: cannot open '" << args[0]
                  << "'\n";
        return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();

    Json bundle;
    std::string error;
    if (!Json::parse(buffer.str(), bundle, &error)) {
        std::cerr << "cg_bench replay: '" << args[0]
                  << "': parse error: " << error << "\n";
        return 2;
    }
    sim::FuzzCase fuzz_case;
    if (!sim::reproBundleFromJson(bundle, fuzz_case, &error)) {
        std::cerr << "cg_bench replay: '" << args[0]
                  << "': invalid bundle: " << error << "\n";
        return 2;
    }

    const sim::FuzzVerdict verdict = sim::checkFuzzCase(fuzz_case);
    if (!verdict.ok()) {
        std::cerr << "cg_bench replay: reproduced "
                  << verdict.failures.size()
                  << " invariant failure(s):\n";
        for (const std::string &failure : verdict.failures)
            std::cerr << "  " << failure << "\n";
        return 1;
    }
    std::cout << "cg_bench replay: bundle case is clean ("
              << verdict.runs << " sweep runs)\n";
    return 0;
}

/**
 * CG_CACHE_DIR must be usable before any sweep consults it: create it
 * if missing and prove writability with a probe file. A bad directory
 * is a usage error (exit 2), not a mid-sweep warning storm.
 */
int
checkCacheDir()
{
    const char *dir = std::getenv("CG_CACHE_DIR");
    if (dir == nullptr || *dir == '\0')
        return 0;

    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const std::string probe_path =
        std::string(dir) + "/.cg_probe." + std::to_string(::getpid());
    std::ofstream probe(probe_path);
    probe << "probe\n";
    probe.close();
    if (!probe) {
        std::cerr << "cg_bench: CG_CACHE_DIR '" << dir
                  << "' is not a writable directory\n";
        return usage(std::cerr, 2);
    }
    std::filesystem::remove(probe_path, ec);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 0)
        g_argv0 = argv[0];

    // Tool-specific knobs, registered before the strict env scan.
    sim::allowEnvKey("CG_SHARDS");
    sim::allowEnvKey("CG_CACHE_DIR");
    sim::allowEnvKey("CG_SERVICE_FRAMES");
    sim::allowEnvKey("CG_SERVICE_SNAPSHOT_FRAMES");
    sim::allowEnvKey("CG_SERVICE_WINDOW");

    // Validate the CG_* environment up front so a typo'd knob is
    // fatal on every subcommand, not just the ones that read it.
    (void)sim::EnvOptions::get();
    if (const int code = checkCacheDir(); code != 0)
        return code;

    const std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty())
        return usage(std::cerr, 2);
    if (args[0] == "--help" || args[0] == "-h" || args[0] == "help")
        return usage(std::cout, 0);

    const std::vector<std::string> rest(args.begin() + 1, args.end());
    if (args[0] == "list")
        return cmdList(rest);
    if (args[0] == "run")
        return cmdRun(rest, /*serve=*/false);
    if (args[0] == "serve")
        return cmdRun(rest, /*serve=*/true);
    if (args[0] == "serve-run")
        return cmdServeRun(rest);
    if (args[0] == "worker") {
        if (!rest.empty()) {
            std::cerr << "cg_bench worker: takes no arguments\n";
            return usage(std::cerr, 2);
        }
        // Frames on stdin/stdout, diagnostics on stderr.
        return sim::shardWorkerLoop(0, 1);
    }
    if (args[0] == "replay")
        return cmdReplay(rest);

    std::cerr << "cg_bench: unknown command '" << args[0] << "'\n";
    return usage(std::cerr, 2);
}
