/**
 * @file
 * JSONL schema self-check: validate a per-run metrics export file
 * (CG_JSONL output) line by line.
 *
 * For every line: it must parse as one canonical JSON object, carry
 * the current schema_version, the identifying descriptor fields, and
 * a snapshot that metrics::snapshotFromJson() accepts and that
 * re-serializes to the same canonical counters/gauges content.
 *
 * Usage: jsonl_check <runs.jsonl>
 * Exit status 0 iff every line validates. Used by the `schema_check`
 * build target.
 */

#include <cstdio>
#include <fstream>
#include <string>

#include "common/metrics.hh"

using namespace commguard;

namespace
{

bool
checkLine(const std::string &line, std::size_t number)
{
    const auto fail = [number](const std::string &why) {
        std::fprintf(stderr, "line %zu: %s\n", number, why.c_str());
        return false;
    };

    Json record;
    std::string error;
    if (!Json::parse(line, record, &error))
        return fail("parse error: " + error);
    if (!record.isObject())
        return fail("record is not an object");

    for (const char *key : {"app", "mode", "inject_errors", "mtbe",
                            "seed", "frame_scale"}) {
        if (record.find(key) == nullptr)
            return fail(std::string("missing descriptor field '") +
                        key + "'");
    }

    const Json *version = record.find("schema_version");
    if (version == nullptr)
        return fail("missing schema_version");
    if (version->counter() !=
        static_cast<Count>(metrics::kSchemaVersion))
        return fail("schema_version " + version->dump() +
                    " != " + std::to_string(metrics::kSchemaVersion));

    metrics::MetricSnapshot snapshot;
    try {
        snapshot = metrics::snapshotFromJson(record);
    } catch (const std::exception &e) {
        return fail(std::string("snapshot rejected: ") + e.what());
    }

    // Round-trip stability: re-serializing the parsed snapshot must
    // reproduce the record's counters/gauges bytes. Compare canonical
    // text, not Json values — non-finite gauges parse as their tagged
    // strings but re-encode from doubles.
    Json reencoded = metrics::snapshotToJson(snapshot);
    const Json *counters = record.find("counters");
    const Json *gauges = record.find("gauges");
    if (counters == nullptr || gauges == nullptr)
        return fail("missing counters/gauges");
    if (reencoded.find("counters")->dump() != counters->dump() ||
        reencoded.find("gauges")->dump() != gauges->dump())
        return fail("snapshot does not round-trip canonically");

    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: jsonl_check <runs.jsonl>\n");
        return 2;
    }

    std::ifstream in(argv[1]);
    if (!in.good()) {
        std::fprintf(stderr, "cannot open '%s'\n", argv[1]);
        return 2;
    }

    std::size_t lines = 0;
    std::size_t bad = 0;
    std::string line;
    while (std::getline(in, line)) {
        ++lines;
        if (!checkLine(line, lines))
            ++bad;
    }

    if (lines == 0) {
        std::fprintf(stderr, "'%s' contains no records\n", argv[1]);
        return 1;
    }
    std::printf("%zu record%s checked, %zu invalid\n", lines,
                lines == 1 ? "" : "s", bad);
    return bad == 0 ? 0 : 1;
}
