/**
 * @file
 * Schema self-checks for the machine-readable run artifacts.
 *
 * Default mode validates a per-run metrics export file (CG_JSONL
 * output) line by line: every line must parse as one canonical JSON
 * object, carry the current schema_version, the identifying descriptor
 * fields, and a snapshot that metrics::snapshotFromJson() accepts and
 * that re-serializes to the same canonical counters/gauges content.
 * When a record carries a "forensics" section (traced runs) its shape
 * is validated and its conservation_errors array must be empty.
 *
 * Usage:
 *   jsonl_check <runs.jsonl>               validate records
 *   jsonl_check --forensics <runs.jsonl>   …and require a forensics
 *                                          section on every record
 *   jsonl_check --trace <trace.json>...    validate Perfetto trace
 *                                          files (CG_TRACE_EVENTS
 *                                          output): parseable, current
 *                                          schema, and the instant/
 *                                          counter events in the
 *                                          stream tally against the
 *                                          exact event_counts sidecar
 *   jsonl_check --scenarios <list.json>    validate a `cg_bench list
 *                                          --json` catalogue: current
 *                                          schema, non-empty names/
 *                                          descriptions/paper refs/
 *                                          tags, names sorted and
 *                                          unique
 *   jsonl_check --repro <bundle.json>...   validate fuzz repro bundles
 *                                          (docs/FUZZING.md): current
 *                                          schema, kind "fuzz_repro",
 *                                          a parseable embedded case,
 *                                          and a failures string array
 *   jsonl_check --bench <bench.json>...    validate BENCH_<name>.json
 *                                          documents (CG_JSON output):
 *                                          current schema, non-empty
 *                                          bench name, and a data
 *                                          table whose rows all match
 *                                          the header width; tables
 *                                          keyed by run descriptors
 *                                          (app/mtbe/seed columns)
 *                                          must not repeat a
 *                                          configuration — a duplicate
 *                                          row means a sweep merge
 *                                          double-counted a run
 *   jsonl_check --telemetry <runs.jsonl>   validate a telemetry stream
 *                                          (CG_TELEMETRY_OUT output,
 *                                          docs/TELEMETRY.md): current
 *                                          telemetry schema, per-run
 *                                          contiguous records with
 *                                          consecutive sample indices
 *                                          and strictly increasing
 *                                          slices, exactly one final
 *                                          record per run, and — when
 *                                          no samples were dropped —
 *                                          delta sums that reconcile
 *                                          1:1 with the final record's
 *                                          cumulative totals
 *   jsonl_check --service <service.jsonl>  validate a service-mode
 *                                          stream (`cg_bench
 *                                          serve-run` output,
 *                                          docs/SERVICE.md): current
 *                                          service schema on every
 *                                          record, a meta record
 *                                          first, snapshots with
 *                                          consecutive indices,
 *                                          monotone slices and frame
 *                                          counters bounded by
 *                                          total_frames, and exactly
 *                                          one summary record, last,
 *                                          whose counts reconcile with
 *                                          the stream
 *
 * Exit status 0 iff everything validates. Used by the `schema_check`
 * build target and scripts/check.sh.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/metrics.hh"
#include "common/telemetry.hh"
#include "sim/fuzz.hh"
#include "sim/protection.hh"
#include "sim/service_driver.hh"

using namespace commguard;

namespace
{

bool
checkForensics(const Json &forensics, std::size_t number)
{
    const auto fail = [number](const std::string &why) {
        std::fprintf(stderr, "line %zu: forensics: %s\n", number,
                     why.c_str());
        return false;
    };

    if (!forensics.isObject())
        return fail("not an object");
    for (const char *key :
         {"errors_injected", "queue_corruptions", "repaired",
          "unrepaired", "repair_episodes", "eoc_pads",
          "events_dropped"}) {
        const Json *value = forensics.find(key);
        if (value == nullptr || !value->isNumber())
            return fail(std::string("missing numeric field '") + key +
                        "'");
    }
    for (const char *key :
         {"ttr_slices", "items_padded", "items_discarded"}) {
        const Json *dist = forensics.find(key);
        if (dist == nullptr || !dist->isObject())
            return fail(std::string("missing distribution '") + key +
                        "'");
        for (const char *field : {"count", "max", "mean"}) {
            const Json *value = dist->find(field);
            if (value == nullptr || !value->isNumber())
                return fail(std::string(key) + " lacks numeric '" +
                            field + "'");
        }
        const Json *histogram = dist->find("histogram");
        if (histogram == nullptr || !histogram->isArray())
            return fail(std::string(key) + " lacks histogram array");
        for (const Json &bin : histogram->arr()) {
            if (!bin.isArray() || bin.arr().size() != 2)
                return fail(std::string(key) +
                            " histogram bin is not [value, count]");
        }
    }

    const Json *errors = forensics.find("conservation_errors");
    if (errors == nullptr || !errors->isArray())
        return fail("missing conservation_errors array");
    if (!errors->arr().empty())
        return fail("conservation violated: " + errors->dump());
    return true;
}

bool
checkLine(const std::string &line, std::size_t number,
          bool require_forensics)
{
    const auto fail = [number](const std::string &why) {
        std::fprintf(stderr, "line %zu: %s\n", number, why.c_str());
        return false;
    };

    Json record;
    std::string error;
    if (!Json::parse(line, record, &error))
        return fail("parse error: " + error);
    if (!record.isObject())
        return fail("record is not an object");

    for (const char *key : {"app", "protection_mode", "inject_errors",
                            "mtbe", "seed", "frame_scale"}) {
        if (record.find(key) == nullptr)
            return fail(std::string("missing descriptor field '") +
                        key + "'");
    }

    // The mode vocabulary is the protection registry's name set.
    const Json *mode = record.find("protection_mode");
    streamit::ProtectionMode parsed_mode{};
    if (!mode->isString() ||
        !protection::tryParseProtectionMode(mode->str(),
                                            &parsed_mode)) {
        return fail("protection_mode " + mode->dump() +
                    " is not a registered mode (registered: " +
                    protection::ProtectionRegistry::instance()
                        .nameList() +
                    ")");
    }

    const Json *version = record.find("schema_version");
    if (version == nullptr)
        return fail("missing schema_version");
    if (version->counter() !=
        static_cast<Count>(metrics::kSchemaVersion))
        return fail("schema_version " + version->dump() +
                    " != " + std::to_string(metrics::kSchemaVersion));

    metrics::MetricSnapshot snapshot;
    try {
        snapshot = metrics::snapshotFromJson(record);
    } catch (const std::exception &e) {
        return fail(std::string("snapshot rejected: ") + e.what());
    }

    // Round-trip stability: re-serializing the parsed snapshot must
    // reproduce the record's counters/gauges bytes. Compare canonical
    // text, not Json values — non-finite gauges parse as their tagged
    // strings but re-encode from doubles.
    Json reencoded = metrics::snapshotToJson(snapshot);
    const Json *counters = record.find("counters");
    const Json *gauges = record.find("gauges");
    if (counters == nullptr || gauges == nullptr)
        return fail("missing counters/gauges");
    if (reencoded.find("counters")->dump() != counters->dump() ||
        reencoded.find("gauges")->dump() != gauges->dump())
        return fail("snapshot does not round-trip canonically");

    const Json *forensics = record.find("forensics");
    if (forensics == nullptr)
        return require_forensics
                   ? fail("missing forensics section "
                          "(was the sweep traced?)")
                   : true;
    return checkForensics(*forensics, number);
}

bool
checkTraceFile(const char *path)
{
    const auto fail = [path](const std::string &why) {
        std::fprintf(stderr, "%s: %s\n", path, why.c_str());
        return false;
    };

    std::ifstream in(path);
    if (!in.good())
        return fail("cannot open");
    std::ostringstream buffer;
    buffer << in.rdbuf();

    Json doc;
    std::string error;
    if (!Json::parse(buffer.str(), doc, &error))
        return fail("parse error: " + error);
    if (!doc.isObject())
        return fail("document is not an object");

    const Json *events = doc.find("traceEvents");
    if (events == nullptr || !events->isArray())
        return fail("missing traceEvents array");

    const Json *sidecar = doc.find("commguard");
    if (sidecar == nullptr || !sidecar->isObject())
        return fail("missing commguard sidecar object");
    const Json *version = sidecar->find("schema_version");
    if (version == nullptr ||
        version->counter() !=
            static_cast<Count>(metrics::kSchemaVersion))
        return fail("bad or missing commguard.schema_version");
    const Json *counts = sidecar->find("event_counts");
    if (counts == nullptr || !counts->isObject())
        return fail("missing commguard.event_counts object");
    const Json *dropped = sidecar->find("dropped");
    if (dropped == nullptr || !dropped->isNumber())
        return fail("missing commguard.dropped");

    // Tally the stream: instant events per kind name, counter events
    // as queueDepth samples.
    std::map<std::string, Count> tallied;
    Count depth_samples = 0;
    for (const Json &event : events->arr()) {
        if (!event.isObject())
            return fail("traceEvents entry is not an object");
        const Json *ph = event.find("ph");
        const Json *name = event.find("name");
        if (ph == nullptr || name == nullptr)
            return fail("traceEvents entry lacks ph/name");
        if (ph->str() == "i")
            ++tallied[name->str()];
        else if (ph->str() == "C")
            ++depth_samples;
    }

    // Retained records never exceed the exact counts; with no drops
    // they must match exactly.
    const bool exact = dropped->counter() == 0;
    for (const auto &[kind, declared] : counts->obj()) {
        const Count expected = declared.counter();
        const Count seen = kind == "queueDepth" ? depth_samples
                                                : tallied[kind];
        if (seen > expected ||
            (exact && seen != expected)) {
            return fail("event '" + kind + "': stream has " +
                        std::to_string(seen) + ", event_counts says " +
                        std::to_string(expected) +
                        (exact ? " (no drops)" : ""));
        }
    }
    for (const auto &[kind, seen] : tallied) {
        if (counts->find(kind) == nullptr)
            return fail("stream event '" + kind +
                        "' missing from event_counts");
    }
    return true;
}

bool
checkScenarioList(const char *path)
{
    const auto fail = [path](const std::string &why) {
        std::fprintf(stderr, "%s: %s\n", path, why.c_str());
        return false;
    };

    std::ifstream in(path);
    if (!in.good())
        return fail("cannot open");
    std::ostringstream buffer;
    buffer << in.rdbuf();

    Json doc;
    std::string error;
    if (!Json::parse(buffer.str(), doc, &error))
        return fail("parse error: " + error);
    if (!doc.isObject())
        return fail("document is not an object");

    const Json *version = doc.find("schema_version");
    if (version == nullptr ||
        version->counter() !=
            static_cast<Count>(metrics::kSchemaVersion))
        return fail("bad or missing schema_version");

    const Json *scenarios = doc.find("scenarios");
    if (scenarios == nullptr || !scenarios->isArray())
        return fail("missing scenarios array");
    if (scenarios->arr().empty())
        return fail("scenarios array is empty");

    std::string previous;
    std::size_t index = 0;
    for (const Json &entry : scenarios->arr()) {
        const std::string where =
            "scenario " + std::to_string(index++);
        if (!entry.isObject())
            return fail(where + ": not an object");
        for (const char *key : {"name", "description", "paper_ref"}) {
            const Json *value = entry.find(key);
            if (value == nullptr || !value->isString() ||
                value->str().empty()) {
                return fail(where + ": missing or empty '" + key +
                            "'");
            }
        }
        const Json *tags = entry.find("tags");
        if (tags == nullptr || !tags->isArray() ||
            tags->arr().empty())
            return fail(where + ": missing or empty tags array");
        for (const Json &tag : tags->arr()) {
            if (!tag.isString() || tag.str().empty())
                return fail(where + ": tag is not a non-empty string");
        }
        const std::string &name = entry.find("name")->str();
        if (!previous.empty() && name <= previous)
            return fail("names not sorted/unique: '" + name +
                        "' after '" + previous + "'");
        previous = name;
    }
    std::printf("%zu scenario entr%s checked, catalogue valid\n",
                scenarios->arr().size(),
                scenarios->arr().size() == 1 ? "y" : "ies");
    return true;
}

bool
checkReproBundle(const char *path)
{
    const auto fail = [path](const std::string &why) {
        std::fprintf(stderr, "%s: %s\n", path, why.c_str());
        return false;
    };

    std::ifstream in(path);
    if (!in.good())
        return fail("cannot open");
    std::ostringstream buffer;
    buffer << in.rdbuf();

    Json doc;
    std::string error;
    if (!Json::parse(buffer.str(), doc, &error))
        return fail("parse error: " + error);

    sim::FuzzCase fuzz_case;
    if (!sim::reproBundleFromJson(doc, fuzz_case, &error))
        return fail("invalid bundle: " + error);

    // The case must survive its own canonical round-trip, so replay
    // tools see exactly what the fuzzer saw.
    const Json canonical = sim::fuzzCaseJson(fuzz_case);
    sim::FuzzCase reparsed;
    if (!sim::fuzzCaseFromJson(canonical, reparsed, &error) ||
        !(reparsed == fuzz_case))
        return fail("case does not round-trip canonically");
    return true;
}

bool
checkBenchDocument(const char *path)
{
    const auto fail = [path](const std::string &why) {
        std::fprintf(stderr, "%s: %s\n", path, why.c_str());
        return false;
    };

    std::ifstream in(path);
    if (!in.good())
        return fail("cannot open");
    std::ostringstream buffer;
    buffer << in.rdbuf();

    Json doc;
    std::string error;
    if (!Json::parse(buffer.str(), doc, &error))
        return fail("parse error: " + error);
    if (!doc.isObject())
        return fail("document is not an object");

    const Json *version = doc.find("schema_version");
    if (version == nullptr ||
        version->counter() !=
            static_cast<Count>(metrics::kSchemaVersion))
        return fail("bad or missing schema_version");

    const Json *bench = doc.find("bench");
    if (bench == nullptr || !bench->isString() ||
        bench->str().empty())
        return fail("missing or empty bench name");

    const Json *data = doc.find("data");
    if (data == nullptr || !data->isObject())
        return fail("missing data object");
    const Json *headers = data->find("headers");
    if (headers == nullptr || !headers->isArray() ||
        headers->arr().empty())
        return fail("data lacks a non-empty headers array");
    const Json *rows = data->find("rows");
    if (rows == nullptr || !rows->isArray())
        return fail("data lacks a rows array");
    const std::size_t width = headers->arr().size();
    std::size_t index = 0;
    for (const Json &row : rows->arr()) {
        const std::string where = "row " + std::to_string(index++);
        if (!row.isArray())
            return fail(where + ": not an array");
        if (row.arr().size() != width) {
            return fail(where + ": " +
                        std::to_string(row.arr().size()) +
                        " cells, headers declare " +
                        std::to_string(width));
        }
    }

    // Duplicate-run detection: a table keyed by run descriptors must
    // name each configuration once — a repeat means a sweep merge
    // double-counted a run (e.g. a sharded sweep re-admitting a
    // reassigned shard). Engages only on tables carrying the full
    // descriptor key ("app", "mtbe", "seed"); summary tables keyed
    // otherwise are exempt.
    const std::vector<std::string> descriptor_columns = {
        "app",  "mode", "protection_mode",
        "mtbe", "seed", "frame_scale",
        "inject_errors"};
    std::vector<std::size_t> key_columns;
    bool has_app = false, has_mtbe = false, has_seed = false;
    for (std::size_t h = 0; h < headers->arr().size(); ++h) {
        const Json &header = headers->arr()[h];
        if (!header.isString())
            return fail("header " + std::to_string(h) +
                        " is not a string");
        for (const std::string &column : descriptor_columns) {
            if (header.str() == column) {
                key_columns.push_back(h);
                has_app |= column == "app";
                has_mtbe |= column == "mtbe";
                has_seed |= column == "seed";
            }
        }
    }
    if (has_app && has_mtbe && has_seed) {
        std::set<std::string> seen;
        index = 0;
        for (const Json &row : rows->arr()) {
            std::string key;
            for (std::size_t column : key_columns)
                key += row.arr()[column].dump() + "\x1f";
            if (!seen.insert(key).second)
                return fail("row " + std::to_string(index) +
                            " duplicates an earlier run "
                            "configuration: " +
                            row.dump());
            ++index;
        }
    }
    return true;
}

/**
 * State of the telemetry run whose records are currently streaming
 * past (runs are contiguous in the file, so one suffices).
 */
struct TelemetryRunState
{
    bool active = false;
    Count runIndex = 0;
    Count records = 0;
    Count nextSample = 0;
    Count lastSlice = 0;
    Count lastCycles = 0;
    std::map<std::string, Count> deltaSums;
};

bool
finishTelemetryRun(TelemetryRunState &run, const Json &record,
                   const std::function<bool(const std::string &)> &fail)
{
    // The final record must reconcile: sample accounting, and — when
    // nothing was folded out of the ring — conservation of every
    // counter (sum of streamed deltas == final cumulative totals).
    const Json *taken = record.find("samples_taken");
    const Json *dropped = record.find("samples_dropped");
    const Json *cumulative = record.find("cumulative");
    if (taken == nullptr || !taken->isNumber())
        return fail("final record lacks numeric samples_taken");
    if (dropped == nullptr || !dropped->isNumber())
        return fail("final record lacks numeric samples_dropped");
    if (cumulative == nullptr || !cumulative->isObject())
        return fail("final record lacks cumulative object");
    if (taken->counter() != dropped->counter() + run.records) {
        return fail("samples_taken " + taken->dump() + " != dropped " +
                    dropped->dump() + " + " +
                    std::to_string(run.records) + " streamed records");
    }
    if (dropped->counter() != 0) {
        run.active = false;
        return true;
    }

    for (const auto &[name, total] : cumulative->obj()) {
        if (!total.isNumber())
            return fail("cumulative['" + name + "'] is not a number");
        const auto it = run.deltaSums.find(name);
        const Count summed = it == run.deltaSums.end() ? 0 : it->second;
        if (summed != total.counter()) {
            return fail("conservation violated for '" + name +
                        "': deltas sum to " + std::to_string(summed) +
                        ", cumulative says " + total.dump());
        }
    }
    for (const auto &[name, summed] : run.deltaSums) {
        if (summed != 0 && cumulative->find(name) == nullptr) {
            return fail("counter '" + name + "' has streamed deltas (" +
                        std::to_string(summed) +
                        ") but no cumulative entry");
        }
    }
    run.active = false;
    return true;
}

bool
checkTelemetryLine(const std::string &line, std::size_t number,
                   TelemetryRunState &run, std::set<Count> &finished)
{
    const std::function<bool(const std::string &)> fail =
        [number](const std::string &why) {
            std::fprintf(stderr, "line %zu: %s\n", number,
                         why.c_str());
            return false;
        };

    Json record;
    std::string error;
    if (!Json::parse(line, record, &error))
        return fail("parse error: " + error);
    if (!record.isObject())
        return fail("record is not an object");

    const Json *version = record.find("telemetry_schema_version");
    if (version == nullptr ||
        version->counter() !=
            static_cast<Count>(telemetry::kTelemetrySchemaVersion)) {
        return fail("bad or missing telemetry_schema_version "
                    "(expected " +
                    std::to_string(telemetry::kTelemetrySchemaVersion) +
                    ")");
    }

    for (const char *key : {"app", "protection_mode", "inject_errors",
                            "mtbe", "seed", "frame_scale"}) {
        if (record.find(key) == nullptr)
            return fail(std::string("missing descriptor field '") +
                        key + "'");
    }
    const Json *mode = record.find("protection_mode");
    streamit::ProtectionMode parsed_mode{};
    if (!mode->isString() ||
        !protection::tryParseProtectionMode(mode->str(),
                                            &parsed_mode)) {
        return fail("protection_mode " + mode->dump() +
                    " is not a registered mode");
    }

    for (const char *key : {"run_index", "sample", "slice", "cycles"}) {
        const Json *value = record.find(key);
        if (value == nullptr || !value->isNumber())
            return fail(std::string("missing numeric field '") + key +
                        "'");
    }
    const Json *final_flag = record.find("final");
    if (final_flag == nullptr || !final_flag->isBool())
        return fail("missing boolean field 'final'");
    const Json *deltas = record.find("deltas");
    if (deltas == nullptr || !deltas->isObject())
        return fail("missing deltas object");

    const Count run_index = record.find("run_index")->counter();
    const Count sample = record.find("sample")->counter();
    const Count slice = record.find("slice")->counter();
    const Count cycles = record.find("cycles")->counter();

    if (!run.active || run_index != run.runIndex) {
        // A new run begins; the previous one must have been closed by
        // its final record, and run indices must never interleave.
        if (run.active)
            return fail("run " + std::to_string(run.runIndex) +
                        " has no final record before run " +
                        std::to_string(run_index) + " starts");
        if (finished.count(run_index) > 0)
            return fail("run " + std::to_string(run_index) +
                        " reappears after its final record "
                        "(records must be contiguous per run)");
        run = TelemetryRunState{};
        run.active = true;
        run.runIndex = run_index;
        run.nextSample = sample;
    } else {
        if (slice <= run.lastSlice)
            return fail("slice " + std::to_string(slice) +
                        " does not increase over " +
                        std::to_string(run.lastSlice));
        if (cycles < run.lastCycles)
            return fail("cycles " + std::to_string(cycles) +
                        " decreases below " +
                        std::to_string(run.lastCycles));
    }
    if (sample != run.nextSample)
        return fail("sample index " + std::to_string(sample) +
                    " is not consecutive (expected " +
                    std::to_string(run.nextSample) + ")");
    ++run.nextSample;
    ++run.records;
    run.lastSlice = slice;
    run.lastCycles = cycles;

    for (const auto &[name, delta] : deltas->obj()) {
        if (!delta.isNumber())
            return fail("deltas['" + name + "'] is not a number");
        if (delta.counter() == 0)
            return fail("deltas['" + name +
                        "'] is zero (deltas are sparse)");
        run.deltaSums[name] += delta.counter();
    }

    if (final_flag->boolean()) {
        if (!finishTelemetryRun(run, record, fail))
            return false;
        finished.insert(run_index);
    }
    return true;
}

bool
checkTelemetryFile(const char *path)
{
    std::ifstream in(path);
    if (!in.good()) {
        std::fprintf(stderr, "cannot open '%s'\n", path);
        return false;
    }

    TelemetryRunState run;
    std::set<Count> finished;
    std::size_t lines = 0;
    std::size_t bad = 0;
    std::string line;
    while (std::getline(in, line)) {
        ++lines;
        if (!checkTelemetryLine(line, lines, run, finished))
            ++bad;
    }
    if (lines == 0) {
        std::fprintf(stderr, "'%s' contains no telemetry records\n",
                     path);
        return false;
    }
    if (run.active) {
        std::fprintf(stderr,
                     "run %llu is missing its final record at EOF\n",
                     static_cast<unsigned long long>(run.runIndex));
        ++bad;
    }
    std::printf("%zu telemetry record%s over %zu run%s checked, "
                "%zu invalid\n",
                lines, lines == 1 ? "" : "s", finished.size(),
                finished.size() == 1 ? "" : "s", bad);
    return bad == 0;
}

/** Streaming state for one `--service` file (one run per file). */
struct ServiceStreamState
{
    bool sawMeta = false;
    bool sawSummary = false;
    Count totalFrames = 0;
    Count nextSnapshot = 0;       //!< Expected next snapshot index.
    Count lastSlice = 0;
    Count lastAdmitted = 0;
    Count eventsSeen = 0;
};

bool
checkServiceLine(const std::string &line, std::size_t number,
                 ServiceStreamState &state)
{
    const auto fail = [number](const std::string &why) {
        std::fprintf(stderr, "line %zu: %s\n", number, why.c_str());
        return false;
    };

    Json record;
    std::string error;
    if (!Json::parse(line, record, &error))
        return fail("parse error: " + error);
    if (!record.isObject())
        return fail("record is not an object");

    const Json *version = record.find("service_schema_version");
    if (version == nullptr ||
        version->counter() !=
            static_cast<Count>(sim::kServiceSchemaVersion)) {
        return fail("bad or missing service_schema_version (expected " +
                    std::to_string(sim::kServiceSchemaVersion) + ")");
    }
    const Json *type = record.find("type");
    if (type == nullptr || !type->isString())
        return fail("missing type string");
    if (state.sawSummary)
        return fail("record after the summary (summary must be last)");

    const auto require_number = [&](const char *key,
                                    const Json **out) {
        const Json *value = record.find(key);
        if (value == nullptr || !value->isNumber())
            return false;
        *out = value;
        return true;
    };

    if (type->str() == "meta") {
        if (state.sawMeta)
            return fail("second meta record");
        if (number != 1)
            return fail("meta record is not the first line");
        const Json *frames = nullptr;
        if (!require_number("total_frames", &frames) ||
            frames->counter() == 0)
            return fail("meta lacks a positive total_frames");
        state.sawMeta = true;
        state.totalFrames = frames->counter();
        return true;
    }
    if (!state.sawMeta)
        return fail("stream does not begin with a meta record");

    if (type->str() == "event") {
        const Json *kind = record.find("kind");
        if (kind == nullptr || !kind->isString() ||
            (kind->str() != "mtbe_degrade" && kind->str() != "remap"))
            return fail("event kind is not mtbe_degrade/remap");
        ++state.eventsSeen;
        return true;
    }

    if (type->str() == "snapshot") {
        const Json *index = nullptr;
        const Json *slice = nullptr;
        const Json *admitted = nullptr;
        const Json *completed = nullptr;
        if (!require_number("index", &index) ||
            !require_number("slice", &slice) ||
            !require_number("frames_admitted", &admitted) ||
            !require_number("frames_completed", &completed))
            return fail("snapshot lacks numeric index/slice/"
                        "frames_admitted/frames_completed");
        for (const char *key : {"deltas", "forensics", "ring"}) {
            const Json *section = record.find(key);
            if (section == nullptr || !section->isObject())
                return fail(std::string("snapshot lacks object '") +
                            key + "'");
        }
        if (index->counter() != state.nextSnapshot)
            return fail("snapshot index " + index->dump() +
                        " is not consecutive (expected " +
                        std::to_string(state.nextSnapshot) + ")");
        if (state.nextSnapshot > 0 &&
            slice->counter() < state.lastSlice)
            return fail("snapshot slice " + slice->dump() +
                        " decreases below " +
                        std::to_string(state.lastSlice));
        if (admitted->counter() < state.lastAdmitted)
            return fail("frames_admitted " + admitted->dump() +
                        " decreases");
        if (admitted->counter() > state.totalFrames)
            return fail("frames_admitted " + admitted->dump() +
                        " exceeds total_frames");
        if (completed->counter() > admitted->counter())
            return fail("frames_completed " + completed->dump() +
                        " exceeds frames_admitted");
        ++state.nextSnapshot;
        state.lastSlice = slice->counter();
        state.lastAdmitted = admitted->counter();
        return true;
    }

    if (type->str() == "summary") {
        const Json *completed_flag = record.find("completed");
        if (completed_flag == nullptr || !completed_flag->isBool())
            return fail("summary lacks boolean completed");
        const Json *frames = nullptr;
        const Json *snapshots = nullptr;
        const Json *events = nullptr;
        if (!require_number("frames_completed", &frames) ||
            !require_number("snapshots", &snapshots) ||
            !require_number("events_applied", &events))
            return fail("summary lacks frames_completed/snapshots/"
                        "events_applied");
        if (completed_flag->boolean() &&
            frames->counter() != state.totalFrames)
            return fail("summary claims completed but "
                        "frames_completed " +
                        frames->dump() + " != total_frames " +
                        std::to_string(state.totalFrames));
        if (snapshots->counter() != state.nextSnapshot)
            return fail("summary snapshots " + snapshots->dump() +
                        " != " + std::to_string(state.nextSnapshot) +
                        " snapshot records in the stream");
        if (events->counter() != state.eventsSeen)
            return fail("summary events_applied " + events->dump() +
                        " != " + std::to_string(state.eventsSeen) +
                        " event records in the stream");
        state.sawSummary = true;
        return true;
    }

    return fail("unknown record type " + type->dump());
}

bool
checkServiceFile(const char *path)
{
    std::ifstream in(path);
    if (!in.good()) {
        std::fprintf(stderr, "cannot open '%s'\n", path);
        return false;
    }

    ServiceStreamState state;
    std::size_t lines = 0;
    std::size_t bad = 0;
    std::string line;
    while (std::getline(in, line)) {
        ++lines;
        if (!checkServiceLine(line, lines, state))
            ++bad;
    }
    if (lines == 0) {
        std::fprintf(stderr, "'%s' contains no service records\n",
                     path);
        return false;
    }
    if (!state.sawSummary) {
        std::fprintf(stderr, "'%s' has no summary record\n", path);
        ++bad;
    }
    std::printf("%zu service record%s checked (%llu snapshots, "
                "%llu events), %zu invalid\n",
                lines, lines == 1 ? "" : "s",
                static_cast<unsigned long long>(state.nextSnapshot),
                static_cast<unsigned long long>(state.eventsSeen),
                bad);
    return bad == 0;
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: jsonl_check [--forensics] <runs.jsonl>\n"
                 "       jsonl_check --trace <trace.json>...\n"
                 "       jsonl_check --scenarios <list.json>\n"
                 "       jsonl_check --repro <bundle.json>...\n"
                 "       jsonl_check --bench <bench.json>...\n"
                 "       jsonl_check --telemetry <runs.jsonl>\n"
                 "       jsonl_check --service <service.jsonl>\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 2 && std::strcmp(argv[1], "--scenarios") == 0) {
        if (argc != 3)
            return usage();
        return checkScenarioList(argv[2]) ? 0 : 1;
    }
    if (argc >= 2 && std::strcmp(argv[1], "--repro") == 0) {
        if (argc < 3)
            return usage();
        std::size_t bad = 0;
        for (int i = 2; i < argc; ++i) {
            if (!checkReproBundle(argv[i]))
                ++bad;
        }
        std::printf("%d repro bundle%s checked, %zu invalid\n",
                    argc - 2, argc == 3 ? "" : "s", bad);
        return bad == 0 ? 0 : 1;
    }
    if (argc >= 2 && std::strcmp(argv[1], "--bench") == 0) {
        if (argc < 3)
            return usage();
        std::size_t bad = 0;
        for (int i = 2; i < argc; ++i) {
            if (!checkBenchDocument(argv[i]))
                ++bad;
        }
        std::printf("%d bench document%s checked, %zu invalid\n",
                    argc - 2, argc == 3 ? "" : "s", bad);
        return bad == 0 ? 0 : 1;
    }
    if (argc >= 2 && std::strcmp(argv[1], "--telemetry") == 0) {
        if (argc != 3)
            return usage();
        return checkTelemetryFile(argv[2]) ? 0 : 1;
    }
    if (argc >= 2 && std::strcmp(argv[1], "--service") == 0) {
        if (argc != 3)
            return usage();
        return checkServiceFile(argv[2]) ? 0 : 1;
    }
    if (argc >= 2 && std::strcmp(argv[1], "--trace") == 0) {
        if (argc < 3)
            return usage();
        std::size_t bad = 0;
        for (int i = 2; i < argc; ++i) {
            if (!checkTraceFile(argv[i]))
                ++bad;
        }
        std::printf("%d trace file%s checked, %zu invalid\n", argc - 2,
                    argc == 3 ? "" : "s", bad);
        return bad == 0 ? 0 : 1;
    }

    bool require_forensics = false;
    const char *path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--forensics") == 0)
            require_forensics = true;
        else if (path == nullptr)
            path = argv[i];
        else
            return usage();
    }
    if (path == nullptr)
        return usage();

    std::ifstream in(path);
    if (!in.good()) {
        std::fprintf(stderr, "cannot open '%s'\n", path);
        return 2;
    }

    std::size_t lines = 0;
    std::size_t bad = 0;
    std::string line;
    while (std::getline(in, line)) {
        ++lines;
        if (!checkLine(line, lines, require_forensics))
            ++bad;
    }

    if (lines == 0) {
        std::fprintf(stderr, "'%s' contains no records\n", path);
        return 1;
    }
    std::printf("%zu record%s checked, %zu invalid\n", lines,
                lines == 1 ? "" : "s", bad);
    return bad == 0 ? 0 : 1;
}
