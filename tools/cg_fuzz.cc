/**
 * @file
 * Deterministic stress-fuzz driver (docs/FUZZING.md).
 *
 *   cg_fuzz run [--cases=N] [--budget-seconds=S] [--seed=BASE]
 *               [--jobs=N] [--mode=<mode>] [--break=<hook>]
 *               [--out=<bundle.json>]
 *       Draw seeded FuzzCases and check every harness invariant until
 *       the case count or the wall-clock budget (CG_FUZZ_BUDGET
 *       seconds, default 10) runs out. On the first failing case a
 *       greedy shrink pass minimizes it and a repro bundle is written.
 *
 *   cg_fuzz replay <bundle.json>
 *       Re-run the case embedded in a repro bundle.
 *
 * Exit codes: 0 all cases clean / replay clean, 1 invariant failure
 * found (bundle written) or reproduced, 2 usage error / unreadable
 * bundle, 4 watchdog kill (a case exceeded its per-case wall budget —
 * the deadlock detector).
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/env.hh"
#include "sim/env_options.hh"
#include "sim/fuzz.hh"
#include "sim/protection.hh"
#include "sim/telemetry_export.hh"

using namespace commguard;

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage: cg_fuzz run [--cases=N] [--budget-seconds=S] "
        "[--seed=BASE]\n"
        "                   [--jobs=N] [--mode=<mode>] "
        "[--break=<hook>]\n"
        "                   [--out=<bundle.json>]\n"
        "       cg_fuzz replay <bundle.json>\n"
        "\n"
        "--mode pins every case to one registered protection mode\n"
        "hooks (test-only, corrupt one invariant): counter, "
        "determinism, schema\n"
        "environment: CG_FUZZ_BUDGET (seconds, default 10)\n"
        "exit codes: 0 clean, 1 failure found/reproduced, 2 usage, "
        "4 watchdog\n");
    return 2;
}

/** Parse "--key=value"; returns false when @p arg has another key. */
bool
keyValue(const std::string &arg, const std::string &key,
         std::string &value)
{
    const std::string prefix = "--" + key + "=";
    if (arg.rfind(prefix, 0) != 0)
        return false;
    value = arg.substr(prefix.size());
    return true;
}

bool
parseCount(const std::string &text, long &out)
{
    try {
        std::size_t consumed = 0;
        out = std::stol(text, &consumed);
        return consumed == text.size() && out >= 0;
    } catch (const std::exception &) {
        return false;
    }
}

void
printFailures(const sim::FuzzVerdict &verdict)
{
    for (const std::string &failure : verdict.failures)
        std::fprintf(stderr, "  %s\n", failure.c_str());
}

int
cmdRun(const std::vector<std::string> &args)
{
    long cases = -1;  // -1: run until the budget expires.
    double budget_seconds =
        static_cast<double>(envLong("CG_FUZZ_BUDGET", 10));
    std::uint64_t base_seed = 1;
    long jobs_override = 0;
    bool mode_pinned = false;
    streamit::ProtectionMode pinned_mode{};
    std::string break_hook;
    std::string bundle_path = "fuzz_repro.json";

    for (const std::string &arg : args) {
        std::string value;
        long number = 0;
        if (keyValue(arg, "cases", value)) {
            if (!parseCount(value, cases) || cases < 1) {
                std::fprintf(stderr,
                             "cg_fuzz: bad --cases value '%s'\n",
                             value.c_str());
                return usage();
            }
        } else if (keyValue(arg, "budget-seconds", value)) {
            if (!parseCount(value, number) || number < 1) {
                std::fprintf(
                    stderr,
                    "cg_fuzz: bad --budget-seconds value '%s'\n",
                    value.c_str());
                return usage();
            }
            budget_seconds = static_cast<double>(number);
        } else if (keyValue(arg, "seed", value)) {
            if (!parseCount(value, number)) {
                std::fprintf(stderr,
                             "cg_fuzz: bad --seed value '%s'\n",
                             value.c_str());
                return usage();
            }
            base_seed = static_cast<std::uint64_t>(number);
        } else if (keyValue(arg, "jobs", value)) {
            if (!parseCount(value, jobs_override) ||
                jobs_override < 1) {
                std::fprintf(stderr,
                             "cg_fuzz: bad --jobs value '%s'\n",
                             value.c_str());
                return usage();
            }
        } else if (keyValue(arg, "mode", value)) {
            if (!protection::tryParseProtectionMode(value,
                                                    &pinned_mode)) {
                std::fprintf(
                    stderr,
                    "cg_fuzz: unknown protection mode '%s' "
                    "(registered modes: %s)\n",
                    value.c_str(),
                    protection::ProtectionRegistry::instance()
                        .nameList()
                        .c_str());
                return 2;
            }
            mode_pinned = true;
        } else if (keyValue(arg, "break", value)) {
            break_hook = value;
        } else if (keyValue(arg, "out", value)) {
            bundle_path = value;
        } else {
            std::fprintf(stderr, "cg_fuzz: unknown argument '%s'\n",
                         arg.c_str());
            return usage();
        }
    }

    // A single case is far faster than the whole-session budget; a
    // case that outlives it is hung, not slow.
    const double case_budget =
        budget_seconds < 30.0 ? 30.0 : budget_seconds;

    sim::FuzzWatchdog watchdog;
    const auto start = std::chrono::steady_clock::now();
    const auto elapsed = [&start] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };

    // Per-case health board: a live line over the case loop, enabled
    // by the same CG_BOARD/TTY rule as cg_bench's sweep board.
    sim::StatusLine status(sim::SweepHealthBoard::enabledFromEnv());

    std::size_t checked = 0;
    std::size_t runs = 0;
    for (std::uint64_t index = 0;; ++index) {
        if (cases >= 0 && index >= static_cast<std::uint64_t>(cases))
            break;
        if (cases < 0 && checked > 0 && elapsed() >= budget_seconds)
            break;

        sim::FuzzCase fuzz_case =
            sim::randomFuzzCase(base_seed + index);
        if (jobs_override > 0)
            fuzz_case.jobs = static_cast<unsigned>(jobs_override);
        if (mode_pinned)
            fuzz_case.mode = pinned_mode;
        fuzz_case.breakInvariant = break_hook;

        watchdog.arm(case_budget,
                     "case: " + sim::fuzzCaseJson(fuzz_case).dump());
        sim::FuzzVerdict verdict = sim::checkFuzzCase(fuzz_case);
        watchdog.disarm();
        ++checked;
        runs += verdict.runs;

        {
            char line[160];
            std::snprintf(line, sizeof line,
                          "[fuzz] %zu case%s, %zu sweep runs, %.1fs "
                          "(budget %.0fs)",
                          checked, checked == 1 ? "" : "s", runs,
                          elapsed(), budget_seconds);
            status.update(line);
        }

        if (!verdict.ok()) {
            std::fprintf(stderr,
                         "cg_fuzz: case seed %llu violates %zu "
                         "invariant(s):\n",
                         static_cast<unsigned long long>(
                             fuzz_case.caseSeed),
                         verdict.failures.size());
            printFailures(verdict);

            std::fprintf(stderr, "cg_fuzz: shrinking...\n");
            watchdog.arm(case_budget * 4,
                         "shrink of case seed " +
                             std::to_string(fuzz_case.caseSeed));
            const sim::FuzzCase minimal =
                sim::shrinkFuzzCase(fuzz_case);
            const sim::FuzzVerdict minimal_verdict =
                sim::checkFuzzCase(minimal);
            watchdog.disarm();

            sim::writeReproBundle(bundle_path, minimal,
                                  minimal_verdict.failures);
            std::fprintf(stderr,
                         "cg_fuzz: wrote repro bundle '%s' "
                         "(replay with 'cg_fuzz replay %s' or "
                         "'cg_bench replay %s')\n",
                         bundle_path.c_str(), bundle_path.c_str(),
                         bundle_path.c_str());
            return 1;
        }
    }

    status.finish("");
    std::printf("cg_fuzz: %zu case%s (%zu sweep runs) clean in %.1fs\n",
                checked, checked == 1 ? "" : "s", runs, elapsed());
    return 0;
}

int
cmdReplay(const std::vector<std::string> &args)
{
    if (args.size() != 1)
        return usage();

    std::ifstream in(args[0]);
    if (!in.good()) {
        std::fprintf(stderr, "cg_fuzz: cannot open '%s'\n",
                     args[0].c_str());
        return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();

    Json bundle;
    std::string error;
    if (!Json::parse(buffer.str(), bundle, &error)) {
        std::fprintf(stderr, "cg_fuzz: '%s': parse error: %s\n",
                     args[0].c_str(), error.c_str());
        return 2;
    }
    sim::FuzzCase fuzz_case;
    if (!sim::reproBundleFromJson(bundle, fuzz_case, &error)) {
        std::fprintf(stderr, "cg_fuzz: '%s': invalid bundle: %s\n",
                     args[0].c_str(), error.c_str());
        return 2;
    }

    sim::FuzzWatchdog watchdog;
    watchdog.arm(120.0, "replay of '" + args[0] + "'");
    const sim::FuzzVerdict verdict = sim::checkFuzzCase(fuzz_case);
    watchdog.disarm();

    if (!verdict.ok()) {
        std::fprintf(stderr,
                     "cg_fuzz: reproduced %zu invariant failure(s):\n",
                     verdict.failures.size());
        printFailures(verdict);
        return 1;
    }
    std::printf("cg_fuzz: bundle case is clean (%zu sweep runs)\n",
                verdict.runs);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // cg_fuzz layers its own knob on the shared CG_* set; register it
    // before anything triggers the unknown-variable scan, then
    // validate the environment up front so a typo'd knob is fatal on
    // every subcommand.
    sim::allowEnvKey("CG_FUZZ_BUDGET");
    // Accepted for toolchain symmetry (a shared shell environment
    // must not be fatal here), but inert: fuzz batches run with
    // caching off, and the harness never shards.
    sim::allowEnvKey("CG_SHARDS");
    sim::allowEnvKey("CG_CACHE_DIR");
    (void)sim::EnvOptions::get();

    const std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty())
        return usage();
    if (args[0] == "--help" || args[0] == "-h" || args[0] == "help") {
        usage();
        return 0;
    }

    const std::vector<std::string> rest(args.begin() + 1, args.end());
    if (args[0] == "run")
        return cmdRun(rest);
    if (args[0] == "replay")
        return cmdReplay(rest);

    std::fprintf(stderr, "cg_fuzz: unknown command '%s'\n",
                 args[0].c_str());
    return usage();
}
