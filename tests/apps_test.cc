/**
 * @file
 * Tests for the six benchmark applications: error-free executions must
 * reproduce the reference quality (bit-exact for the SNR apps, lossy
 * baseline for jpeg/mp3), and erroneous executions must satisfy the
 * paper's operational requirements — always complete, never hang.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/experiment.hh"
#include "sim/experiment_config.hh"

namespace commguard
{
namespace
{

using apps::App;
using streamit::ProtectionMode;

sim::RunOutcome
runErrorFree(const App &app, ProtectionMode mode)
{
    return sim::ExperimentConfig::app(app).mode(mode).noErrors().run();
}

/** Small app variants so the whole suite stays fast. */
App
makeSmallApp(const std::string &name)
{
    if (name == "jpeg")
        return apps::makeJpegApp(64, 32, 50);
    if (name == "mp3")
        return apps::makeMp3App(2048);
    if (name == "audiobeamformer")
        return apps::makeBeamformerApp(2048);
    if (name == "channelvocoder")
        return apps::makeChannelVocoderApp(2048);
    if (name == "complex-fir")
        return apps::makeComplexFirApp(2048);
    return apps::makeFftApp(64);
}

class AppCase : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AppCase, ErrorFreeCommGuardMatchesReference)
{
    const App app = makeSmallApp(GetParam());
    const sim::RunOutcome outcome =
        runErrorFree(app, ProtectionMode::CommGuard);
    EXPECT_TRUE(outcome.completed);
    if (std::isinf(app.errorFreeQualityDb)) {
        // SNR apps: bit-exact match with the host model.
        EXPECT_TRUE(std::isinf(outcome.qualityDb))
            << "got " << outcome.qualityDb << " dB";
    } else {
        EXPECT_NEAR(outcome.qualityDb, app.errorFreeQualityDb, 0.35);
    }
    // No realignment activity without errors.
    EXPECT_EQ(outcome.paddedItems(), 0u);
    EXPECT_EQ(outcome.discardedItems(), 0u);
    EXPECT_EQ(outcome.timeoutsFired(), 0u);
    EXPECT_EQ(outcome.watchdogTrips(), 0u);
}

TEST_P(AppCase, ErrorFreeReliableQueueMatchesToo)
{
    const App app = makeSmallApp(GetParam());
    const sim::RunOutcome outcome =
        runErrorFree(app, ProtectionMode::ReliableQueue);
    EXPECT_TRUE(outcome.completed);
    if (std::isinf(app.errorFreeQualityDb))
        EXPECT_TRUE(std::isinf(outcome.qualityDb));
    else
        EXPECT_NEAR(outcome.qualityDb, app.errorFreeQualityDb, 0.35);
}

/**
 * The paper's first operational requirement (§2.1.1): execution must
 * progress — no crash, no hang — even at the extreme error rate, in
 * every protection configuration.
 */
TEST_P(AppCase, ExtremeErrorRatesAlwaysComplete)
{
    const App app = makeSmallApp(GetParam());
    for (ProtectionMode mode :
         {ProtectionMode::PpuOnly, ProtectionMode::ReliableQueue,
          ProtectionMode::CommGuard}) {
        const sim::RunOutcome outcome = sim::ExperimentConfig::app(app)
                                            .mode(mode)
                                            .mtbe(64'000)
                                            .seed(11)
                                            .run();
        EXPECT_TRUE(outcome.completed)
            << GetParam() << " under "
            << streamit::protectionModeName(mode);
        EXPECT_TRUE(std::isfinite(outcome.qualityDb) ||
                    std::isinf(outcome.qualityDb));
    }
}

TEST_P(AppCase, ErrorRunsAreDeterministicPerSeed)
{
    const App app = makeSmallApp(GetParam());
    const sim::ExperimentConfig config =
        sim::ExperimentConfig::app(app)
            .mode(ProtectionMode::CommGuard)
            .mtbe(128'000)
            .seed(99);
    const sim::RunOutcome a = config.run();
    const sim::RunOutcome b = config.run();
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.errorsInjected(), b.errorsInjected());
    EXPECT_EQ(a.qualityDb, b.qualityDb);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, AppCase,
    ::testing::ValuesIn(apps::allAppNames()),
    [](const auto &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

// ----------------------------------------------------------------------
// App-specific structure.
// ----------------------------------------------------------------------

TEST(JpegApp, HasTenNodesLikePaperFig1)
{
    const App app = apps::makeJpegApp(64, 32, 50);
    EXPECT_EQ(app.graph.numNodes(), 10);
}

TEST(JpegApp, BaselinePsnrNearPaperValue)
{
    // Paper: error-free jpeg PSNR 35.6 dB.
    const App app = apps::makeJpegApp(256, 192, 50);
    EXPECT_GT(app.errorFreeQualityDb, 30.0);
    EXPECT_LT(app.errorFreeQualityDb, 45.0);
}

TEST(JpegApp, ImageReassemblyHandlesShortOutput)
{
    const media::Image img =
        apps::jpegImageFromOutput({300u, static_cast<Word>(-5)}, 8, 8);
    EXPECT_EQ(img.at(0, 0, 0), 255);  // Clamped high.
    EXPECT_EQ(img.at(0, 0, 1), 0);    // Clamped low.
    EXPECT_EQ(img.at(1, 0, 0), 0);    // Missing -> black.
}

TEST(Mp3App, BaselineSnrNearPaperValue)
{
    // Paper: error-free mp3 SNR 9.4 dB.
    const App app = apps::makeMp3App(8192);
    EXPECT_GT(app.errorFreeQualityDb, 6.0);
    EXPECT_LT(app.errorFreeQualityDb, 16.0);
}

TEST(Apps, FactoryCoversAllNames)
{
    for (const std::string &name : apps::allAppNames()) {
        const App app = apps::makeAppByName(name);
        EXPECT_EQ(app.name, name);
        EXPECT_GT(app.steadyIterations, 0u);
        EXPECT_FALSE(app.input.empty());
        EXPECT_TRUE(static_cast<bool>(app.quality));
        EXPECT_EQ(app.graph.validateStructure(), "");
    }
}

TEST(Apps, CommGuardRecoversWhereReliableQueueDegrades)
{
    // The paper's Fig. 3d vs 3c contrast: across seeds, CommGuard's
    // realignment preserves clearly better jpeg quality than reliable
    // queues alone (individual seeds can tie when no misalignment
    // happens to occur, so compare the 5-seed mean, deterministic for
    // fixed seeds).
    const App app = apps::makeJpegApp(128, 64, 50);

    auto mean_quality = [&](ProtectionMode mode) {
        double sum = 0.0;
        for (std::uint64_t seed = 1; seed <= 5; ++seed) {
            sum += sim::ExperimentConfig::app(app)
                       .mode(mode)
                       .mtbe(128'000)
                       .seed(seed)
                       .run()
                       .qualityDb;
        }
        return sum / 5.0;
    };

    const double cg_quality = mean_quality(ProtectionMode::CommGuard);
    const double rq_quality =
        mean_quality(ProtectionMode::ReliableQueue);
    EXPECT_GT(cg_quality, rq_quality + 2.0);
}

TEST(Apps, FrameScaleTradesLossGranularity)
{
    // Larger frames -> fewer headers inserted (paper §5.4).
    const App app = apps::makeMp3App(2048);

    auto headers_at_scale = [&](Count scale) {
        return sim::ExperimentConfig::app(app)
            .mode(ProtectionMode::CommGuard)
            .noErrors()
            .frameScale(scale)
            .run()
            .headerStores();
    };

    const Count h1 = headers_at_scale(1);
    const Count h4 = headers_at_scale(4);
    EXPECT_GT(h1, h4);
    EXPECT_GE(h1, 3 * h4);  // Roughly 4x fewer frame headers.
}

} // namespace
} // namespace commguard
