/**
 * @file
 * Tests for graph validation, the repetition-vector solver, and frame
 * analysis (paper §2.2, Fig. 2).
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "streamit/schedule.hh"

namespace commguard::streamit
{
namespace
{

/** Trivial program builder for structural tests. */
isa::Program
dummyProgram(int)
{
    isa::Assembler a("dummy");
    a.halt();
    return a.finalize();
}

FilterSpec
filter(const std::string &name, std::vector<int> pops,
       std::vector<int> pushes)
{
    return FilterSpec{name, std::move(pops), std::move(pushes),
                      dummyProgram};
}

StreamGraph
makeChain(const std::vector<std::pair<int, int>> &rates)
{
    // rates[i] = {pop, push} of node i.
    StreamGraph g;
    NodeId prev = -1;
    for (std::size_t i = 0; i < rates.size(); ++i) {
        const NodeId node = g.addFilter(
            filter("n" + std::to_string(i), {rates[i].first},
                   {rates[i].second}));
        if (prev >= 0)
            g.connect(prev, 0, node, 0);
        prev = node;
    }
    g.setExternalInput(0, 0);
    g.setExternalOutput(prev, 0);
    return g;
}

// ----------------------------------------------------------------------
// Structure validation.
// ----------------------------------------------------------------------

TEST(GraphValidate, AcceptsSimpleChain)
{
    StreamGraph g = makeChain({{1, 2}, {2, 1}});
    EXPECT_EQ(g.validateStructure(), "");
}

TEST(GraphValidate, RejectsEmptyGraph)
{
    StreamGraph g;
    EXPECT_NE(g.validateStructure(), "");
}

TEST(GraphValidate, RejectsMissingExternalPorts)
{
    StreamGraph g;
    g.addFilter(filter("a", {1}, {1}));
    EXPECT_NE(g.validateStructure(), "");
}

TEST(GraphValidate, RejectsUnconnectedPort)
{
    StreamGraph g;
    const NodeId a = g.addFilter(filter("a", {1}, {1, 1}));
    const NodeId b = g.addFilter(filter("b", {1}, {1}));
    g.connect(a, 0, b, 0);
    g.setExternalInput(a, 0);
    g.setExternalOutput(b, 0);
    // a's output port 1 dangles.
    EXPECT_NE(g.validateStructure(), "");
}

TEST(GraphValidate, RejectsDoublyConnectedPort)
{
    StreamGraph g;
    const NodeId a = g.addFilter(filter("a", {1}, {1}));
    const NodeId b = g.addFilter(filter("b", {1}, {1}));
    g.connect(a, 0, b, 0);
    g.connect(a, 0, b, 0);
    g.setExternalInput(a, 0);
    g.setExternalOutput(b, 0);
    EXPECT_NE(g.validateStructure(), "");
}

TEST(GraphValidate, RejectsZeroRates)
{
    StreamGraph g;
    g.addFilter(filter("a", {0}, {1}));
    g.setExternalInput(0, 0);
    g.setExternalOutput(0, 0);
    EXPECT_NE(g.validateStructure(), "");
}

// ----------------------------------------------------------------------
// Repetition vector.
// ----------------------------------------------------------------------

TEST(Repetitions, UniformChainIsAllOnes)
{
    StreamGraph g = makeChain({{4, 4}, {4, 4}, {4, 4}});
    const RepetitionVector r = solveRepetitions(g);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.firings, (std::vector<Count>{1, 1, 1}));
}

TEST(Repetitions, RateChangeScalesFirings)
{
    // n0 pushes 2 per firing, n1 pops 6: n0 fires 3x per n1 firing.
    StreamGraph g = makeChain({{1, 2}, {6, 1}});
    const RepetitionVector r = solveRepetitions(g);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.firings, (std::vector<Count>{3, 1}));
}

TEST(Repetitions, RationalRatesFindSmallestIntegerVector)
{
    // 3 -> 2 rate conversion: firings 2 and 3.
    StreamGraph g = makeChain({{1, 3}, {2, 1}});
    const RepetitionVector r = solveRepetitions(g);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.firings, (std::vector<Count>{2, 3}));
}

TEST(Repetitions, SplitJoinBalances)
{
    // split pushes 1 to each branch per firing; branches 1->1; join
    // pops 1 from each.
    StreamGraph g;
    const NodeId split = g.addFilter(filter("split", {2}, {1, 1}));
    const NodeId bra = g.addFilter(filter("bra", {1}, {1}));
    const NodeId brb = g.addFilter(filter("brb", {1}, {1}));
    const NodeId join = g.addFilter(filter("join", {1, 1}, {2}));
    g.connect(split, 0, bra, 0);
    g.connect(split, 1, brb, 0);
    g.connect(bra, 0, join, 0);
    g.connect(brb, 0, join, 1);
    g.setExternalInput(split, 0);
    g.setExternalOutput(join, 0);

    const RepetitionVector r = solveRepetitions(g);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.firings, (std::vector<Count>{1, 1, 1, 1}));
}

TEST(Repetitions, UnbalancedSplitJoinDetected)
{
    // Branch a doubles items, branch b passes through: the join can
    // never balance -> inconsistent rates.
    StreamGraph g;
    const NodeId split = g.addFilter(filter("split", {2}, {1, 1}));
    const NodeId bra = g.addFilter(filter("bra", {1}, {2}));
    const NodeId brb = g.addFilter(filter("brb", {1}, {1}));
    const NodeId join = g.addFilter(filter("join", {1, 1}, {2}));
    g.connect(split, 0, bra, 0);
    g.connect(split, 1, brb, 0);
    g.connect(bra, 0, join, 0);
    g.connect(brb, 0, join, 1);
    g.setExternalInput(split, 0);
    g.setExternalOutput(join, 0);

    const RepetitionVector r = solveRepetitions(g);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("inconsistent"), std::string::npos);
}

TEST(Repetitions, DisconnectedGraphDetected)
{
    StreamGraph g;
    g.addFilter(filter("a", {1}, {1}));
    g.addFilter(filter("b", {1}, {1}));
    const RepetitionVector r = solveRepetitions(g);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("disconnected"), std::string::npos);
}

// ----------------------------------------------------------------------
// Frame analysis (paper Fig. 2: F6 pushes 192/firing, F7 pops 15360;
// 80 firings of F6 and 1 of F7 form one frame computation).
// ----------------------------------------------------------------------

TEST(FrameAnalysis, ReproducesPaperFig2Linkage)
{
    StreamGraph g = makeChain({{192, 192}, {15360, 15360}});
    const RepetitionVector r = solveRepetitions(g);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.firings, (std::vector<Count>{80, 1}));

    const FrameAnalysis fa = analyzeFrames(g, r);
    EXPECT_EQ(fa.firingsPerFrame, (std::vector<Count>{80, 1}));
    ASSERT_EQ(fa.edgeItemsPerFrame.size(), 1u);
    EXPECT_EQ(fa.edgeItemsPerFrame[0], 15360u);
    EXPECT_EQ(fa.inputItemsPerFrame, 15360u);
    EXPECT_EQ(fa.outputItemsPerFrame, 15360u);
}

TEST(FrameAnalysis, MultiPortEdgesUseProducerRates)
{
    StreamGraph g;
    const NodeId split = g.addFilter(filter("split", {6}, {2, 4}));
    const NodeId a = g.addFilter(filter("a", {1}, {1}));
    const NodeId b = g.addFilter(filter("b", {2}, {1}));
    const NodeId join = g.addFilter(filter("join", {2, 2}, {4}));
    g.connect(split, 0, a, 0);
    g.connect(split, 1, b, 0);
    g.connect(a, 0, join, 0);
    g.connect(b, 0, join, 1);
    g.setExternalInput(split, 0);
    g.setExternalOutput(join, 0);

    const RepetitionVector r = solveRepetitions(g);
    ASSERT_TRUE(r.ok) << r.error;
    // split x1: 2 items to a (a fires 2x), 4 items to b (b fires 2x),
    // join pops 2+2 (fires 1x)... check balance: a pushes 2, b pushes
    // 2, join pops 2 from each -> join fires 1.
    EXPECT_EQ(r.firings, (std::vector<Count>{1, 2, 2, 1}));

    const FrameAnalysis fa = analyzeFrames(g, r);
    EXPECT_EQ(fa.edgeItemsPerFrame[0], 2u);
    EXPECT_EQ(fa.edgeItemsPerFrame[1], 4u);
    EXPECT_EQ(fa.inputItemsPerFrame, 6u);
    EXPECT_EQ(fa.outputItemsPerFrame, 4u);
}

} // namespace
} // namespace commguard::streamit
