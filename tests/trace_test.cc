/**
 * @file
 * Tests for execution tracing: commit/invocation/error events, the
 * disassembly in trace lines, and the line budget.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "isa/assembler.hh"
#include "machine/backends.hh"
#include "machine/multicore.hh"

namespace commguard
{
namespace
{

using namespace isa;

Program
tinyProgram()
{
    Assembler a("tiny");
    a.li(R1, 42);
    a.addi(R2, R1, 1);
    return a.finalize();
}

struct Harness
{
    Multicore machine;
    Core *core = nullptr;

    explicit Harness(Program program, Count frames = 1)
    {
        core = &machine.addCore("t");
        core->setProgram(std::move(program));
        CommBackend &backend = machine.addBackend(
            std::make_unique<RawBackend>(
                std::vector<QueueBase *>{},
                std::vector<QueueBase *>{}));
        machine.addRuntime(*core, backend, frames);
    }
};

TEST(Trace, RecordsCommitsWithDisassembly)
{
    Harness h(tinyProgram());
    std::ostringstream os;
    TextTracer tracer(os);
    h.core->setTraceSink(&tracer);
    ASSERT_TRUE(h.machine.run().completed);

    const std::string text = os.str();
    EXPECT_NE(text.find("invocation 1"), std::string::npos);
    EXPECT_NE(text.find("li r1, 42"), std::string::npos);
    EXPECT_NE(text.find("addi r2, r1, 1"), std::string::npos);
    EXPECT_NE(text.find("halt"), std::string::npos);
    EXPECT_EQ(tracer.commitsSeen(), 3u);  // li, addi, halt.
}

TEST(Trace, LineBudgetSilencesLongRuns)
{
    Assembler a("loop");
    a.forDown(R1, 100, [&] { a.addi(R2, R2, 1); });
    Harness h(a.finalize());

    std::ostringstream os;
    TextTracer tracer(os, 10);
    h.core->setTraceSink(&tracer);
    ASSERT_TRUE(h.machine.run().completed);

    EXPECT_NE(os.str().find("trace line budget reached"),
              std::string::npos);
    // All commits are still counted even after output stops.
    EXPECT_GT(tracer.commitsSeen(), 100u);
    // Output stays bounded: ~11 instruction lines + banner lines.
    EXPECT_LT(os.str().size(), 800u);
}

TEST(Trace, RecordsInjectedErrors)
{
    Assembler a("spin");
    a.forDown(R1, 5000, [&] { a.addi(R2, R2, 1); });
    Harness h(a.finalize());

    ErrorInjector::Config config;
    config.enabled = true;
    config.mtbe = 500;
    config.seed = 4;
    h.core->configureInjector(config);

    std::ostringstream os;
    TextTracer tracer(os, 20);
    h.core->setTraceSink(&tracer);
    ASSERT_TRUE(h.machine.run().completed);

    EXPECT_GT(tracer.errorsSeen(), 5u);
    EXPECT_EQ(tracer.errorsSeen(),
              h.core->injector().errorsInjected());
}

TEST(Trace, NullSinkIsDefaultAndFree)
{
    Harness h(tinyProgram());
    // No sink attached: simply runs.
    ASSERT_TRUE(h.machine.run().completed);
    EXPECT_EQ(h.core->counters().committedInsts, 3u);
}

} // namespace
} // namespace commguard
