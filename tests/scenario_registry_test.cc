/**
 * @file
 * Scenario-layer tests: registry invariants (names unique, sorted,
 * stable), catalogue JSON shape, the quick-mode axis thinning, and an
 * end-to-end smoke run of every registered scenario in quick mode —
 * each must publish at least one table row and a valid
 * schema-versioned BENCH document.
 *
 * The ToyScenario registrar below is also the living demonstration of
 * the extension contract: adding a workload is exactly one new
 * translation unit containing a static ScenarioRegistrar — no driver,
 * registry or CMake-logic change. The toy registers from this file
 * and shows up in every listing and in the parameterized smoke run.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/metrics.hh"
#include "sim/scenario.hh"

using namespace commguard;

namespace
{

void
runToyScenario(sim::ScenarioContext &ctx)
{
    sim::Table table({"axis", "value"});
    table.addRow({"seeds", std::to_string(ctx.seeds())});
    table.addRow({"mtbe points",
                  std::to_string(ctx.mtbeAxis().size())});
    ctx.publishTable("toy_registry_demo", table);
}

// One static registrar in one translation unit == one new scenario.
const sim::ScenarioRegistrar toy_registrar({
    "toy_registry_demo",
    "minimal scenario used to test the registration contract",
    "docs/SCENARIOS.md",
    {"toy"},
    runToyScenario,
});

TEST(ScenarioRegistry, NamesUniqueSortedAndStable)
{
    const std::vector<std::string> names =
        sim::ScenarioRegistry::instance().names();
    ASSERT_FALSE(names.empty());

    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
    const std::set<std::string> unique(names.begin(), names.end());
    EXPECT_EQ(unique.size(), names.size());

    // The catalogue's stable core: every pre-refactor binary name must
    // still be present (BENCH_<name>.json filenames depend on it).
    for (const char *expected :
         {"ablation_flush_cost", "ablation_injection_policy",
          "ablation_nested_scopes", "ablation_output_alignment",
          "ablation_queue_capacity", "ablation_reliability_model",
          "ablation_source_guard", "ablation_watchdog",
          "fig03_protection_configs", "fig07_pad_discard",
          "fig08_data_loss", "fig09_jpeg_quality",
          "fig10_jpeg_mp3_quality", "fig11_snr_sweep",
          "fig12_memory_overhead", "fig13_runtime_overhead",
          "fig14_suboperations", "micro_commguard", "micro_machine",
          "micro_sweep_throughput", "toy_registry_demo"}) {
        EXPECT_TRUE(unique.count(expected) == 1)
            << "scenario '" << expected << "' missing from registry";
    }
}

TEST(ScenarioRegistry, LookupAndTagFilter)
{
    const sim::ScenarioRegistry &registry =
        sim::ScenarioRegistry::instance();

    const sim::Scenario *toy = registry.find("toy_registry_demo");
    ASSERT_NE(toy, nullptr);
    EXPECT_EQ(toy->paperRef, "docs/SCENARIOS.md");
    EXPECT_EQ(registry.find("no_such_scenario"), nullptr);

    const std::vector<const sim::Scenario *> figures =
        registry.withTag("figure");
    EXPECT_GE(figures.size(), 9u);
    for (const sim::Scenario *scenario : figures) {
        EXPECT_NE(std::find(scenario->tags.begin(),
                            scenario->tags.end(), "figure"),
                  scenario->tags.end());
    }
    EXPECT_TRUE(registry.withTag("no_such_tag").empty());
}

TEST(ScenarioRegistry, CatalogueJsonShape)
{
    const Json doc = sim::scenarioListJson();
    ASSERT_TRUE(doc.isObject());
    ASSERT_NE(doc.find("schema_version"), nullptr);
    EXPECT_EQ(doc.find("schema_version")->counter(),
              static_cast<Count>(metrics::kSchemaVersion));

    const Json *scenarios = doc.find("scenarios");
    ASSERT_NE(scenarios, nullptr);
    ASSERT_TRUE(scenarios->isArray());
    EXPECT_EQ(scenarios->arr().size(),
              sim::ScenarioRegistry::instance().names().size());

    std::string previous;
    for (const Json &entry : scenarios->arr()) {
        ASSERT_TRUE(entry.isObject());
        for (const char *key : {"name", "description", "paper_ref"}) {
            ASSERT_NE(entry.find(key), nullptr);
            EXPECT_FALSE(entry.find(key)->str().empty())
                << "empty '" << key << "'";
        }
        ASSERT_NE(entry.find("tags"), nullptr);
        EXPECT_FALSE(entry.find("tags")->arr().empty());
        const std::string &name = entry.find("name")->str();
        EXPECT_LT(previous, name) << "names not sorted/unique";
        previous = name;
    }
}

TEST(ScenarioAxes, QuickThinsTheFullSweep)
{
    const sim::SweepAxes full = sim::sweepAxes(false);
    const sim::SweepAxes quick = sim::sweepAxes(true);

    EXPECT_LT(quick.seeds, full.seeds);
    EXPECT_LT(quick.mtbe.size(), full.mtbe.size());
    EXPECT_LE(quick.frameScales.size(), full.frameScales.size());

    // Quick points are a subset of the full axis: quick results stay
    // comparable against full-sweep numbers.
    for (Count mtbe : quick.mtbe) {
        EXPECT_NE(std::find(full.mtbe.begin(), full.mtbe.end(), mtbe),
                  full.mtbe.end());
    }
}

/**
 * End-to-end smoke: run the scenario in quick mode and require at
 * least one published row plus a valid BENCH document per table.
 */
class ScenarioSmoke : public testing::TestWithParam<std::string>
{
};

TEST_P(ScenarioSmoke, RunsInQuickModeAndPublishes)
{
    const sim::Scenario *scenario =
        sim::ScenarioRegistry::instance().find(GetParam());
    ASSERT_NE(scenario, nullptr);

    sim::ScenarioContext::Options options;
    options.quick = true;
    options.artifactDir = "bench_out";
    sim::ScenarioContext ctx(options);
    scenario->run(ctx);

    EXPECT_GE(ctx.publishedTables(), 1u)
        << "scenario published no table";
    EXPECT_GE(ctx.publishedRows(), 1u) << "scenario published no rows";
    for (const auto &[name, document] : ctx.benchDocuments()) {
        ASSERT_TRUE(document.isObject()) << name;
        ASSERT_NE(document.find("schema_version"), nullptr) << name;
        EXPECT_EQ(document.find("schema_version")->counter(),
                  static_cast<Count>(metrics::kSchemaVersion))
            << name;
        ASSERT_NE(document.find("bench"), nullptr) << name;
        EXPECT_EQ(document.find("bench")->str(), name);
        EXPECT_NE(document.find("data"), nullptr) << name;
    }
}

// ValuesIn with a generator function: evaluated at test registration,
// safely after every static ScenarioRegistrar has run.
INSTANTIATE_TEST_SUITE_P(
    AllScenarios, ScenarioSmoke,
    testing::ValuesIn(sim::ScenarioRegistry::instance().names()),
    [](const testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

} // namespace
