/**
 * @file
 * Tests for the process-boundary layers of the sweep engine
 * (docs/SHARDING.md):
 *  - the run codec: canonical descriptor JSON round-trips through
 *    descriptorFromJson, word streams round-trip through hex, and a
 *    JSONL run record rebuilds the exact RunOutcome,
 *  - the content-addressed result cache: store/lookup replays the
 *    exact record bytes, corrupt or mismatched entries degrade to
 *    misses, and the key is descriptor-sensitive,
 *  - the shard frame protocol over a real pipe,
 *  - ShardExecutor end to end against real `cg_bench worker`
 *    processes: merged results byte-identical to the local executor,
 *    including when a worker is killed mid-sweep and its run is
 *    reassigned (the recovery path).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <unistd.h>
#include <vector>

#include "apps/app.hh"
#include "sim/experiment_config.hh"
#include "sim/result_cache.hh"
#include "sim/run_codec.hh"
#include "sim/run_export.hh"
#include "sim/shard.hh"
#include "sim/sweep_runner.hh"

namespace commguard::sim
{
namespace
{

namespace fs = std::filesystem;

void
expectBitwiseEqual(const RunOutcome &a, const RunOutcome &b)
{
    EXPECT_EQ(std::memcmp(&a.qualityDb, &b.qualityDb, sizeof(double)),
              0);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_TRUE(a.snapshot == b.snapshot);
    EXPECT_EQ(a.output, b.output);
}

/** A small cross-mode sweep over the fft app (mirrors
 *  sweep_runner_test.cc's batch shape). */
std::vector<RunDescriptor>
smallSweep(const apps::App &app)
{
    std::vector<RunDescriptor> descriptors;
    for (const streamit::ProtectionMode mode :
         {streamit::ProtectionMode::ReliableQueue,
          streamit::ProtectionMode::CommGuard}) {
        for (const double mtbe : {64'000.0, 1'024'000.0}) {
            for (int seed = 0; seed < 2; ++seed) {
                descriptors.push_back(
                    {&app, sweepOptions(mode, true, mtbe, seed)});
            }
        }
    }
    return descriptors;
}

// ----------------------------------------------------------------------
// Frame protocol.
// ----------------------------------------------------------------------

TEST(ShardFrames, RoundTripOverAPipe)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);

    // Total stays under the 64 KiB pipe buffer: all frames are
    // written before any is read back.
    const std::vector<std::string> payloads = {
        "", "{}", std::string(30'000, 'x')};
    for (const std::string &payload : payloads)
        ASSERT_TRUE(writeFrame(fds[1], payload));
    for (const std::string &payload : payloads) {
        std::string got;
        ASSERT_TRUE(readFrame(fds[0], &got));
        EXPECT_EQ(got, payload);
    }

    // A closed write end is EOF, not garbage.
    ::close(fds[1]);
    std::string got;
    EXPECT_FALSE(readFrame(fds[0], &got));
    ::close(fds[0]);
}

TEST(ShardFrames, TruncatedFrameIsEof)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    // A length prefix promising more bytes than ever arrive.
    const unsigned char prefix[4] = {16, 0, 0, 0};
    ASSERT_EQ(::write(fds[1], prefix, 4), 4);
    ASSERT_EQ(::write(fds[1], "abc", 3), 3);
    ::close(fds[1]);
    std::string got;
    EXPECT_FALSE(readFrame(fds[0], &got));
    ::close(fds[0]);
}

// ----------------------------------------------------------------------
// Run codec.
// ----------------------------------------------------------------------

TEST(RunCodec, WordHexRoundTrip)
{
    const std::vector<Word> words = {0u, 1u, 0xdeadbeefu, 0xffffffffu};
    const std::string hex = encodeWords(words);
    EXPECT_EQ(hex, "0000000000000001deadbeefffffffff");

    std::vector<Word> back;
    ASSERT_TRUE(decodeWords(hex, &back));
    EXPECT_EQ(back, words);

    EXPECT_TRUE(decodeWords("", &back));
    EXPECT_TRUE(back.empty());

    EXPECT_FALSE(decodeWords("0000000", &back));   // Not 8-aligned.
    EXPECT_FALSE(decodeWords("0000000g", &back));  // Non-hex.
}

TEST(RunCodec, DescriptorRoundTripsThroughJson)
{
    const apps::App app = apps::makeFftApp(16);
    std::vector<RunDescriptor> descriptors = smallSweep(app);

    // Exercise the non-default fields too.
    RunDescriptor tweaked = descriptors.front();
    tweaked.options.frameScale = 3;
    tweaked.options.perNodeFrameScale.assign(
        static_cast<std::size_t>(app.graph.numNodes()), 2);
    tweaked.options.queueCapacityWords = 512;
    tweaked.options.flipAllRegisters = true;
    tweaked.options.guardSourceEdge = false;
    tweaked.options.frameAlignedOutput = true;
    tweaked.options.machine.timing.memExtraCycles = 7;
    tweaked.options.machine.ppu.maxScopeDepth = 5;
    descriptors.push_back(tweaked);

    AppCache apps_cache;
    for (std::size_t i = 0; i < descriptors.size(); ++i) {
        SCOPED_TRACE("descriptor " + std::to_string(i));
        const Json encoded = descriptorJson(descriptors[i]);

        RunDescriptor decoded;
        std::string error;
        ASSERT_TRUE(descriptorFromJson(encoded, apps_cache, &decoded,
                                       &error))
            << error;

        // Byte-level fixed point: re-encoding reproduces the bytes,
        // so the cache key and the wire frame agree across hops.
        EXPECT_EQ(descriptorJson(decoded).dump(), encoded.dump());
        EXPECT_EQ(decoded.app->name, descriptors[i].app->name);
        EXPECT_EQ(decoded.options.seed, descriptors[i].options.seed);
        EXPECT_EQ(decoded.options.mtbe, descriptors[i].options.mtbe);
    }
}

TEST(RunCodec, RejectsMalformedDescriptorJson)
{
    const apps::App app = apps::makeFftApp(16);
    const RunDescriptor descriptor = {
        &app,
        sweepOptions(streamit::ProtectionMode::CommGuard, true,
                     64'000.0, 0)};
    AppCache apps_cache;
    RunDescriptor decoded;
    std::string error;

    {
        Json bad = descriptorJson(descriptor);
        bad.obj().erase("seed");
        EXPECT_FALSE(
            descriptorFromJson(bad, apps_cache, &decoded, &error));
        EXPECT_NE(error.find("seed"), std::string::npos);
    }
    {
        Json bad = descriptorJson(descriptor);
        bad["protection_mode"] = Json("no-such-mode");
        EXPECT_FALSE(
            descriptorFromJson(bad, apps_cache, &decoded, &error));
    }
    {
        Json bad = descriptorJson(descriptor);
        bad["mtbe"] = Json("fast");
        EXPECT_FALSE(
            descriptorFromJson(bad, apps_cache, &decoded, &error));
    }
}

TEST(RunCodec, ShippabilityTracksSpecAndObservability)
{
    const apps::App app = apps::makeFftApp(16);
    RunDescriptor descriptor = {
        &app,
        sweepOptions(streamit::ProtectionMode::CommGuard, true,
                     64'000.0, 0)};
    EXPECT_TRUE(runShippable(descriptor));
    EXPECT_TRUE(runCacheable(descriptor));

    // Observability artifacts cannot cross the process boundary.
    descriptor.options.machine.traceEvents = true;
    EXPECT_FALSE(runShippable(descriptor));
    descriptor.options.machine.traceEvents = false;
    descriptor.options.machine.telemetrySlices = 8;
    EXPECT_FALSE(runShippable(descriptor));
    descriptor.options.machine.telemetrySlices = 0;
    EXPECT_TRUE(runShippable(descriptor));

    // A hand-built app without a reconstruction spec stays local.
    apps::App bare = apps::makeFftApp(16);
    bare.spec.clear();
    const RunDescriptor unshippable = {&bare, descriptor.options};
    EXPECT_FALSE(runShippable(unshippable));
    EXPECT_FALSE(runCacheable(unshippable));
}

TEST(RunCodec, OutcomeRebuildsFromRecord)
{
    const apps::App app = apps::makeFftApp(16);
    const RunDescriptor descriptor = {
        &app,
        sweepOptions(streamit::ProtectionMode::CommGuard, true,
                     64'000.0, 1)};
    const RunOutcome outcome =
        runOnce(*descriptor.app, descriptor.options);

    const Json record = runRecordJson(descriptor, outcome);
    const RunOutcome rebuilt =
        outcomeFromRecord(record, outcome.output);
    expectBitwiseEqual(outcome, rebuilt);
}

TEST(RunCodec, AppCacheReusesConstructedApps)
{
    const apps::App fft = apps::makeFftApp(16);
    AppCache cache;
    const apps::App &first = cache.fromSpec(fft.spec);
    const apps::App &again = cache.fromSpec(fft.spec);
    EXPECT_EQ(&first, &again);
    EXPECT_EQ(first.name, fft.name);

    const apps::App other = apps::makeFftApp(32);
    EXPECT_NE(&cache.fromSpec(other.spec), &first);
}

// ----------------------------------------------------------------------
// Result cache.
// ----------------------------------------------------------------------

/** A fresh cache directory under the test's scratch space. */
class ResultCacheTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        _dir = fs::path(::testing::TempDir()) /
               ("cg_cache_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::remove_all(_dir);
        fs::create_directories(_dir);
    }
    void TearDown() override { fs::remove_all(_dir); }

    fs::path _dir;
    const apps::App _app = apps::makeFftApp(16);
};

TEST_F(ResultCacheTest, StoreThenLookupReplaysExactRecordBytes)
{
    const RunDescriptor descriptor = {
        &_app,
        sweepOptions(streamit::ProtectionMode::CommGuard, true,
                     64'000.0, 0)};
    ExecutedRun executed;
    executed.outcome = runOnce(*descriptor.app, descriptor.options);
    executed.recordLine =
        runRecordJson(descriptor, executed.outcome).dump();

    ResultCache cache(_dir.string());
    ExecutedRun replayed;
    EXPECT_FALSE(cache.lookup(descriptor, &replayed));  // Cold.

    cache.store(descriptor, executed);
    ASSERT_TRUE(cache.lookup(descriptor, &replayed));
    EXPECT_EQ(replayed.recordLine, executed.recordLine);
    expectBitwiseEqual(replayed.outcome, executed.outcome);
    EXPECT_TRUE(replayed.traceDoc.empty());
    EXPECT_TRUE(replayed.telemetryChunk.empty());
}

TEST_F(ResultCacheTest, CorruptEntriesDegradeToMisses)
{
    const RunDescriptor descriptor = {
        &_app,
        sweepOptions(streamit::ProtectionMode::CommGuard, true,
                     64'000.0, 0)};
    ExecutedRun executed;
    executed.outcome = runOnce(*descriptor.app, descriptor.options);
    executed.recordLine =
        runRecordJson(descriptor, executed.outcome).dump();

    ResultCache cache(_dir.string());
    cache.store(descriptor, executed);
    const fs::path entry =
        _dir / (ResultCache::keyFor(descriptor) + ".json");
    ASSERT_TRUE(fs::exists(entry));

    const Count invalid_before =
        ResultCache::stats().invalid.load();
    std::ofstream(entry) << "not json at all";
    ExecutedRun replayed;
    EXPECT_FALSE(cache.lookup(descriptor, &replayed));
    EXPECT_GT(ResultCache::stats().invalid.load(), invalid_before);

    // A syntactically valid entry keyed from a different descriptor
    // (hash-collision stand-in) is rejected by the descriptor
    // comparison, not trusted.
    RunDescriptor other = descriptor;
    other.options.seed += 1;
    ExecutedRun other_run;
    other_run.outcome = runOnce(*other.app, other.options);
    other_run.recordLine =
        runRecordJson(other, other_run.outcome).dump();
    cache.store(other, other_run);
    fs::copy_file(
        _dir / (ResultCache::keyFor(other) + ".json"), entry,
        fs::copy_options::overwrite_existing);
    EXPECT_FALSE(cache.lookup(descriptor, &replayed));
}

TEST_F(ResultCacheTest, KeyIsStableAndDescriptorSensitive)
{
    const ExperimentConfig config =
        ExperimentConfig::app(_app)
            .mode(streamit::ProtectionMode::CommGuard)
            .mtbe(128'000)
            .seedIndex(2);
    const std::string key = config.cacheKey();
    EXPECT_EQ(key.size(), 16u);
    EXPECT_EQ(key.find_first_not_of("0123456789abcdef"),
              std::string::npos);
    EXPECT_EQ(key, ResultCache::keyFor(config.descriptor()));

    const std::string other =
        ExperimentConfig::app(_app)
            .mode(streamit::ProtectionMode::CommGuard)
            .mtbe(128'000)
            .seedIndex(3)
            .cacheKey();
    EXPECT_NE(key, other);
}

TEST_F(ResultCacheTest, SweepsStaleOrphanTempFilesOnly)
{
    // A writer killed between the temp write and the rename in
    // store() leaves "<key>.json.tmp.<pid>" behind forever. The sweep
    // reclaims stale ones; fresh ones (a live concurrent writer still
    // filling its file) and real entries must survive.
    const fs::path stale = _dir / "00deadbeef00cafe.json.tmp.12345";
    const fs::path fresh = _dir / "00cafef00d00beef.json.tmp.6789";
    std::ofstream(stale) << "partial entry";
    std::ofstream(fresh) << "partial entry";
    fs::last_write_time(stale, fs::file_time_type::clock::now() -
                                   std::chrono::hours(1));

    const RunDescriptor descriptor = {
        &_app,
        sweepOptions(streamit::ProtectionMode::CommGuard, true,
                     64'000.0, 0)};
    ExecutedRun executed;
    executed.outcome = runOnce(*descriptor.app, descriptor.options);
    executed.recordLine =
        runRecordJson(descriptor, executed.outcome).dump();
    ResultCache cache(_dir.string());
    cache.store(descriptor, executed);

    const Count swept_before =
        ResultCache::stats().orphansSwept.load();
    EXPECT_EQ(cache.sweepOrphans(60.0), 1u);
    EXPECT_EQ(ResultCache::stats().orphansSwept.load(),
              swept_before + 1);
    EXPECT_FALSE(fs::exists(stale));
    EXPECT_TRUE(fs::exists(fresh));
    ExecutedRun replayed;
    EXPECT_TRUE(cache.lookup(descriptor, &replayed));

    // Idempotent: nothing stale left.
    EXPECT_EQ(cache.sweepOrphans(60.0), 0u);
}

// ----------------------------------------------------------------------
// ShardExecutor against real worker processes.
// ----------------------------------------------------------------------

ShardPlan
testPlan(unsigned shards)
{
    ShardPlan plan;
    plan.shards = shards;
    plan.workerArgv = {CG_BENCH_PATH, "worker"};
    return plan;
}

std::vector<ExecutedRun>
runThrough(RunExecutor &executor,
           const std::vector<RunDescriptor> &batch)
{
    ExecutionRequest request;
    request.wantRecords = true;
    std::vector<ExecutedRun> out(batch.size());
    executor.execute(batch, request, out);
    return out;
}

TEST(ShardExecutor, MergedResultsMatchLocalExecutorBytes)
{
    const apps::App app = apps::makeFftApp(16);
    const std::vector<RunDescriptor> batch = smallSweep(app);

    LocalExecutor local(1);
    const std::vector<ExecutedRun> base = runThrough(local, batch);

    ShardExecutor sharded(testPlan(2));
    EXPECT_STREQ(sharded.name(), "shard");
    EXPECT_EQ(sharded.jobs(), 2u);
    const std::vector<ExecutedRun> shard = runThrough(sharded, batch);

    ASSERT_EQ(shard.size(), base.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
        SCOPED_TRACE("run " + std::to_string(i));
        expectBitwiseEqual(base[i].outcome, shard[i].outcome);
        EXPECT_EQ(base[i].recordLine, shard[i].recordLine);
    }

    // Workers persist across batches (warm app caches): a second
    // batch through the same executor still matches.
    const std::vector<ExecutedRun> again = runThrough(sharded, batch);
    for (std::size_t i = 0; i < base.size(); ++i)
        EXPECT_EQ(base[i].recordLine, again[i].recordLine);
}

TEST(ShardExecutor, UnshippableRunsExecuteInline)
{
    apps::App bare = apps::makeFftApp(16);
    bare.spec.clear();  // Not reconstructable in a worker.
    const apps::App app = apps::makeFftApp(16);

    std::vector<RunDescriptor> batch = {
        {&app, sweepOptions(streamit::ProtectionMode::CommGuard, true,
                            64'000.0, 0)},
        {&bare, sweepOptions(streamit::ProtectionMode::CommGuard,
                             true, 64'000.0, 1)},
    };

    LocalExecutor local(1);
    const std::vector<ExecutedRun> base = runThrough(local, batch);

    const Count inline_before =
        shardStats().localFallbackRuns.load();
    ShardExecutor sharded(testPlan(1));
    const std::vector<ExecutedRun> shard = runThrough(sharded, batch);
    EXPECT_GT(shardStats().localFallbackRuns.load(), inline_before);

    for (std::size_t i = 0; i < base.size(); ++i) {
        SCOPED_TRACE("run " + std::to_string(i));
        expectBitwiseEqual(base[i].outcome, shard[i].outcome);
    }
}

TEST(ShardExecutor, KilledWorkerRunIsReassignedWithoutCorruption)
{
    const apps::App app = apps::makeFftApp(16);
    const std::vector<RunDescriptor> batch = smallSweep(app);

    LocalExecutor local(1);
    const std::vector<ExecutedRun> base = runThrough(local, batch);

    // Kill the first worker immediately after its first assignment:
    // its in-flight run must be detected as lost and reassigned, and
    // the merged document must still be byte-identical.
    ShardPlan plan = testPlan(2);
    plan.testKillAfterAssignments = 1;

    const Count lost_before = shardStats().workersLost.load();
    const Count reassigned_before =
        shardStats().runsReassigned.load();

    ShardExecutor sharded(plan);
    const std::vector<ExecutedRun> shard = runThrough(sharded, batch);

    EXPECT_GT(shardStats().workersLost.load(), lost_before);
    EXPECT_GT(shardStats().runsReassigned.load(), reassigned_before);

    ASSERT_EQ(shard.size(), base.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
        SCOPED_TRACE("run " + std::to_string(i));
        expectBitwiseEqual(base[i].outcome, shard[i].outcome);
        EXPECT_EQ(base[i].recordLine, shard[i].recordLine);
    }
}

TEST(ShardExecutor, SingleWorkerDeathRespawnsAndCompletes)
{
    const apps::App app = apps::makeFftApp(16);
    const std::vector<RunDescriptor> batch = smallSweep(app);

    LocalExecutor local(1);
    const std::vector<ExecutedRun> base = runThrough(local, batch);

    // One worker, killed after its first assignment: the pool goes
    // empty and the executor must spawn a replacement, finish the
    // sweep, and deliver every result exactly once (slot-by-index
    // merge — a double-delivered run would show as a mismatch).
    ShardPlan plan = testPlan(1);
    plan.testKillAfterAssignments = 1;

    const Count spawned_before = shardStats().workersSpawned.load();
    ShardExecutor sharded(plan);
    const std::vector<ExecutedRun> shard = runThrough(sharded, batch);
    EXPECT_GE(shardStats().workersSpawned.load(),
              spawned_before + 2);  // Original + respawn.

    ASSERT_EQ(shard.size(), base.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
        SCOPED_TRACE("run " + std::to_string(i));
        expectBitwiseEqual(base[i].outcome, shard[i].outcome);
        EXPECT_EQ(base[i].recordLine, shard[i].recordLine);
    }
}

TEST(ShardExecutor, RespawnExhaustionFailsTheSweepCleanly)
{
    const apps::App app = apps::makeFftApp(16);
    const std::vector<RunDescriptor> batch = smallSweep(app);

    // With respawns disabled, the first worker death empties the pool
    // and the sweep must abort with a clean diagnostic — not hang on
    // a pipe that will never deliver, not deliver partial results.
    EXPECT_EXIT(
        {
            ShardPlan plan = testPlan(1);
            plan.testKillAfterAssignments = 1;
            plan.maxRespawns = 0;
            ShardExecutor sharded(plan);
            runThrough(sharded, batch);
        },
        ::testing::ExitedWithCode(1), "worker pool exhausted");
}

TEST(ShardExecutor, SweepRunnerOverShardsMatchesLocalRunner)
{
    const apps::App app = apps::makeFftApp(16);
    const std::vector<RunDescriptor> batch = smallSweep(app);

    SweepRunner local(1, SweepRunner::Caching::Off);
    for (const RunDescriptor &descriptor : batch)
        local.enqueue(descriptor);
    const std::vector<RunOutcome> base = local.runAll();

    SweepRunner sharded(std::make_unique<ShardExecutor>(testPlan(2)),
                        SweepRunner::Caching::Off);
    EXPECT_STREQ(sharded.executorName(), "shard");
    for (const RunDescriptor &descriptor : batch)
        sharded.enqueue(descriptor);
    const std::vector<RunOutcome> shard = sharded.runAll();

    ASSERT_EQ(shard.size(), base.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
        SCOPED_TRACE("run " + std::to_string(i));
        expectBitwiseEqual(base[i], shard[i]);
    }
}

} // namespace
} // namespace commguard::sim
