/**
 * @file
 * Tests for host-side media utilities: images, quality metrics, audio
 * synthesis, and file writers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "media/audio.hh"
#include "media/image.hh"
#include "media/quality.hh"

namespace commguard::media
{
namespace
{

TEST(Image, FlowerHasExpectedGeometry)
{
    const Image img = makeFlowerImage(64, 48);
    EXPECT_EQ(img.width, 64);
    EXPECT_EQ(img.height, 48);
    EXPECT_EQ(img.rgb.size(), 64u * 48u * 3u);
}

TEST(Image, FlowerIsDeterministic)
{
    const Image a = makeFlowerImage(32, 32);
    const Image b = makeFlowerImage(32, 32);
    EXPECT_EQ(a.rgb, b.rgb);
}

TEST(Image, FlowerHasStructure)
{
    // Not a flat field: many distinct values in each channel.
    const Image img = makeFlowerImage(64, 64);
    for (int c = 0; c < 3; ++c) {
        bool seen[256] = {};
        int distinct = 0;
        for (int y = 0; y < 64; ++y)
            for (int x = 0; x < 64; ++x) {
                const std::uint8_t v = img.at(x, y, c);
                if (!seen[v]) {
                    seen[v] = true;
                    ++distinct;
                }
            }
        EXPECT_GT(distinct, 30) << "channel " << c;
    }
}

TEST(Image, PpmRoundtripOnDisk)
{
    const Image img = makeFlowerImage(16, 8);
    const std::string path = "/tmp/commguard_test.ppm";
    ASSERT_TRUE(writePpm(img, path));

    std::FILE *file = std::fopen(path.c_str(), "rb");
    ASSERT_NE(file, nullptr);
    char magic[3] = {};
    ASSERT_EQ(std::fread(magic, 1, 2, file), 2u);
    EXPECT_EQ(magic[0], 'P');
    EXPECT_EQ(magic[1], '6');
    std::fclose(file);
    std::remove(path.c_str());
}

// ----------------------------------------------------------------------
// Quality metrics.
// ----------------------------------------------------------------------

TEST(Quality, IdenticalImagesAreInfinite)
{
    const Image img = makeFlowerImage(32, 32);
    EXPECT_TRUE(std::isinf(psnrDb(img, img)));
}

TEST(Quality, KnownPsnrValue)
{
    Image a(8, 8);
    Image b(8, 8);
    // Uniform difference of 10 -> MSE 100 -> PSNR = 10*log10(255^2/100)
    for (auto &v : b.rgb)
        v = 10;
    EXPECT_NEAR(psnrDb(a, b), 10.0 * std::log10(255.0 * 255.0 / 100.0),
                1e-9);
}

TEST(Quality, PsnrDecreasesWithMoreNoise)
{
    const Image ref = makeFlowerImage(32, 32);
    Image mild = ref;
    Image harsh = ref;
    for (std::size_t i = 0; i < ref.rgb.size(); i += 7)
        mild.rgb[i] = static_cast<std::uint8_t>(mild.rgb[i] ^ 0x04);
    for (std::size_t i = 0; i < ref.rgb.size(); i += 2)
        harsh.rgb[i] = static_cast<std::uint8_t>(harsh.rgb[i] ^ 0x40);
    EXPECT_GT(psnrDb(ref, mild), psnrDb(ref, harsh));
}

TEST(Quality, SnrIdenticalIsInfinite)
{
    const std::vector<float> v = {1.0f, -2.0f, 3.0f};
    EXPECT_TRUE(std::isinf(snrDb(v, v)));
}

TEST(Quality, SnrKnownValue)
{
    const std::vector<float> ref = {1.0f, 1.0f, 1.0f, 1.0f};
    const std::vector<float> out = {1.1f, 0.9f, 1.1f, 0.9f};
    // signal = 4, noise = 4 * 0.01 -> SNR = 20 dB.
    EXPECT_NEAR(snrDb(ref, out), 20.0, 0.01);
}

TEST(Quality, MissingTailCountsAsError)
{
    const std::vector<float> ref(100, 1.0f);
    std::vector<float> half(50, 1.0f);
    // Half the energy missing -> SNR = 10*log10(100/50) ~ 3 dB.
    EXPECT_NEAR(snrDb(ref, half), 3.0103, 0.01);
}

TEST(Quality, ZeroReferenceGivesZeroDb)
{
    const std::vector<float> ref(4, 0.0f);
    const std::vector<float> out = {1.0f, 0.0f, 0.0f, 0.0f};
    EXPECT_EQ(snrDb(ref, out), 0.0);
}

// ----------------------------------------------------------------------
// Audio.
// ----------------------------------------------------------------------

TEST(Audio, SynthesisBoundsAndEnergy)
{
    const std::vector<float> audio = makeMusicAudio(8192);
    ASSERT_EQ(audio.size(), 8192u);
    double energy = 0.0;
    for (float s : audio) {
        ASSERT_LE(std::fabs(s), 1.0f);
        energy += s * s;
    }
    EXPECT_GT(energy / 8192.0, 0.001);  // Not silence.
}

TEST(Audio, SynthesisIsDeterministic)
{
    EXPECT_EQ(makeMusicAudio(1024), makeMusicAudio(1024));
}

TEST(Audio, WavWriterProducesRiff)
{
    const std::string path = "/tmp/commguard_test.wav";
    ASSERT_TRUE(writeWav(makeMusicAudio(256), 32768, path));
    std::FILE *file = std::fopen(path.c_str(), "rb");
    ASSERT_NE(file, nullptr);
    char hdr[5] = {};
    ASSERT_EQ(std::fread(hdr, 1, 4, file), 4u);
    EXPECT_STREQ(hdr, "RIFF");
    std::fseek(file, 0, SEEK_END);
    // 44-byte header + 2 bytes per sample.
    EXPECT_EQ(std::ftell(file), 44 + 256 * 2);
    std::fclose(file);
    std::remove(path.c_str());
}

} // namespace
} // namespace commguard::media
