/**
 * @file
 * Flow-conservation invariants across the whole machine: for every
 * queue in every benchmark, words pushed equal words popped plus the
 * residue still queued — no queue implementation ever loses or
 * fabricates words, with or without errors. (Erroneous *threads* may
 * of course push the wrong number of words; that is what CommGuard
 * repairs — but the queues themselves must be conservative, otherwise
 * the realignment accounting of Figs. 7-8 would be meaningless.)
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "sim/experiment_config.hh"
#include "streamit/loader.hh"

namespace commguard
{
namespace
{

using streamit::LoadOptions;
using streamit::ProtectionMode;

void
expectConservation(streamit::LoadedApp &app, const std::string &label)
{
    for (const auto &queue : app.machine->queues()) {
        const QueueCounters &c = queue->counters();
        if (queue.get() == app.source || queue.get() == app.collector)
            continue;  // I/O devices have their own semantics.
        EXPECT_EQ(c.pushes, c.pops + queue->size())
            << label << " queue " << queue->name();
    }
}

class Conservation : public ::testing::TestWithParam<std::string>
{
};

/** Small app variants (mirrors apps_test). */
apps::App
makeSmallApp(const std::string &name)
{
    if (name == "jpeg")
        return apps::makeJpegApp(64, 32, 50);
    if (name == "mp3")
        return apps::makeMp3App(2048);
    if (name == "audiobeamformer")
        return apps::makeBeamformerApp(2048);
    if (name == "channelvocoder")
        return apps::makeChannelVocoderApp(2048);
    if (name == "complex-fir")
        return apps::makeComplexFirApp(2048);
    return apps::makeFftApp(64);
}

TEST_P(Conservation, ErrorFreeQueuesBalanceExactly)
{
    const apps::App app = makeSmallApp(GetParam());
    LoadOptions options;
    options.mode = ProtectionMode::CommGuard;
    options.injectErrors = false;
    streamit::LoadedApp loaded = streamit::loadGraph(
        app.graph, app.input, app.steadyIterations, options);
    ASSERT_TRUE(loaded.run().completed);
    expectConservation(loaded, GetParam() + "/error-free");

    // End-to-end word accounting on the consumer side: every pop a
    // core issued was answered by an accepted item or padding.
    Count pops = 0;
    for (const auto &core : loaded.machine->cores())
        pops += core->counters().queuePops;
    Count answered = 0;
    for (CommGuardBackend *backend : loaded.cgBackends) {
        answered += backend->counters().acceptedItems +
                    backend->counters().paddedItems;
    }
    EXPECT_EQ(pops, answered);
}

TEST_P(Conservation, ErroneousQueuesStillBalance)
{
    const apps::App app = makeSmallApp(GetParam());
    for (ProtectionMode mode :
         {ProtectionMode::ReliableQueue, ProtectionMode::CommGuard}) {
        LoadOptions options;
        options.mode = mode;
        options.injectErrors = true;
        options.mtbe = 50'000;
        options.seed = 13;
        streamit::LoadedApp loaded = streamit::loadGraph(
            app.graph, app.input, app.steadyIterations, options);
        ASSERT_TRUE(loaded.run().completed);
        expectConservation(loaded,
                           GetParam() + std::string("/") +
                               streamit::protectionModeName(mode));
    }
    // (SoftwareQueue is exempt: pointer corruption *is* word loss —
    // that is the Fig. 3b failure mode.)
}

/**
 * Registry-level conservation, through the snapshot every reporting
 * layer consumes (one MTBE point, every app, every mode): in CommGuard
 * mode each core pop is answered by exactly one accepted or padded
 * item, items leave guarded queues only as accepted/discarded data or
 * header traffic, and realignment counters (padding in particular) are
 * exclusive to CommGuard mode.
 */
TEST_P(Conservation, SnapshotCountersConserve)
{
    const apps::App app = makeSmallApp(GetParam());
    for (ProtectionMode mode :
         {ProtectionMode::PpuOnly, ProtectionMode::ReliableQueue,
          ProtectionMode::CommGuard}) {
        SCOPED_TRACE(streamit::protectionModeName(mode));
        const sim::RunOutcome outcome = sim::ExperimentConfig::app(app)
                                            .mode(mode)
                                            .mtbe(256'000)
                                            .seed(21)
                                            .run();
        const metrics::MetricSnapshot &s = outcome.snapshot;
        if (mode == ProtectionMode::CommGuard) {
            // Every consumer pop answered by an accepted item or a
            // fabricated pad — nothing lost, nothing double-counted.
            EXPECT_EQ(s.total("queuePops"),
                      s.total("acceptedItems") + s.total("paddedItems"));
            // Every data word the AMs consumed was either delivered
            // or discarded — the producer side of the same ledger.
            EXPECT_EQ(s.total("dataLoads"),
                      s.total("acceptedItems") +
                          s.total("discardedItems"));
            // Accepted + discarded data came out of producer pushes
            // (the rest of the pushed words are headers or residue;
            // the totals include the I/O device queues, which only
            // widens the bound).
            EXPECT_LE(s.total("acceptedItems") +
                          s.total("discardedItems"),
                      s.total("pushes"));
        } else {
            // Realignment metrics exist only under CommGuard.
            EXPECT_EQ(s.total("paddedItems"), 0u);
            EXPECT_EQ(s.total("discardedItems"), 0u);
            EXPECT_EQ(s.total("acceptedItems"), 0u);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, Conservation,
    ::testing::ValuesIn(apps::allAppNames()),
    [](const auto &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
} // namespace commguard
