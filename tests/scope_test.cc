/**
 * @file
 * Tests for nested control-flow scopes (paper §4.4: guided execution
 * management) — the assembler API, static validation, and the PPU's
 * per-scope budget enforcement in the core.
 */

#include <gtest/gtest.h>

#include <memory>

#include "isa/assembler.hh"
#include "machine/backends.hh"
#include "machine/multicore.hh"
#include "queue/io_queue.hh"

namespace commguard
{
namespace
{

using namespace isa;

/** Run a queue-less program once on an error-free core. */
Core &
execOn(Multicore &machine, Program program,
       const PpuConfig *ppu = nullptr)
{
    if (ppu)
        machine.config().ppu = *ppu;
    Core &core = machine.addCore("t");
    core.setProgram(std::move(program));
    CommBackend &backend = machine.addBackend(
        std::make_unique<RawBackend>(std::vector<QueueBase *>{},
                                     std::vector<QueueBase *>{}));
    machine.addRuntime(core, backend, 1);
    EXPECT_TRUE(machine.run().completed);
    return core;
}

// ----------------------------------------------------------------------
// Assembler API and validation.
// ----------------------------------------------------------------------

TEST(ScopeAssembler, RecordsScopeTableAndExitPcs)
{
    Assembler a("s");
    const int outer = a.scopeEnter(100);
    a.addi(R1, R1, 1);
    const int inner = a.scopeEnter(10);
    a.addi(R1, R1, 1);
    a.scopeExit();  // inner
    a.scopeExit();  // outer
    const Program p = a.finalize();

    ASSERT_EQ(p.scopes.size(), 2u);
    EXPECT_EQ(outer, 0);
    EXPECT_EQ(inner, 1);
    EXPECT_EQ(p.scopes[0].estimatedInsts, 100u);
    EXPECT_EQ(p.scopes[1].estimatedInsts, 10u);
    // Code: enter(0) addi enter(1) addi exit(1) exit(0) halt.
    EXPECT_EQ(p.code[p.scopes[1].exitPc].op, Op::ScopeExit);
    EXPECT_EQ(p.code[p.scopes[0].exitPc].op, Op::ScopeExit);
    EXPECT_LT(p.scopes[1].exitPc, p.scopes[0].exitPc);
    EXPECT_TRUE(validate(p).ok);
}

TEST(ScopeAssembler, DisassemblyShowsScopes)
{
    Assembler a("s");
    a.scopeEnter(5);
    a.scopeExit();
    const std::string text = disassemble(a.finalize());
    EXPECT_NE(text.find("scope.enter scope0"), std::string::npos);
    EXPECT_NE(text.find("scope.exit scope0"), std::string::npos);
}

TEST(ScopeValidate, RejectsBadScopeIndex)
{
    Program p;
    p.name = "bad";
    Inst enter;
    enter.op = Op::ScopeEnter;
    enter.imm = 3;  // No such scope.
    p.code.push_back(enter);
    EXPECT_FALSE(validate(p).ok);
}

TEST(ScopeValidate, RejectsDanglingExitPc)
{
    Program p;
    p.name = "bad";
    ScopeInfo info;
    info.estimatedInsts = 10;
    info.exitPc = 99;
    p.scopes.push_back(info);
    Inst enter;
    enter.op = Op::ScopeEnter;
    enter.imm = 0;
    p.code.push_back(enter);
    EXPECT_FALSE(validate(p).ok);
}

// ----------------------------------------------------------------------
// Core enforcement.
// ----------------------------------------------------------------------

TEST(ScopeEnforcement, WellBehavedScopeRunsToCompletion)
{
    Assembler a("ok");
    a.scopeEnter(64);
    a.forDown(R1, 10, [&] { a.addi(R2, R2, 1); });
    a.scopeExit();
    a.setEstimatedInsts(64);

    Multicore machine;
    Core &core = execOn(machine, a.finalize());
    EXPECT_EQ(core.regs().read(R2), 10u);
    EXPECT_EQ(core.counters().nestedScopeTrips, 0u);
}

TEST(ScopeEnforcement, RunawayInnerLoopIsCutAtScopeExit)
{
    // The inner scope spins forever; the per-scope budget must force
    // it to its exit, after which the rest of the program runs.
    Assembler a("runaway");
    a.scopeEnter(20);
    a.label("spin");
    a.addi(R1, R1, 1);
    a.jmp("spin");
    a.scopeExit();
    a.li(R3, 77);  // Must still execute.
    a.setEstimatedInsts(4096);

    Multicore machine;
    Core &core = execOn(machine, a.finalize());
    EXPECT_EQ(core.regs().read(R3), 77u);
    EXPECT_EQ(core.counters().nestedScopeTrips, 1u);
    // The invocation watchdog never had to fire.
    EXPECT_EQ(core.counters().scopeWatchdogTrips, 0u);
    // Budget = estimate * multiplier (2), floored at 64.
    EXPECT_LT(core.counters().committedInsts, 256u);
}

TEST(ScopeEnforcement, InnerTripDoesNotKillOuterScope)
{
    Assembler a("nested");
    a.scopeEnter(100000);  // Generous outer scope.
    a.scopeEnter(20);      // Tight inner scope around a spin.
    a.label("spin");
    a.addi(R1, R1, 1);
    a.jmp("spin");
    a.scopeExit();
    a.forDown(R2, 50, [&] { a.addi(R3, R3, 1); });  // Outer work.
    a.scopeExit();
    a.setEstimatedInsts(100000);

    Multicore machine;
    Core &core = execOn(machine, a.finalize());
    EXPECT_EQ(core.counters().nestedScopeTrips, 1u);
    EXPECT_EQ(core.regs().read(R3), 50u);  // Outer work completed.
}

TEST(ScopeEnforcement, ReenteredScopeGetsFreshBudget)
{
    // A scope inside a loop: each iteration re-enters with a fresh
    // deadline, so 8 well-behaved iterations never trip.
    Assembler a("reenter");
    a.forDown(R1, 8, [&] {
        a.scopeEnter(32);
        a.addi(R2, R2, 1);
        a.scopeExit();
    });
    a.setEstimatedInsts(512);

    Multicore machine;
    Core &core = execOn(machine, a.finalize());
    EXPECT_EQ(core.regs().read(R2), 8u);
    EXPECT_EQ(core.counters().nestedScopeTrips, 0u);
}

TEST(ScopeEnforcement, DisabledScopesFallBackToInvocationWatchdog)
{
    Assembler a("disabled");
    a.scopeEnter(20);
    a.label("spin");
    a.addi(R1, R1, 1);
    a.jmp("spin");
    a.scopeExit();
    a.li(R3, 77);
    a.setEstimatedInsts(500);

    PpuConfig ppu;
    ppu.enforceNestedScopes = false;
    Multicore machine;
    Core &core = execOn(machine, a.finalize(), &ppu);
    // Without nested enforcement the spin eats the whole invocation
    // budget: the invocation watchdog fires and R3 is never written.
    EXPECT_EQ(core.counters().nestedScopeTrips, 0u);
    EXPECT_EQ(core.counters().scopeWatchdogTrips, 1u);
    EXPECT_EQ(core.regs().read(R3), 0u);
}

TEST(ScopeEnforcement, DepthBeyondLimitIsUnguardedButHarmless)
{
    PpuConfig ppu;
    ppu.maxScopeDepth = 2;

    Assembler a("deep");
    for (int i = 0; i < 4; ++i)
        a.scopeEnter(1000);
    a.addi(R1, R1, 1);
    for (int i = 0; i < 4; ++i)
        a.scopeExit();
    a.setEstimatedInsts(64);

    Multicore machine;
    Core &core = execOn(machine, a.finalize(), &ppu);
    EXPECT_EQ(core.regs().read(R1), 1u);
}

} // namespace
} // namespace commguard
